// tytan-lint — static binary verifier for TBF task images.
//
//   tytan-lint task.tbf [options]
//   tytan-lint task.s   [options]     (assembles first, then lints)
//
// Runs the same analysis the loader's lint gate runs (CFG recovery,
// relocation lints, stack-depth analysis, MMIO/privilege lints) and prints
// the findings with disassembly context.  Exit status: 0 when no error
// findings (warnings allowed unless --strict), 1 on error findings or
// unreadable input, 2 on usage errors.
//
// Options:
//   --porcelain        one tab-separated line per finding:
//                      RULE<TAB>severity<TAB>0xOFFSET<TAB>message
//   --strict           treat warnings as errors for the exit status
//   --suppress RULE    drop a rule (repeatable, e.g. --suppress CF006)
//   --no-cfg --no-reloc --no-stack --no-mmio
//                      disable individual passes
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "tbf/tbf.h"

namespace {

using namespace tytan;

int usage() {
  std::fprintf(stderr,
               "usage: tytan-lint <task.tbf|task.s> [--porcelain] [--strict]\n"
               "                  [--suppress RULE]... [--no-cfg] [--no-reloc]\n"
               "                  [--no-stack] [--no-mmio]\n");
  return 2;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Disassembly context around a finding: two words either side, the finding's
/// word marked with '>'.
void print_context(const isa::ObjectFile& object, std::uint32_t offset) {
  const auto image_size = static_cast<std::uint32_t>(object.image.size());
  const std::uint32_t word_offset = offset & ~3u;
  if (word_offset + 4 > image_size) {
    return;  // finding anchors outside the image (range lints)
  }
  const std::uint32_t first = word_offset >= 8 ? word_offset - 8 : 0;
  const std::uint32_t last = std::min(word_offset + 8, image_size - 4);
  for (std::uint32_t at = first; at <= last; at += 4) {
    const std::uint32_t word = load_le32(object.image.data() + at);
    const char* reloc_note = "";
    for (const isa::Relocation& reloc : object.relocs) {
      if (reloc.offset == at) {
        reloc_note = reloc.kind == isa::RelocKind::kAbs32  ? "   ; reloc ABS32"
                     : reloc.kind == isa::RelocKind::kLo16 ? "   ; reloc LO16"
                                                           : "   ; reloc HI16";
        break;
      }
    }
    std::printf("  %c 0x%04x:  %08x  %s%s\n", at == word_offset ? '>' : ' ', at,
                word, isa::disassemble_word(word, at).c_str(), reloc_note);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  bool porcelain = false;
  bool strict = false;
  analysis::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--porcelain") {
      porcelain = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--no-cfg") {
      config.structural = false;
    } else if (arg == "--no-reloc") {
      config.relocations = false;
    } else if (arg == "--no-stack") {
      config.stack = false;
    } else if (arg == "--no-mmio") {
      config.mmio = false;
    } else if (arg == "--suppress" && i + 1 < argc) {
      const auto rule = analysis::rule_from_id(argv[++i]);
      if (!rule.has_value()) {
        std::fprintf(stderr, "tytan-lint: unknown rule id '%s'\n", argv[i]);
        return 2;
      }
      config.suppress.insert(*rule);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) {
    return usage();
  }

  std::ifstream in(input, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "tytan-lint: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();

  isa::ObjectFile object;
  if (ends_with(input, ".s") || ends_with(input, ".asm")) {
    auto assembled = isa::assemble(raw);
    if (!assembled.is_ok()) {
      std::fprintf(stderr, "tytan-lint: %s: %s\n", input.c_str(),
                   assembled.status().to_string().c_str());
      return 1;
    }
    object = assembled.take();
  } else {
    auto parsed = tbf::read(
        {reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()});
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "tytan-lint: %s: %s\n", input.c_str(),
                   parsed.status().to_string().c_str());
      return 1;
    }
    object = parsed.take();
  }

  const analysis::Report report = analysis::analyze(object, config);

  if (porcelain) {
    for (const analysis::Finding& finding : report.findings) {
      std::printf("%s\t%s\t0x%04x\t%s\n",
                  std::string(analysis::rule_id(finding.rule)).c_str(),
                  std::string(analysis::severity_name(finding.severity)).c_str(),
                  finding.offset, finding.message.c_str());
    }
  } else {
    for (const analysis::Finding& finding : report.findings) {
      std::printf("%s\n", analysis::format_finding(finding).c_str());
      print_context(object, finding.offset);
    }
    std::printf("%s: %zu error(s), %zu warning(s) in %zu bytes\n", input.c_str(),
                report.errors(), report.warnings(), object.image.size());
  }

  const bool failed = report.errors() > 0 || (strict && report.warnings() > 0);
  return failed ? 1 : 0;
}
