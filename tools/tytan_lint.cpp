// tytan-lint — static binary verifier for TBF task images.
//
//   tytan-lint task.tbf [options]
//   tytan-lint task.s   [options]     (assembles first, then lints)
//
// Runs the same analysis the loader's lint gate runs (CFG recovery,
// relocation lints, value-set dataflow, stack-depth analysis, MMIO/privilege
// lints) and prints the findings with disassembly context.  Exit status: 0
// when no error findings (warnings allowed unless --strict), 1 on error
// findings or unreadable input, 2 on usage errors.
//
// Options:
//   --porcelain        one tab-separated line per finding:
//                      RULE<TAB>severity<TAB>0xOFFSET<TAB>message
//   --json             machine-readable report on stdout (findings, rule
//                      counts, pass timings; same flat-object style as
//                      `tytan-trace stats --json`)
//   --strict           treat warnings as errors for the exit status
//   --suppress RULE    drop a rule (repeatable, e.g. --suppress DF002)
//   --max-targets N    indirect sites above N candidates stay unresolved
//                      (default 64)
//   --no-cfg --no-reloc --no-stack --no-mmio --no-dataflow
//                      disable individual passes
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "tbf/tbf.h"
#include "tool_util.h"

namespace {

using namespace tytan;

constexpr const char* kTool = "tytan-lint";

constexpr const char kUsageText[] =
    "usage: tytan-lint <task.tbf|task.s> [--porcelain] [--json]\n"
    "                  [--strict] [--suppress RULE]... [--max-targets N]\n"
    "                  [--no-cfg] [--no-reloc] [--no-stack] [--no-mmio]\n"
    "                  [--no-dataflow]\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return 2;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Disassembly context around a finding: two words either side, the finding's
/// word marked with '>'.
void print_context(const isa::ObjectFile& object, std::uint32_t offset) {
  const auto image_size = static_cast<std::uint32_t>(object.image.size());
  const std::uint32_t word_offset = offset & ~3u;
  if (word_offset + 4 > image_size) {
    return;  // finding anchors outside the image (range lints)
  }
  const std::uint32_t first = word_offset >= 8 ? word_offset - 8 : 0;
  const std::uint32_t last = std::min(word_offset + 8, image_size - 4);
  for (std::uint32_t at = first; at <= last; at += 4) {
    const std::uint32_t word = load_le32(object.image.data() + at);
    const char* reloc_note = "";
    for (const isa::Relocation& reloc : object.relocs) {
      if (reloc.offset == at) {
        reloc_note = reloc.kind == isa::RelocKind::kAbs32  ? "   ; reloc ABS32"
                     : reloc.kind == isa::RelocKind::kLo16 ? "   ; reloc LO16"
                                                           : "   ; reloc HI16";
        break;
      }
    }
    std::printf("  %c 0x%04x:  %08x  %s%s\n", at == word_offset ? '>' : ' ', at,
                word, isa::disassemble_word(word, at).c_str(), reloc_note);
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable report, same flat-object style as `tytan-trace stats
/// --json`: scalar summary, per-pass timings, rule counts, then findings.
void print_json(const std::string& input, const isa::ObjectFile& object,
                const analysis::Analysis& full) {
  const analysis::Report& report = full.report;
  std::printf("{\"input\": \"%s\", \"image_bytes\": %zu",
              json_escape(input).c_str(), object.image.size());
  std::printf(", \"errors\": %zu, \"warnings\": %zu, \"infos\": %zu",
              report.errors(), report.warnings(),
              report.count(analysis::Severity::kInfo));
  std::printf(", \"indirect_sites\": %zu, \"resolved_sites\": %zu",
              full.dataflow.indirect_sites, full.dataflow.resolved.size());
  std::printf(", \"certified_accesses\": %zu, \"dataflow_iterations\": %d"
              ", \"converged\": %s",
              full.dataflow.certified_accesses, full.dataflow_iterations,
              full.dataflow.converged ? "true" : "false");
  std::printf(", \"pass_us\": {\"structural\": %llu, \"relocation\": %llu, "
              "\"dataflow\": %llu, \"stack\": %llu, \"mmio\": %llu}",
              static_cast<unsigned long long>(full.timings.structural_us),
              static_cast<unsigned long long>(full.timings.relocation_us),
              static_cast<unsigned long long>(full.timings.dataflow_us),
              static_cast<unsigned long long>(full.timings.stack_us),
              static_cast<unsigned long long>(full.timings.mmio_us));
  std::map<std::string, std::size_t> rules;
  for (const analysis::Finding& finding : report.findings) {
    ++rules[std::string(analysis::rule_id(finding.rule))];
  }
  std::printf(", \"rules\": {");
  bool first = true;
  for (const auto& [rule, count] : rules) {
    std::printf("%s\"%s\": %zu", first ? "" : ", ", rule.c_str(), count);
    first = false;
  }
  std::printf("}, \"findings\": [");
  first = true;
  for (const analysis::Finding& finding : report.findings) {
    std::printf("%s{\"rule\": \"%s\", \"severity\": \"%s\", \"offset\": %u, "
                "\"message\": \"%s\"}",
                first ? "" : ", ",
                std::string(analysis::rule_id(finding.rule)).c_str(),
                std::string(analysis::severity_name(finding.severity)).c_str(),
                finding.offset, json_escape(finding.message).c_str());
    first = false;
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  tools::handle_version_help(kTool, argc, argv, kUsageText);
  std::string input;
  bool porcelain = false;
  bool json = false;
  bool strict = false;
  analysis::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--porcelain") {
      porcelain = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--no-cfg") {
      config.structural = false;
    } else if (arg == "--no-reloc") {
      config.relocations = false;
    } else if (arg == "--no-stack") {
      config.stack = false;
    } else if (arg == "--no-mmio") {
      config.mmio = false;
    } else if (arg == "--no-dataflow") {
      config.dataflow = false;
    } else if (arg == "--max-targets") {
      config.max_indirect_targets = tools::parse_u32(
          kTool, "--max-targets", tools::required_value(kTool, "--max-targets",
                                                        argc, argv, &i));
    } else if (arg == "--suppress") {
      const char* id = tools::required_value(kTool, "--suppress", argc, argv, &i);
      const auto rule = analysis::rule_from_id(id);
      if (!rule.has_value()) {
        std::fprintf(stderr, "%s: unknown rule id '%s'\n", kTool, id);
        return 2;
      }
      config.suppress.insert(*rule);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty() || (porcelain && json)) {
    return usage();
  }

  std::ifstream in(input, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open '%s'\n", kTool, input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();

  isa::ObjectFile object;
  if (ends_with(input, ".s") || ends_with(input, ".asm")) {
    auto assembled = isa::assemble(raw);
    if (!assembled.is_ok()) {
      std::fprintf(stderr, "%s: %s: %s\n", kTool, input.c_str(),
                   assembled.status().to_string().c_str());
      return 1;
    }
    object = assembled.take();
  } else {
    auto parsed = tbf::read(
        {reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()});
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "%s: %s: %s\n", kTool, input.c_str(),
                   parsed.status().to_string().c_str());
      return 1;
    }
    object = parsed.take();
  }

  const analysis::Analysis full = analysis::analyze_full(object, config);
  const analysis::Report& report = full.report;

  if (json) {
    print_json(input, object, full);
  } else if (porcelain) {
    for (const analysis::Finding& finding : report.findings) {
      std::printf("%s\t%s\t0x%04x\t%s\n",
                  std::string(analysis::rule_id(finding.rule)).c_str(),
                  std::string(analysis::severity_name(finding.severity)).c_str(),
                  finding.offset, finding.message.c_str());
    }
  } else {
    for (const analysis::Finding& finding : report.findings) {
      std::printf("%s\n", analysis::format_finding(finding).c_str());
      print_context(object, finding.offset);
    }
    std::printf("%s: %zu error(s), %zu warning(s) in %zu bytes\n", input.c_str(),
                report.errors(), report.warnings(), object.image.size());
  }

  const bool failed = report.errors() > 0 || (strict && report.warnings() > 0);
  return failed ? 1 : 0;
}
