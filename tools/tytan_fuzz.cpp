// tytan-fuzz — fork-based loader fuzzing against a live booted platform.
//
//   tytan-fuzz [options]
//     --execs N         number of inputs to run (default 500)
//     --seed N          mutation RNG seed (default 1)
//     --budget-cycles N guest cycles granted per input (default 200,000)
//     --mode fork|reboot  fork (default): boot once, restore the post-boot
//                       snapshot before every input; reboot: construct and
//                       boot a fresh platform per input (the slow baseline
//                       bench_snapshot compares against)
//     --corpus-out DIR  write inputs that crash or break an invariant to
//                       DIR/crash-N.tbf
//     --stats-json F    machine-readable run summary
//
// Each input is a mutated TBF image fed through the full trust path the
// paper's loader implements: tbf::read -> static lint -> RamArena -> EA-MPU
// configure -> RTM measure -> schedule -> run.  The platform must survive
// every input: loads may fail cleanly, guest code may fault and be killed,
// but the trusted state must stay intact — any C++ exception or invariant
// breach is a finding.  All randomness is seeded: a run reproduces exactly.
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/platform.h"
#include "isa/assembler.h"
#include "tbf/tbf.h"
#include "tool_util.h"

using namespace tytan;

namespace {

constexpr const char kUsageText[] =
    "usage: tytan-fuzz [--execs N] [--seed N] [--budget-cycles N]\n"
    "                  [--mode fork|reboot] [--corpus-out DIR]\n"
    "                  [--stats-json FILE]\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return 2;
}

/// xorshift64: deterministic, fast, and independent of libc rand.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Seed corpus: well-formed programs covering the loader's interesting
/// shapes (relocations, secure tasks, data tables, calls).
const char* const kSeedPrograms[] = {
    R"(
        .stack 256
        .entry main
    main:
        li r1, data
        ldw r2, [r1]
        addi r2, 1
        stw r2, [r1]
        hlt
    data:
        .word 7
    )",
    R"(
        .secure
        .stack 256
        .entry main
    main:
        li   r2, counter
        ldw  r3, [r2]
        addi r3, 1
        stw  r3, [r2]
        movi r0, 1
        int  0x21
        jmp  main
    counter:
        .word 0
    )",
    R"(
        .stack 128
        .entry start
    start:
        call helper
        hlt
    helper:
        push r3
        movi r3, 5
    loop:
        subi r3, 1
        cmpi r3, 0
        jnz  loop
        pop  r3
        ret
    )",
};

struct Options {
  std::uint64_t execs = 500;
  std::uint64_t seed = 1;
  std::uint64_t budget_cycles = 200'000;
  bool fork_mode = true;
  std::string corpus_out;
  std::string stats_json;
};

}  // namespace

int main(int argc, char** argv) {
  tools::handle_version_help("tytan-fuzz", argc, argv, kUsageText);
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tytan-fuzz: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--execs") {
      opt.execs = tools::parse_u64("tytan-fuzz", "--execs", next("--execs"));
    } else if (arg.rfind("--execs=", 0) == 0) {
      opt.execs = tools::parse_u64("tytan-fuzz", "--execs",
                                   arg.c_str() + std::strlen("--execs="));
    } else if (arg == "--seed") {
      opt.seed = tools::parse_u64("tytan-fuzz", "--seed", next("--seed"));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = tools::parse_u64("tytan-fuzz", "--seed",
                                  arg.c_str() + std::strlen("--seed="));
    } else if (arg == "--budget-cycles") {
      opt.budget_cycles =
          tools::parse_u64("tytan-fuzz", "--budget-cycles", next("--budget-cycles"));
    } else if (arg.rfind("--budget-cycles=", 0) == 0) {
      opt.budget_cycles = tools::parse_u64(
          "tytan-fuzz", "--budget-cycles", arg.c_str() + std::strlen("--budget-cycles="));
    } else if (arg == "--mode") {
      const std::string mode = next("--mode");
      if (mode != "fork" && mode != "reboot") {
        std::fprintf(stderr, "tytan-fuzz: --mode must be fork or reboot\n");
        return 2;
      }
      opt.fork_mode = mode == "fork";
    } else if (arg.rfind("--mode=", 0) == 0) {
      const std::string mode = arg.substr(std::strlen("--mode="));
      if (mode != "fork" && mode != "reboot") {
        std::fprintf(stderr, "tytan-fuzz: --mode must be fork or reboot\n");
        return 2;
      }
      opt.fork_mode = mode == "fork";
    } else if (arg == "--corpus-out") {
      opt.corpus_out = next("--corpus-out");
    } else if (arg.rfind("--corpus-out=", 0) == 0) {
      opt.corpus_out = arg.substr(std::strlen("--corpus-out="));
    } else if (arg == "--stats-json") {
      opt.stats_json = next("--stats-json");
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      opt.stats_json = arg.substr(std::strlen("--stats-json="));
    } else {
      return usage();
    }
  }

  // Assemble the seed corpus into TBF wire images once.
  std::vector<ByteVec> corpus;
  for (const char* source : kSeedPrograms) {
    auto object = isa::assemble(source);
    if (!object.is_ok()) {
      std::fprintf(stderr, "tytan-fuzz: internal seed program rejected: %s\n",
                   object.status().to_string().c_str());
      return 1;
    }
    corpus.push_back(tbf::write(*object));
  }

  if (!opt.corpus_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.corpus_out, ec);
    if (ec) {
      std::fprintf(stderr, "tytan-fuzz: cannot create '%s': %s\n",
                   opt.corpus_out.c_str(), ec.message().c_str());
      return 1;
    }
  }

  // Fork mode: one boot, one pristine snapshot, restore per input.
  core::Platform platform;
  snap::Snapshot pristine;
  if (opt.fork_mode) {
    auto boot = platform.boot();
    if (!boot.is_ok()) {
      std::fprintf(stderr, "tytan-fuzz: secure boot failed: %s\n",
                   boot.status().to_string().c_str());
      return 1;
    }
    auto snapshot = platform.save();
    if (!snapshot.is_ok()) {
      std::fprintf(stderr, "tytan-fuzz: snapshot failed: %s\n",
                   snapshot.status().to_string().c_str());
      return 1;
    }
    pristine = snapshot.take();
  }

  Rng rng{opt.seed ^ 0x9e37'79b9'7f4a'7c15ull};
  std::uint64_t loads_ok = 0;
  std::uint64_t loads_rejected = 0;
  std::uint64_t guest_faults = 0;
  std::uint64_t crashes = 0;
  for (std::uint64_t exec = 0; exec < opt.execs; ++exec) {
    // Mutate a seed-corpus image: a few byte stores, occasionally a
    // truncation or an extension (header/section-table shapes included).
    ByteVec input = corpus[rng.next() % corpus.size()];
    const std::uint64_t mutations = 1 + rng.next() % 8;
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.next() % 8) {
        case 0:
          if (input.size() > 8) {
            input.resize(8 + rng.next() % (input.size() - 8));
          }
          break;
        case 1:
          input.push_back(static_cast<std::uint8_t>(rng.next()));
          break;
        default:
          input[rng.next() % input.size()] = static_cast<std::uint8_t>(rng.next());
          break;
      }
    }

    bool crashed = false;
    std::string what;
    try {
      core::Platform* target = &platform;
      core::Platform rebooted;
      if (opt.fork_mode) {
        if (Status s = platform.restore(pristine); !s.is_ok()) {
          std::fprintf(stderr, "tytan-fuzz: exec %llu: restore failed: %s\n",
                       static_cast<unsigned long long>(exec), s.to_string().c_str());
          return 1;
        }
      } else {
        if (!rebooted.boot().is_ok()) {
          std::fprintf(stderr, "tytan-fuzz: reboot failed\n");
          return 1;
        }
        target = &rebooted;
      }

      auto object = tbf::read(input);
      if (object.is_ok()) {
        auto task = target->load_task(object.take(), {.name = "fuzz"});
        if (task.is_ok()) {
          ++loads_ok;
          target->run_for(opt.budget_cycles);
        } else {
          ++loads_rejected;
        }
      } else {
        ++loads_rejected;
      }
      if (target->machine().fault_count() != 0) {
        ++guest_faults;
      }
      // Invariants the trusted state must hold after ANY input.
      if (target->machine().halted() ||
          !target->mpu().port_locked()) {
        crashed = true;
        what = "trusted-state invariant broken";
      }
    } catch (const std::exception& e) {
      crashed = true;
      what = e.what();
    } catch (...) {
      crashed = true;
      what = "non-standard exception";
    }

    if (crashed) {
      ++crashes;
      std::fprintf(stderr, "tytan-fuzz: exec %llu: CRASH: %s\n",
                   static_cast<unsigned long long>(exec), what.c_str());
      if (!opt.corpus_out.empty()) {
        const std::string path = opt.corpus_out + "/crash-" +
                                 std::to_string(crashes) + ".tbf";
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(input.data()),
                  static_cast<std::streamsize>(input.size()));
        std::fprintf(stderr, "tytan-fuzz: input written to %s\n", path.c_str());
      }
    }
  }

  std::printf("tytan-fuzz: %llu execs (%s mode): %llu loaded, %llu rejected, "
              "%llu guest faults, %llu crashes\n",
              static_cast<unsigned long long>(opt.execs),
              opt.fork_mode ? "fork" : "reboot",
              static_cast<unsigned long long>(loads_ok),
              static_cast<unsigned long long>(loads_rejected),
              static_cast<unsigned long long>(guest_faults),
              static_cast<unsigned long long>(crashes));
  if (!opt.stats_json.empty()) {
    std::ofstream out(opt.stats_json);
    out << "{\"execs\":" << opt.execs << ",\"mode\":\""
        << (opt.fork_mode ? "fork" : "reboot") << "\",\"loaded\":" << loads_ok
        << ",\"rejected\":" << loads_rejected << ",\"guest_faults\":" << guest_faults
        << ",\"crashes\":" << crashes << ",\"seed\":" << opt.seed << "}\n";
  }
  return crashes == 0 ? 0 : 1;
}
