// tytan-fleet — drive a fleet of TyTAN devices through the remote-attestation
// verifier workload.
//
//   tytan-fleet [options]
//     --devices N     number of independent platforms (default 8)
//     --threads T     worker threads advancing the fleet (default 1)
//     --cycles C      simulated cycles per device (default 2,000,000)
//     --quantum Q     round-robin slice in cycles (default 100,000)
//     --task FILE     Peak-32 source to deploy (default: built-in heartbeat)
//     --json FILE     write fleet results + host timing as JSON
//     --metrics       print the aggregated fleet metrics registry
//     --telemetry-out FILE   enable fleet telemetry, write JSONL health
//                            snapshots + anomaly records (tytan-top reads it)
//     --telemetry-every N    snapshot cadence in round barriers (default 1)
//     --rogue-device I       swap device I's task for an unblessed binary
//                            (seeded attestation-failure anomaly)
//     --fault-device I       load an EA-MPU-tripping task on device I
//                            (seeded fault-spike anomaly)
//     --fault-plan SPEC      fault-injection plan (docs/FAULTS.md grammar),
//                            installed on --fault-plan-device (default 0)
//     --fault-plan-device I  device carrying the fault plan
//     --fault-seed N         RNG seed for seeded bit/drop choices
//     --attest-retries N     re-attest failed devices with exponential
//                            backoff (default 2 when --fault-plan is set,
//                            else 0)
//     --attest-backoff C     base backoff in simulated cycles (default 25000)
//
// stdout is deterministic for a given fleet config — the same devices, seeds,
// and cycles produce byte-identical reports whatever --threads is.  Host-side
// timing (wall clock, devices/sec, attestations/sec) goes to stderr and the
// JSON file only.  Exits 0 iff every device's report verified.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "fault/fault.h"

#include "fleet/verifier_workload.h"
#include "obs/export.h"
#include "tool_util.h"

using namespace tytan;

namespace {

constexpr const char kUsageText[] =
    "usage: tytan-fleet [--devices N] [--threads T] [--cycles C]\n"
    "                   [--quantum Q] [--task FILE] [--json FILE] [--metrics]\n"
    "                   [--telemetry-out FILE] [--telemetry-every N]\n"
    "                   [--spans-out FILE] [--attest-sweeps N]\n"
    "                   [--rogue-device I] [--fault-device I]\n"
    "                   [--fault-plan SPEC] [--fault-plan-device I]\n"
    "                   [--fault-seed N] [--attest-retries N]\n"
    "                   [--attest-backoff C]\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return 2;
}

void write_json(const std::string& path, const fleet::Fleet& fleet,
                const fleet::WorkloadConfig& config,
                const fleet::WorkloadResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"devices\": " << result.devices << ",\n";
  out << "  \"threads\": " << config.fleet.threads << ",\n";
  out << "  \"cycles\": " << config.cycles << ",\n";
  out << "  \"quantum\": " << config.fleet.quantum << ",\n";
  out << "  \"attested\": " << result.attested << ",\n";
  out << "  \"verified\": " << result.verified << ",\n";
  out << "  \"total_cycles\": " << result.totals.cycles << ",\n";
  out << "  \"total_instructions\": " << result.totals.instructions << ",\n";
  out << "  \"boot_seconds\": " << result.boot_seconds << ",\n";
  out << "  \"run_seconds\": " << result.run_seconds << ",\n";
  out << "  \"attest_seconds\": " << result.attest_seconds << ",\n";
  out << "  \"total_seconds\": " << result.total_seconds << ",\n";
  out << "  \"devices_per_sec\": " << result.devices_per_sec() << ",\n";
  out << "  \"attests_per_sec\": " << result.attests_per_sec() << ",\n";
  out << "  \"telemetry_snapshots\": " << fleet.telemetry().snapshots().size()
      << ",\n";
  out << "  \"telemetry_anomalies\": " << fleet.telemetry().anomalies().size()
      << ",\n";
  out << "  \"reports\": [\n";
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const fleet::FleetDevice& device = fleet.device(i);
    out << "    {\"device\": " << device.id() << ", \"outcome\": \""
        << verifier::verify_outcome_name(device.outcome().code)
        << "\", \"report\": \""
        << (device.attested() ? hex_encode(device.report().serialize()) : "")
        << "\"}" << (i + 1 < fleet.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::ofstream file(path);
  file << out.str();
}

}  // namespace

int main(int argc, char** argv) {
  tools::handle_version_help("tytan-fleet", argc, argv, kUsageText);
  fleet::WorkloadConfig config;
  config.fleet.device_count = 8;
  std::string json_path;
  std::string task_path;
  std::string telemetry_path;
  std::string spans_path;
  std::string fault_plan_spec;
  std::optional<std::uint64_t> fault_seed;
  bool attest_retries_set = false;
  bool metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tytan-fleet: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--devices") {
      config.fleet.device_count =
          tools::parse_u64("tytan-fleet", "--devices", next("--devices"));
    } else if (arg == "--threads") {
      config.fleet.threads =
          tools::parse_u64("tytan-fleet", "--threads", next("--threads"));
    } else if (arg == "--cycles") {
      config.cycles = tools::parse_u64("tytan-fleet", "--cycles", next("--cycles"));
    } else if (arg == "--quantum") {
      config.fleet.quantum =
          tools::parse_u64("tytan-fleet", "--quantum", next("--quantum"));
    } else if (arg == "--task") {
      task_path = next("--task");
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--telemetry-out") {
      telemetry_path = next("--telemetry-out");
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      telemetry_path = arg.substr(std::strlen("--telemetry-out="));
    } else if (arg == "--spans-out") {
      spans_path = next("--spans-out");
    } else if (arg.rfind("--spans-out=", 0) == 0) {
      spans_path = arg.substr(std::strlen("--spans-out="));
    } else if (arg == "--attest-sweeps") {
      config.attest_sweeps = static_cast<unsigned>(tools::parse_u32(
          "tytan-fleet", "--attest-sweeps", next("--attest-sweeps")));
    } else if (arg.rfind("--attest-sweeps=", 0) == 0) {
      config.attest_sweeps = static_cast<unsigned>(
          tools::parse_u32("tytan-fleet", "--attest-sweeps",
                           arg.c_str() + std::strlen("--attest-sweeps=")));
    } else if (arg == "--telemetry-every") {
      config.fleet.telemetry.every_rounds = tools::parse_u64(
          "tytan-fleet", "--telemetry-every", next("--telemetry-every"));
    } else if (arg.rfind("--telemetry-every=", 0) == 0) {
      config.fleet.telemetry.every_rounds =
          tools::parse_u64("tytan-fleet", "--telemetry-every",
                           arg.c_str() + std::strlen("--telemetry-every="));
    } else if (arg == "--rogue-device") {
      config.rogue_device = static_cast<int>(tools::parse_i64(
          "tytan-fleet", "--rogue-device", next("--rogue-device")));
    } else if (arg.rfind("--rogue-device=", 0) == 0) {
      config.rogue_device = static_cast<int>(
          tools::parse_i64("tytan-fleet", "--rogue-device",
                           arg.c_str() + std::strlen("--rogue-device=")));
    } else if (arg == "--fault-device") {
      config.fault_device = static_cast<int>(tools::parse_i64(
          "tytan-fleet", "--fault-device", next("--fault-device")));
    } else if (arg.rfind("--fault-device=", 0) == 0) {
      config.fault_device = static_cast<int>(
          tools::parse_i64("tytan-fleet", "--fault-device",
                           arg.c_str() + std::strlen("--fault-device=")));
    } else if (arg == "--fault-plan") {
      fault_plan_spec = next("--fault-plan");
    } else if (arg.rfind("--fault-plan=", 0) == 0) {
      fault_plan_spec = arg.substr(std::strlen("--fault-plan="));
    } else if (arg == "--fault-plan-device") {
      config.fleet.fault_plan_device = tools::parse_u64(
          "tytan-fleet", "--fault-plan-device", next("--fault-plan-device"));
    } else if (arg == "--fault-seed") {
      fault_seed = tools::parse_u64("tytan-fleet", "--fault-seed", next("--fault-seed"));
    } else if (arg == "--attest-retries") {
      config.fleet.attest_retries = static_cast<unsigned>(tools::parse_u64(
          "tytan-fleet", "--attest-retries", next("--attest-retries")));
      attest_retries_set = true;
    } else if (arg == "--attest-backoff") {
      config.fleet.attest_backoff_cycles = tools::parse_u64(
          "tytan-fleet", "--attest-backoff", next("--attest-backoff"));
    } else {
      return usage();
    }
  }
  if (config.fleet.device_count == 0) {
    std::fprintf(stderr, "tytan-fleet: --devices must be at least 1\n");
    return 2;
  }
  if (!task_path.empty()) {
    std::ifstream in(task_path);
    if (!in) {
      std::fprintf(stderr, "tytan-fleet: cannot open '%s'\n", task_path.c_str());
      return 1;
    }
    std::ostringstream source;
    source << in.rdbuf();
    config.task_source = source.str();
  }

  if (!telemetry_path.empty()) {
    config.fleet.telemetry.enabled = true;
  }
  if (!spans_path.empty()) {
    config.fleet.spans = true;
  }
  if (!fault_plan_spec.empty()) {
    auto plan = fault::FaultPlan::parse(fault_plan_spec);
    if (!plan.is_ok()) {
      std::fprintf(stderr, "tytan-fleet: %s\n", plan.status().to_string().c_str());
      return 2;
    }
    if (fault_seed.has_value()) {
      plan->seed = *fault_seed;
    }
    config.fleet.fault_plan = std::move(*plan);
    if (config.fleet.fault_plan_device >= config.fleet.device_count) {
      std::fprintf(stderr, "tytan-fleet: --fault-plan-device out of range\n");
      return 2;
    }
    if (!attest_retries_set) {
      config.fleet.attest_retries = 2;  // recovery on by default under faults
    }
  }

  fleet::Fleet fleet(config.fleet);
  const fleet::WorkloadResult result = fleet::run_verifier_workload(fleet, config);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "tytan-fleet: workload failed: %s\n",
                 result.status.to_string().c_str());
    return 1;
  }

  // Deterministic per-device results — stdout only.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const fleet::FleetDevice& device = fleet.device(i);
    std::printf("device %3u  cycles=%llu  nonce=%016llx  %-9s  report=%s\n",
                device.id(),
                static_cast<unsigned long long>(device.platform().machine().cycles()),
                static_cast<unsigned long long>(device.nonce()),
                verifier::verify_outcome_name(device.outcome().code),
                device.attested() ? hex_encode(device.report().serialize()).c_str()
                                  : "-");
  }
  std::printf("fleet: %zu devices, %zu attested, %zu verified\n", result.devices,
              result.attested, result.verified);
  if (!config.fleet.fault_plan.empty()) {
    // Simulated-state fault summary — deterministic for a given config.
    fleet::FleetDevice& faulted = fleet.device(config.fleet.fault_plan_device);
    const fault::FaultEngine* engine = faulted.platform().fault_engine();
    std::printf("faults: device %u injected=%llu recovered=%llu quarantines=%llu "
                "attest-retries=%llu watchdog-restarts=%llu\n",
                faulted.id(),
                static_cast<unsigned long long>(
                    engine != nullptr ? engine->injected_total() : 0),
                static_cast<unsigned long long>(
                    engine != nullptr ? engine->recovered_total() : 0),
                static_cast<unsigned long long>(faulted.quarantines()),
                static_cast<unsigned long long>(faulted.attest_recoveries()),
                static_cast<unsigned long long>(
                    faulted.platform().kernel().watchdog_restarts()));
  }
  if (config.fleet.telemetry.enabled) {
    // Simulated-state summary only — deterministic for a given config.
    std::printf("telemetry: %zu snapshots, %zu anomalies\n",
                fleet.telemetry().snapshots().size(),
                fleet.telemetry().anomalies().size());
  }
  std::string spans_jsonl;
  if (config.fleet.spans) {
    spans_jsonl = fleet.spans_jsonl();
    // Span count and round p99 are simulated-state — deterministic.
    std::size_t span_count = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      span_count += fleet.device(i).platform().machine().obs().spans().size();
    }
    const obs::Histogram* rounds =
        fleet.metrics().find_histogram("span.attest-round.cycles");
    std::printf("spans: %zu spans, round p50=%llu p99=%llu cycles\n", span_count,
                static_cast<unsigned long long>(rounds != nullptr ? rounds->p50() : 0),
                static_cast<unsigned long long>(rounds != nullptr ? rounds->p99() : 0));
  }
  if (metrics) {
    std::printf("\n--- fleet metrics ---\n");
    fleet.metrics().visit_counters(
        [](const std::string& name, const obs::Counter& counter) {
          std::printf("  %-32s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(counter.value()));
        });
  }

  // Host-side timing — stderr, so stdout stays thread-count-invariant.
  std::fprintf(stderr,
               "timing: boot=%.3fs run=%.3fs attest=%.3fs total=%.3fs "
               "(%.1f devices/sec, %.1f attests/sec, %zu threads)\n",
               result.boot_seconds, result.run_seconds, result.attest_seconds,
               result.total_seconds, result.devices_per_sec(),
               result.attests_per_sec(), fleet.config().threads);

  if (!json_path.empty()) {
    write_json(json_path, fleet, config, result);
  }
  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    if (!out) {
      std::fprintf(stderr, "tytan-fleet: cannot write '%s'\n",
                   telemetry_path.c_str());
      return 1;
    }
    out << fleet.telemetry().to_jsonl();
  }
  if (!spans_path.empty()) {
    std::ofstream out(spans_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tytan-fleet: cannot write '%s'\n", spans_path.c_str());
      return 1;
    }
    out << spans_jsonl;
  }
  return result.all_verified() ? 0 : 1;
}
