// tytan-run — boot a TyTAN platform, load one or more TBF binaries, and run.
//
//   tytan-run [options] task1.tbf [task2.tbf ...]
//     --cycles N      simulate N cycles (default 10,000,000)
//     --priority P    priority for the loaded tasks (default 3)
//     --pedal V       accelerator-pedal sensor value
//     --radar V       radar sensor value
//     --attest        print an attestation report per task after loading
//     --trace N       dump the last N executed instructions at exit
//     --trace-out F   record platform events; write a Chrome/Perfetto trace to F
//     --metrics       print the metrics summary and per-task cycle accounting
//     --profile N     sample the guest PC every N cycles (0 = off); samples
//                     ride along in --trace-out for `tytan-trace flame`
//     --folded-out F  write collapsed stacks ("task;symbol count") to F for
//                     flamegraph.pl / speedscope
//     --fault SPEC    fault-injection plan (docs/FAULTS.md grammar); a fault
//                     summary prints at exit
//     --fault-seed N  RNG seed for seeded bit/drop choices
//     --snapshot-out F  write a versioned machine snapshot (docs/SNAPSHOT.md)
//                     to F; `tytan-trace replay` resumes from it
//     --snapshot-at N  take the snapshot after running N of the --cycles
//                     budget (default 0: right after the tasks are loaded)
//     --heat-out F    record the execution observatory (heat-schema 1 JSONL:
//                     block heat, dispatch histogram + host-ns, MPU rule
//                     splits, indirect edges) and write it to F; inspect with
//                     `tytan-objdump --heat F` or `tytan-top --heat F`
//     --heat-folded F write heat blocks as collapsed stacks for flamegraph.pl
//     --dispatch M    instruction dispatch: "cached" (decoded basic-block
//                     cache, the default) or "interpreter" (reference path);
//                     simulated state is bit-identical either way — CI diffs
//                     the two over the examples corpus
//
// Serial output is echoed to stdout; per-task statistics print at exit.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.h"
#include "fault/fault.h"
#include "isa/isa.h"
#include "obs/export.h"
#include "obs/heat.h"
#include "tbf/tbf.h"
#include "tool_util.h"

using namespace tytan;

namespace {

constexpr const char kUsageText[] =
    "usage: tytan-run [--cycles N] [--priority P] [--pedal V] [--radar V]\n"
    "                 [--attest] [--trace N] [--trace-out FILE] [--metrics]\n"
    "                 [--profile N] [--folded-out FILE] [--spans-out FILE]\n"
    "                 [--fault SPEC] [--fault-seed N]\n"
    "                 [--snapshot-out FILE] [--snapshot-at N]\n"
    "                 [--heat-out FILE] [--heat-folded FILE]\n"
    "                 [--dispatch interpreter|cached]\n"
    "                 <task.tbf> [more.tbf ...]\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tools::handle_version_help("tytan-run", argc, argv, kUsageText);
  std::uint64_t cycles = 10'000'000;
  unsigned priority = 3;
  std::uint32_t pedal = 0;
  std::uint32_t radar = 0;
  bool attest = false;
  std::size_t trace = 0;
  std::string trace_out;
  bool metrics = false;
  std::uint64_t profile = 0;
  std::string folded_out;
  std::string spans_out;
  std::string fault_spec;
  std::optional<std::uint64_t> fault_seed;
  std::string snapshot_out;
  std::uint64_t snapshot_at = 0;
  std::string heat_out;
  std::string heat_folded;
  sim::DispatchMode dispatch = sim::DispatchMode::kCached;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tytan-run: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cycles") {
      cycles = tools::parse_u64("tytan-run", "--cycles", next("--cycles"));
    } else if (arg == "--priority") {
      priority = static_cast<unsigned>(
          tools::parse_u32("tytan-run", "--priority", next("--priority")));
    } else if (arg == "--pedal") {
      pedal = tools::parse_u32("tytan-run", "--pedal", next("--pedal"));
    } else if (arg == "--radar") {
      radar = tools::parse_u32("tytan-run", "--radar", next("--radar"));
    } else if (arg == "--attest") {
      attest = true;
    } else if (arg == "--trace") {
      trace = tools::parse_u64("tytan-run", "--trace", next("--trace"));
    } else if (arg == "--trace-out") {
      trace_out = next("--trace-out");
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--profile") {
      profile = tools::parse_u64("tytan-run", "--profile", next("--profile"));
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile = tools::parse_u64("tytan-run", "--profile",
                                 arg.c_str() + std::strlen("--profile="));
    } else if (arg == "--fault") {
      fault_spec = next("--fault");
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = arg.substr(std::strlen("--fault="));
    } else if (arg == "--fault-seed") {
      fault_seed = tools::parse_u64("tytan-run", "--fault-seed", next("--fault-seed"));
    } else if (arg == "--folded-out") {
      folded_out = next("--folded-out");
    } else if (arg.rfind("--folded-out=", 0) == 0) {
      folded_out = arg.substr(std::strlen("--folded-out="));
    } else if (arg == "--spans-out") {
      spans_out = next("--spans-out");
    } else if (arg.rfind("--spans-out=", 0) == 0) {
      spans_out = arg.substr(std::strlen("--spans-out="));
    } else if (arg == "--snapshot-out") {
      snapshot_out = next("--snapshot-out");
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      snapshot_out = arg.substr(std::strlen("--snapshot-out="));
    } else if (arg == "--snapshot-at") {
      snapshot_at = tools::parse_u64("tytan-run", "--snapshot-at", next("--snapshot-at"));
    } else if (arg.rfind("--snapshot-at=", 0) == 0) {
      snapshot_at = tools::parse_u64("tytan-run", "--snapshot-at",
                                     arg.c_str() + std::strlen("--snapshot-at="));
    } else if (arg == "--heat-out") {
      heat_out = next("--heat-out");
    } else if (arg.rfind("--heat-out=", 0) == 0) {
      heat_out = arg.substr(std::strlen("--heat-out="));
    } else if (arg == "--heat-folded") {
      heat_folded = next("--heat-folded");
    } else if (arg.rfind("--heat-folded=", 0) == 0) {
      heat_folded = arg.substr(std::strlen("--heat-folded="));
    } else if (arg == "--dispatch" || arg.rfind("--dispatch=", 0) == 0) {
      const std::string mode = arg[10] == '='
                                   ? arg.substr(std::strlen("--dispatch="))
                                   : std::string(next("--dispatch"));
      if (mode == "interpreter") {
        dispatch = sim::DispatchMode::kInterpreter;
      } else if (mode == "cached") {
        dispatch = sim::DispatchMode::kCached;
      } else {
        std::fprintf(stderr, "tytan-run: --dispatch must be interpreter|cached\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    return usage();
  }

  core::Platform::Config config;
  if (!fault_spec.empty()) {
    auto plan = fault::FaultPlan::parse(fault_spec);
    if (!plan.is_ok()) {
      std::fprintf(stderr, "tytan-run: --fault: %s\n",
                   plan.status().to_string().c_str());
      return 2;
    }
    config.fault_plan = plan.take();
    if (fault_seed.has_value()) {
      config.fault_plan.seed = *fault_seed;
    }
  }
  config.dispatch = dispatch;
  core::Platform platform(config);
  if (trace != 0) {
    platform.machine().enable_trace(trace);
  }
  if (!folded_out.empty() && profile == 0) {
    profile = obs::SampleProfiler::kDefaultInterval;
  }
  if (profile != 0) {
    // Enable before boot so firmware entry points register as symbols.
    platform.machine().enable_profiler(profile);
  }
  if (!trace_out.empty() || metrics || !spans_out.empty()) {
    // Enable before boot so loader / RTM / EA-MPU events are captured too.
    platform.machine().obs().enable();
  }
  if (!spans_out.empty()) {
    // Before boot/load so rtm-measure spans cover the first measurements.
    platform.machine().obs().spans().enable();
  }
  if (!heat_out.empty() || !heat_folded.empty()) {
    // Before boot so secure-boot and loader instructions are attributed too.
    platform.machine().enable_heat();
  }
  auto boot = platform.boot();
  if (!boot.is_ok()) {
    std::fprintf(stderr, "tytan-run: secure boot failed: %s\n",
                 boot.status().to_string().c_str());
    return 1;
  }
  platform.pedal().set_value(pedal);
  platform.radar().set_value(radar);

  std::vector<rtos::TaskHandle> tasks;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "tytan-run: cannot open '%s'\n", path.c_str());
      return 1;
    }
    const ByteVec raw((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    auto object = tbf::read(raw);
    if (!object.is_ok()) {
      std::fprintf(stderr, "tytan-run: %s: %s\n", path.c_str(),
                   object.status().to_string().c_str());
      return 1;
    }
    auto task = platform.load_task(object.take(), {.name = path, .priority = priority});
    if (!task.is_ok()) {
      std::fprintf(stderr, "tytan-run: %s: load failed: %s\n", path.c_str(),
                   task.status().to_string().c_str());
      return 1;
    }
    const rtos::Tcb* tcb = platform.scheduler().get(*task);
    std::printf("loaded %-20s @ 0x%05x  id_t=%s%s\n", path.c_str(), tcb->region_base,
                hex_encode(tcb->identity).c_str(), tcb->secure ? "  [secure]" : "");
    if (attest) {
      // One round span per attested task (trace id = task handle + 1), so a
      // single-device run decomposes the same way a fleet round does.
      obs::SpanRecorder& spans = platform.machine().obs().spans();
      const obs::SpanRecorder::SpanId round = spans.begin_trace(
          static_cast<std::uint64_t>(*task) + 1, obs::SpanPhase::kAttestRound, *task);
      auto phase = spans.begin(obs::SpanPhase::kNonceGen, *task);
      const std::uint64_t nonce = platform.rng().next64();
      spans.end(phase, obs::SpanOutcome::kOk);
      auto report = platform.remote_attest().attest_task(*task, nonce);
      spans.end(round, report.is_ok() ? obs::SpanOutcome::kOk
                                      : obs::SpanOutcome::kFailed);
      if (report.is_ok()) {
        std::printf("  attestation report: %s\n", hex_encode(report->serialize()).c_str());
      }
    }
    tasks.push_back(*task);
  }

  if (!snapshot_out.empty()) {
    const std::uint64_t pre = std::min(snapshot_at, cycles);
    platform.run_for(pre);
    auto snapshot = platform.save();
    if (!snapshot.is_ok()) {
      std::fprintf(stderr, "tytan-run: snapshot failed: %s\n",
                   snapshot.status().to_string().c_str());
      return 1;
    }
    if (Status s = snapshot->write_file(snapshot_out); !s.is_ok()) {
      std::fprintf(stderr, "tytan-run: %s: %s\n", snapshot_out.c_str(),
                   s.to_string().c_str());
      return 1;
    }
    std::printf("snapshot written to %s at cycle %llu\n", snapshot_out.c_str(),
                static_cast<unsigned long long>(platform.machine().cycles()));
    platform.run_for(cycles - pre);
  } else {
    platform.run_for(cycles);
  }

  if (!platform.serial().output().empty()) {
    std::printf("\n--- serial ---\n%s\n--------------\n", platform.serial().output().c_str());
  }
  std::printf("\nsimulated %.3f ms (%llu cycles, %llu instructions, %llu interrupts, "
              "%llu syscalls, %llu fault kills)\n",
              static_cast<double>(platform.machine().cycles()) * 1000.0 / sim::kClockHz,
              static_cast<unsigned long long>(platform.machine().cycles()),
              static_cast<unsigned long long>(platform.machine().instructions_executed()),
              static_cast<unsigned long long>(platform.machine().interrupts_dispatched()),
              static_cast<unsigned long long>(platform.kernel().syscall_count()),
              static_cast<unsigned long long>(platform.kernel().fault_kills()));
  for (const rtos::TaskHandle handle : tasks) {
    const rtos::Tcb* tcb = platform.scheduler().get(handle);
    if (tcb == nullptr) {
      std::printf("  task %d: exited\n", handle);
      continue;
    }
    std::printf("  %-20s state=%-9s activations=%llu cpu=%llu cycles\n", tcb->name.c_str(),
                rtos::task_state_name(tcb->state),
                static_cast<unsigned long long>(tcb->activations),
                static_cast<unsigned long long>(tcb->cpu_cycles));
  }
  if (const fault::FaultEngine* engine = platform.fault_engine(); engine != nullptr) {
    std::printf("\nfaults: injected=%llu recovered=%llu watchdog-restarts=%llu\n",
                static_cast<unsigned long long>(engine->injected_total()),
                static_cast<unsigned long long>(engine->recovered_total()),
                static_cast<unsigned long long>(platform.kernel().watchdog_restarts()));
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(fault::FaultClass::kNumClasses); ++c) {
      const auto cls = static_cast<fault::FaultClass>(c);
      if (engine->injected(cls) == 0 && engine->recovered(cls) == 0) {
        continue;
      }
      const std::string name(fault::fault_class_name(cls));
      std::printf("  %-16s injected=%llu recovered=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(engine->injected(cls)),
                  static_cast<unsigned long long>(engine->recovered(cls)));
    }
  }
  if (trace != 0 && platform.machine().tracer() != nullptr) {
    std::printf("\n--- last %zu instructions ---\n%s", trace,
                platform.machine().tracer()->format().c_str());
  }
  obs::Hub& hub = platform.machine().obs();
  hub.flush();
  if (metrics) {
    std::printf("\n%s", obs::export_metrics_summary(hub).c_str());
  }
  const obs::SampleProfiler* profiler = platform.machine().profiler();
  if (profiler != nullptr) {
    std::printf("\nprofiler: %llu samples taken (interval %llu cycles, %llu evicted)\n",
                static_cast<unsigned long long>(profiler->taken()),
                static_cast<unsigned long long>(profiler->interval()),
                static_cast<unsigned long long>(profiler->dropped()));
  }
  if (!trace_out.empty()) {
    if (hub.bus().dropped() != 0) {
      std::fprintf(stderr,
                   "tytan-run: warning: %llu events evicted from the ring before "
                   "export — the trace is incomplete (raise the bus capacity)\n",
                   static_cast<unsigned long long>(hub.bus().dropped()));
    }
    const obs::SpanRecorder* spans =
        hub.spans().enabled() ? &hub.spans() : nullptr;
    if (Status s = obs::write_chrome_trace(trace_out, hub.bus(), profiler, spans);
        !s.is_ok()) {
      std::fprintf(stderr, "tytan-run: cannot write trace '%s': %s\n", trace_out.c_str(),
                   s.to_string().c_str());
      return 1;
    }
    std::printf("\nwrote %zu events to %s (load in ui.perfetto.dev or chrome://tracing)\n",
                hub.bus().snapshot().size(), trace_out.c_str());
  }
  if (!spans_out.empty()) {
    std::ofstream out(spans_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tytan-run: cannot write '%s'\n", spans_out.c_str());
      return 1;
    }
    out << hub.spans().to_jsonl();
    std::printf("wrote %zu spans to %s (inspect with tytan-trace spans)\n",
                hub.spans().size(), spans_out.c_str());
  }
  if (!folded_out.empty() && profiler != nullptr) {
    std::ofstream out(folded_out);
    if (!out) {
      std::fprintf(stderr, "tytan-run: cannot write '%s'\n", folded_out.c_str());
      return 1;
    }
    out << profiler->folded();
    std::printf("wrote collapsed stacks to %s (flamegraph.pl %s > flame.svg)\n",
                folded_out.c_str(), folded_out.c_str());
  }
  if (obs::HeatRecorder* heat = platform.machine().heat(); heat != nullptr) {
    heat->flush();
    const obs::HeatProfile& profile_data = heat->profile();
    const obs::OpcodeNamer namer = [](std::uint8_t op) {
      return std::string(isa::mnemonic(static_cast<isa::Opcode>(op)));
    };
    if (!heat_out.empty()) {
      std::ofstream out(heat_out, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "tytan-run: cannot write '%s'\n", heat_out.c_str());
        return 1;
      }
      out << profile_data.to_jsonl(/*include_host_ns=*/true, namer);
      std::printf("wrote heat profile to %s (%llu instructions over %zu blocks; "
                  "inspect with tytan-objdump --heat or tytan-top --heat)\n",
                  heat_out.c_str(),
                  static_cast<unsigned long long>(profile_data.total_instructions()),
                  profile_data.blocks.size());
    }
    if (!heat_folded.empty()) {
      std::ofstream out(heat_folded);
      if (!out) {
        std::fprintf(stderr, "tytan-run: cannot write '%s'\n", heat_folded.c_str());
        return 1;
      }
      out << profile_data.folded();
      std::printf("wrote heat collapsed stacks to %s (flamegraph.pl %s > heat.svg)\n",
                  heat_folded.c_str(), heat_folded.c_str());
    }
  }
  return 0;
}
