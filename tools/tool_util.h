// Shared helpers for the tytan-* CLI tools.
//
// Checked numeric parsing: bare strtoull() silently maps garbage ("banana")
// to 0 and saturates out-of-range input, which turns a typo'd flag into a
// quietly wrong fleet configuration.  These helpers validate the whole token
// (endptr + errno + emptiness) and exit with a usage error instead.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <cstring>
#include <limits>

namespace tytan::tools {

/// One shared suite version for every tytan-* tool, carrying the schema
/// versions of the serialized formats so scripts can gate on compatibility.
inline constexpr const char* kSuiteVersion =
    "tytan-tools 9 (heat-schema 1, snapshot-schema 1, span-schema 1, "
    "telemetry-schema 2, trace-schema 1)";

/// Handle `--version` / `--help` uniformly: scan argv before any other
/// parsing; print one line (version) or the usage text (help) on stdout and
/// exit 0.  Every tool calls this first, so the flags win over positional
/// parsing and never depend on argument order.
inline void handle_version_help(const char* tool, int argc, char** argv,
                                const char* usage_text) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s %s\n", tool, kSuiteVersion);
      std::exit(0);
    }
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::fputs(usage_text, stdout);
      std::exit(0);
    }
  }
}

/// Parse `text` as an unsigned 64-bit decimal/hex number; on any garbage,
/// overflow, or negative sign, print "<tool>: <flag> ..." and exit 2.
inline std::uint64_t parse_u64(const char* tool, const char* flag, const char* text) {
  if (text == nullptr || *text == '\0' || *text == '-') {
    std::fprintf(stderr, "%s: %s needs a non-negative number, got '%s'\n", tool,
                 flag, text == nullptr ? "" : text);
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (errno == ERANGE || end == text || *end != '\0') {
    std::fprintf(stderr, "%s: %s needs a number, got '%s'\n", tool, flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

inline std::uint32_t parse_u32(const char* tool, const char* flag, const char* text) {
  const std::uint64_t value = parse_u64(tool, flag, text);
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    std::fprintf(stderr, "%s: %s value '%s' out of 32-bit range\n", tool, flag, text);
    std::exit(2);
  }
  return static_cast<std::uint32_t>(value);
}

/// Fetch the value of a `--flag VALUE` option from argv, advancing `*i`;
/// prints a usage error and exits 2 when the value is missing.
inline const char* required_value(const char* tool, const char* flag, int argc,
                                  char** argv, int* i) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s needs a value\n", tool, flag);
    std::exit(2);
  }
  return argv[++*i];
}

/// Reject an option no branch recognized.  Exits 2 (usage error).
[[noreturn]] inline void unknown_flag(const char* tool, const char* arg) {
  std::fprintf(stderr, "%s: unknown option '%s'\n", tool, arg);
  std::exit(2);
}

/// Signed variant for flags where -1 means "disabled" (device indices).
inline std::int64_t parse_i64(const char* tool, const char* flag, const char* text) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "%s: %s needs a number\n", tool, flag);
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 0);
  if (errno == ERANGE || end == text || *end != '\0') {
    std::fprintf(stderr, "%s: %s needs a number, got '%s'\n", tool, flag, text);
    std::exit(2);
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace tytan::tools
