// tytan-objdump — inspect a TBF binary: header, symbols, relocations, and
// disassembly (with relocation sites and dataflow-resolved indirect targets
// annotated).
//
//   tytan-objdump task.tbf
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "isa/disasm.h"
#include "tbf/tbf.h"
#include "tool_util.h"

namespace {
constexpr const char kUsageText[] = "usage: tytan-objdump <file.tbf>\n";
}  // namespace

int main(int argc, char** argv) {
  tytan::tools::handle_version_help("tytan-objdump", argc, argv, kUsageText);
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-' && argv[i][1] != '\0') {
      tytan::tools::unknown_flag("tytan-objdump", argv[i]);
    }
    if (path != nullptr) {
      std::fputs(kUsageText, stderr);
      return 2;
    }
    path = argv[i];
  }
  if (path == nullptr) {
    std::fputs(kUsageText, stderr);
    return 2;
  }
  argv[1] = const_cast<char*>(path);
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "tytan-objdump: cannot open '%s'\n", argv[1]);
    return 1;
  }
  const tytan::ByteVec raw((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  auto object = tytan::tbf::read(raw);
  if (!object.is_ok()) {
    std::fprintf(stderr, "tytan-objdump: %s\n", object.status().to_string().c_str());
    return 1;
  }

  std::printf("%s:\theader ok, %zu-byte image%s\n", argv[1], object->image.size(),
              object->secure() ? " (secure task)" : "");
  std::printf("  entry 0x%04x   msg-handler 0x%04x   mailbox 0x%04x\n", object->entry,
              object->msg_handler, object->mailbox);
  std::printf("  bss %u   stack %u   total load footprint %u bytes\n", object->bss_size,
              object->stack_size, object->memory_size());

  if (!object->relocs.empty()) {
    std::printf("\nrelocations (%zu):\n", object->relocs.size());
    for (const auto& reloc : object->relocs) {
      const char* kind = reloc.kind == tytan::isa::RelocKind::kAbs32  ? "ABS32"
                         : reloc.kind == tytan::isa::RelocKind::kLo16 ? "LO16"
                                                                      : "HI16";
      std::printf("  %04x  %-5s  addend=0x%x\n", reloc.offset, kind, reloc.addend);
    }
  }

  // Invert the symbol table for label annotation.
  std::map<std::uint32_t, std::vector<std::string>> labels;
  for (const auto& [name, value] : object->symbols) {
    labels[value].push_back(name);
  }
  std::map<std::uint32_t, const tytan::isa::Relocation*> reloc_at;
  for (const auto& reloc : object->relocs) {
    reloc_at[reloc.offset] = &reloc;
  }

  // Dataflow-resolved indirect transfers, so jmpr/callr lines show where
  // they can actually go.  Findings are the lint tool's job, not ours.
  const tytan::analysis::ResolvedTargets resolved =
      tytan::analysis::analyze_full(*object).dataflow.resolved;

  std::printf("\ndisassembly:\n");
  // Data begins at the first symbol at/after which no instruction decodes —
  // heuristic: decode everything, print raw words for undecodable ones.
  for (std::uint32_t offset = 0; offset + 4 <= object->image.size(); offset += 4) {
    if (const auto it = labels.find(offset); it != labels.end()) {
      for (const std::string& name : it->second) {
        std::printf("%s:\n", name.c_str());
      }
    }
    const std::uint32_t word = tytan::load_le32(object->image.data() + offset);
    std::printf("  %04x:  %08x  %s", offset, word,
                tytan::isa::disassemble_word(word, offset).c_str());
    if (const auto it = reloc_at.find(offset); it != reloc_at.end()) {
      std::printf("   ; reloc");
    }
    if (const auto it = resolved.find(offset); it != resolved.end()) {
      std::printf("   ; targets:");
      for (const std::uint32_t target : it->second) {
        std::printf(" 0x%x", target);
      }
    }
    std::printf("\n");
  }
  return 0;
}
