// tytan-objdump — inspect a TBF binary: header, symbols, relocations, and
// disassembly (with relocation sites and dataflow-resolved indirect targets
// annotated).
//
//   tytan-objdump [--json] [--heat PROFILE] task.tbf
//     --json          emit the same information as one JSON object on stdout
//     --heat PROFILE  overlay an execution-heat profile (tytan-run --heat-out):
//                     block-leader lines gain entry/instruction counts and an
//                     avg host-ns per mnemonic; a hot-block table covering
//                     >= 90% of executed instructions prints after the listing
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "isa/disasm.h"
#include "isa/isa.h"
#include "obs/heat.h"
#include "tbf/tbf.h"
#include "tool_util.h"

using namespace tytan;

namespace {

constexpr const char kUsageText[] =
    "usage: tytan-objdump [--json] [--heat PROFILE] <file.tbf>\n";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Pick the heat region this TBF corresponds to: exact name match on the
/// path argument (tytan-run registers regions under the load path), else the
/// only region, else the first.
const obs::HeatProfile::Region* pick_region(const obs::HeatProfile& profile,
                                            const std::string& path) {
  for (const auto& region : profile.regions) {
    if (region.name == path) {
      return &region;
    }
  }
  if (!profile.regions.empty()) {
    if (profile.regions.size() > 1) {
      std::fprintf(stderr,
                   "tytan-objdump: no heat region named '%s'; using '%s' "
                   "(profile has %zu regions)\n",
                   path.c_str(), profile.regions.front().name.c_str(),
                   profile.regions.size());
    }
    return &profile.regions.front();
  }
  return nullptr;
}

struct HotBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  std::uint64_t entries = 0;
  std::uint64_t instructions = 0;
};

/// Blocks sorted by executed instructions, descending; ties by address so the
/// table is deterministic.
std::vector<HotBlock> hot_blocks(const obs::HeatProfile& profile) {
  std::vector<HotBlock> out;
  out.reserve(profile.blocks.size());
  for (const auto& [start, block] : profile.blocks) {
    out.push_back({start, block.end, block.entries, block.instructions});
  }
  std::sort(out.begin(), out.end(), [](const HotBlock& a, const HotBlock& b) {
    return a.instructions != b.instructions ? a.instructions > b.instructions
                                            : a.start < b.start;
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tools::handle_version_help("tytan-objdump", argc, argv, kUsageText);
  const char* path = nullptr;
  const char* heat_path = nullptr;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--heat") {
      heat_path = tools::required_value("tytan-objdump", "--heat", argc, argv, &i);
    } else if (arg.rfind("--heat=", 0) == 0) {
      heat_path = argv[i] + std::strlen("--heat=");
    } else if (arg.size() > 1 && arg[0] == '-') {
      tools::unknown_flag("tytan-objdump", argv[i]);
    } else if (path != nullptr) {
      std::fputs(kUsageText, stderr);
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fputs(kUsageText, stderr);
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "tytan-objdump: cannot open '%s'\n", path);
    return 1;
  }
  const ByteVec raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto object = tbf::read(raw);
  if (!object.is_ok()) {
    std::fprintf(stderr, "tytan-objdump: %s\n", object.status().to_string().c_str());
    return 1;
  }

  obs::HeatLog heat;
  const obs::HeatProfile::Region* region = nullptr;
  if (heat_path != nullptr) {
    auto loaded = obs::read_heat_file(heat_path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "tytan-objdump: %s: %s\n", heat_path,
                   loaded.status().to_string().c_str());
      return 1;
    }
    heat = loaded.take();
    region = pick_region(heat.profile, path);
    if (region == nullptr) {
      std::fprintf(stderr, "tytan-objdump: heat profile '%s' has no regions\n",
                   heat_path);
      return 1;
    }
  }

  // Invert the symbol table for label annotation.
  std::map<std::uint32_t, std::vector<std::string>> labels;
  for (const auto& [name, value] : object->symbols) {
    labels[value].push_back(name);
  }
  std::map<std::uint32_t, const isa::Relocation*> reloc_at;
  for (const auto& reloc : object->relocs) {
    reloc_at[reloc.offset] = &reloc;
  }

  // Dataflow-resolved indirect transfers, so jmpr/callr lines show where
  // they can actually go.  Findings are the lint tool's job, not ours.
  const analysis::ResolvedTargets resolved =
      analysis::analyze_full(*object).dataflow.resolved;

  if (json) {
    std::printf("{\"file\":\"%s\",\"image_bytes\":%zu,\"secure\":%s,"
                "\"entry\":%u,\"msg_handler\":%u,\"mailbox\":%u,"
                "\"bss\":%u,\"stack\":%u,\"footprint\":%u",
                json_escape(path).c_str(), object->image.size(),
                object->secure() ? "true" : "false", object->entry,
                object->msg_handler, object->mailbox, object->bss_size,
                object->stack_size, object->memory_size());
    std::printf(",\"symbols\":{");
    bool first = true;
    for (const auto& [name, value] : object->symbols) {
      std::printf("%s\"%s\":%u", first ? "" : ",", json_escape(name).c_str(), value);
      first = false;
    }
    std::printf("},\"relocations\":[");
    first = true;
    for (const auto& reloc : object->relocs) {
      const char* kind = reloc.kind == isa::RelocKind::kAbs32  ? "ABS32"
                         : reloc.kind == isa::RelocKind::kLo16 ? "LO16"
                                                               : "HI16";
      std::printf("%s{\"offset\":%u,\"kind\":\"%s\",\"addend\":%u}",
                  first ? "" : ",", reloc.offset, kind, reloc.addend);
      first = false;
    }
    std::printf("],\"instructions\":[");
    first = true;
    for (std::uint32_t offset = 0; offset + 4 <= object->image.size(); offset += 4) {
      const std::uint32_t word = load_le32(object->image.data() + offset);
      std::printf("%s{\"offset\":%u,\"word\":%u,\"text\":\"%s\"", first ? "" : ",",
                  offset, word,
                  json_escape(isa::disassemble_word(word, offset)).c_str());
      if (const auto it = resolved.find(offset); it != resolved.end()) {
        std::printf(",\"targets\":[");
        for (std::size_t t = 0; t < it->second.size(); ++t) {
          std::printf("%s%u", t == 0 ? "" : ",", it->second[t]);
        }
        std::printf("]");
      }
      std::printf("}");
      first = false;
    }
    std::printf("]");
    if (region != nullptr) {
      std::printf(",\"heat\":{\"region\":\"%s\",\"base\":%u,"
                  "\"total_instructions\":%llu,\"blocks\":[",
                  json_escape(region->name).c_str(), region->base,
                  static_cast<unsigned long long>(heat.profile.total_instructions()));
      first = true;
      for (const auto& [start, block] : heat.profile.blocks) {
        if (start < region->base || start - region->base >= region->size) {
          continue;
        }
        std::printf("%s{\"start\":%u,\"end\":%u,\"entries\":%llu,"
                    "\"instructions\":%llu}",
                    first ? "" : ",", start - region->base, block.end - region->base,
                    static_cast<unsigned long long>(block.entries),
                    static_cast<unsigned long long>(block.instructions));
        first = false;
      }
      std::printf("]}");
    }
    std::printf("}\n");
    return 0;
  }

  std::printf("%s:\theader ok, %zu-byte image%s\n", path, object->image.size(),
              object->secure() ? " (secure task)" : "");
  std::printf("  entry 0x%04x   msg-handler 0x%04x   mailbox 0x%04x\n", object->entry,
              object->msg_handler, object->mailbox);
  std::printf("  bss %u   stack %u   total load footprint %u bytes\n", object->bss_size,
              object->stack_size, object->memory_size());

  if (!object->relocs.empty()) {
    std::printf("\nrelocations (%zu):\n", object->relocs.size());
    for (const auto& reloc : object->relocs) {
      const char* kind = reloc.kind == isa::RelocKind::kAbs32  ? "ABS32"
                         : reloc.kind == isa::RelocKind::kLo16 ? "LO16"
                                                               : "HI16";
      std::printf("  %04x  %-5s  addend=0x%x\n", reloc.offset, kind, reloc.addend);
    }
  }

  std::printf("\ndisassembly:\n");
  // Data begins at the first symbol at/after which no instruction decodes —
  // heuristic: decode everything, print raw words for undecodable ones.
  for (std::uint32_t offset = 0; offset + 4 <= object->image.size(); offset += 4) {
    if (const auto it = labels.find(offset); it != labels.end()) {
      for (const std::string& name : it->second) {
        std::printf("%s:\n", name.c_str());
      }
    }
    const std::uint32_t word = load_le32(object->image.data() + offset);
    std::printf("  %04x:  %08x  %s", offset, word,
                isa::disassemble_word(word, offset).c_str());
    if (const auto it = reloc_at.find(offset); it != reloc_at.end()) {
      std::printf("   ; reloc");
    }
    if (const auto it = resolved.find(offset); it != resolved.end()) {
      std::printf("   ; targets:");
      for (const std::uint32_t target : it->second) {
        std::printf(" 0x%x", target);
      }
    }
    if (region != nullptr) {
      const std::uint32_t pc = region->base + offset;
      if (const auto it = heat.profile.blocks.find(pc); it != heat.profile.blocks.end()) {
        std::printf("   ; heat: %llux, %llu insns",
                    static_cast<unsigned long long>(it->second.entries),
                    static_cast<unsigned long long>(it->second.instructions));
      }
      if (const auto decoded = isa::decode(word); decoded.has_value()) {
        const auto& stat =
            heat.profile.opcodes[static_cast<std::uint8_t>(decoded->opcode)];
        if (stat.ns_samples != 0) {
          std::printf("   ; ~%llu ns/insn host",
                      static_cast<unsigned long long>(stat.ns_total / stat.ns_samples));
        }
      }
    }
    std::printf("\n");
  }

  if (region != nullptr) {
    // Hot-block table: descending by executed instructions, cumulative share
    // until the blocks shown cover >= 90% of everything executed.
    const std::uint64_t total = heat.profile.total_instructions();
    std::printf("\nhot blocks (%s, %llu instructions total):\n",
                region->name.c_str(), static_cast<unsigned long long>(total));
    std::uint64_t cumulative = 0;
    for (const HotBlock& block : hot_blocks(heat.profile)) {
      if (block.instructions == 0) {
        break;
      }
      cumulative += block.instructions;
      const double share = total == 0 ? 0.0 : 100.0 * block.instructions / total;
      const double cum_share = total == 0 ? 0.0 : 100.0 * cumulative / total;
      const bool in_region =
          block.start >= region->base && block.start - region->base < region->size;
      std::printf("  %08x-%08x  %10llu insns  %10llu entries  %5.1f%%  cum %5.1f%%%s\n",
                  block.start, block.end,
                  static_cast<unsigned long long>(block.instructions),
                  static_cast<unsigned long long>(block.entries), share, cum_share,
                  in_region ? "" : "  [outside region]");
      if (cumulative * 10 >= total * 9) {
        break;  // >= 90% of executed instructions covered
      }
    }
  }
  return 0;
}
