// tytan-as — the TyTAN tool chain assembler.
//
//   tytan-as input.s -o task.tbf [--dump-symbols] [--no-lint] [--strict-lint]
//
// Assembles Peak-32 source into a relocatable TBF binary ready for
// Platform::load_task / the dynamic loader.  For `.secure` sources the
// secure-task entry routine and IPC mailbox are injected automatically
// (paper §4: "automatically included by the TyTAN tool chain").
//
// The static verifier runs on every assembled object; findings go to stderr.
// With --strict-lint, error findings make the assembly fail and no output is
// written.  --no-lint skips the verifier.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "isa/assembler.h"
#include "tbf/tbf.h"
#include "tool_util.h"

namespace {

constexpr const char kUsageText[] =
    "usage: tytan-as <input.s> -o <output.tbf> [--dump-symbols]"
    " [--no-lint] [--strict-lint]\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tytan::tools::handle_version_help("tytan-as", argc, argv, kUsageText);
  std::string input;
  std::string output;
  bool dump_symbols = false;
  bool lint = true;
  bool strict_lint = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--dump-symbols") {
      dump_symbols = true;
    } else if (arg == "--no-lint") {
      lint = false;
    } else if (arg == "--strict-lint") {
      strict_lint = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty() || output.empty()) {
    return usage();
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "tytan-as: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  auto object = tytan::isa::assemble(source.str());
  if (!object.is_ok()) {
    std::fprintf(stderr, "tytan-as: %s: %s\n", input.c_str(),
                 object.status().to_string().c_str());
    return 1;
  }

  if (lint) {
    const tytan::analysis::Report report = tytan::analysis::analyze(*object);
    for (const tytan::analysis::Finding& finding : report.findings) {
      std::fprintf(stderr, "tytan-as: lint: %s\n",
                   tytan::analysis::format_finding(finding).c_str());
    }
    if (strict_lint && report.errors() > 0) {
      std::fprintf(stderr, "tytan-as: %s: rejected by the static verifier (%zu error(s))\n",
                   input.c_str(), report.errors());
      return 1;
    }
  }

  const tytan::ByteVec raw = tytan::tbf::write(*object);
  std::ofstream out(output, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "tytan-as: cannot write '%s'\n", output.c_str());
    return 1;
  }
  out.write(reinterpret_cast<const char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));

  std::printf("%s: %zu bytes image, %zu relocation(s), entry 0x%x%s, stack %u\n",
              output.c_str(), object->image.size(), object->relocs.size(), object->entry,
              object->secure() ? ", secure" : "", object->stack_size);
  if (dump_symbols) {
    for (const auto& [name, value] : object->symbols) {
      std::printf("  %08x  %s\n", value, name.c_str());
    }
  }
  return 0;
}
