// tytan-trace — inspect a Chrome/Perfetto trace written by
// `tytan-run --trace-out=FILE` (or obs::write_chrome_trace), or an
// attestation span file written by `--spans-out=FILE`.
//
//   tytan-trace stats  FILE [--json]     event counts per kind, cycle range,
//                                        context-switch cost summary (Table 2);
//                                        --json emits a machine-readable object
//   tytan-trace tasks  FILE              per-task run time from the derived
//                                        run slices
//   tytan-trace events FILE [filters]    dump events as a timeline
//     --kind=NAME     only events of this kind ("ctx-save", "sched-dispatch", ...)
//     --task=N        only events concerning task handle N
//     --limit=N       stop after N lines
//   tytan-trace flame  FILE              fold profiler samples (tytan-run
//                                        --profile) into collapsed stacks on
//                                        stdout: `... > out.folded`, then
//                                        flamegraph.pl out.folded > flame.svg
//   tytan-trace spans  FILE [filters]    list attestation spans
//     --device=N --phase=NAME --outcome=NAME --min-cycles=N --limit=N --json
//   tytan-trace slo    FILE --p99-cycles=N
//                                        gate on the p99 attest-round
//                                        round-trip; exit 1 on breach
//   tytan-trace critpath FILE [--trace=N]
//                                        per-trace critical-path breakdown
//                                        into typed phases
//   tytan-trace replay SNAP [SNAP...] --to-cycle=N [--trace=K]
//                                        time-travel replay: restore the
//                                        nearest snapshot at or before cycle
//                                        N (tytan-run --snapshot-out) and
//                                        re-execute deterministically to N;
//                                        prints a state digest, and with
//                                        --trace=K the last K instructions
//
// Except for `replay`, everything here is computed from the trace file alone
// — no live platform — so the numbers double as a check that the exporter
// loses nothing.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.h"
#include "obs/export.h"
#include "obs/span.h"
#include "obs/trace_reader.h"
#include "snap/snapshot.h"
#include "tool_util.h"

using namespace tytan;

namespace {

constexpr const char kUsageText[] =
    "usage: tytan-trace stats  <trace.json> [--json]\n"
    "       tytan-trace tasks  <trace.json>\n"
    "       tytan-trace events <trace.json> [--kind=NAME] [--task=N] "
    "[--limit=N]\n"
    "       tytan-trace flame  <trace.json>\n"
    "       tytan-trace spans  <spans.jsonl> [--device=N] [--phase=NAME]\n"
    "                          [--outcome=NAME] [--min-cycles=N] [--limit=N]"
    " [--json]\n"
    "       tytan-trace slo    <spans.jsonl> --p99-cycles=N\n"
    "       tytan-trace critpath <spans.jsonl> [--trace=N]\n"
    "       tytan-trace replay <snap.tysn> [more.tysn ...] --to-cycle=N"
    " [--trace=K]\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return 2;
}

std::string task_label(const obs::Trace& trace, std::int32_t task) {
  const auto it = trace.thread_names.find(obs::trace_tid(task));
  if (it != trace.thread_names.end()) {
    return it->second;
  }
  return task >= 0 ? "task " + std::to_string(task) : "platform";
}

/// Mean of the `a` payload over events matching kind + predicate on `b`.
struct CycleStat {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

int cmd_stats_json(const obs::Trace& trace) {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::map<std::string, std::uint64_t> by_kind;
  if (!trace.events.empty()) {
    first = last = trace.events.front().cycle;
  }
  for (const obs::TraceInstant& ev : trace.events) {
    first = std::min(first, ev.cycle);
    last = std::max(last, ev.cycle);
    ++by_kind[ev.name];
  }
  std::printf("{\n");
  std::printf("  \"events\": %zu,\n", trace.events.size());
  std::printf("  \"slices\": %zu,\n", trace.slices.size());
  std::printf("  \"samples\": %zu,\n", trace.samples.size());
  std::printf("  \"recorded_events\": %llu,\n",
              static_cast<unsigned long long>(trace.recorded_events));
  std::printf("  \"dropped_events\": %llu,\n",
              static_cast<unsigned long long>(trace.dropped_events));
  std::printf("  \"first_cycle\": %llu,\n", static_cast<unsigned long long>(first));
  std::printf("  \"last_cycle\": %llu,\n", static_cast<unsigned long long>(last));
  std::printf("  \"kinds\": {");
  bool comma = false;
  for (const auto& [kind, count] : by_kind) {
    std::printf("%s\"%s\": %llu", comma ? ", " : "", kind.c_str(),
                static_cast<unsigned long long>(count));
    comma = true;
  }
  std::printf("}\n}\n");
  return 0;
}

int cmd_stats(const obs::Trace& trace) {
  if (trace.events.empty()) {
    std::fprintf(stderr,
                 "tytan-trace: trace has no events (empty or truncated file)\n");
    return 1;
  }
  std::uint64_t first = trace.events.front().cycle;
  std::uint64_t last = first;
  std::map<std::string, std::uint64_t> by_kind;
  CycleStat save_secure;
  CycleStat save_normal;
  CycleStat wipe;
  CycleStat restore_secure;
  for (const obs::TraceInstant& ev : trace.events) {
    first = std::min(first, ev.cycle);
    last = std::max(last, ev.cycle);
    ++by_kind[ev.name];
    if (ev.name == "ctx-save") {
      (ev.b != 0 ? save_secure : save_normal).count += 1;
      (ev.b != 0 ? save_secure : save_normal).sum += ev.a;
    } else if (ev.name == "ctx-wipe") {
      wipe.count += 1;
      wipe.sum += ev.a;
    } else if (ev.name == "ctx-restore" && ev.b == 0) {
      restore_secure.count += 1;
      restore_secure.sum += ev.a;
    }
  }
  std::printf("%zu events, cycles %llu..%llu (%.1f us at 48 MHz)\n",
              trace.events.size(), static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(last),
              obs::cycles_to_us(last - first));
  if (trace.dropped_events != 0) {
    std::printf("WARNING: %llu events were evicted from the ring before export "
                "— counts below undercount the run\n",
                static_cast<unsigned long long>(trace.dropped_events));
  }
  std::printf("\n");
  std::printf("%-16s %8s\n", "kind", "count");
  for (const auto& [kind, count] : by_kind) {
    std::printf("%-16s %8llu\n", kind.c_str(), static_cast<unsigned long long>(count));
  }
  if (save_secure.count != 0 || save_normal.count != 0) {
    std::printf("\ncontext save (Table 2):\n");
    if (save_secure.count != 0) {
      std::printf("  secure:  %llu saves, avg %.1f cycles (wipe avg %.1f)\n",
                  static_cast<unsigned long long>(save_secure.count),
                  save_secure.mean(), wipe.mean());
    }
    if (save_normal.count != 0) {
      std::printf("  normal:  %llu saves, avg %.1f cycles\n",
                  static_cast<unsigned long long>(save_normal.count),
                  save_normal.mean());
    }
    if (restore_secure.count != 0) {
      std::printf("  secure resume: %llu, avg %.1f cycles (Table 3)\n",
                  static_cast<unsigned long long>(restore_secure.count),
                  restore_secure.mean());
    }
  }
  return 0;
}

int cmd_tasks(const obs::Trace& trace) {
  struct Row {
    std::uint64_t slices = 0;
    std::uint64_t run_cycles = 0;
  };
  std::map<int, Row> rows;
  for (const obs::TraceSlice& slice : trace.slices) {
    Row& row = rows[slice.tid];
    ++row.slices;
    row.run_cycles += slice.dur_cycles;
  }
  std::printf("%-20s %8s %13s %12s\n", "task", "slices", "run cycles", "run us");
  for (const auto& [tid, row] : rows) {
    const auto it = trace.thread_names.find(tid);
    const std::string name =
        it != trace.thread_names.end() ? it->second : "tid " + std::to_string(tid);
    std::printf("%-20s %8llu %13llu %12.1f\n", name.c_str(),
                static_cast<unsigned long long>(row.slices),
                static_cast<unsigned long long>(row.run_cycles),
                obs::cycles_to_us(row.run_cycles));
  }
  return 0;
}

int cmd_flame(const obs::Trace& trace) {
  if (trace.samples.empty()) {
    std::fprintf(stderr,
                 "tytan-trace: no profiler samples in this trace (record with "
                 "tytan-run --profile=N --trace-out=FILE)\n");
    return 1;
  }
  std::map<std::string, std::uint64_t> folded;
  for (const obs::TraceSample& sample : trace.samples) {
    ++folded[sample.frame.empty() ? "platform;0x0" : sample.frame];
  }
  for (const auto& [frame, count] : folded) {
    std::printf("%s %llu\n", frame.c_str(), static_cast<unsigned long long>(count));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Span-file commands (`tytan-run --spans-out` / `tytan-fleet --spans-out`)
// ---------------------------------------------------------------------------

struct SpanFilter {
  std::uint32_t device = 0;
  bool have_device = false;
  std::string phase;
  std::string outcome;
  std::uint64_t min_cycles = 0;
  std::uint64_t limit = 0;
};

bool span_matches(const obs::ParsedSpan& span, const SpanFilter& filter) {
  if (filter.have_device && span.device != filter.device) {
    return false;
  }
  if (!filter.phase.empty() && span.phase != filter.phase) {
    return false;
  }
  if (!filter.outcome.empty() && span.outcome != filter.outcome) {
    return false;
  }
  return span.cycles >= filter.min_cycles;
}

std::string notes_label(const obs::ParsedSpan& span) {
  std::string out;
  for (const std::string& kind : span.note_kinds) {
    if (!out.empty()) {
      out += ',';
    }
    out += kind;
  }
  return out;
}

int cmd_spans(const obs::SpanLog& log, const SpanFilter& filter, bool json) {
  std::uint64_t printed = 0;
  if (!json) {
    std::printf("%-6s %-10s %-6s %-6s %-17s %5s %12s %-8s %s\n", "device",
                "trace", "span", "parent", "phase", "task", "cycles", "outcome",
                "notes");
  }
  for (const obs::ParsedSpan& span : log.spans) {
    if (!span_matches(span, filter)) {
      continue;
    }
    if (json) {
      std::printf("{\"device\": %u, \"trace\": %llu, \"span\": %u, "
                  "\"parent\": %u, \"phase\": \"%s\", \"task\": %d, "
                  "\"cycles\": %llu, \"outcome\": \"%s\", \"notes\": \"%s\"}\n",
                  span.device, static_cast<unsigned long long>(span.trace),
                  span.span, span.parent, span.phase.c_str(), span.task,
                  static_cast<unsigned long long>(span.cycles),
                  span.outcome.c_str(), notes_label(span).c_str());
    } else {
      std::printf("%-6u %-10llu %-6u %-6u %-17s %5d %12llu %-8s %s\n",
                  span.device, static_cast<unsigned long long>(span.trace),
                  span.span, span.parent, span.phase.c_str(), span.task,
                  static_cast<unsigned long long>(span.cycles),
                  span.outcome.c_str(), notes_label(span).c_str());
    }
    if (filter.limit != 0 && ++printed >= filter.limit) {
      break;
    }
  }
  return 0;
}

/// Nearest-rank percentile over a sorted cycle list.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, unsigned pct) {
  if (sorted.empty()) {
    return 0;
  }
  const std::size_t rank = (sorted.size() * pct + 99) / 100;
  return sorted[rank == 0 ? 0 : rank - 1];
}

int cmd_slo(const obs::SpanLog& log, std::uint64_t p99_cycles) {
  std::vector<std::uint64_t> rounds;
  for (const obs::ParsedSpan& span : log.spans) {
    if (span.phase == "attest-round") {
      rounds.push_back(span.cycles);
    }
  }
  if (rounds.empty()) {
    std::fprintf(stderr, "tytan-trace: no attest-round spans to gate on\n");
    return 1;
  }
  std::sort(rounds.begin(), rounds.end());
  const std::uint64_t p50 = percentile(rounds, 50);
  const std::uint64_t p99 = percentile(rounds, 99);
  const bool breach = p99 > p99_cycles;
  std::printf("%zu attest rounds: p50 %llu cycles, p99 %llu cycles "
              "(budget %llu) — %s\n",
              rounds.size(), static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(p99_cycles),
              breach ? "SLO BREACH" : "ok");
  return breach ? 1 : 0;
}

int cmd_critpath(const obs::SpanLog& log, std::uint64_t trace_filter,
                 bool have_trace) {
  struct TraceRow {
    std::uint32_t device = 0;
    std::uint64_t total = 0;  ///< root attest-round round-trip
    std::string outcome;
    std::map<std::string, std::uint64_t> by_phase;  ///< child phases only
  };
  std::map<std::uint64_t, TraceRow> traces;
  for (const obs::ParsedSpan& span : log.spans) {
    if (span.trace == 0 || (have_trace && span.trace != trace_filter)) {
      continue;  // trace 0: parentless spans (e.g. rtm-measure at load)
    }
    TraceRow& row = traces[span.trace];
    if (span.phase == "attest-round") {
      row.device = span.device;
      row.total = span.cycles;
      row.outcome = span.outcome;
    } else {
      row.by_phase[span.phase] += span.cycles;
    }
  }
  if (traces.empty()) {
    std::fprintf(stderr, "tytan-trace: no matching attestation traces\n");
    return 1;
  }
  for (const auto& [trace_id, row] : traces) {
    std::printf("trace %llu  device %u  %llu cycles round-trip  [%s]\n",
                static_cast<unsigned long long>(trace_id), row.device,
                static_cast<unsigned long long>(row.total), row.outcome.c_str());
    std::uint64_t attributed = 0;
    for (const auto& [phase, cycles] : row.by_phase) {
      attributed += cycles;
      const double pct = row.total == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(cycles) /
                                   static_cast<double>(row.total);
      std::printf("  %-17s %12llu cycles  %5.1f%%\n", phase.c_str(),
                  static_cast<unsigned long long>(cycles), pct);
    }
    if (row.total > attributed) {
      const std::uint64_t other = row.total - attributed;
      std::printf("  %-17s %12llu cycles  %5.1f%%\n", "(unattributed)",
                  static_cast<unsigned long long>(other),
                  100.0 * static_cast<double>(other) /
                      static_cast<double>(row.total));
    }
  }
  return 0;
}

int cmd_events(const obs::Trace& trace, const std::string& kind, std::int32_t task,
               bool have_task, std::uint64_t limit) {
  std::uint64_t printed = 0;
  for (const obs::TraceInstant& ev : trace.events) {
    if (!kind.empty() && ev.name != kind) {
      continue;
    }
    if (have_task && ev.task != task) {
      continue;
    }
    std::printf("cycle %10llu  [%s] %s a=%u b=%u\n",
                static_cast<unsigned long long>(ev.cycle),
                task_label(trace, ev.task).c_str(), ev.name.c_str(), ev.a, ev.b);
    if (limit != 0 && ++printed >= limit) {
      break;
    }
  }
  return 0;
}

/// Time-travel replay: pick the snapshot with the largest recorded cycle not
/// past --to-cycle, rebuild a compatible platform from its CONF section,
/// restore, and re-execute deterministically up to the target cycle.
int cmd_replay(const std::vector<std::string>& paths, std::uint64_t to_cycle,
               std::uint64_t trace_tail) {
  std::optional<snap::Snapshot> best;
  std::string best_path;
  std::uint64_t best_cycle = 0;
  for (const std::string& snap_path : paths) {
    auto snapshot = snap::Snapshot::read_file(snap_path);
    if (!snapshot.is_ok()) {
      std::fprintf(stderr, "tytan-trace: %s: %s\n", snap_path.c_str(),
                   snapshot.status().to_string().c_str());
      return 1;
    }
    auto cycle = core::Platform::snapshot_cycle(*snapshot);
    if (!cycle.is_ok()) {
      std::fprintf(stderr, "tytan-trace: %s: %s\n", snap_path.c_str(),
                   cycle.status().to_string().c_str());
      return 1;
    }
    if (*cycle <= to_cycle && (!best.has_value() || *cycle >= best_cycle)) {
      best = snapshot.take();
      best_path = snap_path;
      best_cycle = *cycle;
    }
  }
  if (!best.has_value()) {
    std::fprintf(stderr,
                 "tytan-trace: no snapshot at or before cycle %llu (replay "
                 "cannot run backwards from a later snapshot)\n",
                 static_cast<unsigned long long>(to_cycle));
    return 1;
  }

  auto config = core::Platform::config_from_snapshot(*best);
  if (!config.is_ok()) {
    std::fprintf(stderr, "tytan-trace: %s: %s\n", best_path.c_str(),
                 config.status().to_string().c_str());
    return 1;
  }
  core::Platform platform(*config);
  if (Status s = platform.restore(*best); !s.is_ok()) {
    std::fprintf(stderr, "tytan-trace: %s: %s\n", best_path.c_str(),
                 s.to_string().c_str());
    return 1;
  }
  if (trace_tail != 0) {
    platform.machine().enable_trace(static_cast<std::size_t>(trace_tail));
  }
  std::printf("replaying %s from cycle %llu to cycle %llu\n", best_path.c_str(),
              static_cast<unsigned long long>(best_cycle),
              static_cast<unsigned long long>(to_cycle));
  if (to_cycle > platform.machine().cycles()) {
    platform.run_for(to_cycle - platform.machine().cycles());
  }
  std::printf("replayed to cycle %llu (%llu instructions executed)\n",
              static_cast<unsigned long long>(platform.machine().cycles()),
              static_cast<unsigned long long>(platform.machine().instructions_executed()));
  if (trace_tail != 0 && platform.machine().tracer() != nullptr) {
    std::fputs(platform.machine().tracer()->format().c_str(), stdout);
  }
  if (!platform.serial().output().empty()) {
    std::printf("--- serial ---\n%s\n--------------\n",
                platform.serial().output().c_str());
  }
  auto state = platform.save();
  if (state.is_ok()) {
    const ByteVec bytes = state->serialize();
    std::printf("state-digest: %016llx\n",
                static_cast<unsigned long long>(snap::fnv1a64(bytes)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::handle_version_help("tytan-trace", argc, argv, kUsageText);
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];

  std::string kind;
  std::int32_t task = -1;
  bool have_task = false;
  bool json = false;
  std::uint64_t limit = 0;
  SpanFilter filter;
  std::uint64_t p99_cycles = 0;
  bool have_p99 = false;
  std::uint64_t trace_filter = 0;
  bool have_trace_filter = false;
  std::uint64_t to_cycle = 0;
  bool have_to_cycle = false;
  std::vector<std::string> snapshot_paths = {path};
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--kind=", 0) == 0) {
      kind = arg.substr(std::strlen("--kind="));
    } else if (arg.rfind("--task=", 0) == 0) {
      task = static_cast<std::int32_t>(tools::parse_i64(
          "tytan-trace", "--task", arg.c_str() + std::strlen("--task=")));
      have_task = true;
    } else if (arg.rfind("--limit=", 0) == 0) {
      limit = tools::parse_u64("tytan-trace", "--limit",
                               arg.c_str() + std::strlen("--limit="));
      filter.limit = limit;
    } else if (arg.rfind("--device=", 0) == 0) {
      filter.device = tools::parse_u32("tytan-trace", "--device",
                                       arg.c_str() + std::strlen("--device="));
      filter.have_device = true;
    } else if (arg.rfind("--phase=", 0) == 0) {
      filter.phase = arg.substr(std::strlen("--phase="));
    } else if (arg.rfind("--outcome=", 0) == 0) {
      filter.outcome = arg.substr(std::strlen("--outcome="));
    } else if (arg.rfind("--min-cycles=", 0) == 0) {
      filter.min_cycles = tools::parse_u64(
          "tytan-trace", "--min-cycles", arg.c_str() + std::strlen("--min-cycles="));
    } else if (arg.rfind("--p99-cycles=", 0) == 0) {
      p99_cycles = tools::parse_u64(
          "tytan-trace", "--p99-cycles", arg.c_str() + std::strlen("--p99-cycles="));
      have_p99 = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_filter = tools::parse_u64("tytan-trace", "--trace",
                                      arg.c_str() + std::strlen("--trace="));
      have_trace_filter = true;
    } else if (arg.rfind("--to-cycle=", 0) == 0) {
      to_cycle = tools::parse_u64("tytan-trace", "--to-cycle",
                                  arg.c_str() + std::strlen("--to-cycle="));
      have_to_cycle = true;
    } else if (command == "replay" && !arg.empty() && arg[0] != '-') {
      snapshot_paths.push_back(arg);
    } else {
      return usage();
    }
  }

  if (command == "replay") {
    if (!have_to_cycle) {
      std::fprintf(stderr, "tytan-trace: replay needs --to-cycle=N\n");
      return 2;
    }
    return cmd_replay(snapshot_paths, to_cycle,
                      have_trace_filter ? trace_filter : 0);
  }

  if (command == "spans" || command == "slo" || command == "critpath") {
    auto log = obs::read_spans_file(path);
    if (!log.is_ok()) {
      std::fprintf(stderr, "tytan-trace: %s: %s\n", path.c_str(),
                   log.status().to_string().c_str());
      return 1;
    }
    if (log->spans.empty()) {
      std::fprintf(stderr,
                   "tytan-trace: %s: no span records (empty or truncated span "
                   "file)\n",
                   path.c_str());
      return 1;
    }
    if (command == "spans") {
      return cmd_spans(*log, filter, json);
    }
    if (command == "slo") {
      if (!have_p99) {
        std::fprintf(stderr, "tytan-trace: slo needs --p99-cycles=N\n");
        return 2;
      }
      return cmd_slo(*log, p99_cycles);
    }
    return cmd_critpath(*log, trace_filter, have_trace_filter);
  }

  auto trace = obs::read_chrome_trace_file(path);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "tytan-trace: %s: %s\n", path.c_str(),
                 trace.status().to_string().c_str());
    return 1;
  }
  if (command == "stats") {
    return json ? cmd_stats_json(*trace) : cmd_stats(*trace);
  }
  if (command == "tasks") {
    return cmd_tasks(*trace);
  }
  if (command == "events") {
    return cmd_events(*trace, kind, task, have_task, limit);
  }
  if (command == "flame") {
    return cmd_flame(*trace);
  }
  return usage();
}
