// tytan-trace — inspect a Chrome/Perfetto trace written by
// `tytan-run --trace-out=FILE` (or obs::write_chrome_trace).
//
//   tytan-trace stats  FILE [--json]     event counts per kind, cycle range,
//                                        context-switch cost summary (Table 2);
//                                        --json emits a machine-readable object
//   tytan-trace tasks  FILE              per-task run time from the derived
//                                        run slices
//   tytan-trace events FILE [filters]    dump events as a timeline
//     --kind=NAME     only events of this kind ("ctx-save", "sched-dispatch", ...)
//     --task=N        only events concerning task handle N
//     --limit=N       stop after N lines
//   tytan-trace flame  FILE              fold profiler samples (tytan-run
//                                        --profile) into collapsed stacks on
//                                        stdout: `... > out.folded`, then
//                                        flamegraph.pl out.folded > flame.svg
//
// Everything here is computed from the trace file alone — no live platform —
// so the numbers double as a check that the exporter loses nothing.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/trace_reader.h"
#include "tool_util.h"

using namespace tytan;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tytan-trace stats  <trace.json> [--json]\n"
               "       tytan-trace tasks  <trace.json>\n"
               "       tytan-trace events <trace.json> [--kind=NAME] [--task=N] "
               "[--limit=N]\n"
               "       tytan-trace flame  <trace.json>\n");
  return 2;
}

std::string task_label(const obs::Trace& trace, std::int32_t task) {
  const auto it = trace.thread_names.find(obs::trace_tid(task));
  if (it != trace.thread_names.end()) {
    return it->second;
  }
  return task >= 0 ? "task " + std::to_string(task) : "platform";
}

/// Mean of the `a` payload over events matching kind + predicate on `b`.
struct CycleStat {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

int cmd_stats_json(const obs::Trace& trace) {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::map<std::string, std::uint64_t> by_kind;
  if (!trace.events.empty()) {
    first = last = trace.events.front().cycle;
  }
  for (const obs::TraceInstant& ev : trace.events) {
    first = std::min(first, ev.cycle);
    last = std::max(last, ev.cycle);
    ++by_kind[ev.name];
  }
  std::printf("{\n");
  std::printf("  \"events\": %zu,\n", trace.events.size());
  std::printf("  \"slices\": %zu,\n", trace.slices.size());
  std::printf("  \"samples\": %zu,\n", trace.samples.size());
  std::printf("  \"recorded_events\": %llu,\n",
              static_cast<unsigned long long>(trace.recorded_events));
  std::printf("  \"dropped_events\": %llu,\n",
              static_cast<unsigned long long>(trace.dropped_events));
  std::printf("  \"first_cycle\": %llu,\n", static_cast<unsigned long long>(first));
  std::printf("  \"last_cycle\": %llu,\n", static_cast<unsigned long long>(last));
  std::printf("  \"kinds\": {");
  bool comma = false;
  for (const auto& [kind, count] : by_kind) {
    std::printf("%s\"%s\": %llu", comma ? ", " : "", kind.c_str(),
                static_cast<unsigned long long>(count));
    comma = true;
  }
  std::printf("}\n}\n");
  return 0;
}

int cmd_stats(const obs::Trace& trace) {
  if (trace.events.empty()) {
    std::printf("empty trace\n");
    return 0;
  }
  std::uint64_t first = trace.events.front().cycle;
  std::uint64_t last = first;
  std::map<std::string, std::uint64_t> by_kind;
  CycleStat save_secure;
  CycleStat save_normal;
  CycleStat wipe;
  CycleStat restore_secure;
  for (const obs::TraceInstant& ev : trace.events) {
    first = std::min(first, ev.cycle);
    last = std::max(last, ev.cycle);
    ++by_kind[ev.name];
    if (ev.name == "ctx-save") {
      (ev.b != 0 ? save_secure : save_normal).count += 1;
      (ev.b != 0 ? save_secure : save_normal).sum += ev.a;
    } else if (ev.name == "ctx-wipe") {
      wipe.count += 1;
      wipe.sum += ev.a;
    } else if (ev.name == "ctx-restore" && ev.b == 0) {
      restore_secure.count += 1;
      restore_secure.sum += ev.a;
    }
  }
  std::printf("%zu events, cycles %llu..%llu (%.1f us at 48 MHz)\n",
              trace.events.size(), static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(last),
              obs::cycles_to_us(last - first));
  if (trace.dropped_events != 0) {
    std::printf("WARNING: %llu events were evicted from the ring before export "
                "— counts below undercount the run\n",
                static_cast<unsigned long long>(trace.dropped_events));
  }
  std::printf("\n");
  std::printf("%-16s %8s\n", "kind", "count");
  for (const auto& [kind, count] : by_kind) {
    std::printf("%-16s %8llu\n", kind.c_str(), static_cast<unsigned long long>(count));
  }
  if (save_secure.count != 0 || save_normal.count != 0) {
    std::printf("\ncontext save (Table 2):\n");
    if (save_secure.count != 0) {
      std::printf("  secure:  %llu saves, avg %.1f cycles (wipe avg %.1f)\n",
                  static_cast<unsigned long long>(save_secure.count),
                  save_secure.mean(), wipe.mean());
    }
    if (save_normal.count != 0) {
      std::printf("  normal:  %llu saves, avg %.1f cycles\n",
                  static_cast<unsigned long long>(save_normal.count),
                  save_normal.mean());
    }
    if (restore_secure.count != 0) {
      std::printf("  secure resume: %llu, avg %.1f cycles (Table 3)\n",
                  static_cast<unsigned long long>(restore_secure.count),
                  restore_secure.mean());
    }
  }
  return 0;
}

int cmd_tasks(const obs::Trace& trace) {
  struct Row {
    std::uint64_t slices = 0;
    std::uint64_t run_cycles = 0;
  };
  std::map<int, Row> rows;
  for (const obs::TraceSlice& slice : trace.slices) {
    Row& row = rows[slice.tid];
    ++row.slices;
    row.run_cycles += slice.dur_cycles;
  }
  std::printf("%-20s %8s %13s %12s\n", "task", "slices", "run cycles", "run us");
  for (const auto& [tid, row] : rows) {
    const auto it = trace.thread_names.find(tid);
    const std::string name =
        it != trace.thread_names.end() ? it->second : "tid " + std::to_string(tid);
    std::printf("%-20s %8llu %13llu %12.1f\n", name.c_str(),
                static_cast<unsigned long long>(row.slices),
                static_cast<unsigned long long>(row.run_cycles),
                obs::cycles_to_us(row.run_cycles));
  }
  return 0;
}

int cmd_flame(const obs::Trace& trace) {
  if (trace.samples.empty()) {
    std::fprintf(stderr,
                 "tytan-trace: no profiler samples in this trace (record with "
                 "tytan-run --profile=N --trace-out=FILE)\n");
    return 1;
  }
  std::map<std::string, std::uint64_t> folded;
  for (const obs::TraceSample& sample : trace.samples) {
    ++folded[sample.frame.empty() ? "platform;0x0" : sample.frame];
  }
  for (const auto& [frame, count] : folded) {
    std::printf("%s %llu\n", frame.c_str(), static_cast<unsigned long long>(count));
  }
  return 0;
}

int cmd_events(const obs::Trace& trace, const std::string& kind, std::int32_t task,
               bool have_task, std::uint64_t limit) {
  std::uint64_t printed = 0;
  for (const obs::TraceInstant& ev : trace.events) {
    if (!kind.empty() && ev.name != kind) {
      continue;
    }
    if (have_task && ev.task != task) {
      continue;
    }
    std::printf("cycle %10llu  [%s] %s a=%u b=%u\n",
                static_cast<unsigned long long>(ev.cycle),
                task_label(trace, ev.task).c_str(), ev.name.c_str(), ev.a, ev.b);
    if (limit != 0 && ++printed >= limit) {
      break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];

  std::string kind;
  std::int32_t task = -1;
  bool have_task = false;
  bool json = false;
  std::uint64_t limit = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--kind=", 0) == 0) {
      kind = arg.substr(std::strlen("--kind="));
    } else if (arg.rfind("--task=", 0) == 0) {
      task = static_cast<std::int32_t>(tools::parse_i64(
          "tytan-trace", "--task", arg.c_str() + std::strlen("--task=")));
      have_task = true;
    } else if (arg.rfind("--limit=", 0) == 0) {
      limit = tools::parse_u64("tytan-trace", "--limit",
                               arg.c_str() + std::strlen("--limit="));
    } else {
      return usage();
    }
  }

  auto trace = obs::read_chrome_trace_file(path);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "tytan-trace: %s: %s\n", path.c_str(),
                 trace.status().to_string().c_str());
    return 1;
  }
  if (command == "stats") {
    return json ? cmd_stats_json(*trace) : cmd_stats(*trace);
  }
  if (command == "tasks") {
    return cmd_tasks(*trace);
  }
  if (command == "events") {
    return cmd_events(*trace, kind, task, have_task, limit);
  }
  if (command == "flame") {
    return cmd_flame(*trace);
  }
  return usage();
}
