// tytan-top — fleet health at a glance, from a telemetry JSONL stream
// written by `tytan-fleet --telemetry-out=FILE`.
//
//   tytan-top FILE [--anomalies] [--watch [SECONDS]]
//     --anomalies     list every anomaly record (default: summary count)
//     --watch [S]     re-read and re-render the file every S seconds
//                     (default 2) — live view of a fleet writing telemetry
//
// The table shows the latest snapshot per device; rates are computed from
// the first and last snapshot of each device.  Reads the file only — never
// attaches to a live platform.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "obs/telemetry.h"

using namespace tytan;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tytan-top <telemetry.jsonl> [--anomalies] [--watch [SECONDS]]\n");
  return 2;
}

struct DeviceRow {
  obs::HealthSnapshot first{};
  obs::HealthSnapshot last{};
  std::uint64_t snapshots = 0;
  std::uint64_t anomalies = 0;
};

int render(const std::string& path, bool list_anomalies) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tytan-top: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto log = obs::parse_telemetry_jsonl(buffer.str());
  if (!log.is_ok()) {
    std::fprintf(stderr, "tytan-top: %s: %s\n", path.c_str(),
                 log.status().to_string().c_str());
    return 1;
  }

  std::map<std::uint32_t, DeviceRow> rows;
  for (const obs::HealthSnapshot& s : log->snapshots) {
    DeviceRow& row = rows[s.device];
    if (row.snapshots == 0) {
      row.first = s;
    }
    row.last = s;
    ++row.snapshots;
  }
  for (const auto& a : log->anomalies) {
    ++rows[a.device].anomalies;
  }

  std::printf("%-7s %5s %12s %8s %7s %6s %9s %7s %7s %4s %9s %6s\n", "device",
              "snaps", "cycles", "sim ms", "instr/c", "faults", "ipc", "attest",
              "inj/rec", "wdog", "anomalies", "state");
  for (const auto& [device, row] : rows) {
    const obs::HealthSnapshot& s = row.last;
    const double ipc_rate =
        s.cycle == 0 ? 0.0
                     : static_cast<double>(s.instructions) / static_cast<double>(s.cycle);
    // attest column: verified/total, the fleet's health headline.
    char attest[32];
    std::snprintf(attest, sizeof attest, "%llu/%llu",
                  static_cast<unsigned long long>(s.attest_verified),
                  static_cast<unsigned long long>(s.attest_total));
    // injection column: faults injected / recoveries paired with them.
    char injected[32];
    std::snprintf(injected, sizeof injected, "%llu/%llu",
                  static_cast<unsigned long long>(s.faults_injected),
                  static_cast<unsigned long long>(s.fault_recoveries));
    std::printf("%-7u %5llu %12llu %8.2f %7.3f %6llu %9llu %7s %7s %4llu %9llu %6s\n",
                device, static_cast<unsigned long long>(row.snapshots),
                static_cast<unsigned long long>(s.cycle),
                static_cast<double>(s.cycle) * 1000.0 / 48'000'000.0, ipc_rate,
                static_cast<unsigned long long>(s.faults),
                static_cast<unsigned long long>(s.ipc_delivered), attest, injected,
                static_cast<unsigned long long>(s.watchdog_restarts),
                static_cast<unsigned long long>(row.anomalies),
                s.halted ? "HALT" : "run");
  }
  std::printf("fleet: %zu devices, %zu snapshots, %zu anomalies\n", rows.size(),
              log->snapshots.size(), log->anomalies.size());

  if (list_anomalies && !log->anomalies.empty()) {
    std::printf("\n%-7s %10s %-20s %-8s %s\n", "device", "cycle", "rule", "flight",
                "message");
    for (const auto& a : log->anomalies) {
      std::printf("%-7u %10llu %-20s %-8zu %s\n", a.device,
                  static_cast<unsigned long long>(a.cycle), a.rule.c_str(),
                  a.flight_count, a.message.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string path = argv[1];
  bool list_anomalies = false;
  bool watch = false;
  double watch_seconds = 2.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--anomalies") {
      list_anomalies = true;
    } else if (arg == "--watch") {
      watch = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        watch_seconds = std::strtod(argv[++i], nullptr);
      }
    } else {
      return usage();
    }
  }

  if (!watch) {
    return render(path, list_anomalies);
  }
  for (;;) {
    std::printf("\x1b[2J\x1b[H");  // clear + home, terminal-top style
    if (int rc = render(path, list_anomalies); rc != 0) {
      return rc;
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(watch_seconds));
  }
}
