// tytan-top — fleet health at a glance, from a telemetry JSONL stream
// written by `tytan-fleet --telemetry-out=FILE`.
//
//   tytan-top FILE [--anomalies] [--spans FILE] [--heat FILE]
//             [--watch [SECONDS]]
//     --anomalies     list every anomaly record (default: summary count)
//     --spans FILE    also read a span file (tytan-fleet --spans-out) and
//                     append a per-phase p50/p95/p99 cycle table
//     --heat FILE     also read a heat profile (tytan-run --heat-out) and
//                     append hot-block / dispatch / MPU-check tables
//     --watch [S]     re-read and re-render the file every S seconds
//                     (default 2) — live view of a fleet writing telemetry
//
// The table shows the latest snapshot per device; rates are computed from
// the first and last snapshot of each device.  Reads the file only — never
// attaches to a live platform.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/heat.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "tool_util.h"

using namespace tytan;

namespace {

constexpr const char kUsageText[] =
    "usage: tytan-top <telemetry.jsonl> [--anomalies] [--spans FILE]"
    " [--heat FILE] [--watch [SECONDS]]\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return 2;
}

struct DeviceRow {
  obs::HealthSnapshot first{};
  obs::HealthSnapshot last{};
  std::uint64_t snapshots = 0;
  std::uint64_t anomalies = 0;
};

/// Nearest-rank percentile over a sorted cycle list.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, unsigned pct) {
  if (sorted.empty()) {
    return 0;
  }
  const std::size_t rank = (sorted.size() * pct + 99) / 100;
  return sorted[rank == 0 ? 0 : rank - 1];
}

/// Per-phase span latency table from a `--spans FILE` span log.
int render_spans(const std::string& path) {
  auto log = obs::read_spans_file(path);
  if (!log.is_ok()) {
    std::fprintf(stderr, "tytan-top: %s: %s\n", path.c_str(),
                 log.status().to_string().c_str());
    return 1;
  }
  if (log->spans.empty()) {
    std::fprintf(stderr,
                 "tytan-top: %s: no span records (empty or truncated span "
                 "file)\n",
                 path.c_str());
    return 1;
  }
  std::map<std::string, std::vector<std::uint64_t>> by_phase;
  for (const obs::ParsedSpan& span : log->spans) {
    by_phase[span.phase].push_back(span.cycles);
  }
  std::printf("\n%-17s %8s %12s %12s %12s\n", "phase", "spans", "p50 cyc",
              "p95 cyc", "p99 cyc");
  for (auto& [phase, cycles] : by_phase) {
    std::sort(cycles.begin(), cycles.end());
    std::printf("%-17s %8zu %12llu %12llu %12llu\n", phase.c_str(), cycles.size(),
                static_cast<unsigned long long>(percentile(cycles, 50)),
                static_cast<unsigned long long>(percentile(cycles, 95)),
                static_cast<unsigned long long>(percentile(cycles, 99)));
  }
  return 0;
}

/// Hot-block / dispatch / MPU tables from a `--heat FILE` profile.
int render_heat(const std::string& path) {
  auto log = obs::read_heat_file(path);
  if (!log.is_ok()) {
    std::fprintf(stderr, "tytan-top: %s: %s\n", path.c_str(),
                 log.status().to_string().c_str());
    return 1;
  }
  const obs::HeatLog& heat = *log;
  const obs::HeatProfile& profile = heat.profile;
  const std::uint64_t total = profile.total_instructions();
  if (total == 0) {
    std::fprintf(stderr, "tytan-top: %s: heat profile records no execution\n",
                 path.c_str());
    return 1;
  }

  // Hot blocks, descending by executed instructions, until >= 90% covered.
  struct Row {
    std::uint32_t start;
    obs::HeatProfile::Block block;
  };
  std::vector<Row> rows;
  rows.reserve(profile.blocks.size());
  for (const auto& [start, block] : profile.blocks) {
    rows.push_back({start, block});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.block.instructions != b.block.instructions
               ? a.block.instructions > b.block.instructions
               : a.start < b.start;
  });
  std::printf("\nhot blocks (%llu instructions, %zu blocks, %zu regions):\n",
              static_cast<unsigned long long>(total), profile.blocks.size(),
              profile.regions.size());
  std::printf("%-20s %-19s %12s %12s %6s %6s\n", "region", "block", "insns",
              "entries", "%", "cum%");
  std::uint64_t cumulative = 0;
  for (const Row& row : rows) {
    if (row.block.instructions == 0) {
      break;
    }
    cumulative += row.block.instructions;
    char range[32];
    std::snprintf(range, sizeof range, "%08x-%08x", row.start, row.block.end);
    std::printf("%-20s %-19s %12llu %12llu %5.1f%% %5.1f%%\n",
                std::string(profile.region_name(row.start)).c_str(), range,
                static_cast<unsigned long long>(row.block.instructions),
                static_cast<unsigned long long>(row.block.entries),
                100.0 * row.block.instructions / total, 100.0 * cumulative / total);
    if (cumulative * 10 >= total * 9) {
      break;
    }
  }

  // Dispatch histogram: top opcodes with host-ns attribution when sampled.
  struct OpRow {
    std::uint8_t op;
    obs::HeatProfile::OpcodeStat stat;
  };
  std::vector<OpRow> ops;
  for (std::size_t i = 0; i < profile.opcodes.size(); ++i) {
    if (profile.opcodes[i].count != 0) {
      ops.push_back({static_cast<std::uint8_t>(i), profile.opcodes[i]});
    }
  }
  std::sort(ops.begin(), ops.end(), [](const OpRow& a, const OpRow& b) {
    return a.stat.count != b.stat.count ? a.stat.count > b.stat.count : a.op < b.op;
  });
  std::printf("\ndispatch histogram (top %zu of %zu opcodes):\n",
              std::min<std::size_t>(ops.size(), 10), ops.size());
  std::printf("%-8s %14s %6s %14s\n", "opcode", "count", "%", "host ns/insn");
  for (std::size_t i = 0; i < ops.size() && i < 10; ++i) {
    char ns[24] = "-";
    if (ops[i].stat.ns_samples != 0) {
      std::snprintf(ns, sizeof ns, "%llu",
                    static_cast<unsigned long long>(ops[i].stat.ns_total /
                                                    ops[i].stat.ns_samples));
    }
    std::printf("%-8s %14llu %5.1f%% %14s\n",
                heat.opcode_name(ops[i].op).c_str(),
                static_cast<unsigned long long>(ops[i].stat.count),
                100.0 * ops[i].stat.count / total, ns);
  }

  // EA-MPU check counters split by deciding rule.
  if (const std::uint64_t checks = profile.total_checks(); checks != 0) {
    std::printf("\nEA-MPU checks (%llu total):\n",
                static_cast<unsigned long long>(checks));
    std::printf("%-16s %14s %14s %14s\n", "rule", "read", "write", "execute");
    for (std::size_t bucket = 0; bucket < obs::HeatProfile::kMpuBuckets; ++bucket) {
      std::uint64_t row_total = 0;
      for (std::size_t kind = 0; kind < obs::HeatProfile::kMpuAccessKinds; ++kind) {
        row_total += profile.mpu[kind][bucket];
      }
      if (row_total == 0) {
        continue;
      }
      std::printf("%-16s %14llu %14llu %14llu\n",
                  obs::HeatProfile::bucket_name(bucket).c_str(),
                  static_cast<unsigned long long>(profile.mpu[0][bucket]),
                  static_cast<unsigned long long>(profile.mpu[1][bucket]),
                  static_cast<unsigned long long>(profile.mpu[2][bucket]));
    }
  }

  if (!profile.edges.empty()) {
    std::printf("\nindirect branches: %zu distinct site->target edges\n",
                profile.edges.size());
  }
  return 0;
}

int render(const std::string& path, bool list_anomalies) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tytan-top: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto log = obs::parse_telemetry_jsonl(buffer.str());
  if (!log.is_ok()) {
    std::fprintf(stderr, "tytan-top: %s: %s\n", path.c_str(),
                 log.status().to_string().c_str());
    return 1;
  }
  if (log->snapshots.empty() && log->anomalies.empty()) {
    std::fprintf(stderr,
                 "tytan-top: %s: no telemetry records (empty or truncated "
                 "file)\n",
                 path.c_str());
    return 1;
  }

  std::map<std::uint32_t, DeviceRow> rows;
  for (const obs::HealthSnapshot& s : log->snapshots) {
    DeviceRow& row = rows[s.device];
    if (row.snapshots == 0) {
      row.first = s;
    }
    row.last = s;
    ++row.snapshots;
  }
  for (const auto& a : log->anomalies) {
    ++rows[a.device].anomalies;
  }

  std::printf("%-7s %5s %12s %8s %7s %6s %9s %7s %7s %4s %9s %9s %6s\n", "device",
              "snaps", "cycles", "sim ms", "instr/c", "faults", "ipc", "attest",
              "inj/rec", "wdog", "rnd p99", "anomalies", "state");
  for (const auto& [device, row] : rows) {
    const obs::HealthSnapshot& s = row.last;
    const double ipc_rate =
        s.cycle == 0 ? 0.0
                     : static_cast<double>(s.instructions) / static_cast<double>(s.cycle);
    // attest column: verified/total, the fleet's health headline.
    char attest[32];
    std::snprintf(attest, sizeof attest, "%llu/%llu",
                  static_cast<unsigned long long>(s.attest_verified),
                  static_cast<unsigned long long>(s.attest_total));
    // injection column: faults injected / recoveries paired with them.
    char injected[32];
    std::snprintf(injected, sizeof injected, "%llu/%llu",
                  static_cast<unsigned long long>(s.faults_injected),
                  static_cast<unsigned long long>(s.fault_recoveries));
    std::printf("%-7u %5llu %12llu %8.2f %7.3f %6llu %9llu %7s %7s %4llu %9llu %9llu %6s\n",
                device, static_cast<unsigned long long>(row.snapshots),
                static_cast<unsigned long long>(s.cycle),
                static_cast<double>(s.cycle) * 1000.0 / 48'000'000.0, ipc_rate,
                static_cast<unsigned long long>(s.faults),
                static_cast<unsigned long long>(s.ipc_delivered), attest, injected,
                static_cast<unsigned long long>(s.watchdog_restarts),
                static_cast<unsigned long long>(s.attest_round_p99),
                static_cast<unsigned long long>(row.anomalies),
                s.halted ? "HALT" : "run");
  }
  std::printf("fleet: %zu devices, %zu snapshots, %zu anomalies\n", rows.size(),
              log->snapshots.size(), log->anomalies.size());

  if (list_anomalies && !log->anomalies.empty()) {
    std::printf("\n%-7s %10s %-20s %-8s %s\n", "device", "cycle", "rule", "flight",
                "message");
    for (const auto& a : log->anomalies) {
      std::printf("%-7u %10llu %-20s %-8zu %s\n", a.device,
                  static_cast<unsigned long long>(a.cycle), a.rule.c_str(),
                  a.flight_count, a.message.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::handle_version_help("tytan-top", argc, argv, kUsageText);
  if (argc < 2 || argv[1][0] == '-') {
    return usage();
  }
  const std::string path = argv[1];
  std::string spans_path;
  std::string heat_path;
  bool list_anomalies = false;
  bool watch = false;
  double watch_seconds = 2.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--anomalies") {
      list_anomalies = true;
    } else if (arg == "--spans") {
      spans_path = tools::required_value("tytan-top", "--spans", argc, argv, &i);
    } else if (arg.rfind("--spans=", 0) == 0) {
      spans_path = arg.substr(std::strlen("--spans="));
    } else if (arg == "--heat") {
      heat_path = tools::required_value("tytan-top", "--heat", argc, argv, &i);
    } else if (arg.rfind("--heat=", 0) == 0) {
      heat_path = arg.substr(std::strlen("--heat="));
    } else if (arg == "--watch") {
      watch = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        watch_seconds = std::strtod(argv[++i], nullptr);
      }
    } else {
      return usage();
    }
  }

  if (!watch) {
    if (int rc = render(path, list_anomalies); rc != 0) {
      return rc;
    }
    if (!spans_path.empty()) {
      if (int rc = render_spans(spans_path); rc != 0) {
        return rc;
      }
    }
    return heat_path.empty() ? 0 : render_heat(heat_path);
  }
  for (;;) {
    std::printf("\x1b[2J\x1b[H");  // clear + home, terminal-top style
    if (int rc = render(path, list_anomalies); rc != 0) {
      return rc;
    }
    if (!spans_path.empty()) {
      if (int rc = render_spans(spans_path); rc != 0) {
        return rc;
      }
    }
    if (!heat_path.empty()) {
      if (int rc = render_heat(heat_path); rc != 0) {
        return rc;
      }
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(watch_seconds));
  }
}
