// Verifier-side infrastructure for TyTAN remote attestation (paper §3).
//
// The paper specifies the device side: the Remote Attest task MACs
// (nonce | id_t) under Ka, derived from Kp.  A real deployment also needs
// the other half, which this module provides:
//
//   * Manufacturer — the root of the key ecosystem: fuses a per-device Kp at
//     production, hands the derived Ka to authorized verifiers (so verifiers
//     never hold Kp itself);
//   * GoldenDatabase — the task-provider's ledger of released binaries and
//     their expected measurements (computed offline exactly as the RTM
//     computes them: SHA-1 over the un-relocated image, truncated to 64 bits);
//   * Challenger — a stateful challenge-response driver with nonce
//     freshness, single-use challenges (anti-replay), and expiry.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/remote_attest.h"
#include "isa/object.h"

namespace tytan::verifier {

/// Device identifier assigned at manufacturing.
using DeviceId = std::uint32_t;

/// The manufacturer's provisioning records.  In production this lives in an
/// HSM; here it models the trust root for tests, benches, and examples.
class Manufacturer {
 public:
  explicit Manufacturer(std::uint64_t seed = 0x7479'7461'6e21ull) : seed_(seed) {}

  /// Fuse a fresh Kp for a new device; returns its id.
  DeviceId provision_device();

  /// Kp for the factory (to configure core::Platform::Config::kp).
  [[nodiscard]] Result<crypto::Key128> device_kp(DeviceId device) const;

  /// Ka for an authorized verifier (Kp never leaves the manufacturer).
  [[nodiscard]] Result<crypto::Key128> attestation_key(DeviceId device) const;

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

 private:
  std::uint64_t seed_;
  std::map<DeviceId, crypto::Key128> devices_;
  DeviceId next_id_ = 1;
};

/// A released binary and its golden measurement.
struct Release {
  std::string name;
  unsigned version = 0;
  rtos::TaskIdentity identity{};
  crypto::Sha1Digest digest{};
};

class GoldenDatabase {
 public:
  /// Register a release; the golden id_t is computed from the object exactly
  /// as the device's RTM computes it (position-independent image hash).
  const Release& add_release(std::string name, unsigned version,
                             const isa::ObjectFile& object);

  [[nodiscard]] const Release* find(const rtos::TaskIdentity& identity) const;
  [[nodiscard]] const Release* latest(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return releases_.size(); }

 private:
  std::vector<Release> releases_;
};

/// Outcome of verifying one attestation report.
struct VerifyOutcome {
  enum class Code {
    kVerified,         ///< fresh, authentic, known release
    kUnknownChallenge, ///< nonce was never issued or already consumed
    kExpired,          ///< challenge outlived its validity window
    kBadMac,           ///< MAC does not verify under Ka
    kUnknownRelease,   ///< authentic device, but the measurement is not golden
    kStale,            ///< known release, but not the latest version
  };
  Code code;
  const Release* release = nullptr;  ///< set for kVerified / kStale

  [[nodiscard]] bool ok() const { return code == Code::kVerified; }
};

const char* verify_outcome_name(VerifyOutcome::Code code);

/// Stateful challenge-response verifier for one device.
class Challenger {
 public:
  Challenger(crypto::Key128 ka, const GoldenDatabase& db, std::uint64_t nonce_seed = 1,
             std::uint64_t validity_window = 64)
      : ka_(ka), db_(db), nonce_state_(nonce_seed ? nonce_seed : 1),
        validity_window_(validity_window) {}

  /// Issue a fresh challenge nonce (single use).
  std::uint64_t issue_challenge();

  /// Verify a report against an outstanding challenge.  Consumes the
  /// challenge whatever the outcome (a failed attempt burns the nonce).
  VerifyOutcome verify(const core::AttestationReport& report,
                       std::string_view expected_release_name);

  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }

 private:
  std::uint64_t next_nonce();

  crypto::Key128 ka_;
  const GoldenDatabase& db_;
  std::uint64_t nonce_state_;
  std::uint64_t validity_window_;
  std::uint64_t issue_counter_ = 0;
  std::map<std::uint64_t, std::uint64_t> outstanding_;  // nonce -> issue time
};

}  // namespace tytan::verifier
