#include "verifier/verifier.h"

#include "core/rtm.h"
#include "crypto/sha1.h"

namespace tytan::verifier {

// ---------------------------------------------------------------------------
// Manufacturer
// ---------------------------------------------------------------------------

DeviceId Manufacturer::provision_device() {
  // Derive a fresh per-device Kp from the manufacturing seed (models an HSM
  // key ladder; deterministic for reproducible tests).
  const DeviceId id = next_id_++;
  std::uint8_t context[12];
  store_le64(context, seed_);
  store_le32(context + 8, id);
  std::uint8_t seed_key[8];
  store_le64(seed_key, seed_);
  devices_[id] = crypto::derive_key128(seed_key, "tytan-device-kp", context);
  return id;
}

Result<crypto::Key128> Manufacturer::device_kp(DeviceId device) const {
  const auto it = devices_.find(device);
  if (it == devices_.end()) {
    return make_error(Err::kNotFound, "unknown device id");
  }
  return it->second;
}

Result<crypto::Key128> Manufacturer::attestation_key(DeviceId device) const {
  auto kp = device_kp(device);
  if (!kp.is_ok()) {
    return kp;
  }
  return core::RemoteAttest::derive_ka(*kp);
}

// ---------------------------------------------------------------------------
// GoldenDatabase
// ---------------------------------------------------------------------------

const Release& GoldenDatabase::add_release(std::string name, unsigned version,
                                           const isa::ObjectFile& object) {
  Release release;
  release.name = std::move(name);
  release.version = version;
  release.digest = crypto::Sha1::hash(object.image);
  release.identity = core::Rtm::identity_from_digest(release.digest);
  releases_.push_back(release);
  return releases_.back();
}

const Release* GoldenDatabase::find(const rtos::TaskIdentity& identity) const {
  for (const Release& release : releases_) {
    if (release.identity == identity) {
      return &release;
    }
  }
  return nullptr;
}

const Release* GoldenDatabase::latest(std::string_view name) const {
  const Release* best = nullptr;
  for (const Release& release : releases_) {
    if (release.name == name && (best == nullptr || release.version > best->version)) {
      best = &release;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Challenger
// ---------------------------------------------------------------------------

const char* verify_outcome_name(VerifyOutcome::Code code) {
  switch (code) {
    case VerifyOutcome::Code::kVerified: return "verified";
    case VerifyOutcome::Code::kUnknownChallenge: return "unknown-challenge";
    case VerifyOutcome::Code::kExpired: return "expired";
    case VerifyOutcome::Code::kBadMac: return "bad-mac";
    case VerifyOutcome::Code::kUnknownRelease: return "unknown-release";
    case VerifyOutcome::Code::kStale: return "stale";
  }
  return "?";
}

std::uint64_t Challenger::next_nonce() {
  // xorshift64*: deterministic, non-repeating for practical horizons.
  nonce_state_ ^= nonce_state_ >> 12;
  nonce_state_ ^= nonce_state_ << 25;
  nonce_state_ ^= nonce_state_ >> 27;
  return nonce_state_ * 0x2545'F491'4F6C'DD1Dull;
}

std::uint64_t Challenger::issue_challenge() {
  const std::uint64_t nonce = next_nonce();
  outstanding_[nonce] = ++issue_counter_;
  return nonce;
}

VerifyOutcome Challenger::verify(const core::AttestationReport& report,
                                 std::string_view expected_release_name) {
  const auto it = outstanding_.find(report.nonce);
  if (it == outstanding_.end()) {
    return {VerifyOutcome::Code::kUnknownChallenge, nullptr};
  }
  const std::uint64_t issued_at = it->second;
  outstanding_.erase(it);  // single use, success or not

  if (issue_counter_ - issued_at > validity_window_) {
    return {VerifyOutcome::Code::kExpired, nullptr};
  }
  if (!core::RemoteAttest::verify(ka_, report, report.nonce, report.identity)) {
    return {VerifyOutcome::Code::kBadMac, nullptr};
  }
  const Release* release = db_.find(report.identity);
  if (release == nullptr) {
    return {VerifyOutcome::Code::kUnknownRelease, nullptr};
  }
  const Release* latest = db_.latest(expected_release_name);
  if (latest == nullptr || release->name != expected_release_name ||
      release->version != latest->version) {
    return {VerifyOutcome::Code::kStale, release};
  }
  return {VerifyOutcome::Code::kVerified, release};
}

}  // namespace tytan::verifier
