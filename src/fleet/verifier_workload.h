// The fleet's remote-attestation verifier workload (paper §3/§4 at
// population scale): bring up N devices, deploy one released binary to all
// of them, let the fleet run, then challenge every device with a fresh
// nonce and verify every report against the golden database.
//
// This is the workload tytan-fleet and bench_fleet drive; the simulated
// results (reports, cycle counts, outcomes) are deterministic for a given
// config regardless of thread count — only the host-side timing varies.
#pragma once

#include <string>

#include "fleet/fleet.h"

namespace tytan::fleet {

struct WorkloadConfig {
  FleetConfig fleet{};
  /// Total simulated cycles per device between deploy and attestation.
  std::uint64_t cycles = 2'000'000;
  /// Attestation sweeps after the run (>= 1).  Each sweep is one round — one
  /// span trace id — per device; multiple sweeps exercise the nonce ledger
  /// (and give nonce-replay clauses a consumed challenge to replay).
  unsigned attest_sweeps = 1;
  /// Release registered in the golden database and deployed everywhere.
  std::string release_name = "fleet-fw";
  unsigned release_version = 1;
  /// Peak-32 source for the deployed task; empty selects the built-in
  /// heartbeat task (counter + kSysDelay loop).
  std::string task_source;
  /// Anomaly injection (tests / CI fault-injection smoke).  If >= 0:
  ///   rogue_device — that device's attested task is swapped for a binary the
  ///     golden database never blessed, so its attestation fails;
  ///   fault_device — that device additionally loads a task that trips the
  ///     EA-MPU once and is killed, spiking its fault counters.
  int rogue_device = -1;
  int fault_device = -1;
};

struct WorkloadResult {
  Status status;                 ///< first device or assembly error
  std::size_t devices = 0;
  std::size_t attested = 0;
  std::size_t verified = 0;
  Fleet::Totals totals{};
  // Host-side timing (wall clock; excluded from any determinism contract).
  double boot_seconds = 0.0;
  double run_seconds = 0.0;
  double attest_seconds = 0.0;
  double total_seconds = 0.0;
  [[nodiscard]] double devices_per_sec() const {
    return total_seconds > 0.0 ? static_cast<double>(devices) / total_seconds : 0.0;
  }
  [[nodiscard]] double attests_per_sec() const {
    return attest_seconds > 0.0 ? static_cast<double>(attested) / attest_seconds : 0.0;
  }
  [[nodiscard]] bool all_verified() const {
    return status.is_ok() && verified == devices;
  }
};

/// The built-in heartbeat task (secure, attestable, yields via kSysDelay).
[[nodiscard]] std::string default_task_source();

/// Run the full workload on `fleet`-many devices: bring_up, deploy, run,
/// attest_all, aggregate_metrics.  The fleet outlives the call through
/// `fleet` so callers can inspect per-device reports and metrics.
WorkloadResult run_verifier_workload(Fleet& fleet, const WorkloadConfig& config);

/// Convenience: construct a fleet from config.fleet and run on it.
WorkloadResult run_verifier_workload(const WorkloadConfig& config);

}  // namespace tytan::fleet
