#include "fleet/fleet.h"

#include "isa/assembler.h"

namespace tytan::fleet {

Fleet::Fleet(FleetConfig config)
    : config_(config),
      manufacturer_(config.manufacturer_seed),
      pool_(config.threads),
      telemetry_(config.telemetry.flight_events) {
  devices_.reserve(config_.device_count);
  for (std::size_t i = 0; i < config_.device_count; ++i) {
    devices_.push_back(std::make_unique<FleetDevice>());
  }
  if (config_.telemetry.enabled && config_.telemetry.default_rules) {
    telemetry_.install_default_rules(config_.telemetry.thresholds);
  }
}

Status Fleet::bring_up() {
  // Provisioning mutates the manufacturer's key ledger — sequential, and
  // deterministic in device order.
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    device->id_ = manufacturer_.provision_device();
  }
  // Platform construction and secure boot touch only per-device state.
  pool_.parallel_for(devices_.size(), [this](std::size_t i) {
    FleetDevice& device = *devices_[i];
    auto kp = manufacturer_.device_kp(device.id_);
    if (!kp.is_ok()) {
      device.status_ = kp.status();
      return;
    }
    device.platform_ = core::PlatformBuilder()
                           .costs(config_.base.costs)
                           .tick_period(config_.base.tick_period)
                           .lint(config_.base.lint_mode, config_.base.lint_config)
                           .kp(*kp)
                           .rng_seed(config_.rng_seed_base == 0
                                         ? 0
                                         : config_.rng_seed_base + i)
                           .log_context(&device.log_)
                           .fault_plan(i == config_.fault_plan_device
                                           ? config_.fault_plan
                                           : fault::FaultPlan{})
                           .build();
    if (config_.enable_obs) {
      device.platform_->machine().obs().enable();
    }
    obs::SpanRecorder& spans = device.platform_->machine().obs().spans();
    spans.set_device(device.id_);
    if (config_.spans) {
      spans.enable();
    }
    if (config_.heat) {
      device.platform_->machine().enable_heat(/*time_dispatch=*/false);
    }
    if (auto boot = device.platform_->boot(); !boot.is_ok()) {
      device.status_ = boot.status();
    }
  });
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    if (!device->status_.is_ok()) {
      return device->status_;
    }
  }
  return Status::ok();
}

Status Fleet::deploy(std::string_view source, std::string_view release_name,
                     unsigned version) {
  auto object = isa::assemble(source);
  if (!object.is_ok()) {
    return object.status();
  }
  const verifier::Release& release =
      golden_.add_release(std::string(release_name), version, *object);
  // Each device loads its own copy; the shared ObjectFile is read-only from
  // here on.
  const isa::ObjectFile& image = *object;
  pool_.parallel_for(devices_.size(), [&](std::size_t i) {
    FleetDevice& device = *devices_[i];
    if (!device.status_.is_ok()) {
      return;
    }
    core::LoadParams params{.name = std::string(release_name)};
    // The golden identity gates the load: a corrupt image (bit rot, fault
    // injection) is quarantined by the loader instead of entering service.
    params.expected_identity = release.identity;
    auto handle = device.platform_->load_task(isa::ObjectFile(image), params);
    if (!handle.is_ok() && handle.status().code() == Err::kCorrupt) {
      // Quarantined: retry once from the pristine image (transient transport
      // corruption — e.g. a tbf-bitflip clause — does not recur).
      device.quarantines_ += 1;
      handle = device.platform_->load_task(isa::ObjectFile(image), params);
    }
    if (!handle.is_ok()) {
      device.status_ = handle.status();
      return;
    }
    device.task_ = *handle;
  });
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    if (!device->status_.is_ok()) {
      return device->status_;
    }
  }
  return Status::ok();
}

void Fleet::run(std::uint64_t cycles) {
  const std::uint64_t quantum = config_.quantum == 0 ? cycles : config_.quantum;
  for (std::uint64_t done = 0; done < cycles; done += quantum) {
    const std::uint64_t slice = std::min(quantum, cycles - done);
    pool_.parallel_for(devices_.size(), [&](std::size_t i) {
      FleetDevice& device = *devices_[i];
      if (device.status_.is_ok() && device.platform_->booted()) {
        device.platform_->run_for(slice);
      }
    });
    // Snapshot at the round barrier, on this thread, in device order — the
    // workers are parked, so telemetry sees a consistent fleet and its output
    // is byte-identical whatever the thread count.
    ++rounds_run_;
    if (config_.telemetry.enabled && config_.telemetry.every_rounds != 0 &&
        rounds_run_ % config_.telemetry.every_rounds == 0) {
      snapshot_all();
    }
  }
}

std::size_t Fleet::attest_all(std::string_view release_name) {
  // Challenger construction reads the manufacturer ledger (const) — still
  // done here, per device, so Ka never has to be stored fleet-side.
  pool_.parallel_for(devices_.size(), [&](std::size_t i) {
    FleetDevice& device = *devices_[i];
    if (!device.status_.is_ok() || device.task_ == rtos::kNoTask) {
      return;
    }
    if (device.challenger_ == nullptr) {
      auto ka = manufacturer_.attestation_key(device.id_);
      if (!ka.is_ok()) {
        device.status_ = ka.status();
        return;
      }
      // Distinct, deterministic nonce stream per device.
      device.challenger_ = std::make_unique<verifier::Challenger>(
          *ka, golden_, /*nonce_seed=*/0x6e6f'6e63'6500ull + device.id_);
    }
    fault::FaultEngine* engine = device.platform_->fault_engine();
    // One trace per round (the whole retry loop), shared challenger<->prover:
    // the round root opens here and every phase below nests under it.
    obs::SpanRecorder& spans = device.platform_->machine().obs().spans();
    device.attest_rounds_ += 1;
    const obs::SpanRecorder::SpanId round = spans.begin_trace(
        trace_id(device.id_, device.attest_rounds_), obs::SpanPhase::kAttestRound,
        device.task_);
    unsigned attempt = 0;
    while (true) {
      obs::SpanRecorder::SpanId phase =
          spans.begin(obs::SpanPhase::kNonceGen, device.task_);
      const std::uint64_t previous_nonce = device.nonce_;
      std::uint64_t nonce = device.challenger_->issue_challenge();
      spans.end(phase, obs::SpanOutcome::kOk);
      if (engine != nullptr && engine->on_attest(device.attest_total_ + 1) &&
          previous_nonce != 0) {
        // Replay the already-consumed challenge; the verifier's single-use
        // nonce ledger must reject the report (kUnknownChallenge).  The
        // kFaultInject lands as a note on the open round span.
        nonce = previous_nonce;
        device.platform_->machine().obs().emit(
            obs::EventKind::kFaultInject, -1,
            static_cast<std::uint32_t>(fault::FaultClass::kNonceReplay),
            static_cast<std::uint32_t>(device.attest_total_ + 1));
      }
      phase = spans.begin(obs::SpanPhase::kChallengeDeliver, device.task_);
      device.nonce_ = nonce;
      device.attest_total_ += 1;
      spans.end(phase, obs::SpanOutcome::kOk);
      // attest_task opens the prover's hmac-compute span under `round`.
      auto report = device.platform_->remote_attest().attest_task(device.task_,
                                                                  nonce);
      if (!report.is_ok()) {
        device.status_ = report.status();
        device.attest_failed_ += 1;
        spans.end(round, obs::SpanOutcome::kFailed);
        return;
      }
      phase = spans.begin(obs::SpanPhase::kReportReturn, device.task_);
      device.report_ = *report;
      device.attested_ = true;
      spans.end(phase, obs::SpanOutcome::kOk);
      phase = spans.begin(obs::SpanPhase::kVerify, device.task_);
      device.outcome_ = device.challenger_->verify(device.report_, release_name);
      spans.end(phase, device.outcome_.ok() ? obs::SpanOutcome::kOk
                                            : obs::SpanOutcome::kFailed);
      if (device.outcome_.ok()) {
        device.attest_verified_ += 1;
        if (attempt > 0) {
          // Recovered via retry: note it against the engine (if the failure
          // was injected) and mark the event for telemetry either way.
          device.attest_recoveries_ += 1;
          if (engine != nullptr) {
            engine->note_recovery(fault::FaultClass::kNonceReplay);
          }
          device.platform_->machine().obs().emit(
              obs::EventKind::kFaultRecover, -1,
              static_cast<std::uint32_t>(fault::RecoveryKind::kAttestRetry),
              attempt);
        }
        spans.end(round, attempt > 0 ? obs::SpanOutcome::kRetried
                                     : obs::SpanOutcome::kOk);
        return;
      }
      device.attest_failed_ += 1;
      if (attempt >= config_.attest_retries) {
        spans.end(round, obs::SpanOutcome::kFailed);
        return;  // out of retries — the failed verdict stands (rogue device)
      }
      // Bounded exponential backoff in simulated time before re-attesting.
      phase = spans.begin(obs::SpanPhase::kRetryBackoff, device.task_);
      device.platform_->run_for(config_.attest_backoff_cycles << attempt);
      spans.end(phase, obs::SpanOutcome::kOk);
      ++attempt;
    }
  });
  std::size_t verified = 0;
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    if (device->attested_ && device->outcome_.ok()) {
      ++verified;
    }
  }
  if (config_.telemetry.enabled) {
    snapshot_all();  // catch attestation verdicts at the sweep barrier
  }
  return verified;
}

void Fleet::aggregate_metrics() {
  metrics_.clear();
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    if (device->platform_ == nullptr) {
      continue;
    }
    obs::Hub& hub = device->platform_->machine().obs();
    if (obs::HeatRecorder* heat = device->platform_->machine().heat(); heat != nullptr) {
      heat->flush();  // close the open block so counts are exact
    }
    if (hub.enabled() || device->platform_->machine().heat() != nullptr) {
      hub.flush();
      metrics_.merge_from(hub.metrics());
    }
  }
  const Totals t = totals();
  metrics_.counter("fleet.devices").inc(devices_.size());
  metrics_.counter("fleet.cycles").inc(t.cycles);
  metrics_.counter("fleet.instructions").inc(t.instructions);
  metrics_.counter("fleet.interrupts").inc(t.interrupts);
  metrics_.counter("fleet.faults").inc(t.faults);
  metrics_.counter("fleet.attestations").inc(t.attested);
  metrics_.counter("fleet.attestations_verified").inc(t.verified);
}

std::string Fleet::spans_jsonl() const {
  std::string out;
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    if (device->platform_ == nullptr) {
      continue;
    }
    out += device->platform_->machine().obs().spans().to_jsonl();
  }
  return out;
}

void Fleet::snapshot_all() {
  std::vector<obs::HealthSnapshot> round;
  std::vector<const obs::EventBus*> buses;
  round.reserve(devices_.size());
  buses.reserve(devices_.size());
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    if (device->platform_ == nullptr) {
      continue;
    }
    round.push_back(snapshot_device(*device));
    obs::Hub& hub = device->platform_->machine().obs();
    buses.push_back(hub.enabled() ? &hub.bus() : nullptr);
  }
  telemetry_.record_round(round, [&](std::size_t i) { return buses[i]; });
}

obs::HealthSnapshot Fleet::snapshot_device(FleetDevice& dev) {
  obs::HealthSnapshot s;
  core::Platform& platform = *dev.platform_;
  const sim::Machine& machine = platform.machine();
  s.device = dev.id_;
  s.seq = ++dev.telemetry_seq_;
  s.cycle = machine.cycles();
  s.instructions = machine.instructions_executed();
  s.faults = machine.fault_count();
  s.fault_kills = platform.kernel().fault_kills();
  s.interrupts = machine.interrupts_dispatched();
  s.syscalls = platform.kernel().syscall_count();
  s.ipc_delivered = platform.ipc_proxy().messages_delivered();
  s.ipc_rejects = platform.ipc_proxy().messages_rejected();
  s.attest_total = dev.attest_total_;
  s.attest_verified = dev.attest_verified_;
  s.attest_failed = dev.attest_failed_;
  s.watchdog_restarts = platform.kernel().watchdog_restarts();
  if (const fault::FaultEngine* engine = platform.fault_engine();
      engine != nullptr) {
    s.faults_injected = engine->injected_total();
    s.fault_recoveries = engine->recovered_total();
  }
  s.halted = machine.halted();
  const obs::Hub& hub = machine.obs();
  if (hub.spans().enabled()) {
    s.spans_recorded = hub.spans().size();
    if (const obs::Histogram* rounds =
            hub.metrics().find_histogram("span.attest-round.cycles");
        rounds != nullptr) {
      s.attest_round_p99 = rounds->p99();
    }
  }
  if (hub.enabled()) {
    // Context switches have no component counter — they only exist as the
    // hub's events.ctx-save metric, so the field reads 0 with obs disabled.
    const obs::Counter* ctx = hub.metrics().find_counter("events.ctx-save");
    s.ctx_switches = ctx != nullptr ? ctx->value() : 0;
    s.events_dropped = hub.bus().dropped();
  }
  return s;
}

Status Fleet::deploy_rogue(std::size_t index, std::string_view source) {
  if (index >= devices_.size()) {
    return make_error(Err::kInvalidArgument, "deploy_rogue: no such device");
  }
  FleetDevice& device = *devices_[index];
  if (!device.status_.is_ok()) {
    return device.status_;
  }
  auto object = isa::assemble(source);
  if (!object.is_ok()) {
    return object.status();
  }
  // Deliberately NOT added to golden_ — the loaded task measures to an
  // identity the verifier has never blessed, so verify() => kUnknownRelease.
  auto handle = device.platform_->load_task(std::move(*object), {.name = "rogue"});
  if (!handle.is_ok()) {
    return handle.status();
  }
  device.task_ = *handle;
  return Status::ok();
}

Fleet::Totals Fleet::totals() const {
  Totals t;
  for (const std::unique_ptr<FleetDevice>& device : devices_) {
    if (device->platform_ == nullptr) {
      continue;
    }
    const sim::Machine& machine = device->platform_->machine();
    t.cycles += machine.cycles();
    t.instructions += machine.instructions_executed();
    t.interrupts += machine.interrupts_dispatched();
    t.faults += machine.fault_count();
    if (device->attested_) {
      ++t.attested;
      if (device->outcome_.ok()) {
        ++t.verified;
      }
    }
  }
  return t;
}

}  // namespace tytan::fleet
