#include "fleet/thread_pool.h"

namespace tytan::fleet {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  pending_ = count;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::worker() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) {
      return;
    }
    seen = generation_;
    while (next_ < count_) {
      const std::size_t index = next_++;
      lock.unlock();
      (*fn_)(index);
      lock.lock();
      if (--pending_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace tytan::fleet
