#include "fleet/verifier_workload.h"

#include <chrono>

namespace tytan::fleet {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Functionally a heartbeat, but a different image — so it measures to an
/// identity the golden database has never seen.
std::string rogue_task_source() {
  return R"(
    .secure
    .stack 256
    .entry main
main:
    addi r6, 3          ; beats in threes — definitely not the blessed build
    movi r0, 2          ; kSysDelay
    movi r1, 5
    int  0x21
    jmp  main
)";
}

/// Reads address 0 — an EA-MPU data violation; the kernel kills the task on
/// its first quantum, bumping fault_count and fault_kills exactly once.
std::string fault_task_source() {
  return R"(
    .secure
    .stack 128
    .entry main
main:
    li   r2, 0
    ldw  r3, [r2]
h:  jmp  h
)";
}
}  // namespace

std::string default_task_source() {
  return R"(
    .secure
    .stack 256
    .entry main
main:
    addi r6, 1          ; heartbeat counter
    movi r0, 2          ; kSysDelay
    movi r1, 5          ; sleep five ticks
    int  0x21
    jmp  main
)";
}

WorkloadResult run_verifier_workload(Fleet& fleet, const WorkloadConfig& config) {
  WorkloadResult result;
  result.devices = fleet.size();
  const Clock::time_point t0 = Clock::now();

  result.status = fleet.bring_up();
  result.boot_seconds = seconds_since(t0);
  if (result.status.is_ok()) {
    const std::string source =
        config.task_source.empty() ? default_task_source() : config.task_source;
    result.status =
        fleet.deploy(source, config.release_name, config.release_version);
  }

  if (result.status.is_ok() && config.rogue_device >= 0 &&
      static_cast<std::size_t>(config.rogue_device) < fleet.size()) {
    result.status = fleet.deploy_rogue(
        static_cast<std::size_t>(config.rogue_device), rogue_task_source());
  }
  if (result.status.is_ok() && config.fault_device >= 0 &&
      static_cast<std::size_t>(config.fault_device) < fleet.size()) {
    auto handle =
        fleet.device(static_cast<std::size_t>(config.fault_device))
            .platform()
            .load_task_source(fault_task_source(), {.name = "fault-probe"});
    if (!handle.is_ok()) {
      result.status = handle.status();
    }
  }

  if (result.status.is_ok()) {
    const Clock::time_point run_start = Clock::now();
    fleet.run(config.cycles);
    result.run_seconds = seconds_since(run_start);

    const Clock::time_point attest_start = Clock::now();
    const unsigned sweeps = config.attest_sweeps == 0 ? 1 : config.attest_sweeps;
    for (unsigned sweep = 0; sweep < sweeps; ++sweep) {
      result.verified = fleet.attest_all(config.release_name);
    }
    result.attest_seconds = seconds_since(attest_start);
  }

  fleet.aggregate_metrics();
  result.totals = fleet.totals();
  result.attested = result.totals.attested;
  result.total_seconds = seconds_since(t0);
  return result;
}

WorkloadResult run_verifier_workload(const WorkloadConfig& config) {
  Fleet fleet(config.fleet);
  return run_verifier_workload(fleet, config);
}

}  // namespace tytan::fleet
