#include "fleet/verifier_workload.h"

#include <chrono>

namespace tytan::fleet {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

std::string default_task_source() {
  return R"(
    .secure
    .stack 256
    .entry main
main:
    addi r6, 1          ; heartbeat counter
    movi r0, 2          ; kSysDelay
    movi r1, 5          ; sleep five ticks
    int  0x21
    jmp  main
)";
}

WorkloadResult run_verifier_workload(Fleet& fleet, const WorkloadConfig& config) {
  WorkloadResult result;
  result.devices = fleet.size();
  const Clock::time_point t0 = Clock::now();

  result.status = fleet.bring_up();
  result.boot_seconds = seconds_since(t0);
  if (result.status.is_ok()) {
    const std::string source =
        config.task_source.empty() ? default_task_source() : config.task_source;
    result.status =
        fleet.deploy(source, config.release_name, config.release_version);
  }

  if (result.status.is_ok()) {
    const Clock::time_point run_start = Clock::now();
    fleet.run(config.cycles);
    result.run_seconds = seconds_since(run_start);

    const Clock::time_point attest_start = Clock::now();
    result.verified = fleet.attest_all(config.release_name);
    result.attest_seconds = seconds_since(attest_start);
  }

  fleet.aggregate_metrics();
  result.totals = fleet.totals();
  result.attested = result.totals.attested;
  result.total_seconds = seconds_since(t0);
  return result;
}

WorkloadResult run_verifier_workload(const WorkloadConfig& config) {
  Fleet fleet(config.fleet);
  return run_verifier_workload(fleet, config);
}

}  // namespace tytan::fleet
