// A fleet of independent TyTAN platforms driven concurrently.
//
// The fleet owns N fully self-contained core::Platform instances — each with
// its own machine, devices, per-device Kp (provisioned by a
// verifier::Manufacturer), per-device RNG seed, and per-device LogContext —
// and advances them on a fixed-size thread pool in round-robin cycle quanta:
// every round, each device runs `quantum` simulated cycles, with a barrier
// between rounds.
//
// Thread-safety invariant: one thread drives a Platform at a time, and
// Platforms share no mutable state, so any device may run on any worker in
// any round without synchronization beyond the round barrier.  A device's
// simulation is therefore byte-identical regardless of thread count — the
// property tests/test_fleet.cc pins down.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/platform.h"
#include "core/platform_builder.h"
#include "fleet/thread_pool.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "verifier/verifier.h"

namespace tytan::fleet {

/// Fleet-level telemetry: health snapshots at round barriers, anomaly rules,
/// flight-recorder dumps.  Off by default; snapshot collection runs on the
/// caller's thread in device order, so telemetry output is deterministic
/// whatever the worker-thread count.
struct TelemetryConfig {
  bool enabled = false;
  /// Snapshot cadence: every N round barriers (and once after attest_all).
  std::uint64_t every_rounds = 1;
  /// Last-N events captured from a device's bus when a rule trips.
  std::size_t flight_events = obs::TelemetryHub::kDefaultFlightEvents;
  /// Install the built-in rule set (attestation failure, fault spike,
  /// stalled device, event drops) with these thresholds.
  bool default_rules = true;
  obs::AnomalyThresholds thresholds{};
};

struct FleetConfig {
  std::size_t device_count = 1;
  std::size_t threads = 1;
  /// Round-robin slice: simulated cycles each device advances per round.
  std::uint64_t quantum = 100'000;
  /// Seed for the manufacturer's key-provisioning ladder (per-device Kp).
  std::uint64_t manufacturer_seed = 0x7479'7461'6e21ull;
  /// Device i's nonce RNG is seeded rng_seed_base + i (0 => device default).
  std::uint64_t rng_seed_base = 0x5eed'0000'0000'0001ull;
  /// Enable per-device observability (event bus + metrics + accounting) so
  /// fleet-level metrics can be aggregated.  Costs host time, never cycles.
  bool enable_obs = true;
  /// Record attestation spans (obs/span.h): per-round trace ids, typed
  /// protocol phases, fault annotations.  Off by default — dormant spans are
  /// a single branch per site and never a simulated cycle.
  bool spans = false;
  /// Record execution-heat profiles (obs/heat.h) on every device, aggregated
  /// into the fleet registry by aggregate_metrics().  Devices run with
  /// dispatch timing OFF so fleet artifacts stay byte-identical across
  /// thread counts (host nanoseconds are non-deterministic; counts are not).
  bool heat = false;
  /// Template for every device's Platform::Config; kp, rng_seed, and log are
  /// overridden per device.
  core::Platform::Config base{};
  /// Health snapshots + anomaly detection (off by default).
  TelemetryConfig telemetry{};
  /// Fault-injection plan installed on device `fault_plan_device` only (the
  /// rest of the fleet is the healthy control group).  Empty = no engine.
  fault::FaultPlan fault_plan{};
  std::size_t fault_plan_device = 0;
  /// Graceful degradation for failed attestations: re-attest up to this many
  /// times, backing off exponentially (backoff << attempt simulated cycles on
  /// the device), before the sweep's verdict stands.  0 keeps the historical
  /// one-shot behaviour.
  unsigned attest_retries = 0;
  std::uint64_t attest_backoff_cycles = 25'000;
};

/// One simulated device plus the fleet-side state needed to drive and
/// attest it.  All members are exclusive to the device; the fleet hands a
/// device to at most one worker thread at a time.
class FleetDevice {
 public:
  [[nodiscard]] verifier::DeviceId id() const { return id_; }
  [[nodiscard]] core::Platform& platform() { return *platform_; }
  [[nodiscard]] const core::Platform& platform() const { return *platform_; }
  [[nodiscard]] LogContext& log_context() { return log_; }
  [[nodiscard]] rtos::TaskHandle task() const { return task_; }
  [[nodiscard]] std::uint64_t nonce() const { return nonce_; }
  [[nodiscard]] const core::AttestationReport& report() const { return report_; }
  [[nodiscard]] const verifier::VerifyOutcome& outcome() const { return outcome_; }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] bool attested() const { return attested_; }
  /// Cumulative attestation verdicts over every attest_all() sweep.
  [[nodiscard]] std::uint64_t attest_total() const { return attest_total_; }
  [[nodiscard]] std::uint64_t attest_verified() const { return attest_verified_; }
  [[nodiscard]] std::uint64_t attest_failed() const { return attest_failed_; }
  /// Sweeps that recovered (verified) only after at least one retry.
  [[nodiscard]] std::uint64_t attest_recoveries() const { return attest_recoveries_; }
  /// Completed attest_all() rounds for this device (one trace id each).
  [[nodiscard]] std::uint64_t attest_rounds() const { return attest_rounds_; }
  /// Deploy-time loads rejected by the golden-identity gate, then retried.
  [[nodiscard]] std::uint64_t quarantines() const { return quarantines_; }

 private:
  friend class Fleet;

  verifier::DeviceId id_ = 0;
  LogContext log_;
  std::unique_ptr<core::Platform> platform_;
  std::unique_ptr<verifier::Challenger> challenger_;
  rtos::TaskHandle task_ = rtos::kNoTask;
  std::uint64_t nonce_ = 0;
  bool attested_ = false;
  core::AttestationReport report_{};
  verifier::VerifyOutcome outcome_{verifier::VerifyOutcome::Code::kUnknownChallenge,
                                   nullptr};
  Status status_;  ///< first error hit while driving this device
  std::uint64_t attest_total_ = 0;
  std::uint64_t attest_verified_ = 0;
  std::uint64_t attest_failed_ = 0;
  std::uint64_t attest_recoveries_ = 0;
  std::uint64_t attest_rounds_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t telemetry_seq_ = 0;  ///< per-device HealthSnapshot sequence
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  /// Provision a Kp for every device (sequential — the manufacturer is the
  /// one shared trust root), then build and boot every platform in parallel.
  Status bring_up();

  /// Assemble `source` once, register it in the golden database as
  /// `release_name` version `version`, and load it on every device in
  /// parallel.  bring_up() must have succeeded.
  Status deploy(std::string_view source, std::string_view release_name,
                unsigned version);

  /// Advance every device by `cycles` simulated cycles, in round-robin
  /// quanta of config().quantum with a barrier between rounds.
  void run(std::uint64_t cycles);

  /// Challenge-response attestation sweep: issue a fresh nonce per device,
  /// collect the device's report, verify it against the golden database.
  /// Returns the number of devices whose reports verified.
  std::size_t attest_all(std::string_view release_name);

  /// Fold every device's obs metrics into the fleet registry (no-op for
  /// devices without obs enabled) and refresh the fleet rollup counters.
  void aggregate_metrics();

  // -- access ----------------------------------------------------------------
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] std::size_t size() const { return devices_.size(); }
  [[nodiscard]] FleetDevice& device(std::size_t i) { return *devices_[i]; }
  [[nodiscard]] const FleetDevice& device(std::size_t i) const { return *devices_[i]; }
  [[nodiscard]] verifier::Manufacturer& manufacturer() { return manufacturer_; }
  [[nodiscard]] verifier::GoldenDatabase& golden_db() { return golden_; }
  /// Fleet-level metrics: per-device registries merged, plus fleet.* rollups
  /// (devices, cycles, instructions, attestations issued/verified).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// Telemetry hub: health snapshots, anomaly records, flight-recorder dumps.
  /// Populated only when config().telemetry.enabled.
  [[nodiscard]] obs::TelemetryHub& telemetry() { return telemetry_; }
  [[nodiscard]] const obs::TelemetryHub& telemetry() const { return telemetry_; }

  /// Concatenate every device's span recorder as JSONL, sequentially in
  /// device order — byte-identical whatever the worker-thread count (the
  /// same discipline as telemetry).  Empty unless config().spans.
  [[nodiscard]] std::string spans_jsonl() const;

  /// Deterministic trace id for device `device_id`'s round `round` (1-based).
  [[nodiscard]] static std::uint64_t trace_id(std::uint32_t device_id,
                                              std::uint64_t round) {
    return (static_cast<std::uint64_t>(device_id) << 20) | round;
  }

  /// Snapshot every device's health into the telemetry hub, running anomaly
  /// rules against the fleet baseline.  Called automatically at round
  /// barriers (per config().telemetry.every_rounds) and after attest_all();
  /// callable directly for ad-hoc collection.  Always sequential in device
  /// order, so telemetry output never depends on the worker-thread count.
  void snapshot_all();

  /// Replace device `index`'s workload with `source` WITHOUT registering it
  /// in the golden database — the device now runs a binary the verifier has
  /// no golden identity for, so its next attestation fails.  Test/CI hook
  /// for seeding attestation-failure anomalies.
  Status deploy_rogue(std::size_t index, std::string_view source);

  struct Totals {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t faults = 0;
    std::size_t attested = 0;
    std::size_t verified = 0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  [[nodiscard]] obs::HealthSnapshot snapshot_device(FleetDevice& dev);

  FleetConfig config_;
  verifier::Manufacturer manufacturer_;
  verifier::GoldenDatabase golden_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<FleetDevice>> devices_;
  obs::MetricsRegistry metrics_;
  obs::TelemetryHub telemetry_;
  std::uint64_t rounds_run_ = 0;  ///< round barriers crossed (snapshot cadence)
};

}  // namespace tytan::fleet
