// Fixed-size worker pool for the fleet runner.
//
// The only primitive the fleet needs is a blocking parallel_for: run
// fn(0..count-1) across the workers, return when every index completed.
// Indices are claimed dynamically (an atomic cursor under the pool mutex),
// so a device that halts early never stalls a whole stripe, and the barrier
// at the end of each call is what gives the fleet its round-robin cycle
// quanta semantics.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tytan::fleet {

class ThreadPool {
 public:
  /// `threads` == 0 is coerced to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Invoke fn(i) for every i in [0, count), distributed over the workers;
  /// blocks until all invocations return.  fn must not throw.  Not
  /// reentrant — one parallel_for at a time.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker();

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for a new generation
  std::condition_variable done_cv_;   ///< caller waits for pending_ == 0
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tytan::fleet
