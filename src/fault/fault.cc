#include "fault/fault.h"

#include <algorithm>
#include <charconv>

namespace tytan::fault {
namespace {

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(FaultClass::kNumClasses)>
    kClassNames = {"tbf-bitflip", "storage-corrupt", "nonce-replay",
                   "ipc-drop", "task-stall"};

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

Status clause_error(std::string_view clause, const std::string& why) {
  return make_error(Err::kInvalidArgument,
                    "fault plan clause '" + std::string(clause) + "': " + why);
}

/// Strict full-width decimal parse (the plan grammar has no hex or signs).
bool parse_number(std::string_view text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

std::string_view fault_class_name(FaultClass cls) {
  const auto index = static_cast<std::size_t>(cls);
  return index < kClassNames.size() ? kClassNames[index] : "invalid";
}

std::string FaultSpec::to_string() const {
  std::string out{fault_class_name(cls)};
  switch (cls) {
    case FaultClass::kTbfBitflip:
      out += "@load";
      if (at_count != 0) {
        out += "#" + std::to_string(at_count);
      }
      if (!target.empty()) {
        out += ":" + target;
      }
      break;
    case FaultClass::kStorageCorrupt:
      if (at_cycle != 0) {
        out += "@cycle=" + std::to_string(at_cycle);
      }
      out += ":slot" + std::to_string(slot);
      break;
    case FaultClass::kNonceReplay:
      out += "@attest#" + std::to_string(at_count == 0 ? 1 : at_count);
      break;
    case FaultClass::kIpcDrop:
      out += ":pct=" + std::to_string(pct);
      if (max_fires != 0) {
        out += ",count=" + std::to_string(max_fires);
      }
      break;
    case FaultClass::kTaskStall:
      if (at_cycle != 0) {
        out += "@cycle=" + std::to_string(at_cycle);
      }
      out += ":" + target;
      break;
    case FaultClass::kNumClasses:
      break;
  }
  if (bit >= 0) {
    out += ",bit=" + std::to_string(bit);
  }
  return out;
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = std::min(text.find(';', begin), text.size());
    const std::string_view clause = trim(text.substr(begin, end - begin));
    begin = end + 1;
    if (clause.empty()) {
      continue;
    }

    // Split off the class name (up to '@', ':' or ',').
    const std::size_t name_end = std::min(
        {clause.find('@'), clause.find(':'), clause.find(','), clause.size()});
    const std::string_view name = clause.substr(0, name_end);
    FaultSpec spec;
    for (std::size_t i = 0; i < kClassNames.size(); ++i) {
      if (name == kClassNames[i]) {
        spec.cls = static_cast<FaultClass>(i);
        break;
      }
    }
    if (spec.cls == FaultClass::kNumClasses) {
      return clause_error(clause, "unknown fault class '" + std::string(name) + "'");
    }

    // Optional '@trigger' — everything between '@' and the next ':' or ','.
    std::string_view rest = clause.substr(name_end);
    std::string_view trigger;
    if (!rest.empty() && rest.front() == '@') {
      rest.remove_prefix(1);
      const std::size_t trig_end =
          std::min({rest.find(':'), rest.find(','), rest.size()});
      trigger = rest.substr(0, trig_end);
      rest = rest.substr(trig_end);
    }

    // Optional ':target' — up to the next ','.
    std::string_view target;
    if (!rest.empty() && rest.front() == ':') {
      rest.remove_prefix(1);
      const std::size_t target_end = std::min(rest.find(','), rest.size());
      target = trim(rest.substr(0, target_end));
      rest = rest.substr(target_end);
    }

    // Optional ',key=value' parameters.
    bool has_pct_param = false;
    bool has_count_param = false;
    while (!rest.empty() && rest.front() == ',') {
      rest.remove_prefix(1);
      const std::size_t param_end = std::min(rest.find(','), rest.size());
      const std::string_view param = trim(rest.substr(0, param_end));
      rest = rest.substr(param_end);
      const std::size_t eq = param.find('=');
      if (eq == std::string_view::npos) {
        return clause_error(clause, "parameter '" + std::string(param) +
                                        "' is not key=value");
      }
      const std::string_view key = param.substr(0, eq);
      const std::string_view value = param.substr(eq + 1);
      std::uint64_t number = 0;
      if (!parse_number(value, &number)) {
        return clause_error(clause, "parameter '" + std::string(key) +
                                        "' needs a decimal value, got '" +
                                        std::string(value) + "'");
      }
      if (key == "bit") {
        spec.bit = static_cast<std::int64_t>(number);
      } else if (key == "pct" && spec.cls == FaultClass::kIpcDrop) {
        spec.pct = static_cast<std::uint32_t>(number);
        has_pct_param = true;
      } else if (key == "count" && spec.cls == FaultClass::kIpcDrop) {
        spec.max_fires = number;
        has_count_param = true;
      } else {
        return clause_error(clause, "unknown parameter '" + std::string(key) +
                                        "' for class " +
                                        std::string(fault_class_name(spec.cls)));
      }
    }

    // Interpret the trigger against the class.
    if (!trigger.empty()) {
      if (trigger == "load" || trigger.substr(0, 5) == "load#") {
        if (spec.cls != FaultClass::kTbfBitflip) {
          return clause_error(clause, "trigger '@load' only applies to tbf-bitflip");
        }
        if (trigger.size() > 5 && !parse_number(trigger.substr(5), &spec.at_count)) {
          return clause_error(clause, "bad load count in trigger");
        }
      } else if (trigger.substr(0, 7) == "attest#") {
        if (spec.cls != FaultClass::kNonceReplay) {
          return clause_error(clause, "trigger '@attest#N' only applies to nonce-replay");
        }
        if (!parse_number(trigger.substr(7), &spec.at_count) || spec.at_count == 0) {
          return clause_error(clause, "bad attestation index in trigger");
        }
      } else if (trigger.substr(0, 6) == "cycle=") {
        if (spec.cls != FaultClass::kStorageCorrupt &&
            spec.cls != FaultClass::kTaskStall) {
          return clause_error(
              clause, "trigger '@cycle=N' applies to storage-corrupt/task-stall");
        }
        if (!parse_number(trigger.substr(6), &spec.at_cycle)) {
          return clause_error(clause, "bad cycle count in trigger");
        }
      } else {
        return clause_error(clause, "unknown trigger '" + std::string(trigger) + "'");
      }
    }

    // Interpret the target against the class.
    switch (spec.cls) {
      case FaultClass::kTbfBitflip:
      case FaultClass::kTaskStall:
        spec.target = std::string(target);
        if (spec.cls == FaultClass::kTaskStall && spec.target.empty()) {
          return clause_error(clause, "task-stall needs a ':task-name' target");
        }
        break;
      case FaultClass::kStorageCorrupt: {
        if (target.substr(0, 4) != "slot") {
          return clause_error(clause, "storage-corrupt needs a ':slotN' target");
        }
        std::uint64_t slot = 0;
        if (!parse_number(target.substr(4), &slot) || slot > 0xFFFF'FFFFull) {
          return clause_error(clause, "bad slot number in target");
        }
        spec.slot = static_cast<std::uint32_t>(slot);
        spec.has_slot = true;
        break;
      }
      case FaultClass::kIpcDrop: {
        // pct may arrive as the target ("ipc-drop:pct=5") or as a parameter.
        if (!target.empty()) {
          if (target.substr(0, 4) != "pct=") {
            return clause_error(clause, "ipc-drop target must be 'pct=N'");
          }
          std::uint64_t pct = 0;
          if (!parse_number(target.substr(4), &pct) || pct > 100) {
            return clause_error(clause, "ipc-drop pct must be 0..100");
          }
          spec.pct = static_cast<std::uint32_t>(pct);
          has_pct_param = true;
        }
        if (!has_pct_param) {
          return clause_error(clause, "ipc-drop needs pct=N");
        }
        if (spec.pct > 100) {
          return clause_error(clause, "ipc-drop pct must be 0..100");
        }
        if (!has_count_param) {
          spec.max_fires = 0;  // rate-based: unlimited unless capped
        }
        break;
      }
      case FaultClass::kNonceReplay:
        if (!target.empty()) {
          return clause_error(clause, "nonce-replay takes no target");
        }
        if (spec.at_count == 0) {
          spec.at_count = 1;  // default: replay on the first attestation
        }
        break;
      case FaultClass::kNumClasses:
        break;
    }

    plan.specs.push_back(std::move(spec));
  }
  if (plan.specs.empty()) {
    return make_error(Err::kInvalidArgument, "fault plan is empty");
  }
  return plan;
}

FaultEngine::FaultEngine(FaultPlan plan)
    : plan_(std::move(plan)),
      fires_(plan_.specs.size(), 0),
      rng_state_(plan_.seed) {}

std::uint64_t FaultEngine::next_rand() {
  // SplitMix64: tiny, seedable, and plenty for picking bits to flip.
  std::uint64_t z = (rng_state_ += 0x9E37'79B9'7F4A'7C15ull);
  z = (z ^ (z >> 30U)) * 0xBF58'476D'1CE4'E5B9ull;
  z = (z ^ (z >> 27U)) * 0x94D0'49BB'1331'11EBull;
  return z ^ (z >> 31U);
}

void FaultEngine::record_fire(std::size_t i) {
  ++fires_[i];
  ++injected_[static_cast<std::size_t>(plan_.specs[i].cls)];
}

std::int64_t FaultEngine::on_load(std::string_view task_name,
                                  std::size_t image_bytes) {
  ++load_count_;
  if (image_bytes == 0) {
    return -1;
  }
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.cls != FaultClass::kTbfBitflip || fires_[i] >= spec.max_fires) {
      continue;
    }
    if (spec.at_count != 0 && spec.at_count != load_count_) {
      continue;
    }
    if (!spec.target.empty() && spec.target != task_name) {
      continue;
    }
    record_fire(i);
    const auto bits = static_cast<std::uint64_t>(image_bytes) * 8;
    return spec.bit >= 0 ? spec.bit % static_cast<std::int64_t>(bits)
                         : static_cast<std::int64_t>(next_rand() % bits);
  }
  return -1;
}

std::int64_t FaultEngine::on_storage_access(std::uint32_t slot,
                                            std::uint64_t cycle,
                                            std::size_t blob_bytes) {
  if (blob_bytes == 0) {
    return -1;
  }
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.cls != FaultClass::kStorageCorrupt || fires_[i] >= spec.max_fires) {
      continue;
    }
    if (!spec.has_slot || spec.slot != slot || cycle < spec.at_cycle) {
      continue;
    }
    record_fire(i);
    const auto bits = static_cast<std::uint64_t>(blob_bytes) * 8;
    return spec.bit >= 0 ? spec.bit % static_cast<std::int64_t>(bits)
                         : static_cast<std::int64_t>(next_rand() % bits);
  }
  return -1;
}

bool FaultEngine::on_attest(std::uint64_t attest_index) {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.cls != FaultClass::kNonceReplay || fires_[i] >= spec.max_fires) {
      continue;
    }
    if (spec.at_count != attest_index) {
      continue;
    }
    record_fire(i);
    return true;
  }
  return false;
}

bool FaultEngine::on_ipc_message() {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.cls != FaultClass::kIpcDrop) {
      continue;
    }
    if (spec.max_fires != 0 && fires_[i] >= spec.max_fires) {
      continue;
    }
    if (next_rand() % 100 >= spec.pct) {
      continue;
    }
    record_fire(i);
    return true;
  }
  return false;
}

bool FaultEngine::on_task_dispatch(std::string_view task_name,
                                   std::uint64_t cycle) {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.cls != FaultClass::kTaskStall || fires_[i] >= spec.max_fires) {
      continue;
    }
    if (spec.target != task_name || cycle < spec.at_cycle) {
      continue;
    }
    record_fire(i);
    return true;
  }
  return false;
}

void FaultEngine::note_recovery(FaultClass cls) {
  ++recovered_[static_cast<std::size_t>(cls)];
}

std::uint64_t FaultEngine::injected(FaultClass cls) const {
  return injected_[static_cast<std::size_t>(cls)];
}

std::uint64_t FaultEngine::recovered(FaultClass cls) const {
  return recovered_[static_cast<std::size_t>(cls)];
}

std::uint64_t FaultEngine::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected_) {
    total += count;
  }
  return total;
}

std::uint64_t FaultEngine::recovered_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : recovered_) {
    total += count;
  }
  return total;
}

void FaultEngine::save_state(snap::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(fires_.size()));
  for (const std::uint64_t count : fires_) {
    w.u64(count);
  }
  w.u64(rng_state_);
  w.u64(load_count_);
  for (const std::uint64_t count : injected_) {
    w.u64(count);
  }
  for (const std::uint64_t count : recovered_) {
    w.u64(count);
  }
}

Status FaultEngine::restore_state(snap::Reader& r) {
  const std::uint32_t count = r.u32();
  if (count != fires_.size()) {
    return make_error(Err::kInvalidArgument,
                      "snapshot fault plan has " + std::to_string(count) +
                          " spec(s), this platform's plan has " +
                          std::to_string(fires_.size()));
  }
  for (std::uint64_t& fire : fires_) {
    fire = r.u64();
  }
  rng_state_ = r.u64();
  load_count_ = r.u64();
  for (std::uint64_t& tally : injected_) {
    tally = r.u64();
  }
  for (std::uint64_t& tally : recovered_) {
    tally = r.u64();
  }
  return Status::ok();
}

}  // namespace tytan::fault
