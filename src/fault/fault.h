// Deterministic, seed-driven fault injection (TyTAN §3–§5 adversity model).
//
// A FaultPlan is parsed from a compact spec string:
//
//   plan    := clause (';' clause)*
//   clause  := class ('@' trigger)? (':' target)? (',' key '=' value)*
//   trigger := 'load' | 'load#N' | 'attest#N' | 'cycle=N'
//
// Examples (one per fault class):
//
//   tbf-bitflip@load:task2          flip one bit of task2's image at load
//   storage-corrupt@cycle=10000:slot3   corrupt slot 3's sealed bytes once
//                                       the clock reaches cycle 10000
//   nonce-replay@attest#2           replay the previous nonce on the 2nd
//                                   attestation round
//   ipc-drop:pct=5                  drop ~5% of proxied IPC messages
//   task-stall:sensor               wedge task "sensor" until the watchdog
//                                   restarts it
//
// The FaultEngine consumes a plan plus a seed and answers yes/no (or a bit
// index) at each hook site.  All randomness comes from a SplitMix64 stream
// seeded from the plan, so a given (plan, seed) fires identically on every
// run and on every thread count.  Every class except ipc-drop fires exactly
// once per spec; ipc-drop is rate-based with an optional `count=` cap.
//
// The engine never touches simulated state itself — hook sites in the
// loader, secure storage, fleet challenger, IPC proxy and scheduler ask it
// for a decision and apply (and recover from) the fault locally.  When no
// engine is installed the hooks are a single null-pointer compare, so the
// paper tables are untouched (pinned by bench_fault).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "snap/snapshot.h"

namespace tytan::fault {

enum class FaultClass : std::uint8_t {
  kTbfBitflip = 0,   ///< flip a bit of a task image between read and load
  kStorageCorrupt,   ///< flip a bit of a sealed blob's persisted bytes
  kNonceReplay,      ///< re-send a consumed attestation challenge
  kIpcDrop,          ///< drop a proxied IPC message
  kTaskStall,        ///< wedge a task until the watchdog intervenes
  kNumClasses,
};

[[nodiscard]] std::string_view fault_class_name(FaultClass cls);

/// How a hook site recovered from an injected fault (event payloads, docs).
enum class RecoveryKind : std::uint8_t {
  kQuarantine = 0,  ///< loader rejected + quarantined a corrupt binary
  kPoisonMarked,    ///< storage marked a blob poisoned, re-store cleared it
  kAttestRetry,     ///< challenger re-attested after bounded backoff
  kTaskRestart,     ///< watchdog restarted a stalled task
};

/// One parsed clause of a fault plan.
struct FaultSpec {
  FaultClass cls = FaultClass::kNumClasses;
  std::string target;          ///< task name (tbf-bitflip, task-stall)
  std::uint32_t slot = 0;      ///< storage-corrupt slot id
  bool has_slot = false;
  std::uint64_t at_cycle = 0;  ///< earliest cycle the clause may fire
  std::uint64_t at_count = 0;  ///< load#N / attest#N (1-based, 0 = first)
  std::uint32_t pct = 0;       ///< ipc-drop probability, percent
  std::uint64_t max_fires = 1; ///< ipc-drop only: 0 = unlimited
  std::int64_t bit = -1;       ///< explicit bit index; -1 = seeded choice

  [[nodiscard]] std::string to_string() const;
};

/// A validated set of fault clauses plus the RNG seed for the engine.
struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0x7479'7466'6c74ull;  // "tytflt"

  [[nodiscard]] bool empty() const { return specs.empty(); }

  /// Parse a plan spec.  Unknown classes, malformed triggers, out-of-range
  /// numbers and class/trigger mismatches are kInvalidArgument with a
  /// message naming the offending clause.
  static Result<FaultPlan> parse(std::string_view text);
};

/// Decides, deterministically, whether each hook site fires.  One engine per
/// simulated device; not thread-safe (a device is only ever driven by one
/// worker at a time, same as the Machine it instruments).
class FaultEngine {
 public:
  explicit FaultEngine(FaultPlan plan);

  /// TBF loader hook: called once per begin_load with the task name and
  /// image size.  Returns the bit index to flip, or -1 for no fault.
  std::int64_t on_load(std::string_view task_name, std::size_t image_bytes);

  /// Secure-storage hook: called on each load() with the slot, current
  /// cycle and sealed-blob length.  Returns a bit index into the persisted
  /// sealed bytes, or -1.
  std::int64_t on_storage_access(std::uint32_t slot, std::uint64_t cycle,
                                 std::size_t blob_bytes);

  /// Attestation hook: called with the 1-based attestation round index.
  /// True means the caller should replay its previous nonce.
  bool on_attest(std::uint64_t attest_index);

  /// IPC proxy hook: called once per proxied message.  True means drop it.
  bool on_ipc_message();

  /// Scheduler hook: called when `task_name` is about to be dispatched.
  /// True means wedge the task (the kernel blocks it as kStalled).
  bool on_task_dispatch(std::string_view task_name, std::uint64_t cycle);

  /// Recovery paths report back so telemetry can pair every injection with
  /// its recovery.
  void note_recovery(FaultClass cls);

  [[nodiscard]] std::uint64_t injected(FaultClass cls) const;
  [[nodiscard]] std::uint64_t recovered(FaultClass cls) const;
  [[nodiscard]] std::uint64_t injected_total() const;
  [[nodiscard]] std::uint64_t recovered_total() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Serialize / overwrite the engine's determinism cursors (per-spec fire
  /// counts, RNG stream position, load counter, injection/recovery tallies).
  /// The plan itself is configuration and travels in the snapshot's CONF
  /// section; restore_state checks only that the spec count matches.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  /// Next value of the SplitMix64 stream.
  std::uint64_t next_rand();
  /// Marks spec `i` as having fired and bumps the class counter.
  void record_fire(std::size_t i);

  FaultPlan plan_;
  std::vector<std::uint64_t> fires_;  ///< per-spec fire counts
  std::uint64_t rng_state_;
  std::uint64_t load_count_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(FaultClass::kNumClasses)>
      injected_{};
  std::array<std::uint64_t, static_cast<std::size_t>(FaultClass::kNumClasses)>
      recovered_{};
};

}  // namespace tytan::fault
