#include "analysis/vsa.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace tytan::analysis {

namespace {

constexpr std::int64_t kWordRange = std::int64_t{1} << 32;

std::int64_t wrap32(std::int64_t value) {
  return value & 0xFFFF'FFFF;
}

}  // namespace

ValueSet ValueSet::constant(std::uint32_t value) {
  ValueSet v;
  v.kind_ = Kind::kConst;
  v.lo_ = v.hi_ = static_cast<std::int64_t>(value);
  v.canonicalize();
  return v;
}

ValueSet ValueSet::base_rel(std::int64_t offset) {
  ValueSet v;
  v.kind_ = Kind::kBaseRel;
  v.lo_ = v.hi_ = offset;
  v.canonicalize();
  return v;
}

ValueSet ValueSet::base_lo(std::uint32_t addend) {
  ValueSet v;
  v.kind_ = Kind::kBaseLo;
  v.lo_ = v.hi_ = static_cast<std::int64_t>(addend);
  v.canonicalize();
  return v;
}

ValueSet ValueSet::stack_rel(std::int64_t offset) {
  ValueSet v;
  v.kind_ = Kind::kStackRel;
  v.lo_ = v.hi_ = offset;
  v.canonicalize();
  return v;
}

ValueSet ValueSet::interval(Kind kind, std::int64_t lo, std::int64_t hi,
                            std::int64_t stride) {
  if (kind == Kind::kTop || lo > hi) {
    return top();
  }
  if (lo < -kOffsetLimit || hi > kOffsetLimit) {
    return top();
  }
  ValueSet v;
  v.kind_ = kind;
  v.lo_ = lo;
  v.hi_ = hi;
  v.stride_ = lo == hi ? 0 : std::max<std::int64_t>(stride, 1);
  if (v.stride_ != 0) {
    // Snap hi onto the lattice lo + k*stride so count() is exact.
    v.hi_ = lo + ((hi - lo) / v.stride_) * v.stride_;
  }
  v.canonicalize();
  return v;
}

std::uint64_t ValueSet::count() const {
  if (is_top()) {
    return ~std::uint64_t{0};
  }
  if (!values_.empty()) {
    return values_.size();
  }
  if (stride_ == 0) {
    return 1;
  }
  return static_cast<std::uint64_t>((hi_ - lo_) / stride_) + 1;
}

std::vector<std::int64_t> ValueSet::enumerate(std::size_t limit) const {
  if (!enumerable(limit)) {
    return {};
  }
  if (!values_.empty()) {
    return values_;
  }
  std::vector<std::int64_t> out;
  const std::int64_t step = std::max<std::int64_t>(stride_, 1);
  for (std::int64_t v = lo_; v <= hi_; v += step) {
    out.push_back(v);
    if (lo_ == hi_) {
      break;
    }
  }
  return out;
}

void ValueSet::canonicalize() {
  if (is_top()) {
    lo_ = hi_ = stride_ = 0;
    values_.clear();
    return;
  }
  if (!values_.empty()) {
    std::sort(values_.begin(), values_.end());
    values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
    lo_ = values_.front();
    hi_ = values_.back();
    stride_ = 0;
    for (std::size_t i = 1; i < values_.size(); ++i) {
      stride_ = std::gcd(stride_, values_[i] - values_[i - 1]);
    }
    if (values_.size() == 1) {
      values_.clear();  // singleton: interval form is canonical
      stride_ = 0;
    }
    return;
  }
  if (lo_ == hi_) {
    stride_ = 0;
    return;
  }
  if (count() <= kExplicitMax) {
    const std::int64_t step = std::max<std::int64_t>(stride_, 1);
    for (std::int64_t v = lo_; v <= hi_; v += step) {
      values_.push_back(v);
    }
    stride_ = std::gcd(std::int64_t{0}, step);
  }
}

ValueSet ValueSet::join(const ValueSet& a, const ValueSet& b) {
  if (a == b) {
    return a;
  }
  if (a.is_top() || b.is_top() || a.kind_ != b.kind_) {
    return top();
  }
  if (!a.values_.empty() || !b.values_.empty() || a.singleton() || b.singleton()) {
    // Try the exact union first.
    const auto ea = a.enumerate(kExplicitMax);
    const auto eb = b.enumerate(kExplicitMax);
    if (!ea.empty() && !eb.empty() && ea.size() + eb.size() <= 2 * kExplicitMax) {
      std::vector<std::int64_t> merged = ea;
      merged.insert(merged.end(), eb.begin(), eb.end());
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      if (merged.size() <= kExplicitMax) {
        ValueSet v;
        v.kind_ = a.kind_;
        v.values_ = std::move(merged);
        v.canonicalize();
        return v;
      }
    }
  }
  // Interval hull with the coarsest consistent stride.
  const std::int64_t sa = a.values_.empty() ? a.stride_ : a.stride_;
  const std::int64_t sb = b.values_.empty() ? b.stride_ : b.stride_;
  std::int64_t stride = std::gcd(sa, sb);
  stride = std::gcd(stride, std::llabs(a.lo_ - b.lo_));
  return interval(a.kind_, std::min(a.lo_, b.lo_), std::max(a.hi_, b.hi_), stride);
}

ValueSet ValueSet::add(std::int64_t delta) const {
  if (is_top()) {
    return top();
  }
  if (kind_ == Kind::kBaseLo) {
    return top();  // arithmetic on a torn li pair forfeits the pairing
  }
  if (kind_ == Kind::kConst) {
    if (!values_.empty() || singleton()) {
      return map_const([&](std::int64_t v) { return wrap32(v + delta); });
    }
    const std::int64_t lo = lo_ + delta;
    const std::int64_t hi = hi_ + delta;
    if (lo < 0 || hi >= kWordRange) {
      return top();  // a non-singleton interval that wraps loses its shape
    }
    return interval(kind_, lo, hi, stride_);
  }
  return interval(kind_, lo_ + delta, hi_ + delta, stride_);
}

ValueSet ValueSet::add(const ValueSet& a, const ValueSet& b) {
  if (a.is_top() || b.is_top()) {
    return top();
  }
  // One side must be a plain number; pointer + pointer is meaningless.
  const ValueSet* base = &a;
  const ValueSet* off = &b;
  if (base->kind_ == Kind::kConst && off->kind_ != Kind::kConst) {
    std::swap(base, off);
  }
  if (off->kind_ != Kind::kConst || base->kind_ == Kind::kBaseLo) {
    return top();
  }
  if (off->singleton()) {
    return base->add(off->lo_);
  }
  const auto eb = base->enumerate(kExplicitMax);
  const auto eo = off->enumerate(kExplicitMax);
  if (!eb.empty() && !eo.empty() && eb.size() * eo.size() <= kExplicitMax &&
      base->kind_ != Kind::kConst) {
    ValueSet v;
    v.kind_ = base->kind_;
    for (const std::int64_t x : eb) {
      for (const std::int64_t y : eo) {
        v.values_.push_back(x + y);
      }
    }
    v.canonicalize();
    return v;
  }
  if (base->kind_ == Kind::kConst &&
      (base->lo_ + off->lo_ < 0 || base->hi_ + off->hi_ >= kWordRange)) {
    return top();
  }
  return interval(base->kind_, base->lo_ + off->lo_, base->hi_ + off->hi_,
                  std::gcd(base->stride_ == 0 && !base->singleton() ? 1 : base->stride_,
                           off->stride_ == 0 && !off->singleton() ? 1 : off->stride_));
}

ValueSet ValueSet::sub(const ValueSet& a, const ValueSet& b) {
  if (a.is_top() || b.is_top() || b.kind_ != Kind::kConst ||
      a.kind_ == Kind::kBaseLo) {
    return top();
  }
  if (b.singleton()) {
    return a.add(-b.lo_);
  }
  if (a.kind_ == Kind::kConst && (a.lo_ - b.hi_ < 0 || a.hi_ - b.lo_ >= kWordRange)) {
    return top();
  }
  return interval(a.kind_, a.lo_ - b.hi_, a.hi_ - b.lo_,
                  std::gcd(a.stride_, b.stride_));
}

ValueSet ValueSet::shl(unsigned amount) const {
  if (kind_ != Kind::kConst) {
    return top();
  }
  const std::int64_t factor = std::int64_t{1} << (amount & 31);
  if (hi_ * factor >= kWordRange || lo_ < 0) {
    return map_const([&](std::int64_t v) { return wrap32(v << (amount & 31)); });
  }
  return interval(kind_, lo_ * factor, hi_ * factor, stride_ * factor);
}

ValueSet ValueSet::shr(unsigned amount) const {
  if (kind_ != Kind::kConst) {
    return top();
  }
  return map_const(
      [&](std::int64_t v) { return wrap32(v) >> (amount & 31); });
}

ValueSet ValueSet::and_mask(std::uint32_t mask) const {
  if (kind_ == Kind::kConst) {
    ValueSet exact =
        map_const([&](std::int64_t v) { return wrap32(v) & mask; });
    if (!exact.is_top()) {
      return exact;
    }
  }
  // Whatever the region, the masked *value* lands in [0, mask].
  return interval(Kind::kConst, 0, static_cast<std::int64_t>(mask), 1);
}

ValueSet ValueSet::or_mask(std::uint32_t mask) const {
  if (kind_ != Kind::kConst) {
    return top();
  }
  return map_const([&](std::int64_t v) { return wrap32(v) | mask; });
}

ValueSet ValueSet::xor_mask(std::uint32_t mask) const {
  if (kind_ != Kind::kConst) {
    return top();
  }
  return map_const([&](std::int64_t v) { return wrap32(v) ^ mask; });
}

ValueSet ValueSet::movhi_const(std::uint32_t high) const {
  if (kind_ != Kind::kConst) {
    return top();
  }
  return map_const([&](std::int64_t v) {
    return (wrap32(v) & 0xFFFF) | (static_cast<std::int64_t>(high) << 16);
  });
}

ValueSet ValueSet::movhi_reloc(std::uint32_t addend) const {
  if (kind_ == Kind::kBaseLo && singleton() &&
      lo_ == static_cast<std::int64_t>(addend)) {
    return base_rel(lo_);
  }
  return top();
}

ValueSet ValueSet::refine_below(std::uint32_t bound) const {
  if (bound == 0) {
    return *this;  // nothing is unsigned-below zero: dead edge, keep as-is
  }
  const auto limit = static_cast<std::int64_t>(bound) - 1;
  if (is_top()) {
    return interval(Kind::kConst, 0, limit, 1);
  }
  if (kind_ != Kind::kConst) {
    return *this;  // base/stack-relative runtime values dwarf small bounds
  }
  if (!values_.empty()) {
    ValueSet v;
    v.kind_ = kind_;
    for (const std::int64_t x : values_) {
      if (x <= limit) {
        v.values_.push_back(x);
      }
    }
    if (v.values_.empty()) {
      return *this;
    }
    v.canonicalize();
    return v;
  }
  if (lo_ > limit) {
    return *this;
  }
  return interval(kind_, lo_, std::min(hi_, limit), stride_);
}

ValueSet ValueSet::refine_at_least(std::uint32_t bound) const {
  const auto limit = static_cast<std::int64_t>(bound);
  if (is_top()) {
    return interval(Kind::kConst, limit, kWordRange - 1, 1);
  }
  if (kind_ != Kind::kConst) {
    return *this;
  }
  if (!values_.empty()) {
    ValueSet v;
    v.kind_ = kind_;
    for (const std::int64_t x : values_) {
      if (x >= limit) {
        v.values_.push_back(x);
      }
    }
    if (v.values_.empty()) {
      return *this;
    }
    v.canonicalize();
    return v;
  }
  if (hi_ < limit) {
    return *this;
  }
  // Step lo up onto the stride lattice.
  std::int64_t lo = lo_;
  if (lo < limit && stride_ > 0) {
    lo += ((limit - lo + stride_ - 1) / stride_) * stride_;
  } else {
    lo = std::max(lo, limit);
  }
  return interval(kind_, lo, hi_, stride_);
}

ValueSet ValueSet::refine_eq(std::uint32_t value) const {
  return constant(value);  // the equality pins the numeric value exactly
}

template <typename Fn>
ValueSet ValueSet::map_const(Fn&& f) const {
  const auto vals = enumerate(kExplicitMax);
  if (vals.empty()) {
    return top();
  }
  ValueSet v;
  v.kind_ = Kind::kConst;
  for (const std::int64_t x : vals) {
    v.values_.push_back(f(x));
  }
  v.canonicalize();
  return v;
}

std::string ValueSet::to_string() const {
  std::ostringstream os;
  const auto name = [&]() -> const char* {
    switch (kind_) {
      case Kind::kTop: return "top";
      case Kind::kConst: return "const";
      case Kind::kBaseRel: return "base";
      case Kind::kBaseLo: return "base-lo";
      case Kind::kStackRel: return "stack";
    }
    return "?";
  }();
  if (is_top()) {
    return name;
  }
  os << name << "[" << std::hex;
  const auto put = [&](std::int64_t v) {
    if (v < 0) {
      os << "-0x" << -v;
    } else {
      os << "0x" << v;
    }
  };
  put(lo_);
  if (lo_ != hi_) {
    os << "..";
    put(hi_);
    os << std::dec << "/" << std::max<std::int64_t>(stride_, 1);
  }
  os << "]";
  return os.str();
}

}  // namespace tytan::analysis
