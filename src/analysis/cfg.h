// Control-flow recovery over a Peak-32 image.
//
// The decoder classifies every aligned word of the image as instruction or
// data: `.word label` sites are known data (they carry ABS32 relocation
// records), everything reachable from the entry points is code, and the rest
// stays unknown (unreachable bytes are never flagged — string tables and
// padding are normal).  Reachability follows static branch displacements and
// call targets; `jmpr`/`callr` have no static successor and are reported as
// not statically verifiable (CF006) — unless the caller passes a set of
// dataflow-resolved targets, in which case the resolved edges are spliced
// into the traversal, the successor lists, and the call graph, and CF006 is
// left to the dataflow pass's more precise DF rules.
//
// The recovered CFG (basic blocks, successors, call graph) is shared by the
// stack-depth and MMIO passes and is exposed for future consumers
// (control-flow attestation, coverage tooling).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "analysis/findings.h"
#include "isa/isa.h"
#include "isa/object.h"

namespace tytan::analysis {

inline constexpr std::uint32_t kNoOffset = 0xFFFF'FFFFu;

enum class WordClass : std::uint8_t { kUnknown = 0, kCode, kData };

/// Static control-flow effect of one instruction.
struct Flow {
  std::optional<std::int64_t> target;  ///< static branch/call target (bytes)
  bool falls_through = true;
  bool is_call = false;   ///< `target` (or the indirect exit) is a call
  bool indirect = false;  ///< jmpr/callr: no static target
};

struct BasicBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;  ///< exclusive; the block covers [start, end)
  std::vector<std::uint32_t> successors;    ///< start offsets of successor blocks
  std::uint32_t call_target = kNoOffset;    ///< static call out of the terminator
  bool indirect_exit = false;               ///< ends in jmpr/callr
  /// Dataflow-resolved callees of a terminating `callr` (empty otherwise);
  /// resolved `jmpr` targets land in `successors` directly.
  std::vector<std::uint32_t> indirect_call_targets;
};

/// Indirect-site image offset -> the statically resolved target set (sorted).
using ResolvedTargets = std::map<std::uint32_t, std::vector<std::uint32_t>>;

struct Cfg {
  std::vector<std::optional<isa::Instruction>> decoded;  ///< per aligned word
  std::vector<WordClass> word_class;                     ///< per aligned word
  std::vector<bool> reachable;                           ///< per aligned word
  /// `int 0x21` sites whose syscall number is statically an exit-style call
  /// (kSysExit / kSysMsgDone) — they never return to the next instruction.
  std::vector<bool> terminal_int;
  std::vector<std::uint32_t> roots;  ///< validated entry offsets
  std::map<std::uint32_t, BasicBlock> blocks;  ///< keyed by start offset
  std::set<std::uint32_t> functions;           ///< roots + static call targets
  std::map<std::uint32_t, std::set<std::uint32_t>> call_graph;
  /// The resolved edges this CFG was recovered with (per jmpr/callr site).
  ResolvedTargets indirect_targets;

  [[nodiscard]] std::size_t words() const { return decoded.size(); }
  [[nodiscard]] bool is_code(std::uint32_t offset) const {
    const std::size_t index = offset / isa::kInstrSize;
    return offset % isa::kInstrSize == 0 && index < word_class.size() &&
           word_class[index] == WordClass::kCode;
  }
  /// Control-flow effect of the (decoded) instruction at `offset`.
  [[nodiscard]] Flow flow_at(std::uint32_t offset) const;
};

/// Decode `object.image`, validate the entry points, and recover the CFG.
/// Structural violations (CF001–CF006) are appended to `report`.
///
/// When `resolved` is non-null the recovery runs in dataflow mode: resolved
/// jmpr/callr edges are followed (their targets become reachable leaders,
/// successors, and call-graph edges) and CF006 is never emitted — the
/// dataflow pass reports each indirect site precisely (DF001–DF003).
Cfg recover_cfg(const isa::ObjectFile& object, Report& report,
                const ResolvedTargets* resolved = nullptr);

}  // namespace tytan::analysis
