#include "analysis/dataflow.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/vsa.h"
#include "sim/memory_map.h"

namespace tytan::analysis {

namespace {

std::string hex(std::int64_t value) {
  std::ostringstream os;
  if (value < 0) {
    os << "-0x" << std::hex << -value;
  } else {
    os << "0x" << std::hex << value;
  }
  return os.str();
}

/// One abstract machine state: a value set per GPR.
struct Regs {
  std::array<ValueSet, isa::kNumGprs> r;

  friend bool operator==(const Regs&, const Regs&) = default;

  /// Function-entry state: nothing known except that SP is the entry SP.
  static Regs entry() {
    Regs s;
    s.r[isa::kSpIndex] = ValueSet::stack_rel(0);
    return s;
  }

  /// State after a (direct or resolved) call returns.  Callees are assumed
  /// to balance the stack — the stack pass flags SP-clobbering callees
  /// separately — and every other register is clobbered.
  static Regs after_call(const Regs& before) {
    Regs s;
    s.r[isa::kSpIndex] = before.r[isa::kSpIndex];
    return s;
  }
};

/// Pending `cmp reg, rhs` whose flags a conditional branch may consume.
struct CmpFact {
  int reg = -1;  ///< -1: no usable compare in flight
  std::uint32_t rhs = 0;

  [[nodiscard]] bool valid() const { return reg >= 0; }
};

class Engine {
 public:
  Engine(const isa::ObjectFile& object, const Cfg& cfg, const Config& config,
         Report* report, const std::set<std::uint32_t>* banned)
      : object_(object), cfg_(cfg), config_(config), report_(report),
        banned_(banned) {
    const auto image_size = static_cast<std::uint32_t>(object.image.size());
    for (const isa::Relocation& reloc : object.relocs) {
      if (reloc.offset + 4 > image_size) {
        continue;  // RL004 territory
      }
      switch (reloc.kind) {
        case isa::RelocKind::kAbs32:
          if (reloc.offset % isa::kInstrSize == 0) {
            abs32_.emplace(reloc.offset, reloc.addend);
          }
          break;
        case isa::RelocKind::kLo16:
          lo16_.emplace(reloc.offset, reloc.addend);
          break;
        case isa::RelocKind::kHi16:
          hi16_.emplace(reloc.offset, reloc.addend);
          break;
      }
    }
  }

  DataflowResult run() {
    if (cfg_.blocks.empty()) {
      return result_;
    }
    // The table-clobber set and the fixpoint depend on each other: stores
    // whose addresses the fixpoint bounds may demote table loads, which
    // changes the fixpoint.  The set only grows, so iterate to stability.
    constexpr int kMaxClobberRounds = 4;
    bool stable = false;
    for (int round = 0; round < kMaxClobberRounds && !stable; ++round) {
      fixpoint();
      stable = !replay(/*emit=*/false);
    }
    if (!stable) {
      clobber_all_ = true;
      fixpoint();
    }
    replay(/*emit=*/report_ != nullptr);
    return result_;
  }

 private:
  static constexpr int kWidenAfter = 8;

  // -- fixpoint ---------------------------------------------------------------

  void fixpoint() {
    in_.clear();
    widen_.clear();
    std::deque<std::uint32_t> worklist;
    for (const std::uint32_t fn : cfg_.functions) {
      if (cfg_.blocks.contains(fn)) {
        in_.emplace(fn, Regs::entry());
        worklist.push_back(fn);
      }
    }
    // Widening bounds the join chains, so this budget is a backstop for
    // pathological CFGs only; running out drops every dataflow claim.
    std::int64_t budget = static_cast<std::int64_t>(cfg_.blocks.size()) * 64 + 512;
    while (!worklist.empty()) {
      if (--budget < 0) {
        result_.converged = false;
        return;
      }
      const std::uint32_t start = worklist.front();
      worklist.pop_front();
      const BasicBlock& block = cfg_.blocks.at(start);
      Regs state = in_.at(start);
      CmpFact cmp;
      for (std::uint32_t offset = block.start; offset < block.end;
           offset += isa::kInstrSize) {
        step(*cfg_.decoded[offset / isa::kInstrSize], offset, state, cmp,
             /*record=*/false, /*emit=*/false);
      }
      const std::uint32_t term = block.end - isa::kInstrSize;
      const Flow flow = cfg_.flow_at(term);
      for (const std::uint32_t succ : block.successors) {
        if (!cfg_.blocks.contains(succ)) {
          continue;
        }
        Regs out = flow.is_call ? Regs::after_call(state) : state;
        if (!flow.is_call) {
          refine_edge(out, cmp, term, flow, succ, block.end);
        }
        merge(succ, out, worklist);
      }
    }
  }

  void merge(std::uint32_t block, const Regs& incoming,
             std::deque<std::uint32_t>& worklist) {
    const auto it = in_.find(block);
    if (it == in_.end()) {
      in_.emplace(block, incoming);
      worklist.push_back(block);
      return;
    }
    Regs joined;
    for (std::size_t i = 0; i < joined.r.size(); ++i) {
      joined.r[i] = ValueSet::join(it->second.r[i], incoming.r[i]);
    }
    if (joined == it->second) {
      return;
    }
    if (++widen_[block] > kWidenAfter) {
      // The in-state keeps moving: widen the unstable registers straight to
      // Top so the chain terminates.
      for (std::size_t i = 0; i < joined.r.size(); ++i) {
        if (!(joined.r[i] == it->second.r[i])) {
          joined.r[i] = ValueSet::top();
        }
      }
      if (joined == it->second) {
        return;
      }
    }
    it->second = joined;
    worklist.push_back(block);
  }

  void refine_edge(Regs& out, const CmpFact& cmp, std::uint32_t term,
                   const Flow& flow, std::uint32_t succ, std::uint32_t fall) const {
    if (!cmp.valid() || !flow.target.has_value() ||
        *flow.target == static_cast<std::int64_t>(fall)) {
      return;
    }
    const bool taken = static_cast<std::int64_t>(succ) == *flow.target;
    ValueSet& v = out.r[cmp.reg];
    switch (cfg_.decoded[term / isa::kInstrSize]->opcode) {
      case isa::Opcode::kJc:  // unsigned below after cmp
        v = taken ? v.refine_below(cmp.rhs) : v.refine_at_least(cmp.rhs);
        break;
      case isa::Opcode::kJnc:
        v = taken ? v.refine_at_least(cmp.rhs) : v.refine_below(cmp.rhs);
        break;
      case isa::Opcode::kJz:
        if (taken) {
          v = v.refine_eq(cmp.rhs);
        }
        break;
      case isa::Opcode::kJnz:
        if (!taken) {
          v = v.refine_eq(cmp.rhs);
        }
        break;
      default:
        break;  // jlt/jge are signed; no sound constant refinement modeled
    }
  }

  // -- transfer function ------------------------------------------------------

  void step(const isa::Instruction& in, std::uint32_t offset, Regs& s, CmpFact& cmp,
            bool record, bool emit) {
    auto& r = s.r;
    const auto wr = [&](unsigned rd, ValueSet v) {
      r[rd] = std::move(v);
      if (cmp.reg == static_cast<int>(rd)) {
        cmp.reg = -1;
      }
    };
    const auto flags_clobbered = [&] { cmp.reg = -1; };
    switch (in.opcode) {
      case isa::Opcode::kMov:
        wr(in.rd, r[in.ra]);
        break;
      case isa::Opcode::kMovi:
        wr(in.rd, ValueSet::constant(static_cast<std::uint32_t>(in.simm())));
        break;
      case isa::Opcode::kMoviu: {
        const auto lo = lo16_.find(offset);
        wr(in.rd, lo != lo16_.end() ? ValueSet::base_lo(lo->second)
                                    : ValueSet::constant(in.imm));
        break;
      }
      case isa::Opcode::kMovhi: {
        const auto hi = hi16_.find(offset);
        wr(in.rd, hi != hi16_.end() ? r[in.rd].movhi_reloc(hi->second)
                                    : r[in.rd].movhi_const(in.imm));
        break;
      }
      case isa::Opcode::kAdd:
        wr(in.rd, ValueSet::add(r[in.rd], r[in.ra]));
        flags_clobbered();
        break;
      case isa::Opcode::kAddi:
        wr(in.rd, r[in.rd].add(in.simm()));
        flags_clobbered();
        break;
      case isa::Opcode::kSub:
        wr(in.rd, ValueSet::sub(r[in.rd], r[in.ra]));
        flags_clobbered();
        break;
      case isa::Opcode::kSubi:
        wr(in.rd, r[in.rd].add(-static_cast<std::int64_t>(in.simm())));
        flags_clobbered();
        break;
      case isa::Opcode::kCmp:
        cmp = r[in.ra].singleton() && r[in.ra].kind() == ValueSet::Kind::kConst
                  ? CmpFact{in.rd, static_cast<std::uint32_t>(r[in.ra].lo())}
                  : CmpFact{};
        break;
      case isa::Opcode::kCmpi:
        cmp = CmpFact{in.rd, static_cast<std::uint32_t>(in.simm())};
        break;
      case isa::Opcode::kAnd:
        wr(in.rd, r[in.ra].singleton() && r[in.ra].kind() == ValueSet::Kind::kConst
                      ? r[in.rd].and_mask(static_cast<std::uint32_t>(r[in.ra].lo()))
                      : ValueSet::top());
        flags_clobbered();
        break;
      case isa::Opcode::kAndi:
        wr(in.rd, r[in.rd].and_mask(in.imm));
        flags_clobbered();
        break;
      case isa::Opcode::kOri:
        wr(in.rd, r[in.rd].or_mask(in.imm));
        flags_clobbered();
        break;
      case isa::Opcode::kShli:
        wr(in.rd, r[in.rd].shl(in.imm & 31u));
        flags_clobbered();
        break;
      case isa::Opcode::kShri:
        wr(in.rd, r[in.rd].shr(in.imm & 31u));
        flags_clobbered();
        break;
      case isa::Opcode::kOr:
      case isa::Opcode::kXor:
      case isa::Opcode::kShl:
      case isa::Opcode::kShr:
      case isa::Opcode::kMul:
        wr(in.rd, ValueSet::top());
        flags_clobbered();
        break;
      case isa::Opcode::kLdw: {
        const ValueSet addr = r[in.ra].add(in.simm());
        if (record) {
          check_access(addr, 4, offset, /*is_store=*/false, emit);
        }
        wr(in.rd, load_word(addr));
        break;
      }
      case isa::Opcode::kLdb: {
        const ValueSet addr = r[in.ra].add(in.simm());
        if (record) {
          check_access(addr, 1, offset, /*is_store=*/false, emit);
        }
        // Bytes are zero-extended: a byte-wide table index is still bounded.
        wr(in.rd, ValueSet::interval(ValueSet::Kind::kConst, 0, 255, 1));
        break;
      }
      case isa::Opcode::kStw:
      case isa::Opcode::kStb: {
        const std::int64_t width = in.opcode == isa::Opcode::kStw ? 4 : 1;
        const ValueSet addr = r[in.ra].add(in.simm());
        if (record) {
          check_access(addr, width, offset, /*is_store=*/true, emit);
          note_store(addr, width);
        }
        break;
      }
      case isa::Opcode::kPush: {
        const ValueSet slot = r[isa::kSpIndex].add(-4);
        if (record) {
          note_store(slot, 4);
        }
        r[isa::kSpIndex] = slot;
        if (cmp.reg == static_cast<int>(isa::kSpIndex)) {
          cmp.reg = -1;
        }
        break;
      }
      case isa::Opcode::kPop:
        if (in.rd == isa::kSpIndex) {
          wr(in.rd, ValueSet::top());
        } else {
          wr(in.rd, ValueSet::top());
          r[isa::kSpIndex] = r[isa::kSpIndex].add(4);
        }
        break;
      case isa::Opcode::kCall:
      case isa::Opcode::kCallr:
        // The return-address push; the post-call register state is built by
        // the edge propagation (Regs::after_call).
        if (record) {
          note_store(r[isa::kSpIndex].add(-4), 4);
        }
        break;
      case isa::Opcode::kInt:
        // Syscalls return values in the low registers and may trash flags.
        for (unsigned reg = 0; reg < 4; ++reg) {
          wr(reg, ValueSet::top());
        }
        flags_clobbered();
        break;
      case isa::Opcode::kRdcyc:
        wr(in.rd, ValueSet::top());
        break;
      default:
        break;  // nop/hlt/cli/sti/branches/ret/iret: no register effect
    }
  }

  // -- memory modelling -------------------------------------------------------

  /// Value of a 32-bit load: resolvable only through unclobbered `.word
  /// label` (ABS32) sites — everything else in memory is mutable or unknown.
  [[nodiscard]] ValueSet load_word(const ValueSet& addr) const {
    if (addr.kind() != ValueSet::Kind::kBaseRel ||
        !addr.enumerable(config_.max_indirect_targets)) {
      return ValueSet::top();
    }
    const auto image_size = static_cast<std::int64_t>(object_.image.size());
    ValueSet value = ValueSet::top();
    bool first = true;
    for (const std::int64_t a : addr.enumerate(config_.max_indirect_targets)) {
      if (a < 0 || a % isa::kInstrSize != 0 || a + 4 > image_size) {
        return ValueSet::top();
      }
      const auto it = abs32_.find(static_cast<std::uint32_t>(a));
      if (it == abs32_.end() || clobber_all_ ||
          clobbered_.contains(static_cast<std::uint32_t>(a))) {
        return ValueSet::top();
      }
      const ValueSet entry = ValueSet::base_rel(it->second);
      value = first ? entry : ValueSet::join(value, entry);
      first = false;
    }
    return value;
  }

  /// A store that may alias a `.word` table demotes the table's loads.
  void note_store(const ValueSet& addr, std::int64_t width) {
    switch (addr.kind()) {
      case ValueSet::Kind::kTop:
      case ValueSet::Kind::kBaseLo:
        pending_clobber_all_ = true;
        break;
      case ValueSet::Kind::kConst:
        // An absolute store can only alias the image if it lands in the RAM
        // the loader places tasks in; device/trusted-window stores cannot.
        if (addr.hi() + width > sim::kRamBase && addr.lo() < sim::kMemSize) {
          pending_clobber_all_ = true;
        }
        break;
      case ValueSet::Kind::kStackRel:
        // In-reservation stack stores are disjoint from the image; a store
        // provably below the reservation could descend into it.
        if (addr.lo() < -static_cast<std::int64_t>(object_.stack_size)) {
          pending_clobber_all_ = true;
        }
        break;
      case ValueSet::Kind::kBaseRel: {
        const std::int64_t lo = addr.lo();
        const std::int64_t hi = addr.hi() + width - 1;
        for (const auto& [site, addend] : abs32_) {
          if (static_cast<std::int64_t>(site) + 3 >= lo &&
              static_cast<std::int64_t>(site) <= hi) {
            pending_clobbered_.insert(site);
          }
        }
        break;
      }
    }
  }

  /// Certify a register-relative access against the task's EA-MPU region.
  void check_access(const ValueSet& addr, std::int64_t width, std::uint32_t offset,
                    bool is_store, bool emit) {
    const char* what = is_store ? "store" : "load";
    if (addr.kind() == ValueSet::Kind::kBaseRel) {
      const std::int64_t lo = addr.lo();
      const std::int64_t hi = addr.hi() + width - 1;
      const auto mem = static_cast<std::int64_t>(object_.memory_size());
      if (lo >= 0 && hi < mem) {
        ++result_.certified_accesses;
      } else if (hi < 0 || lo >= mem) {
        if (emit) {
          report_->add(Rule::kDfOutOfRegion, Severity::kError, offset,
                       std::string(what) + " at " + hex(offset) + " targets " +
                           addr.to_string() + ", provably outside the task's " +
                           "EA-MPU region [base, base+" + hex(mem) + ")");
        }
      } else if (emit) {
        report_->add(Rule::kDfMayEscape, Severity::kWarning, offset,
                     std::string(what) + " at " + hex(offset) + " targets " +
                         addr.to_string() + ", which may fall outside the " +
                         "task's EA-MPU region [base, base+" + hex(mem) + ")");
      }
    } else if (addr.kind() == ValueSet::Kind::kStackRel) {
      const std::int64_t lo = addr.lo();
      const std::int64_t hi = addr.hi() + width - 1;
      if (lo >= -static_cast<std::int64_t>(object_.stack_size) && hi < 0) {
        ++result_.certified_accesses;  // inside the stack reservation
      }
      // Depth violations are the stack pass's claim (ST001), not ours.
    }
  }

  // -- replay: clobber collection, site resolution, findings ------------------

  /// Walk every block once at the converged in-states.  Returns true when
  /// new table clobbers were discovered (the fixpoint must rerun).
  bool replay(bool emit) {
    result_.resolved.clear();
    result_.indirect_sites = 0;
    result_.certified_accesses = 0;
    pending_clobber_all_ = clobber_all_;
    pending_clobbered_ = clobbered_;
    for (const auto& [start, block] : cfg_.blocks) {
      const auto it = in_.find(start);
      if (it == in_.end()) {
        continue;
      }
      Regs state = it->second;
      CmpFact cmp;
      for (std::uint32_t offset = block.start; offset < block.end;
           offset += isa::kInstrSize) {
        const isa::Instruction& instr = *cfg_.decoded[offset / isa::kInstrSize];
        if (instr.opcode == isa::Opcode::kJmpr ||
            instr.opcode == isa::Opcode::kCallr) {
          resolve_site(instr, offset, state.r[instr.ra], emit);
        }
        step(instr, offset, state, cmp, /*record=*/true, emit);
      }
    }
    const bool grew = pending_clobber_all_ != clobber_all_ ||
                      pending_clobbered_ != clobbered_;
    clobber_all_ = pending_clobber_all_;
    clobbered_ = pending_clobbered_;
    return grew;
  }

  void resolve_site(const isa::Instruction& in, std::uint32_t offset,
                    const ValueSet& target, bool emit) {
    ++result_.indirect_sites;
    const std::string mn(isa::mnemonic(in.opcode));
    const auto df = [&](Rule rule, Severity severity, std::string message) {
      if (emit) {
        report_->add(rule, severity, offset, std::move(message));
      }
    };
    if (!result_.converged) {
      df(Rule::kDfUnresolved, Severity::kWarning,
         mn + " at " + hex(offset) +
             ": dataflow fixpoint budget exhausted; target not certified");
      return;
    }
    if (banned_ != nullptr && banned_->count(offset) != 0) {
      // The analyzer withdrew this site: its resolution did not survive
      // splicing its own edges into the CFG (a self-referential table),
      // so no claim is sound.
      df(Rule::kDfUnresolved, Severity::kWarning,
         mn + " at " + hex(offset) +
             ": target set does not stabilize across CFG refinement; "
             "resolution withdrawn");
      return;
    }
    switch (target.kind()) {
      case ValueSet::Kind::kStackRel:
        df(Rule::kDfBadTarget, Severity::kError,
           mn + " at " + hex(offset) + ": target " + target.to_string() +
               " lies in the stack, not in image code");
        return;
      case ValueSet::Kind::kConst:
        df(Rule::kDfUnresolved, Severity::kWarning,
           mn + " at " + hex(offset) + ": target " + target.to_string() +
               " is an absolute address; image code is load-base-relative "
               "and cannot be certified");
        return;
      case ValueSet::Kind::kTop:
      case ValueSet::Kind::kBaseLo:
        df(Rule::kDfUnresolved, Severity::kWarning,
           mn + " at " + hex(offset) +
               ": indirect target is not statically bounded");
        return;
      case ValueSet::Kind::kBaseRel:
        break;
    }
    if (!target.enumerable(config_.max_indirect_targets)) {
      df(Rule::kDfUnresolved, Severity::kWarning,
         mn + " at " + hex(offset) + ": target set " + target.to_string() +
             " exceeds " + std::to_string(config_.max_indirect_targets) +
             " candidates");
      return;
    }
    const auto image_size = static_cast<std::int64_t>(object_.image.size());
    std::vector<std::uint32_t> good;
    for (const std::int64_t t : target.enumerate(config_.max_indirect_targets)) {
      const bool valid = t >= 0 && t % isa::kInstrSize == 0 &&
                         t + isa::kInstrSize <= image_size &&
                         cfg_.decoded[t / isa::kInstrSize].has_value() &&
                         cfg_.word_class[t / isa::kInstrSize] != WordClass::kData;
      if (!valid) {
        df(Rule::kDfBadTarget, Severity::kError,
           mn + " at " + hex(offset) + ": resolved target " + hex(t) +
               " is not valid image code");
        return;
      }
      good.push_back(static_cast<std::uint32_t>(t));
    }
    std::string list;
    for (std::size_t i = 0; i < good.size(); ++i) {
      if (i == 8) {
        list += ", …";
        break;
      }
      list += (i == 0 ? "" : ", ") + hex(good[i]);
    }
    df(Rule::kDfResolved, Severity::kInfo,
       mn + " at " + hex(offset) + ": resolved to " +
           std::to_string(good.size()) + " target(s): " + list);
    result_.resolved.emplace(offset, std::move(good));
  }

  const isa::ObjectFile& object_;
  const Cfg& cfg_;
  const Config& config_;
  Report* report_;
  const std::set<std::uint32_t>* banned_;

  std::map<std::uint32_t, std::uint32_t> abs32_;  ///< `.word label` sites
  std::map<std::uint32_t, std::uint32_t> lo16_;
  std::map<std::uint32_t, std::uint32_t> hi16_;

  std::map<std::uint32_t, Regs> in_;
  std::map<std::uint32_t, int> widen_;

  bool clobber_all_ = false;
  std::set<std::uint32_t> clobbered_;
  bool pending_clobber_all_ = false;
  std::set<std::uint32_t> pending_clobbered_;

  DataflowResult result_;
};

}  // namespace

DataflowResult run_dataflow(const isa::ObjectFile& object, const Cfg& cfg,
                            const Config& config, Report* report,
                            const std::set<std::uint32_t>* banned) {
  Engine engine(object, cfg, config, report, banned);
  return engine.run();
}

}  // namespace tytan::analysis
