// Value-set dataflow engine over the recovered CFG.
//
// A worklist fixpoint propagates one ValueSet per register through every
// basic block, modelling the address-materialization idioms the tool chain
// emits: `li` pairs (LO16/HI16 relocations), `.word label` jump tables
// (ABS32 relocations), index masking/scaling, and cmp/branch interval
// refinement.  The engine answers two questions the structural passes
// cannot:
//
//   1. Where can a `jmpr`/`callr` go?  When the target value set is a
//      bounded set of base-relative offsets, the site is *resolved*
//      (DF001) and the edges are spliced back into the CFG; a torn or
//      unbounded set is DF002, a set containing a non-code offset DF003.
//   2. Is a register-relative load/store contained in the task's EA-MPU
//      region?  Base-relative accesses are certified against the task
//      memory [0, image+bss+stack); provable escapes are DF004, possible
//      escapes DF005.  Absolute (constant) addresses stay the MMIO pass's
//      claim; Top is nobody's claim.
//
// Soundness over precision: table loads resolve only through unclobbered
// ABS32 relocation sites, stores that may alias a table demote its loads to
// Top, and the per-block join widens to Top rather than guess.  Stack-region
// stores (SP-relative, within the task's stack reservation) are assumed not
// to alias the image — stack-discipline violations are the stack pass's
// domain (ST001/ST003).
#pragma once

#include <cstddef>
#include <set>

#include "analysis/cfg.h"
#include "analysis/findings.h"
#include "isa/object.h"

namespace tytan::analysis {

struct Config;  // analyzer.h

struct DataflowResult {
  /// Site offset -> sorted, validated target offsets (DF001 sites only).
  ResolvedTargets resolved;
  /// False when the fixpoint budget ran out; no resolution is claimed then.
  bool converged = true;
  /// Reachable jmpr/callr instructions seen.
  std::size_t indirect_sites = 0;
  /// Register-relative accesses proven inside the task's EA-MPU region.
  std::size_t certified_accesses = 0;
};

/// Run the value-set fixpoint over `cfg` (recovered from `object`).  When
/// `report` is non-null, DF001–DF005 findings are emitted for every
/// reachable indirect site and every certifiable register-relative access.
/// Pass a null report during the resolve/re-recover iteration and a real one
/// on the final, authoritative run.
///
/// `banned` lists indirect sites that must never be claimed resolved (DF002
/// instead): the analyzer bans a site when its resolution does not survive
/// splicing its own edges into the CFG — a self-referential table idiom
/// where the claim would invalidate the analysis that produced it.
DataflowResult run_dataflow(const isa::ObjectFile& object, const Cfg& cfg,
                            const Config& config, Report* report,
                            const std::set<std::uint32_t>* banned = nullptr);

}  // namespace tytan::analysis
