#include "analysis/findings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace tytan::analysis {

std::string_view rule_id(Rule rule) {
  switch (rule) {
    case Rule::kCfEntry: return "CF001";
    case Rule::kCfTarget: return "CF002";
    case Rule::kCfUndecodable: return "CF003";
    case Rule::kCfFallOff: return "CF004";
    case Rule::kCfDataExec: return "CF005";
    case Rule::kCfIndirect: return "CF006";
    case Rule::kRlPairing: return "RL001";
    case Rule::kRlSite: return "RL002";
    case Rule::kRlOverlap: return "RL003";
    case Rule::kRlRange: return "RL004";
    case Rule::kStDepth: return "ST001";
    case Rule::kStRecursion: return "ST002";
    case Rule::kStLoopGrowth: return "ST003";
    case Rule::kMmDevice: return "MM001";
    case Rule::kMmKeyRegister: return "MM002";
    case Rule::kMmTrusted: return "MM003";
    case Rule::kMmOutOfMem: return "MM004";
    case Rule::kImSize: return "IM001";
    case Rule::kImMailbox: return "IM002";
    case Rule::kDfResolved: return "DF001";
    case Rule::kDfUnresolved: return "DF002";
    case Rule::kDfBadTarget: return "DF003";
    case Rule::kDfOutOfRegion: return "DF004";
    case Rule::kDfMayEscape: return "DF005";
  }
  return "??";
}

std::optional<Rule> rule_from_id(std::string_view id) {
  std::string upper(id);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  for (int i = 0; i <= static_cast<int>(kLastRule); ++i) {
    const auto rule = static_cast<Rule>(i);
    if (rule_id(rule) == upper) {
      return rule;
    }
  }
  return std::nullopt;
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string format_finding(const Finding& finding) {
  char head[32];
  std::snprintf(head, sizeof(head), "[%s %s] 0x%04x: ",
                finding.severity == Severity::kError     ? "ERROR"
                : finding.severity == Severity::kWarning ? "WARN"
                                                         : "INFO",
                std::string(rule_id(finding.rule)).c_str(), finding.offset);
  return std::string(head) + finding.message;
}

void Report::add(Rule rule, Severity severity, std::uint32_t offset, std::string message) {
  findings.push_back({rule, severity, offset, std::move(message)});
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    n += f.severity == severity ? 1 : 0;
  }
  return n;
}

const Finding* Report::find(Rule rule) const {
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      return &f;
    }
  }
  return nullptr;
}

const Finding* Report::first(Severity severity) const {
  for (const Finding& f : findings) {
    if (f.severity == severity) {
      return &f;
    }
  }
  return nullptr;
}

void Report::sort() {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.offset != b.offset) return a.offset < b.offset;
                     return static_cast<int>(a.rule) < static_cast<int>(b.rule);
                   });
}

std::string Report::to_string() const {
  std::string out;
  for (const Finding& f : findings) {
    out += format_finding(f);
    out += '\n';
  }
  return out;
}

}  // namespace tytan::analysis
