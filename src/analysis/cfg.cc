#include "analysis/cfg.h"

#include <deque>
#include <sstream>

#include "common/bytes.h"
#include "core/layout.h"
#include "sim/memory_map.h"

namespace tytan::analysis {

namespace {

std::string hex(std::int64_t value) {
  std::ostringstream os;
  if (value < 0) {
    os << "-0x" << std::hex << -value;
  } else {
    os << "0x" << std::hex << value;
  }
  return os.str();
}

Flow instruction_flow(const isa::Instruction& instr, std::uint32_t offset,
                      bool terminal_int) {
  Flow flow;
  const auto relative = [&] {
    return static_cast<std::int64_t>(offset) + isa::kInstrSize + instr.simm();
  };
  switch (instr.opcode) {
    case isa::Opcode::kJmp:
      flow.target = relative();
      flow.falls_through = false;
      break;
    case isa::Opcode::kJz:
    case isa::Opcode::kJnz:
    case isa::Opcode::kJlt:
    case isa::Opcode::kJge:
    case isa::Opcode::kJc:
    case isa::Opcode::kJnc:
      flow.target = relative();
      break;
    case isa::Opcode::kCall:
      flow.target = relative();
      flow.is_call = true;
      break;
    case isa::Opcode::kJmpr:
      flow.indirect = true;
      flow.falls_through = false;
      break;
    case isa::Opcode::kCallr:
      flow.indirect = true;
      flow.is_call = true;
      break;
    case isa::Opcode::kRet:
    case isa::Opcode::kIret:
    case isa::Opcode::kHlt:
      flow.falls_through = false;
      break;
    case isa::Opcode::kInt:
      flow.falls_through = !terminal_int;
      break;
    default:
      break;
  }
  return flow;
}

/// True if the `int 0x21` at word `index` is statically an exit-style syscall
/// (the ubiquitous `movi r0, N ; int 0x21` idiom with N = exit or msg-done —
/// neither ever returns to the next instruction).
bool int_is_terminal(const Cfg& cfg, std::size_t index) {
  const auto& instr = cfg.decoded[index];
  if (instr->opcode != isa::Opcode::kInt ||
      (instr->imm & 0xFF) != sim::kVecSyscall || index == 0) {
    return false;
  }
  const auto& prev = cfg.decoded[index - 1];
  if (!prev.has_value() || prev->rd != 0 ||
      (prev->opcode != isa::Opcode::kMovi && prev->opcode != isa::Opcode::kMoviu)) {
    return false;
  }
  return prev->imm == core::kSysExit || prev->imm == core::kSysMsgDone;
}

}  // namespace

Flow Cfg::flow_at(std::uint32_t offset) const {
  const std::size_t index = offset / isa::kInstrSize;
  return instruction_flow(*decoded[index], offset, terminal_int[index]);
}

Cfg recover_cfg(const isa::ObjectFile& object, Report& report,
                const ResolvedTargets* resolved) {
  Cfg cfg;
  if (resolved != nullptr) {
    cfg.indirect_targets = *resolved;
  }
  const auto image_size = static_cast<std::uint32_t>(object.image.size());
  const std::size_t n_words = image_size / isa::kInstrSize;
  cfg.decoded.resize(n_words);
  cfg.word_class.assign(n_words, WordClass::kUnknown);
  cfg.reachable.assign(n_words, false);
  cfg.terminal_int.assign(n_words, false);
  for (std::size_t i = 0; i < n_words; ++i) {
    cfg.decoded[i] = isa::decode(load_le32(object.image.data() + i * isa::kInstrSize));
  }
  for (std::size_t i = 0; i < n_words; ++i) {
    if (cfg.decoded[i].has_value()) {
      cfg.terminal_int[i] = int_is_terminal(cfg, i);
    }
  }

  // `.word label` sites are data by construction: ABS32 relocations patch the
  // full word, so an ABS32 site can never be an instruction.
  for (const isa::Relocation& reloc : object.relocs) {
    if (reloc.kind != isa::RelocKind::kAbs32) {
      continue;
    }
    for (std::uint32_t byte = reloc.offset; byte < reloc.offset + 4; ++byte) {
      if (byte / isa::kInstrSize < n_words) {
        cfg.word_class[byte / isa::kInstrSize] = WordClass::kData;
      }
    }
  }

  // Validate and seed the roots.
  const auto add_root = [&](std::uint32_t offset, std::string_view what) {
    std::string why;
    const std::size_t index = offset / isa::kInstrSize;
    if (offset % isa::kInstrSize != 0) {
      why = "not instruction-aligned";
    } else if (offset + isa::kInstrSize > image_size) {
      why = "outside the " + std::to_string(image_size) + "-byte image";
    } else if (cfg.word_class[index] == WordClass::kData) {
      why = "points at relocated data";
    } else if (!cfg.decoded[index].has_value()) {
      why = "does not decode";
    } else {
      cfg.roots.push_back(offset);
      return;
    }
    report.add(Rule::kCfEntry, Severity::kError, offset,
               std::string(what) + " offset " + hex(offset) + " " + why);
  };
  add_root(object.entry, "entry");
  if (object.msg_handler != 0 && object.msg_handler != object.entry) {
    add_root(object.msg_handler, "msg-handler");
  }

  // Reachability traversal.  `leaders` collects basic-block starts.
  std::set<std::uint32_t> leaders(cfg.roots.begin(), cfg.roots.end());
  std::map<std::uint32_t, std::uint32_t> call_sites;  // site offset -> target
  // Dataflow-resolved edges out of indirect sites, re-validated against this
  // image (the resolution may predate a re-recovery).
  std::map<std::uint32_t, std::vector<std::uint32_t>> indirect_jumps;
  std::map<std::uint32_t, std::vector<std::uint32_t>> indirect_calls;
  std::deque<std::uint32_t> worklist(cfg.roots.begin(), cfg.roots.end());
  while (!worklist.empty()) {
    const std::uint32_t offset = worklist.front();
    worklist.pop_front();
    const std::size_t index = offset / isa::kInstrSize;
    if (cfg.reachable[index]) {
      continue;
    }
    cfg.reachable[index] = true;
    if (cfg.word_class[index] == WordClass::kData) {
      report.add(Rule::kCfDataExec, Severity::kError, offset,
                 "execution reaches relocated data at " + hex(offset));
      continue;
    }
    if (!cfg.decoded[index].has_value()) {
      report.add(Rule::kCfUndecodable, Severity::kError, offset,
                 "reachable word " + hex(offset) + " does not decode (0x" +
                     [&] {
                       std::ostringstream os;
                       os << std::hex << load_le32(object.image.data() + offset);
                       return os.str();
                     }() +
                     ")");
      continue;
    }
    cfg.word_class[index] = WordClass::kCode;
    const Flow flow = instruction_flow(*cfg.decoded[index], offset, cfg.terminal_int[index]);
    if (flow.indirect) {
      if (resolved == nullptr) {
        report.add(Rule::kCfIndirect, Severity::kWarning, offset,
                   std::string(isa::mnemonic(cfg.decoded[index]->opcode)) +
                       " at " + hex(offset) + ": indirect control transfer is not "
                       "statically verifiable");
      } else if (const auto it = resolved->find(offset); it != resolved->end()) {
        auto& spliced = flow.is_call ? indirect_calls[offset] : indirect_jumps[offset];
        for (const std::uint32_t target : it->second) {
          if (target % isa::kInstrSize != 0 || target + isa::kInstrSize > image_size) {
            continue;  // stale resolution from a previous recovery round
          }
          spliced.push_back(target);
          leaders.insert(target);
          worklist.push_back(target);
        }
      }
    }
    if (flow.target.has_value()) {
      const std::int64_t target = *flow.target;
      if (target < 0 || target + isa::kInstrSize > image_size ||
          target % isa::kInstrSize != 0) {
        report.add(Rule::kCfTarget, Severity::kError, offset,
                   std::string(flow.is_call ? "call" : "branch") + " target " +
                       hex(target) + " outside the " + std::to_string(image_size) +
                       "-byte image or misaligned");
      } else {
        const auto t = static_cast<std::uint32_t>(target);
        leaders.insert(t);
        worklist.push_back(t);
        if (flow.is_call) {
          call_sites[offset] = t;
        }
      }
    }
    if (flow.falls_through) {
      const std::uint32_t fall = offset + isa::kInstrSize;
      if (fall + isa::kInstrSize > image_size) {
        report.add(Rule::kCfFallOff, Severity::kError, offset,
                   "execution falls off the end of the image after " + hex(offset));
      } else {
        worklist.push_back(fall);
        // Any control transfer ends its block; the fall-through starts one.
        if (flow.target.has_value() || flow.indirect) {
          leaders.insert(fall);
        }
      }
    }
  }

  // Build basic blocks over the reachable code.
  std::uint32_t block_start = kNoOffset;
  const auto close_block = [&](std::uint32_t end) {
    if (block_start == kNoOffset) {
      return;
    }
    BasicBlock block;
    block.start = block_start;
    block.end = end;
    const std::uint32_t last = end - isa::kInstrSize;
    const Flow flow = cfg.flow_at(last);
    block.indirect_exit = flow.indirect;
    if (const auto it = call_sites.find(last); it != call_sites.end()) {
      block.call_target = it->second;
    }
    if (const auto it = indirect_calls.find(last); it != indirect_calls.end()) {
      block.indirect_call_targets = it->second;
    }
    if (const auto it = indirect_jumps.find(last); it != indirect_jumps.end()) {
      for (const std::uint32_t target : it->second) {
        if (cfg.is_code(target)) {
          block.successors.push_back(target);
        }
      }
    }
    if (flow.target.has_value() && !flow.is_call) {
      const std::int64_t target = *flow.target;
      if (target >= 0 && target + isa::kInstrSize <= image_size &&
          cfg.is_code(static_cast<std::uint32_t>(target))) {
        block.successors.push_back(static_cast<std::uint32_t>(target));
      }
    }
    if (flow.falls_through && end + isa::kInstrSize <= image_size &&
        cfg.is_code(end) && cfg.reachable[end / isa::kInstrSize]) {
      block.successors.push_back(end);
    }
    const std::uint32_t key = block.start;
    cfg.blocks.emplace(key, std::move(block));
    block_start = kNoOffset;
  };
  for (std::size_t i = 0; i < n_words; ++i) {
    const auto offset = static_cast<std::uint32_t>(i * isa::kInstrSize);
    const bool code = cfg.reachable[i] && cfg.word_class[i] == WordClass::kCode;
    if (!code) {
      close_block(offset);
      continue;
    }
    if (leaders.contains(offset)) {
      close_block(offset);
    }
    if (block_start == kNoOffset) {
      block_start = offset;
    }
    const Flow flow = cfg.flow_at(offset);
    const bool ends_block = flow.target.has_value() || flow.indirect ||
                            !flow.falls_through;
    if (ends_block) {
      close_block(offset + isa::kInstrSize);
    }
  }
  close_block(static_cast<std::uint32_t>(n_words * isa::kInstrSize));

  // Fall-through into a mid-block offset can only happen when the next
  // offset is a leader, so every successor recorded above is a block start.

  // Call graph: walk each function's intraprocedural blocks.
  cfg.functions.insert(cfg.roots.begin(), cfg.roots.end());
  for (const auto& [site, target] : call_sites) {
    cfg.functions.insert(target);
  }
  for (const auto& [site, targets] : indirect_calls) {
    for (const std::uint32_t target : targets) {
      if (cfg.is_code(target)) {
        cfg.functions.insert(target);
      }
    }
  }
  for (const std::uint32_t fn : cfg.functions) {
    std::set<std::uint32_t>& callees = cfg.call_graph[fn];
    std::set<std::uint32_t> seen;
    std::deque<std::uint32_t> blocks{fn};
    while (!blocks.empty()) {
      const std::uint32_t start = blocks.front();
      blocks.pop_front();
      if (!seen.insert(start).second) {
        continue;
      }
      const auto it = cfg.blocks.find(start);
      if (it == cfg.blocks.end()) {
        continue;
      }
      if (it->second.call_target != kNoOffset) {
        callees.insert(it->second.call_target);
      }
      for (const std::uint32_t callee : it->second.indirect_call_targets) {
        if (cfg.is_code(callee)) {
          callees.insert(callee);
        }
      }
      for (const std::uint32_t succ : it->second.successors) {
        blocks.push_back(succ);
      }
    }
  }
  return cfg;
}

}  // namespace tytan::analysis
