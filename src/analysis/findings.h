// Machine-readable diagnostics of the static binary verifier.
//
// Every check the analyzer performs is identified by a stable rule id
// ("CF002", "ST001", ...) so tests, CI, and suppression lists can refer to a
// diagnostic without parsing its message.  A Finding anchors one diagnostic
// at an image offset; a Report is the ordered collection for one object.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tytan::analysis {

enum class Severity : std::uint8_t {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

/// Stable rule catalogue.  Ids are grouped by pass:
///   CF*  control-flow recovery    RL*  relocation lints
///   ST*  stack-depth analysis     MM*  MMIO / privilege lints
///   IM*  image structure          DF*  value-set dataflow
enum class Rule : std::uint8_t {
  kCfEntry,        ///< CF001: entry/msg-handler does not reach valid code
  kCfTarget,       ///< CF002: branch/call target outside image or misaligned
  kCfUndecodable,  ///< CF003: reachable word does not decode
  kCfFallOff,      ///< CF004: reachable path falls off the image end
  kCfDataExec,     ///< CF005: reachable code overlaps relocated data
  kCfIndirect,     ///< CF006: indirect transfer, not statically verifiable
  kRlPairing,      ///< RL001: LO16/HI16 pair broken
  kRlSite,         ///< RL002: relocation targets the wrong instruction kind
  kRlOverlap,      ///< RL003: overlapping/duplicate relocation records
  kRlRange,        ///< RL004: relocation offset or addend out of range
  kStDepth,        ///< ST001: worst-case stack depth exceeds the stack size
  kStRecursion,    ///< ST002: recursion in the call graph
  kStLoopGrowth,   ///< ST003: stack depth grows inside a loop
  kMmDevice,       ///< MM001: device MMIO access from an unprivileged task
  kMmKeyRegister,  ///< MM002: platform-key register access from a task
  kMmTrusted,      ///< MM003: access to the trusted region below task RAM
  kMmOutOfMem,     ///< MM004: access beyond physical memory
  kImSize,         ///< IM001: image size not a multiple of the word size
  kImMailbox,      ///< IM002: mailbox offset outside the image
  kDfResolved,     ///< DF001: indirect transfer resolved to a bounded target set
  kDfUnresolved,   ///< DF002: indirect target set not statically bounded
  kDfBadTarget,    ///< DF003: resolved indirect target is not valid code
  kDfOutOfRegion,  ///< DF004: register-relative access provably outside the task region
  kDfMayEscape,    ///< DF005: register-relative access may fall outside the task region
};

/// Last catalogue entry, for exhaustive iteration (tests, rule_from_id).
inline constexpr auto kLastRule = Rule::kDfMayEscape;

/// "CF002", "ST001", ... (stable across releases).
std::string_view rule_id(Rule rule);
/// Parse "CF002"-style ids (case-insensitive); nullopt if unknown.
std::optional<Rule> rule_from_id(std::string_view id);
/// "error" / "warning" / "info".
std::string_view severity_name(Severity severity);

struct Finding {
  Rule rule = Rule::kCfEntry;
  Severity severity = Severity::kError;
  std::uint32_t offset = 0;  ///< image offset the finding anchors at
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// "[ERROR CF002] 0x0010: branch target 0x0060 outside 64-byte image"
std::string format_finding(const Finding& finding);

struct Report {
  std::vector<Finding> findings;

  void add(Rule rule, Severity severity, std::uint32_t offset, std::string message);

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const { return count(Severity::kWarning); }
  [[nodiscard]] bool has(Rule rule) const { return find(rule) != nullptr; }
  [[nodiscard]] const Finding* find(Rule rule) const;
  /// First finding of exactly this severity, or nullptr.
  [[nodiscard]] const Finding* first(Severity severity) const;

  /// Order findings by (offset, rule id) for deterministic output.
  void sort();
  /// One format_finding() line per finding.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace tytan::analysis
