// Static binary verifier for Peak-32/TBF task images.
//
// Runs up to four passes over an object file and returns a Report of rule
// findings (see findings.h for the catalogue):
//
//   structural  CF001–CF006, IM001–IM002   CFG recovery + image shape
//   relocation  RL001–RL004                 LO16/HI16 pairing, sites, ranges
//   stack       ST001–ST003                 conservative worst-case depth
//   mmio        MM001–MM004                 statically-known access addresses
//
// The verifier is conservative in what it *claims*: a clean report means no
// statically-provable violation was found, not that the binary is correct —
// indirect control flow (CF006) and register-relative addressing are
// reported as unverifiable rather than guessed at.  It never charges
// simulated machine cycles; the loader runs it host-side before any memory
// is allocated for the task.
#pragma once

#include <set>

#include "analysis/cfg.h"
#include "analysis/findings.h"
#include "isa/object.h"

namespace tytan::analysis {

struct Config {
  bool structural = true;   ///< CF* / IM* checks
  bool relocations = true;  ///< RL* checks
  bool stack = true;        ///< ST* checks
  bool mmio = true;         ///< MM* checks
  /// Bytes the platform may push onto the task stack underneath the task's
  /// own worst case: the hardware interrupt frame (EFLAGS + EIP, 8 bytes)
  /// plus the Int Mux context save (r0..r6, 28 bytes).
  std::uint32_t interrupt_reserve = 36;
  /// Rules to drop from the report (per-rule suppression).
  std::set<Rule> suppress;

  [[nodiscard]] bool suppressed(Rule rule) const { return suppress.contains(rule); }
};

/// Analyze `object` and return all findings, sorted by (offset, rule).
Report analyze(const isa::ObjectFile& object, const Config& config = {});

}  // namespace tytan::analysis
