// Static binary verifier for Peak-32/TBF task images.
//
// Runs up to five passes over an object file and returns a Report of rule
// findings (see findings.h for the catalogue):
//
//   structural  CF001–CF006, IM001–IM002   CFG recovery + image shape
//   relocation  RL001–RL004                 LO16/HI16 pairing, sites, ranges
//   dataflow    DF001–DF005                 value-set resolution of indirect
//                                           control flow + EA-MPU certification
//   stack       ST001–ST003                 conservative worst-case depth
//   mmio        MM001–MM004                 statically-known access addresses
//
// With the dataflow pass enabled (the default) the verifier iterates CFG
// recovery and value-set analysis to a joint fixpoint: targets resolved by
// the dataflow pass become CFG edges, newly reachable code is analyzed in
// turn, and blanket CF006 warnings are replaced by the precise DF verdicts.
// The stack pass then tightens its worst case through resolved indirect
// calls, and register-relative accesses are certified against the task's
// EA-MPU region.
//
// The verifier is conservative in what it *claims*: a clean report means no
// statically-provable violation was found, not that the binary is correct —
// unresolvable indirect control flow and unbounded register-relative
// addressing are reported as unverifiable rather than guessed at.  It never
// charges simulated machine cycles; the loader runs it host-side before any
// memory is allocated for the task.
#pragma once

#include <cstdint>
#include <set>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/findings.h"
#include "isa/object.h"

namespace tytan::analysis {

struct Config {
  bool structural = true;   ///< CF* / IM* checks
  bool relocations = true;  ///< RL* checks
  bool stack = true;        ///< ST* checks
  bool mmio = true;         ///< MM* checks
  bool dataflow = true;     ///< DF* checks (value-set analysis)
  /// Bytes the platform may push onto the task stack underneath the task's
  /// own worst case: the hardware interrupt frame (EFLAGS + EIP, 8 bytes)
  /// plus the Int Mux context save (r0..r6, 28 bytes).
  std::uint32_t interrupt_reserve = 36;
  /// An indirect site whose value set exceeds this many candidates stays
  /// unresolved (DF002) rather than splicing a huge edge fan into the CFG.
  std::uint32_t max_indirect_targets = 64;
  /// Rules to drop from the report (per-rule suppression).
  std::set<Rule> suppress;

  [[nodiscard]] bool suppressed(Rule rule) const { return suppress.contains(rule); }
};

/// Host-side wall-clock cost of each pass, for `tytan-lint --json` and the
/// analysis benchmark.  Zero for passes that did not run.
struct PassTimings {
  std::uint64_t structural_us = 0;
  std::uint64_t relocation_us = 0;
  std::uint64_t dataflow_us = 0;  ///< includes the resolve/re-recover loop
  std::uint64_t stack_us = 0;
  std::uint64_t mmio_us = 0;
};

/// Everything one verification run produced.  `analyze()` is the
/// findings-only shorthand; tools that annotate disassembly or report pass
/// costs use the full result.
struct Analysis {
  Report report;
  Cfg cfg;                  ///< final CFG (resolved edges spliced in)
  bool has_cfg = false;     ///< false for data-only objects
  DataflowResult dataflow;  ///< empty when the dataflow pass is disabled
  int dataflow_iterations = 0;  ///< resolve/re-recover rounds taken
  PassTimings timings;
};

/// Analyze `object` and return all findings, sorted by (offset, rule).
Report analyze(const isa::ObjectFile& object, const Config& config = {});

/// Full analysis: findings plus the recovered CFG, resolved indirect
/// targets, and per-pass timings.
Analysis analyze_full(const isa::ObjectFile& object, const Config& config = {});

}  // namespace tytan::analysis
