// Value-set abstract domain for the dataflow pass (Reps-style VSA, scaled
// down to the Peak-32 idioms the tool chain actually emits).
//
// A ValueSet over-approximates the runtime values one register may hold at a
// program point.  Values live in one *region*:
//
//   kConst     absolute numbers (the value itself is bounded)
//   kBaseRel   image-load-base + offset — what `li rX, label` and `.word
//              label` table entries materialize; the base is unknown until
//              load time, the offset is bounded
//   kBaseLo    the low half of an li pair: moviu@LO16 executed, movhi@HI16
//              still pending (any other use forfeits the pairing and is Top)
//   kStackRel  entry-SP + offset (negative offsets grow into the stack)
//   kTop       any 32-bit value
//
// Within a region the set is canonicalized as either an explicit sorted
// vector (when it has at most kExplicitMax elements — exact jump-table
// index sets survive this way) or a strided interval [lo, hi] / stride.
// Every transformer is a sound over-approximation: anything unmodeled
// returns Top, never a smaller set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tytan::analysis {

class ValueSet {
 public:
  enum class Kind : std::uint8_t {
    kTop = 0,
    kConst,
    kBaseRel,
    kBaseLo,
    kStackRel,
  };

  /// Sets up to this many elements are kept explicitly (exact).
  static constexpr std::size_t kExplicitMax = 32;
  /// Offsets beyond this magnitude collapse to Top (no wrap modelling).
  static constexpr std::int64_t kOffsetLimit = std::int64_t{1} << 40;

  ValueSet() = default;  ///< Top

  static ValueSet top() { return {}; }
  static ValueSet constant(std::uint32_t value);
  static ValueSet base_rel(std::int64_t offset);
  static ValueSet base_lo(std::uint32_t addend);
  static ValueSet stack_rel(std::int64_t offset);
  /// Strided interval [lo, hi] stepping by `stride` (0 = singleton).
  static ValueSet interval(Kind kind, std::int64_t lo, std::int64_t hi,
                           std::int64_t stride);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_top() const { return kind_ == Kind::kTop; }
  [[nodiscard]] std::int64_t lo() const { return lo_; }
  [[nodiscard]] std::int64_t hi() const { return hi_; }
  [[nodiscard]] bool singleton() const { return !is_top() && lo_ == hi_; }
  /// Number of values in the set; meaningless for Top.
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] bool enumerable(std::size_t limit) const {
    return !is_top() && count() <= limit;
  }
  /// The concrete offsets/values, ascending.  Empty when not enumerable.
  [[nodiscard]] std::vector<std::int64_t> enumerate(std::size_t limit) const;

  /// Least upper bound.  Different regions join to Top.
  [[nodiscard]] static ValueSet join(const ValueSet& a, const ValueSet& b);

  // -- transformers -----------------------------------------------------------
  [[nodiscard]] ValueSet add(std::int64_t delta) const;
  [[nodiscard]] static ValueSet add(const ValueSet& a, const ValueSet& b);
  [[nodiscard]] static ValueSet sub(const ValueSet& a, const ValueSet& b);
  [[nodiscard]] ValueSet shl(unsigned amount) const;
  [[nodiscard]] ValueSet shr(unsigned amount) const;
  /// `value & mask` — exact on explicit constants, else the sound [0, mask].
  [[nodiscard]] ValueSet and_mask(std::uint32_t mask) const;
  [[nodiscard]] ValueSet or_mask(std::uint32_t mask) const;
  [[nodiscard]] ValueSet xor_mask(std::uint32_t mask) const;
  /// movhi with a plain immediate: (v & 0xFFFF) | high << 16.
  [[nodiscard]] ValueSet movhi_const(std::uint32_t high) const;
  /// movhi at a HI16 site completing an li pair with this addend.
  [[nodiscard]] ValueSet movhi_reloc(std::uint32_t addend) const;

  // -- branch refinements (unsigned compare against a constant) ---------------
  // Refinement is optional precision: when the condition cannot narrow the
  // set (wrong region, or it would empty it) the set is returned unchanged.
  [[nodiscard]] ValueSet refine_below(std::uint32_t bound) const;     ///< v < bound
  [[nodiscard]] ValueSet refine_at_least(std::uint32_t bound) const;  ///< v >= bound
  [[nodiscard]] ValueSet refine_eq(std::uint32_t value) const;        ///< v == value

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ValueSet&, const ValueSet&) = default;

 private:
  /// Materialize small intervals as explicit sets; keep summary fields exact.
  void canonicalize();
  /// Apply `f` to every explicit value; Top when the set is not explicit.
  template <typename Fn>
  [[nodiscard]] ValueSet map_const(Fn&& f) const;

  Kind kind_ = Kind::kTop;
  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
  std::int64_t stride_ = 0;             ///< 0 = singleton (interval mode)
  std::vector<std::int64_t> values_;    ///< sorted unique; empty = interval mode
};

}  // namespace tytan::analysis
