#include "analysis/analyzer.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "common/bytes.h"
#include "isa/assembler.h"
#include "sim/memory_map.h"

namespace tytan::analysis {

namespace {

std::string hex(std::int64_t value) {
  std::ostringstream os;
  if (value < 0) {
    os << "-0x" << std::hex << -value;
  } else {
    os << "0x" << std::hex << value;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Image-structure checks (IM*)
// ---------------------------------------------------------------------------

void check_image_shape(const isa::ObjectFile& object, Report& report) {
  const auto image_size = static_cast<std::uint32_t>(object.image.size());
  if (image_size % isa::kInstrSize != 0) {
    report.add(Rule::kImSize, Severity::kError, image_size & ~3u,
               "image size " + std::to_string(image_size) +
                   " is not a multiple of the instruction size");
  }
  if (object.mailbox != 0 &&
      (object.mailbox % 4 != 0 ||
       object.mailbox + isa::SecureLayout::kMailboxSize > image_size)) {
    report.add(Rule::kImMailbox, Severity::kError, object.mailbox,
               "mailbox at " + hex(object.mailbox) + " (+" +
                   std::to_string(isa::SecureLayout::kMailboxSize) +
                   " bytes) does not fit the " + std::to_string(image_size) +
                   "-byte image");
  }
}

// ---------------------------------------------------------------------------
// Relocation lints (RL*)
// ---------------------------------------------------------------------------

void check_relocations(const isa::ObjectFile& object, const Cfg* cfg, Report& report) {
  const auto image_size = static_cast<std::uint32_t>(object.image.size());
  const std::uint32_t memory_size = object.memory_size();

  // Work on an offset-sorted view; hand-built objects may be unsorted.
  std::vector<const isa::Relocation*> sorted;
  sorted.reserve(object.relocs.size());
  for (const isa::Relocation& reloc : object.relocs) {
    sorted.push_back(&reloc);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto* a, const auto* b) { return a->offset < b->offset; });

  std::map<std::uint32_t, const isa::Relocation*> by_offset;
  for (const isa::Relocation* reloc : sorted) {
    by_offset.emplace(reloc->offset, reloc);
  }

  const isa::Relocation* prev = nullptr;
  for (const isa::Relocation* reloc : sorted) {
    const char* kind = reloc->kind == isa::RelocKind::kAbs32  ? "ABS32"
                       : reloc->kind == isa::RelocKind::kLo16 ? "LO16"
                                                              : "HI16";
    if (reloc->offset + 4 > image_size) {
      report.add(Rule::kRlRange, Severity::kError, reloc->offset,
                 std::string(kind) + " relocation at " + hex(reloc->offset) +
                     " outside the " + std::to_string(image_size) + "-byte image");
      continue;
    }
    if (reloc->kind != isa::RelocKind::kAbs32 && reloc->offset % isa::kInstrSize != 0) {
      report.add(Rule::kRlRange, Severity::kError, reloc->offset,
                 std::string(kind) + " relocation at " + hex(reloc->offset) +
                     " is not instruction-aligned");
      continue;
    }
    if (reloc->addend > memory_size) {
      report.add(Rule::kRlRange, Severity::kError, reloc->offset,
                 std::string(kind) + " addend " + hex(reloc->addend) +
                     " beyond the task memory (image+bss+stack = " +
                     std::to_string(memory_size) + " bytes)");
    }
    if (prev != nullptr && reloc->offset < prev->offset + 4) {
      report.add(Rule::kRlOverlap, Severity::kError, reloc->offset,
                 "relocation at " + hex(reloc->offset) + " overlaps the record at " +
                     hex(prev->offset));
    }
    prev = reloc;

    // LO16/HI16 come in pairs: the two halves of one `li`, adjacent words,
    // same addend.  An unpaired half materializes a torn address at runtime.
    if (reloc->kind == isa::RelocKind::kLo16) {
      const auto hi = by_offset.find(reloc->offset + 4);
      if (hi == by_offset.end() || hi->second->kind != isa::RelocKind::kHi16) {
        report.add(Rule::kRlPairing, Severity::kError, reloc->offset,
                   "LO16 at " + hex(reloc->offset) + " has no HI16 at " +
                       hex(reloc->offset + 4));
      } else if (hi->second->addend != reloc->addend) {
        report.add(Rule::kRlPairing, Severity::kError, reloc->offset,
                   "LO16/HI16 pair at " + hex(reloc->offset) +
                       " disagrees on the addend (" + hex(reloc->addend) + " vs " +
                       hex(hi->second->addend) + ")");
      }
    } else if (reloc->kind == isa::RelocKind::kHi16) {
      const auto lo = by_offset.find(reloc->offset - 4);
      if (reloc->offset < 4 || lo == by_offset.end() ||
          lo->second->kind != isa::RelocKind::kLo16) {
        report.add(Rule::kRlPairing, Severity::kError, reloc->offset,
                   "HI16 at " + hex(reloc->offset) + " has no LO16 at " +
                       hex(reloc->offset - 4));
      }
    }

    // Site checks: LO16 patches the imm16 of a moviu, HI16 of a movhi.
    // (ABS32 sites are data by definition; executing them is CF005.)
    if (cfg != nullptr && reloc->kind != isa::RelocKind::kAbs32 &&
        reloc->offset % isa::kInstrSize == 0) {
      const auto& instr = cfg->decoded[reloc->offset / isa::kInstrSize];
      const isa::Opcode expected = reloc->kind == isa::RelocKind::kLo16
                                       ? isa::Opcode::kMoviu
                                       : isa::Opcode::kMovhi;
      if (!instr.has_value() || instr->opcode != expected) {
        report.add(Rule::kRlSite, Severity::kError, reloc->offset,
                   std::string(kind) + " relocation at " + hex(reloc->offset) +
                       " does not target a " +
                       std::string(isa::mnemonic(expected)) + " instruction");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stack-depth analysis (ST*)
// ---------------------------------------------------------------------------

class StackAnalysis {
 public:
  StackAnalysis(const Cfg& cfg, Report& report) : cfg_(cfg), report_(report) {}

  void run(const isa::ObjectFile& object, std::uint32_t reserve) {
    std::int64_t worst = 0;
    bool known = true;
    for (const std::uint32_t root : cfg_.roots) {
      const FnResult result = function_depth(root);
      worst = std::max(worst, result.worst);
      known = known && result.known;
    }
    if (known && worst + reserve > object.stack_size) {
      report_.add(Rule::kStDepth, Severity::kError,
                  cfg_.roots.empty() ? 0 : cfg_.roots.front(),
                  "worst-case stack depth " + std::to_string(worst) + " bytes + " +
                      std::to_string(reserve) +
                      "-byte interrupt reserve exceeds the requested stack size " +
                      std::to_string(object.stack_size));
    }
  }

 private:
  struct FnResult {
    std::int64_t worst = 0;
    bool known = true;  ///< false: recursion / indirect call / SP clobber
  };

  /// Cap on re-walking one offset with a deeper incoming stack; a loop that
  /// still grows after this many widening steps is unbounded (ST003).
  static constexpr int kMaxVisits = 32;

  FnResult function_depth(std::uint32_t entry) {
    if (const auto it = memo_.find(entry); it != memo_.end()) {
      return it->second;
    }
    if (on_stack_.contains(entry)) {
      if (recursion_reported_.insert(entry).second) {
        report_.add(Rule::kStRecursion, Severity::kWarning, entry,
                    "recursive call cycle through " + hex(entry) +
                        "; stack depth is not statically bounded");
      }
      return {0, false};
    }
    on_stack_.insert(entry);
    FnResult result = walk(entry);
    on_stack_.erase(entry);
    memo_.emplace(entry, result);
    return result;
  }

  FnResult walk(std::uint32_t entry) {
    FnResult result;
    std::map<std::uint32_t, std::int64_t> best;
    std::map<std::uint32_t, int> visits;
    std::deque<std::pair<std::uint32_t, std::int64_t>> work{{entry, 0}};
    bool growth_reported = false;
    while (!work.empty()) {
      const auto [offset, depth] = work.front();
      work.pop_front();
      if (!cfg_.is_code(offset)) {
        continue;  // structural violations are CF* findings, not ours
      }
      if (const auto it = best.find(offset); it != best.end() && depth <= it->second) {
        continue;  // already walked at this depth or deeper
      }
      if (++visits[offset] > kMaxVisits) {
        if (!growth_reported) {
          report_.add(Rule::kStLoopGrowth, Severity::kWarning, offset,
                      "stack depth keeps growing through the loop at " + hex(offset));
          growth_reported = true;
        }
        result.known = false;
        continue;
      }
      best[offset] = depth;

      const isa::Instruction& instr = *cfg_.decoded[offset / isa::kInstrSize];
      std::int64_t delta = 0;
      std::int64_t peak = depth;
      bool sp_lost = false;
      switch (instr.opcode) {
        case isa::Opcode::kPush:
          delta = 4;
          break;
        case isa::Opcode::kPop:
          if (instr.rd == isa::kSpIndex) {
            sp_lost = true;
          } else {
            delta = -4;
          }
          break;
        case isa::Opcode::kSubi:
          if (instr.rd == isa::kSpIndex) {
            delta = instr.simm();
          }
          break;
        case isa::Opcode::kAddi:
          if (instr.rd == isa::kSpIndex) {
            delta = -instr.simm();
          }
          break;
        case isa::Opcode::kMov:
        case isa::Opcode::kMovi:
        case isa::Opcode::kMoviu:
        case isa::Opcode::kMovhi:
        case isa::Opcode::kAdd:
        case isa::Opcode::kSub:
        case isa::Opcode::kAnd:
        case isa::Opcode::kAndi:
        case isa::Opcode::kOr:
        case isa::Opcode::kOri:
        case isa::Opcode::kXor:
        case isa::Opcode::kShl:
        case isa::Opcode::kShli:
        case isa::Opcode::kShr:
        case isa::Opcode::kShri:
        case isa::Opcode::kMul:
        case isa::Opcode::kLdw:
        case isa::Opcode::kLdb:
        case isa::Opcode::kRdcyc:
          if (instr.rd == isa::kSpIndex) {
            sp_lost = true;  // SP rewritten from a non-stack source
          }
          break;
        default:
          break;
      }
      if (sp_lost) {
        result.known = false;
        continue;  // cannot track this path further
      }

      const Flow flow = cfg_.flow_at(offset);
      const auto resolved = flow.indirect ? cfg_.indirect_targets.find(offset)
                                          : cfg_.indirect_targets.end();
      if (flow.is_call) {
        if (flow.indirect) {
          if (resolved == cfg_.indirect_targets.end()) {
            result.known = false;  // unknown callee, unknown depth
          } else {
            // Dataflow bounded the callee set: the worst case is the
            // deepest resolved callee, exactly as for a direct call.
            for (const std::uint32_t target : resolved->second) {
              if (!cfg_.is_code(target)) {
                continue;
              }
              const FnResult callee = function_depth(target);
              peak = std::max(peak, depth + 4 + callee.worst);
              result.known = result.known && callee.known;
            }
          }
        } else if (flow.target.has_value() && *flow.target >= 0 &&
                   cfg_.is_code(static_cast<std::uint32_t>(*flow.target))) {
          const FnResult callee =
              function_depth(static_cast<std::uint32_t>(*flow.target));
          peak = std::max(peak, depth + 4 + callee.worst);  // +4: return address
          result.known = result.known && callee.known;
        }
      }
      const std::int64_t after = depth + delta;
      result.worst = std::max({result.worst, peak, after});

      if (flow.target.has_value() && !flow.is_call && *flow.target >= 0) {
        work.emplace_back(static_cast<std::uint32_t>(*flow.target), after);
      }
      if (flow.indirect && !flow.is_call) {
        if (resolved == cfg_.indirect_targets.end()) {
          result.known = false;  // jmpr to an unbounded target
        } else {
          for (const std::uint32_t target : resolved->second) {
            work.emplace_back(target, after);
          }
        }
      }
      if (flow.falls_through) {
        work.emplace_back(offset + isa::kInstrSize, after);
      }
    }
    return result;
  }

  const Cfg& cfg_;
  Report& report_;
  std::map<std::uint32_t, FnResult> memo_;
  std::set<std::uint32_t> on_stack_;
  std::set<std::uint32_t> recursion_reported_;
};

// ---------------------------------------------------------------------------
// MMIO / privilege lints (MM*)
// ---------------------------------------------------------------------------

/// Forward constant propagation over the recovered CFG.  Only the address
/// -materialization idioms are modeled (mov/movi/moviu/movhi/addi/subi); any
/// other register write demotes the register to unknown, so the pass can
/// never report an address the program would not actually compute.
class MmioAnalysis {
 public:
  MmioAnalysis(const Cfg& cfg, const isa::ObjectFile& object, Report& report)
      : cfg_(cfg), object_(object), report_(report) {
    for (const isa::Relocation& reloc : object.relocs) {
      if (reloc.kind != isa::RelocKind::kAbs32) {
        relocated_site_.insert(reloc.offset);
      }
    }
  }

  void run() {
    if (cfg_.blocks.empty()) {
      return;
    }
    // Roots and call-graph function entries start with every register
    // unknown (the unknown state is the lattice bottom, so seeding extra
    // blocks is always sound).
    std::deque<std::uint32_t> worklist;
    for (const std::uint32_t fn : cfg_.functions) {
      if (cfg_.blocks.contains(fn)) {
        in_.emplace(fn, State{});
        worklist.push_back(fn);
      }
    }
    int budget = static_cast<int>(cfg_.blocks.size()) * 16 + 64;
    while (!worklist.empty() && budget-- > 0) {
      const std::uint32_t start = worklist.front();
      worklist.pop_front();
      const BasicBlock& block = cfg_.blocks.at(start);
      State state = in_.at(start);
      transfer(block, state, /*emit=*/false);
      const Flow flow = cfg_.flow_at(block.end - isa::kInstrSize);
      const State succ_state = flow.is_call ? State{} : state;
      for (const std::uint32_t succ : block.successors) {
        if (!cfg_.blocks.contains(succ)) {
          continue;
        }
        const auto it = in_.find(succ);
        if (it == in_.end()) {
          in_.emplace(succ, succ_state);
          worklist.push_back(succ);
        } else if (meet(it->second, succ_state)) {
          worklist.push_back(succ);
        }
      }
    }
    // States have converged (or the budget ran out on a pathological CFG —
    // the in-states are still sound, only possibly over-precise on blocks
    // never re-visited).  Emit findings in one deterministic pass.
    for (const auto& [start, block] : cfg_.blocks) {
      if (const auto it = in_.find(start); it != in_.end()) {
        State state = it->second;
        transfer(block, state, /*emit=*/true);
      }
    }
  }

 private:
  using State = std::array<std::optional<std::uint32_t>, isa::kNumGprs>;

  /// Merge `from` into `into`; true if `into` changed (lost knowledge).
  static bool meet(State& into, const State& from) {
    bool changed = false;
    for (std::size_t i = 0; i < into.size(); ++i) {
      if (into[i].has_value() && into[i] != from[i]) {
        into[i].reset();
        changed = true;
      }
    }
    return changed;
  }

  void transfer(const BasicBlock& block, State& state, bool emit) {
    for (std::uint32_t offset = block.start; offset < block.end;
         offset += isa::kInstrSize) {
      const isa::Instruction& instr = *cfg_.decoded[offset / isa::kInstrSize];
      const bool relocated = relocated_site_.contains(offset);
      switch (instr.opcode) {
        case isa::Opcode::kMov:
          state[instr.rd] = state[instr.ra];
          break;
        case isa::Opcode::kMovi:
          state[instr.rd] = static_cast<std::uint32_t>(instr.simm());
          break;
        case isa::Opcode::kMoviu:
          // A LO16 site materializes a base-relative address; its final
          // value depends on the load base and is unknown here.
          state[instr.rd] =
              relocated ? std::nullopt
                        : std::optional<std::uint32_t>(instr.imm);
          break;
        case isa::Opcode::kMovhi:
          if (relocated || !state[instr.rd].has_value()) {
            state[instr.rd].reset();
          } else {
            state[instr.rd] = (*state[instr.rd] & 0xFFFFu) |
                              (static_cast<std::uint32_t>(instr.imm) << 16);
          }
          break;
        case isa::Opcode::kAddi:
          if (state[instr.rd].has_value()) {
            state[instr.rd] = *state[instr.rd] + static_cast<std::uint32_t>(instr.simm());
          }
          break;
        case isa::Opcode::kSubi:
          if (state[instr.rd].has_value()) {
            state[instr.rd] = *state[instr.rd] - static_cast<std::uint32_t>(instr.simm());
          }
          break;
        case isa::Opcode::kLdw:
        case isa::Opcode::kLdb:
          if (emit) {
            check_access(state[instr.ra], instr, offset, /*is_store=*/false);
          }
          state[instr.rd].reset();
          break;
        case isa::Opcode::kStw:
        case isa::Opcode::kStb:
          if (emit) {
            check_access(state[instr.ra], instr, offset, /*is_store=*/true);
          }
          break;
        case isa::Opcode::kPop:
        case isa::Opcode::kRdcyc:
        case isa::Opcode::kAdd:
        case isa::Opcode::kSub:
        case isa::Opcode::kAnd:
        case isa::Opcode::kAndi:
        case isa::Opcode::kOr:
        case isa::Opcode::kOri:
        case isa::Opcode::kXor:
        case isa::Opcode::kShl:
        case isa::Opcode::kShli:
        case isa::Opcode::kShr:
        case isa::Opcode::kShri:
        case isa::Opcode::kMul:
          state[instr.rd].reset();
          break;
        case isa::Opcode::kInt:
          // Syscalls return values in the low registers.
          for (unsigned reg = 0; reg < 4; ++reg) {
            state[reg].reset();
          }
          break;
        default:
          break;
      }
    }
  }

  void check_access(const std::optional<std::uint32_t>& base,
                    const isa::Instruction& instr, std::uint32_t offset,
                    bool is_store) {
    if (!base.has_value()) {
      return;  // register-relative access with unknown base: not our claim
    }
    const std::uint32_t addr = *base + static_cast<std::uint32_t>(instr.simm());
    const std::string what = std::string(is_store ? "store to " : "load from ") + hex(addr);
    // The platform-key register pages one 0x100 device window.
    constexpr std::uint32_t kKeyWindowSize = 0x100;
    if (addr >= sim::kMemSize) {
      report_.add(Rule::kMmOutOfMem, Severity::kError, offset,
                  what + " beyond physical memory (" + hex(sim::kMemSize) + ")");
    } else if (addr >= sim::kMmioKeyReg && addr < sim::kMmioKeyReg + kKeyWindowSize) {
      report_.add(Rule::kMmKeyRegister, Severity::kError, offset,
                  what + " hits the platform-key register window");
    } else if (addr >= sim::kMmioBase) {
      if (!object_.secure()) {
        report_.add(Rule::kMmDevice, Severity::kError, offset,
                    what + " hits device MMIO from an unprivileged task");
      }
    } else if (addr < sim::kRamBase) {
      report_.add(Rule::kMmTrusted,
                  is_store ? Severity::kError : Severity::kWarning, offset,
                  what + " hits the trusted region below task RAM");
    }
  }

  const Cfg& cfg_;
  const isa::ObjectFile& object_;
  Report& report_;
  std::set<std::uint32_t> relocated_site_;
  std::map<std::uint32_t, State> in_;
};

}  // namespace

Analysis analyze_full(const isa::ObjectFile& object, const Config& config) {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_us = [](Clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - since)
            .count());
  };

  Analysis out;
  Report& report = out.report;
  if (!object.data_only()) {
    if (config.structural) {
      check_image_shape(object, report);
    }
    // The CFG is recovered even when structural findings are disabled — the
    // downstream passes need it.  Structural findings go to a scratch report
    // in that case.
    Report scratch;
    Report& structural_sink = config.structural ? report : scratch;
    if (config.dataflow) {
      // Resolved indirect targets create CFG edges, and new edges expose new
      // code to the value-set analysis: iterate recovery and dataflow until
      // the resolved set is stable, then run both once more against the real
      // report so every finding reflects the final CFG.
      constexpr int kMaxResolveRounds = 8;
      const auto dataflow_begin = Clock::now();
      ResolvedTargets resolved;
      // A resolution that does not survive its own spliced edges is banned
      // for good (self-referential tables oscillate otherwise); banning is
      // monotone, so the loop terminates with a resolved set that is a true
      // fixpoint of recover+dataflow — the final claims are exactly the ones
      // the final CFG was built from.
      std::set<std::uint32_t> banned;
      bool stable = false;
      for (int round = 0; round < kMaxResolveRounds && !stable; ++round) {
        ++out.dataflow_iterations;
        Report iteration_scratch;
        const Cfg cfg = recover_cfg(object, iteration_scratch, &resolved);
        DataflowResult result = run_dataflow(object, cfg, config, nullptr, &banned);
        stable = result.resolved == resolved;
        if (!stable) {
          // A site whose resolution vanishes once its own edges are spliced
          // in can never be claimed: keep it banned so the iteration is
          // monotone.  A *changed* target set is ordinary convergence (new
          // edges expose more of the loop) and keeps iterating.
          for (const auto& [site, targets] : resolved) {
            if (result.resolved.find(site) == result.resolved.end()) {
              banned.insert(site);
            }
          }
          resolved = std::move(result.resolved);
        }
      }
      if (!stable) {
        // Still churning after the round budget: withdraw every claim and
        // fall back to the seed CFG, where the (all-banned) final pass is
        // trivially consistent.
        for (const auto& [site, targets] : resolved) {
          banned.insert(site);
        }
        resolved.clear();
      }
      out.timings.dataflow_us = elapsed_us(dataflow_begin);
      const auto structural_begin = Clock::now();
      out.cfg = recover_cfg(object, structural_sink, &resolved);
      out.timings.structural_us = elapsed_us(structural_begin);
      const auto final_begin = Clock::now();
      out.dataflow = run_dataflow(object, out.cfg, config, &report, &banned);
      out.timings.dataflow_us += elapsed_us(final_begin);
    } else {
      const auto structural_begin = Clock::now();
      out.cfg = recover_cfg(object, structural_sink);
      out.timings.structural_us = elapsed_us(structural_begin);
    }
    out.has_cfg = true;
  }
  if (config.relocations) {
    const auto begin = Clock::now();
    check_relocations(object, out.has_cfg ? &out.cfg : nullptr, report);
    out.timings.relocation_us = elapsed_us(begin);
  }
  if (out.has_cfg && config.stack) {
    const auto begin = Clock::now();
    StackAnalysis(out.cfg, report).run(object, config.interrupt_reserve);
    out.timings.stack_us = elapsed_us(begin);
  }
  if (out.has_cfg && config.mmio) {
    const auto begin = Clock::now();
    MmioAnalysis(out.cfg, object, report).run();
    out.timings.mmio_us = elapsed_us(begin);
  }
  if (!config.suppress.empty()) {
    std::erase_if(report.findings,
                  [&](const Finding& f) { return config.suppressed(f.rule); });
  }
  report.sort();
  return out;
}

Report analyze(const isa::ObjectFile& object, const Config& config) {
  return analyze_full(object, config).report;
}

}  // namespace tytan::analysis
