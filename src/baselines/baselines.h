// Models of the related-work architectures the paper compares against (§7),
// built over the same simulator so their *distinguishing constraints* can be
// measured side by side with TyTAN:
//
//   * SMART (Eldefrawy et al., NDSS'12): one ROM-resident protected routine;
//     attestation + invocation are ATOMIC (non-interruptible) and the
//     protected code is fixed at manufacturing (no load, no update).
//   * SPM / SANCUS (Strackx'10, Noorman'13): hardware-isolated modules with
//     a FIXED memory layout (no relocation: a module can only load at its
//     link-time base) and non-interruptible hardware measurement; SANCUS
//     adds per-module keys.
//   * TrustLite (Koeberl et al., EuroSys'14): the EA-MPU TyTAN builds on,
//     but with all software loaded and all rules configured AT BOOT — no
//     dynamic loading afterwards.
//
// Each model deliberately reuses TyTAN's substrate (machine, cost model,
// EA-MPU) so measured differences isolate the *architectural* choice, not
// implementation noise.  bench_related_work prints the resulting matrix.
#pragma once

#include "core/platform.h"

namespace tytan::baselines {

// ---------------------------------------------------------------------------
// SMART
// ---------------------------------------------------------------------------

/// Atomic measure-and-report, SMART-style: the whole SHA-1 pass is charged
/// in one non-preemptible block (interrupts stay pending), exactly like a
/// ROM routine running with interrupts disabled.  Returns the cycle cost.
std::uint64_t smart_atomic_attest(core::Platform& platform, rtos::TaskHandle task);

/// SMART's deployment constraints, queryable for the comparison matrix.
struct SmartProperties {
  static constexpr bool kDynamicLoad = false;   // ROM code fixed at manufacture
  static constexpr bool kInterruptibleMeasurement = false;
  static constexpr bool kMultipleTasks = false;  // one protected region
  static constexpr bool kSecureIpc = false;
  static constexpr bool kUpdate = false;
};

// ---------------------------------------------------------------------------
// SPM / SANCUS
// ---------------------------------------------------------------------------

/// SPM-style fixed-layout loader: the object must carry NO relocations (its
/// code is linked for one absolute base) and can only be placed at exactly
/// `linked_base`; if that region is occupied the load fails — the paper's
/// "these tasks have a fixed memory layout".
Result<rtos::TaskHandle> spm_load_fixed(core::Platform& platform, isa::ObjectFile object,
                                        std::uint32_t linked_base,
                                        const core::LoadParams& params);

struct SpmProperties {
  static constexpr bool kDynamicLoad = true;    // but only at the linked base
  static constexpr bool kRelocatable = false;
  static constexpr bool kInterruptibleMeasurement = false;
  static constexpr bool kSecureIpc = false;     // no authenticated IPC proxy
  static constexpr bool kUpdate = false;
};

// ---------------------------------------------------------------------------
// TrustLite
// ---------------------------------------------------------------------------

/// TrustLite-style platform: every task must be supplied before boot; the
/// EA-MPU configuration is sealed afterwards — "TrustLite requires all
/// software components to be loaded and their isolation to be configured at
/// boot time" (§7).
class TrustLitePlatform {
 public:
  explicit TrustLitePlatform(const core::Platform::Config& config = {});

  /// Register a task image to be loaded during boot.
  Status preload(isa::ObjectFile object, core::LoadParams params);

  /// Boot: secure boot, load every preloaded task, then seal.
  Result<std::vector<rtos::TaskHandle>> boot();

  /// Post-boot loading is rejected — the defining TrustLite limitation.
  Result<rtos::TaskHandle> load_task(isa::ObjectFile object, core::LoadParams params);

  [[nodiscard]] core::Platform& platform() { return platform_; }
  [[nodiscard]] bool sealed() const { return sealed_; }

 private:
  core::Platform platform_;
  std::vector<std::pair<isa::ObjectFile, core::LoadParams>> preloads_;
  bool sealed_ = false;
};

struct TrustLiteProperties {
  static constexpr bool kDynamicLoad = false;  // boot-time configuration only
  static constexpr bool kInterruptibleTasks = true;
  static constexpr bool kMultipleTasks = true;
  static constexpr bool kSecureIpc = false;  // no sender-authenticating proxy
  static constexpr bool kUpdate = false;     // implies a reboot
};

}  // namespace tytan::baselines
