#include "baselines/baselines.h"

namespace tytan::baselines {

std::uint64_t smart_atomic_attest(core::Platform& platform, rtos::TaskHandle task) {
  const rtos::Tcb* tcb = platform.scheduler().get(task);
  TYTAN_CHECK(tcb != nullptr, "smart_atomic_attest: no such task");
  // One uninterruptible block: run the RTM state machine to completion
  // without ever returning to the scheduler (interrupts stay pending), then
  // MAC the result — exactly what SMART's ROM routine does with interrupts
  // disabled.  The paper: "The integrity protected task may not be
  // interrupted rendering SMART incompatible for real-time systems."
  const std::uint64_t t0 = platform.machine().cycles();
  auto digest = platform.rtm().measure_now(*tcb, {});
  TYTAN_CHECK(digest.is_ok(), digest.status().to_string());
  auto report = platform.remote_attest().attest_identity(
      core::Rtm::identity_from_digest(*digest), /*nonce=*/1);
  TYTAN_CHECK(report.is_ok(), report.status().to_string());
  return platform.machine().cycles() - t0;
}

Result<rtos::TaskHandle> spm_load_fixed(core::Platform& platform, isa::ObjectFile object,
                                        std::uint32_t linked_base,
                                        const core::LoadParams& params) {
  if (!object.relocs.empty()) {
    return make_error(Err::kInvalidArgument,
                      "SPM modules are not relocatable (fixed memory layout)");
  }
  // The region must be exactly free at the linked base: probe by allocating
  // until we land there, then release the probes.  (SPM hardware simply has
  // the module's protection domain hard-wired to its linked addresses.)
  auto& arena = platform.loader().arena();
  std::vector<std::uint32_t> probes;
  Result<rtos::TaskHandle> result =
      make_error(Err::kUnavailable, "linked base not reachable");
  for (int attempts = 0; attempts < 64; ++attempts) {
    auto base = arena.alloc(object.memory_size());
    if (!base.is_ok()) {
      result = base.status();
      break;
    }
    if (*base == linked_base) {
      arena.free(*base);  // the loader re-allocates; first fit lands here again
      result = platform.load_task(std::move(object), params);
      break;
    }
    if (*base > linked_base) {
      arena.free(*base);
      result = make_error(Err::kAlreadyExists,
                          "SPM: linked base occupied (no relocation possible)");
      break;
    }
    probes.push_back(*base);  // hole before the linked base; keep probing
  }
  for (const std::uint32_t probe : probes) {
    arena.free(probe);
  }
  return result;
}

TrustLitePlatform::TrustLitePlatform(const core::Platform::Config& config)
    : platform_(config) {}

Status TrustLitePlatform::preload(isa::ObjectFile object, core::LoadParams params) {
  if (sealed_) {
    return make_error(Err::kPermissionDenied,
                      "TrustLite: configuration sealed at boot");
  }
  preloads_.emplace_back(std::move(object), std::move(params));
  return Status::ok();
}

Result<std::vector<rtos::TaskHandle>> TrustLitePlatform::boot() {
  if (sealed_) {
    return make_error(Err::kAlreadyExists, "already booted");
  }
  auto report = platform_.boot();
  if (!report.is_ok()) {
    return report.status();
  }
  std::vector<rtos::TaskHandle> handles;
  for (auto& [object, params] : preloads_) {
    auto handle = platform_.load_task(std::move(object), std::move(params));
    if (!handle.is_ok()) {
      return handle.status();
    }
    handles.push_back(*handle);
  }
  preloads_.clear();
  sealed_ = true;
  return handles;
}

Result<rtos::TaskHandle> TrustLitePlatform::load_task(isa::ObjectFile /*object*/,
                                                      core::LoadParams /*params*/) {
  // The defining limitation the paper improves on: "TrustLite requires all
  // software components to be loaded and their isolation to be configured at
  // boot time."
  return make_error(Err::kPermissionDenied,
                    "TrustLite: dynamic loading after boot is not supported");
}

}  // namespace tytan::baselines
