#include "common/log.h"

#include <cstdio>
#include <utility>

namespace tytan {

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogSink LogContext::set_sink(LogSink sink) {
  LogSink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

void LogContext::line(LogLevel level, std::string_view tag,
                      std::string_view message) const {
  if (!enabled(level)) {
    return;
  }
  if (sink_) {
    sink_(level, tag, message);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", log_level_name(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

LogContext& process_log_context() {
  static LogContext context;
  return context;
}

void set_log_level(LogLevel level) { process_log_context().set_level(level); }
LogLevel log_level() { return process_log_context().level(); }
LogSink set_log_sink(LogSink sink) {
  return process_log_context().set_sink(std::move(sink));
}
void log_line(LogLevel level, std::string_view tag, std::string_view message) {
  process_log_context().line(level, tag, message);
}

}  // namespace tytan
