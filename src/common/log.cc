#include "common/log.h"

#include <cstdio>
#include <utility>

namespace tytan {

namespace {
LogLevel g_level = LogLevel::kOff;
LogSink g_sink;  // empty => stderr default
}  // namespace

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

LogSink set_log_sink(LogSink sink) {
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_line(LogLevel level, std::string_view tag, std::string_view message) {
  if (level < g_level || g_level == LogLevel::kOff) {
    return;
  }
  if (g_sink) {
    g_sink(level, tag, message);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", log_level_name(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace tytan
