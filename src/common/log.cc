#include "common/log.h"

#include <cstdio>

namespace tytan {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, std::string_view tag, std::string_view message) {
  if (level < g_level || g_level == LogLevel::kOff) {
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace tytan
