#include "common/status.h"

namespace tytan {

std::string_view err_name(Err e) {
  switch (e) {
    case Err::kOk: return "ok";
    case Err::kInvalidArgument: return "invalid-argument";
    case Err::kNotFound: return "not-found";
    case Err::kAlreadyExists: return "already-exists";
    case Err::kOutOfMemory: return "out-of-memory";
    case Err::kPermissionDenied: return "permission-denied";
    case Err::kFault: return "fault";
    case Err::kCorrupt: return "corrupt";
    case Err::kUnavailable: return "unavailable";
    case Err::kOutOfRange: return "out-of-range";
    case Err::kDeadline: return "deadline";
    case Err::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "ok";
  }
  std::string out{err_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tytan
