// Tiny leveled logger.  Off by default so tests and benches stay quiet;
// examples turn on kInfo to narrate the simulated platform.
//
// Log state lives in a LogContext so that N simulated platforms in one
// process (the fleet runner) can each have their own level and sink without
// sharing any mutable state — a LogContext is only ever driven by the thread
// that drives its platform.  CLIs and tests that care about one platform use
// the process-default context through the legacy free functions.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace tytan {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Destination for log lines that pass the threshold.  The default sink
/// prints "[LEVEL] tag: message" to stderr.
using LogSink = std::function<void(LogLevel, std::string_view tag, std::string_view message)>;

/// Per-platform log state: a threshold plus an optional sink.  Not
/// internally synchronized — the thread-safety invariant is the platform's
/// (one thread drives a platform, and therefore its LogContext, at a time).
class LogContext {
 public:
  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replace the sink (tests capture output this way); pass an empty
  /// function to restore the stderr default.  Returns the previous sink.
  LogSink set_sink(LogSink sink);

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_ && level_ != LogLevel::kOff;
  }

  /// Emit one line at `level` with a subsystem tag.
  void line(LogLevel level, std::string_view tag, std::string_view message) const;

 private:
  LogLevel level_ = LogLevel::kOff;
  LogSink sink_;  // empty => stderr default
};

/// The process-default context used by CLIs and by code with no platform in
/// scope.  Platform-owned components log through their machine's context.
LogContext& process_log_context();

/// Legacy free functions; all forward to process_log_context().
void set_log_level(LogLevel level);
LogLevel log_level();
LogSink set_log_sink(LogSink sink);
void log_line(LogLevel level, std::string_view tag, std::string_view message);

const char* log_level_name(LogLevel level);

namespace detail {
class LogStream {
 public:
  LogStream(const LogContext& context, LogLevel level, std::string_view tag)
      : context_(context), level_(level), tag_(tag) {}
  ~LogStream() { context_.line(level_, tag_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const LogContext& context_;
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};
}  // namespace detail

/// Stream into the process-default context (CLIs, tests).
#define TYTAN_LOG(level, tag) \
  ::tytan::detail::LogStream(::tytan::process_log_context(), level, tag)

/// Stream into an explicit LogContext (platform-owned components).
#define TYTAN_CLOG(context, level, tag) ::tytan::detail::LogStream(context, level, tag)

}  // namespace tytan
