// Tiny leveled logger.  Off by default so tests and benches stay quiet;
// examples turn on kInfo to narrate the simulated platform.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace tytan {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Destination for log lines that pass the threshold.  The default sink
/// prints "[LEVEL] tag: message" to stderr.
using LogSink = std::function<void(LogLevel, std::string_view tag, std::string_view message)>;

/// Replace the sink (tests capture output this way); pass an empty function
/// to restore the stderr default.  Returns the previous sink (empty if the
/// default was active).
LogSink set_log_sink(LogSink sink);

/// Emit one line at `level` with a subsystem tag, e.g. log_line(kInfo, "rtm", "...").
void log_line(LogLevel level, std::string_view tag, std::string_view message);

const char* log_level_name(LogLevel level);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LogStream() { log_line(level_, tag_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};
}  // namespace detail

#define TYTAN_LOG(level, tag) ::tytan::detail::LogStream(level, tag)

}  // namespace tytan
