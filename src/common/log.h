// Tiny leveled logger.  Off by default so tests and benches stay quiet;
// examples turn on kInfo to narrate the simulated platform.
#pragma once

#include <sstream>
#include <string>

namespace tytan {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` with a subsystem tag, e.g. log_line(kInfo, "rtm", "...").
void log_line(LogLevel level, std::string_view tag, std::string_view message);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LogStream() { log_line(level_, tag_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};
}  // namespace detail

#define TYTAN_LOG(level, tag) ::tytan::detail::LogStream(level, tag)

}  // namespace tytan
