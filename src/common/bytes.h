// Byte-level helpers: little-endian packing (the simulated Siskiyou-Peak-like
// core is little endian), hex encoding, and constant-time comparison for MACs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tytan {

using ByteVec = std::vector<std::uint8_t>;

/// Load a little-endian 16/32/64-bit value from `p` (must have enough bytes).
std::uint16_t load_le16(const std::uint8_t* p);
std::uint32_t load_le32(const std::uint8_t* p);
std::uint64_t load_le64(const std::uint8_t* p);

/// Store a little-endian value to `p`.
void store_le16(std::uint8_t* p, std::uint16_t v);
void store_le32(std::uint8_t* p, std::uint32_t v);
void store_le64(std::uint8_t* p, std::uint64_t v);

/// Append a little-endian value to a byte vector.
void append_le16(ByteVec& out, std::uint16_t v);
void append_le32(ByteVec& out, std::uint32_t v);
void append_le64(ByteVec& out, std::uint64_t v);

/// Lowercase hex string of `data` ("deadbeef").
std::string hex_encode(std::span<const std::uint8_t> data);

/// Parse a hex string; returns empty vector on malformed input of odd length
/// or non-hex characters.
ByteVec hex_decode(std::string_view hex);

/// Constant-time equality (for MAC comparison).
bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// [start, start+size) overlaps [other_start, other_start+other_size)?
/// Empty ranges never overlap.
bool ranges_overlap(std::uint64_t a_start, std::uint64_t a_size,
                    std::uint64_t b_start, std::uint64_t b_size);

/// true if [start, start+size) fits inside [outer_start, outer_start+outer_size).
bool range_contains(std::uint64_t outer_start, std::uint64_t outer_size,
                    std::uint64_t inner_start, std::uint64_t inner_size);

}  // namespace tytan
