// Status / Result types used across the TyTAN reproduction.
//
// Expected failures (malformed binaries, EA-MPU policy conflicts, IPC to an
// unknown task, ...) are reported through Status / Result<T>.  Programming
// errors use TYTAN_CHECK, which throws std::logic_error so tests can assert
// on them.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace tytan {

/// Error categories shared by every subsystem.
enum class Err : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< lookup failed (task id, symbol, slot, ...)
  kAlreadyExists,     ///< duplicate registration
  kOutOfMemory,       ///< allocator / slot exhaustion
  kPermissionDenied,  ///< EA-MPU or key-access denial
  kFault,             ///< simulated hardware fault
  kCorrupt,           ///< integrity check failed (bad image, bad MAC)
  kUnavailable,       ///< component not booted / task not running
  kOutOfRange,        ///< address or index outside the legal range
  kDeadline,          ///< real-time deadline violated
  kInternal,          ///< invariant breach inside the library
};

/// Human-readable name of an error category ("permission-denied", ...).
std::string_view err_name(Err e);

/// Lightweight status: an error category plus a context message.
class Status {
 public:
  Status() = default;
  Status(Err code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == Err::kOk; }
  [[nodiscard]] Err code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "permission-denied: stack of task t1 not writable from 0x4000"
  [[nodiscard]] std::string to_string() const;

 private:
  Err code_ = Err::kOk;
  std::string message_;
};

inline Status make_error(Err code, std::string message) {
  return Status{code, std::move(message)};
}

/// Minimal expected-like result carrier (C++20, no std::expected yet).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) { // NOLINT(google-explicit-constructor)
    if (status_.is_ok()) {
      status_ = Status(Err::kInternal, "Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Access the value; throws if the result holds an error.
  T& value() & {
    require();
    return *value_;
  }
  const T& value() const& {
    require();
    return *value_;
  }
  T&& take() {
    require();
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  void require() const {
    if (!value_.has_value()) {
      throw std::logic_error("Result::value() on error: " + status_.to_string());
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// Invariant check for programming errors; throws std::logic_error.
#define TYTAN_CHECK(cond, msg)                                                  \
  do {                                                                          \
    if (!(cond)) {                                                              \
      throw std::logic_error(std::string("TYTAN_CHECK failed: ") + (msg) +      \
                             " at " + __FILE__ + ":" + std::to_string(__LINE__)); \
    }                                                                           \
  } while (0)

}  // namespace tytan
