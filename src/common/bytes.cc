#include "common/bytes.h"

#include <array>

namespace tytan {

std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}

void store_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_le64(std::uint8_t* p, std::uint64_t v) {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

void append_le16(ByteVec& out, std::uint16_t v) {
  std::array<std::uint8_t, 2> buf{};
  store_le16(buf.data(), v);
  out.insert(out.end(), buf.begin(), buf.end());
}

void append_le32(ByteVec& out, std::uint32_t v) {
  std::array<std::uint8_t, 4> buf{};
  store_le32(buf.data(), v);
  out.insert(out.end(), buf.begin(), buf.end());
}

void append_le64(ByteVec& out, std::uint64_t v) {
  std::array<std::uint8_t, 8> buf{};
  store_le64(buf.data(), v);
  out.insert(out.end(), buf.begin(), buf.end());
}

std::string hex_encode(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

ByteVec hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  ByteVec out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) {
    return false;
  }
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

bool ranges_overlap(std::uint64_t a_start, std::uint64_t a_size,
                    std::uint64_t b_start, std::uint64_t b_size) {
  if (a_size == 0 || b_size == 0) {
    return false;
  }
  return a_start < b_start + b_size && b_start < a_start + a_size;
}

bool range_contains(std::uint64_t outer_start, std::uint64_t outer_size,
                    std::uint64_t inner_start, std::uint64_t inner_size) {
  if (inner_size == 0) {
    return inner_start >= outer_start && inner_start <= outer_start + outer_size;
  }
  return inner_start >= outer_start &&
         inner_start + inner_size <= outer_start + outer_size;
}

}  // namespace tytan
