#include "sim/memory.h"

#include <cstring>

#include "common/bytes.h"

namespace tytan::sim {

std::uint32_t PhysicalMemory::read32(std::uint32_t addr) const {
  TYTAN_CHECK(in_bounds(addr, 4), "memory read32 out of bounds");
  return load_le32(bytes_.data() + addr);
}

void PhysicalMemory::write32(std::uint32_t addr, std::uint32_t v) {
  TYTAN_CHECK(in_bounds(addr, 4), "memory write32 out of bounds");
  store_le32(bytes_.data() + addr, v);
  touch(addr, 4);
  notify_watch(addr, 4);
}

void PhysicalMemory::write_block(std::uint32_t addr, std::span<const std::uint8_t> data) {
  TYTAN_CHECK(in_bounds(addr, static_cast<std::uint32_t>(data.size())),
              "memory write_block out of bounds");
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
  touch(addr, static_cast<std::uint32_t>(data.size()));
  notify_watch(addr, static_cast<std::uint32_t>(data.size()));
}

void PhysicalMemory::read_block(std::uint32_t addr, std::span<std::uint8_t> out) const {
  TYTAN_CHECK(in_bounds(addr, static_cast<std::uint32_t>(out.size())),
              "memory read_block out of bounds");
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void PhysicalMemory::fill(std::uint32_t addr, std::uint32_t len, std::uint8_t value) {
  TYTAN_CHECK(in_bounds(addr, len), "memory fill out of bounds");
  std::memset(bytes_.data() + addr, value, len);
  touch(addr, len);
  notify_watch(addr, len);
}

std::span<const std::uint8_t> PhysicalMemory::view(std::uint32_t addr, std::uint32_t len) const {
  TYTAN_CHECK(in_bounds(addr, len), "memory view out of bounds");
  return {bytes_.data() + addr, len};
}

}  // namespace tytan::sim
