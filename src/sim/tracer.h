// Execution tracer: a ring buffer of the last N executed instructions with
// cycle stamps and disassembly.  Off by default (zero overhead beyond a
// branch); examples and debugging sessions enable it to print what guest
// code did before a fault.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace tytan::sim {

class Tracer {
 public:
  /// EA-MPU execute verdict for the recorded fetch.
  static constexpr int kVerdictNone = -1;     ///< no policy armed / firmware entry
  static constexpr int kVerdictDenied = 0;
  static constexpr int kVerdictAllowed = 1;

  struct Entry {
    std::uint64_t cycle = 0;
    std::uint32_t eip = 0;
    std::uint32_t word = 0;     ///< raw instruction word (0 for firmware entries)
    std::string note;           ///< firmware name or empty
    std::int32_t task = -1;     ///< running rtos task handle (-1 unknown)
    int verdict = kVerdictNone; ///< EA-MPU execute verdict at this EIP
  };

  /// A zero capacity is clamped to 1: a Tracer always records *something*
  /// (callers that want tracing off use Machine::enable_trace(0), which
  /// doesn't construct one).
  explicit Tracer(std::size_t capacity = 64) : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(std::uint64_t cycle, std::uint32_t eip, std::uint32_t word,
              std::string note = {}, std::int32_t task = -1, int verdict = kVerdictNone) {
    if (entries_.size() == capacity_) {
      entries_.pop_front();
    }
    entries_.push_back({cycle, eip, word, std::move(note), task, verdict});
  }

  [[nodiscard]] std::vector<Entry> snapshot() const {
    return {entries_.begin(), entries_.end()};
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear() { entries_.clear(); }

  /// Multi-line human-readable dump ("cycle 1234  0x40010  ldw r1, [r2+4]").
  [[nodiscard]] std::string format() const;

 private:
  std::size_t capacity_;
  std::deque<Entry> entries_;
};

}  // namespace tytan::sim
