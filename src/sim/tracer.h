// Execution tracer: a ring buffer of the last N executed instructions with
// cycle stamps and disassembly.  Off by default (zero overhead beyond a
// branch); examples and debugging sessions enable it to print what guest
// code did before a fault.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace tytan::sim {

class Tracer {
 public:
  struct Entry {
    std::uint64_t cycle = 0;
    std::uint32_t eip = 0;
    std::uint32_t word = 0;   ///< raw instruction word (0 for firmware entries)
    std::string note;         ///< firmware name or empty
  };

  explicit Tracer(std::size_t capacity = 64) : capacity_(capacity) {}

  void record(std::uint64_t cycle, std::uint32_t eip, std::uint32_t word,
              std::string note = {}) {
    if (entries_.size() == capacity_) {
      entries_.pop_front();
    }
    entries_.push_back({cycle, eip, word, std::move(note)});
  }

  [[nodiscard]] std::vector<Entry> snapshot() const {
    return {entries_.begin(), entries_.end()};
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Multi-line human-readable dump ("cycle 1234  0x40010  ldw r1, [r2+4]").
  [[nodiscard]] std::string format() const;

 private:
  std::size_t capacity_;
  std::deque<Entry> entries_;
};

}  // namespace tytan::sim
