// Per-opcode handlers of the Peak-32 interpreter, factored out of the former
// Machine::execute_op switch into the OpVariant function-pointer table
// (sim/decode_cache.h).  Both dispatch modes — the plain interpreter and the
// decoded basic-block cache — invoke exactly these functions, so there is a
// single implementation per opcode and the modes cannot diverge.
//
// Conventions every handler inherits from the old switch:
//   * on entry cpu_.eip == op.pc + 4 (execute_op set the fall-through);
//   * a transferring handler sets cpu_.eip = op.pc *before* the transfer
//     check so a denied transfer faults at the branching instruction;
//   * load/store/push/pop recovery keeps EIP at the faulting instruction
//     unless raise_fault() redirected it into the fault handler — tracked
//     explicitly in Machine::fault_eip_redirected_ (comparing EIP against
//     `next` broke when the handler happened to live at `next`).
#include "sim/decode_cache.h"
#include "sim/machine.h"

namespace tytan::sim {

using isa::Opcode;

struct MachineOps {
  static void nop(Machine&, const DecodedOp&) {}

  static void mov(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] = m.cpu_.regs[op.instr.ra];
  }

  static void movi(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] = static_cast<std::uint32_t>(op.instr.simm());
  }

  static void moviu(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] = op.instr.imm;
  }

  static void movhi(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] = (m.cpu_.regs[op.instr.rd] & 0xFFFFu) |
                               (static_cast<std::uint32_t>(op.instr.imm) << 16);
  }

  static void add(Machine& m, const DecodedOp& op) {
    const std::uint32_t a = m.cpu_.regs[op.instr.rd];
    const std::uint32_t b = op.instr.opcode == Opcode::kAdd
                                ? m.cpu_.regs[op.instr.ra]
                                : static_cast<std::uint32_t>(op.instr.simm());
    const std::uint64_t wide = static_cast<std::uint64_t>(a) + b;
    const auto result = static_cast<std::uint32_t>(wide);
    m.set_alu_flags_addsub(wide, a, b, result, /*is_sub=*/false);
    m.cpu_.regs[op.instr.rd] = result;
  }

  static void sub(Machine& m, const DecodedOp& op) {
    const std::uint32_t a = m.cpu_.regs[op.instr.rd];
    const std::uint32_t b =
        (op.instr.opcode == Opcode::kSub || op.instr.opcode == Opcode::kCmp)
            ? m.cpu_.regs[op.instr.ra]
            : static_cast<std::uint32_t>(op.instr.simm());
    const std::uint64_t wide =
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b);
    const auto result = static_cast<std::uint32_t>(wide);
    m.set_alu_flags_addsub(wide, a, b, result, /*is_sub=*/true);
    if (op.instr.opcode == Opcode::kSub || op.instr.opcode == Opcode::kSubi) {
      m.cpu_.regs[op.instr.rd] = result;
    }
  }

  static void and_r(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] &= m.cpu_.regs[op.instr.ra];
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void and_i(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] &= op.instr.imm;
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void or_r(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] |= m.cpu_.regs[op.instr.ra];
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void or_i(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] |= op.instr.imm;
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void xor_r(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] ^= m.cpu_.regs[op.instr.ra];
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void shl_r(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] <<= (m.cpu_.regs[op.instr.ra] & 31u);
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void shl_i(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] <<= (op.instr.imm & 31u);
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void shr_r(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] >>= (m.cpu_.regs[op.instr.ra] & 31u);
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void shr_i(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] >>= (op.instr.imm & 31u);
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  static void mul(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] *= m.cpu_.regs[op.instr.ra];
    m.set_alu_flags_logic(m.cpu_.regs[op.instr.rd]);
  }

  /// Shared load/store/push/pop recovery: keep EIP at the faulting
  /// instruction unless the fault dispatch redirected it into the handler.
  static void recover_eip(Machine& m, const DecodedOp& op) {
    if (!m.fault_eip_redirected_) {
      m.cpu_.eip = op.pc;
    }
  }

  static void ldw(Machine& m, const DecodedOp& op) {
    std::uint32_t value = 0;
    if (m.guest_read32(m.cpu_.regs[op.instr.ra] +
                           static_cast<std::uint32_t>(op.instr.simm()),
                       &value)) {
      m.cpu_.regs[op.instr.rd] = value;
    } else {
      recover_eip(m, op);
    }
  }

  static void stw(Machine& m, const DecodedOp& op) {
    if (!m.guest_write32(m.cpu_.regs[op.instr.ra] +
                             static_cast<std::uint32_t>(op.instr.simm()),
                         m.cpu_.regs[op.instr.rd])) {
      recover_eip(m, op);
    }
  }

  static void ldb(Machine& m, const DecodedOp& op) {
    std::uint8_t value = 0;
    if (m.guest_read8(m.cpu_.regs[op.instr.ra] +
                          static_cast<std::uint32_t>(op.instr.simm()),
                      &value)) {
      m.cpu_.regs[op.instr.rd] = value;
    } else {
      recover_eip(m, op);
    }
  }

  static void stb(Machine& m, const DecodedOp& op) {
    if (!m.guest_write8(m.cpu_.regs[op.instr.ra] +
                            static_cast<std::uint32_t>(op.instr.simm()),
                        static_cast<std::uint8_t>(m.cpu_.regs[op.instr.rd]))) {
      recover_eip(m, op);
    }
  }

  /// Taken relative branch/call transfer to a static target.  The decode
  /// cache memoizes the entry-point verdict (valid under the policy config
  /// epoch); transient interpreter ops carry kUnknown and ask live.
  static void take_static_transfer(Machine& m, const DecodedOp& op,
                                   std::uint32_t target) {
    m.cpu_.eip = op.pc;  // transfer check sees the branching instruction
    switch (op.transfer) {
      case TransferMemo::kAllowed:
        m.charge(m.costs_.branch_taken);
        m.cpu_.eip = target;
        break;
      case TransferMemo::kDenied:
        m.raise_fault({FaultType::kMpuTransfer, op.pc, target, Access::kExecute});
        break;
      case TransferMemo::kUnknown:
        m.guest_transfer(target);
        break;
    }
  }

  static void branch_if(Machine& m, const DecodedOp& op, bool taken) {
    if (taken) {
      // Relative branches within the running code cannot violate entry
      // points only when staying in-region; still check the policy so a
      // crafted displacement into another region faults.
      const std::uint32_t target = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(op.pc + isa::kInstrSize) + op.instr.simm());
      take_static_transfer(m, op, target);
    }
  }

  static void jmp(Machine& m, const DecodedOp& op) { branch_if(m, op, true); }
  static void jz(Machine& m, const DecodedOp& op) {
    branch_if(m, op, m.cpu_.flag(isa::kFlagZ));
  }
  static void jnz(Machine& m, const DecodedOp& op) {
    branch_if(m, op, !m.cpu_.flag(isa::kFlagZ));
  }
  static void jlt(Machine& m, const DecodedOp& op) {
    branch_if(m, op, m.cpu_.flag(isa::kFlagN) != m.cpu_.flag(isa::kFlagV));
  }
  static void jge(Machine& m, const DecodedOp& op) {
    branch_if(m, op, m.cpu_.flag(isa::kFlagN) == m.cpu_.flag(isa::kFlagV));
  }
  static void jc(Machine& m, const DecodedOp& op) {
    branch_if(m, op, m.cpu_.flag(isa::kFlagC));
  }
  static void jnc(Machine& m, const DecodedOp& op) {
    branch_if(m, op, !m.cpu_.flag(isa::kFlagC));
  }

  static void jmpr(Machine& m, const DecodedOp& op) {
    const std::uint32_t target = m.cpu_.regs[op.instr.ra];
    if (m.heat_ != nullptr) {
      m.heat_->record_edge(op.pc, target, /*is_call=*/false);
    }
    if (m.indirect_branch_hook_) {
      m.indirect_branch_hook_(op.pc, target, /*is_call=*/false);
    }
    m.cpu_.eip = op.pc;
    m.guest_transfer(target);
  }

  static void call(Machine& m, const DecodedOp& op) {
    const std::uint32_t next = op.pc + isa::kInstrSize;
    if (!m.guest_push32(next)) {
      return;
    }
    const std::uint32_t target = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(next) + op.instr.simm());
    take_static_transfer(m, op, target);
  }

  static void callr(Machine& m, const DecodedOp& op) {
    const std::uint32_t next = op.pc + isa::kInstrSize;
    if (!m.guest_push32(next)) {
      return;
    }
    const std::uint32_t target = m.cpu_.regs[op.instr.ra];
    if (m.heat_ != nullptr) {
      m.heat_->record_edge(op.pc, target, /*is_call=*/true);
    }
    if (m.indirect_branch_hook_) {
      m.indirect_branch_hook_(op.pc, target, /*is_call=*/true);
    }
    m.cpu_.eip = op.pc;
    m.guest_transfer(target);
  }

  static void ret(Machine& m, const DecodedOp& op) {
    std::uint32_t target = 0;
    if (!m.guest_pop32(&target)) {
      return;
    }
    m.cpu_.eip = op.pc;
    m.guest_transfer(target);
  }

  static void push(Machine& m, const DecodedOp& op) {
    if (!m.guest_push32(m.cpu_.regs[op.instr.rd])) {
      recover_eip(m, op);
    }
  }

  static void pop(Machine& m, const DecodedOp& op) {
    std::uint32_t value = 0;
    if (m.guest_pop32(&value)) {
      m.cpu_.regs[op.instr.rd] = value;
    } else {
      recover_eip(m, op);
    }
  }

  static void int_(Machine& m, const DecodedOp& op) {
    m.dispatch_interrupt(static_cast<std::uint8_t>(op.instr.imm & 0x3F), op.pc,
                         op.pc + isa::kInstrSize);
  }

  static void iret(Machine& m, const DecodedOp& op) {
    std::uint32_t new_eip = 0;
    std::uint32_t new_eflags = 0;
    if (!m.guest_pop32(&new_eip) || !m.guest_pop32(&new_eflags)) {
      return;
    }
    m.cpu_.eflags = new_eflags;
    m.cpu_.eip = op.pc;
    m.guest_transfer(new_eip);
  }

  static void hlt(Machine& m, const DecodedOp& op) {
    // With the EA-MPU armed, HLT is privileged: a guest task must not be
    // able to stop the platform (availability, paper §5).  On the bare
    // pre-boot machine it halts normally (tests, bring-up).
    if (m.policy_ != nullptr) {
      m.raise_fault({FaultType::kPrivileged, op.pc, op.pc, Access::kExecute});
    } else {
      m.halt(HaltReason::kHltInstruction);
    }
  }

  static void cli(Machine& m, const DecodedOp&) {
    m.cpu_.set_flag(isa::kFlagIF, false);
  }

  static void sti(Machine& m, const DecodedOp&) {
    m.cpu_.set_flag(isa::kFlagIF, true);
  }

  static void rdcyc(Machine& m, const DecodedOp& op) {
    m.cpu_.regs[op.instr.rd] = static_cast<std::uint32_t>(m.cycles_);
  }
};

const std::array<OpVariant, 256>& op_table() {
  // Built once, thread-safely (magic static): fleet devices share the table
  // read-only.  base_cycles rides in each variant so cached dispatch skips
  // the isa::base_cycles switch.
  static const std::array<OpVariant, 256> table = [] {
    std::array<OpVariant, 256> t{};
    const auto set = [&t](Opcode opc, void (*fn)(Machine&, const DecodedOp&)) {
      t[static_cast<std::size_t>(opc)] = {
          fn, static_cast<std::uint8_t>(isa::base_cycles(opc))};
    };
    set(Opcode::kNop, MachineOps::nop);
    set(Opcode::kMov, MachineOps::mov);
    set(Opcode::kMovi, MachineOps::movi);
    set(Opcode::kMoviu, MachineOps::moviu);
    set(Opcode::kMovhi, MachineOps::movhi);
    set(Opcode::kAdd, MachineOps::add);
    set(Opcode::kAddi, MachineOps::add);
    set(Opcode::kSub, MachineOps::sub);
    set(Opcode::kSubi, MachineOps::sub);
    set(Opcode::kCmp, MachineOps::sub);
    set(Opcode::kCmpi, MachineOps::sub);
    set(Opcode::kAnd, MachineOps::and_r);
    set(Opcode::kAndi, MachineOps::and_i);
    set(Opcode::kOr, MachineOps::or_r);
    set(Opcode::kOri, MachineOps::or_i);
    set(Opcode::kXor, MachineOps::xor_r);
    set(Opcode::kShl, MachineOps::shl_r);
    set(Opcode::kShli, MachineOps::shl_i);
    set(Opcode::kShr, MachineOps::shr_r);
    set(Opcode::kShri, MachineOps::shr_i);
    set(Opcode::kMul, MachineOps::mul);
    set(Opcode::kLdw, MachineOps::ldw);
    set(Opcode::kStw, MachineOps::stw);
    set(Opcode::kLdb, MachineOps::ldb);
    set(Opcode::kStb, MachineOps::stb);
    set(Opcode::kJmp, MachineOps::jmp);
    set(Opcode::kJz, MachineOps::jz);
    set(Opcode::kJnz, MachineOps::jnz);
    set(Opcode::kJlt, MachineOps::jlt);
    set(Opcode::kJge, MachineOps::jge);
    set(Opcode::kJc, MachineOps::jc);
    set(Opcode::kJnc, MachineOps::jnc);
    set(Opcode::kJmpr, MachineOps::jmpr);
    set(Opcode::kCall, MachineOps::call);
    set(Opcode::kCallr, MachineOps::callr);
    set(Opcode::kRet, MachineOps::ret);
    set(Opcode::kPush, MachineOps::push);
    set(Opcode::kPop, MachineOps::pop);
    set(Opcode::kInt, MachineOps::int_);
    set(Opcode::kIret, MachineOps::iret);
    set(Opcode::kHlt, MachineOps::hlt);
    set(Opcode::kCli, MachineOps::cli);
    set(Opcode::kSti, MachineOps::sti);
    set(Opcode::kRdcyc, MachineOps::rdcyc);
    return t;
  }();
  return table;
}

}  // namespace tytan::sim
