// CPU register state and fault records of the simulated core.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/isa.h"
#include "sim/policy.h"

namespace tytan::sim {

/// Architected register file: eight GPRs (r7 = SP), EIP, EFLAGS.  The paper
/// names EIP and EFLAGS explicitly (§4, "Interrupting secure tasks").
struct CpuState {
  std::array<std::uint32_t, isa::kNumGprs> regs{};
  std::uint32_t eip = 0;
  std::uint32_t eflags = isa::kFlagIF;

  [[nodiscard]] std::uint32_t sp() const { return regs[isa::kSpIndex]; }
  void set_sp(std::uint32_t v) { regs[isa::kSpIndex] = v; }

  [[nodiscard]] bool flag(std::uint32_t bit) const { return (eflags & bit) != 0; }
  void set_flag(std::uint32_t bit, bool value) {
    eflags = value ? (eflags | bit) : (eflags & ~bit);
  }
};

enum class FaultType : std::uint8_t {
  kNone = 0,
  kBadOpcode,    ///< undecodable instruction word
  kBusError,     ///< access outside physical memory / misaligned MMIO
  kMpuData,      ///< EA-MPU denied a load or store
  kMpuFetch,     ///< EA-MPU denied instruction fetch
  kMpuTransfer,  ///< EA-MPU denied a control transfer (entry-point violation)
  kStackFault,   ///< exception frame push failed
  kNoHandler,    ///< IDT entry for a raised vector is null
  kPrivileged,   ///< guest executed a privileged instruction (hlt)
};

const char* fault_name(FaultType t);

struct FaultInfo {
  FaultType type = FaultType::kNone;
  std::uint32_t eip = 0;   ///< faulting instruction
  std::uint32_t addr = 0;  ///< offending address (data faults / transfer target)
  Access access = Access::kRead;

  [[nodiscard]] std::string to_string() const;
};

enum class HaltReason : std::uint8_t {
  kNone = 0,
  kHltInstruction,
  kDoubleFault,
  kCycleLimit,
};

}  // namespace tytan::sim
