// Concrete MMIO devices of the simulated platform.
//
// The automotive use case (paper §6, Figure 2) needs an accelerator-pedal
// sensor, a radar sensor, and an engine actuator; the RTOS needs a
// programmable timer; examples use a serial console; attestation uses an
// entropy source.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/memory_map.h"

namespace tytan::sim {

/// Programmable periodic timer driving the RTOS tick (IRQ kVecTimer).
/// Registers: +0 CTRL (bit0 = enable), +4 PERIOD (cycles), +8 TICKS (ro).
class TimerDevice : public Device {
 public:
  static constexpr std::uint32_t kCtrl = 0;
  static constexpr std::uint32_t kPeriod = 4;
  static constexpr std::uint32_t kTicks = 8;

  [[nodiscard]] std::string_view name() const override { return "timer"; }
  [[nodiscard]] std::uint32_t base() const override { return kMmioTimer; }
  [[nodiscard]] std::uint32_t size() const override { return 0x100; }

  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;
  void tick(std::uint64_t now) override;
  [[nodiscard]] bool wants_tick() const override { return true; }
  /// Disabled timers never act; enabled ones act exactly at next_fire_.
  /// (last_now_ staleness between events is repaired by the machine's lazy
  /// access/serialization latching.)
  [[nodiscard]] std::uint64_t next_tick_due() const override {
    return (enabled_ && period_ != 0) ? next_fire_ : kNeverTicks;
  }

  [[nodiscard]] std::uint64_t ticks_fired() const { return ticks_; }
  [[nodiscard]] std::uint32_t period() const { return period_; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void save_state(snap::Writer& w) const override;
  Status restore_state(snap::Reader& r) override;

 private:
  bool enabled_ = false;
  std::uint32_t period_ = 0;
  std::uint64_t next_fire_ = 0;
  std::uint64_t last_now_ = 0;
  std::uint64_t ticks_ = 0;
};

/// Write-only console; bytes written to +0 are captured host-side.
class SerialConsole : public Device {
 public:
  static constexpr std::uint32_t kData = 0;
  static constexpr std::uint32_t kStatus = 4;

  [[nodiscard]] std::string_view name() const override { return "serial"; }
  [[nodiscard]] std::uint32_t base() const override { return kMmioSerial; }
  [[nodiscard]] std::uint32_t size() const override { return 0x100; }

  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;

  [[nodiscard]] const std::string& output() const { return output_; }
  void clear() { output_.clear(); }

  void save_state(snap::Writer& w) const override;
  Status restore_state(snap::Reader& r) override;

 private:
  std::string output_;
};

/// Read-only sensor exposing a host-settable 32-bit value at +0.
class SensorDevice : public Device {
 public:
  SensorDevice(std::string_view name, std::uint32_t base) : name_(name), base_(base) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint32_t base() const override { return base_; }
  [[nodiscard]] std::uint32_t size() const override { return 0x100; }

  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;

  /// Host-side: set the physical quantity the sensor reports.
  void set_value(std::uint32_t v) { value_ = v; }
  void set_value2(std::uint32_t v) { value2_ = v; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }

  void save_state(snap::Writer& w) const override;
  Status restore_state(snap::Reader& r) override;

 private:
  std::string name_;
  std::uint32_t base_;
  std::uint32_t value_ = 0;
  std::uint32_t value2_ = 0;
  std::uint64_t reads_ = 0;
};

/// Engine actuator: records every throttle command with its cycle timestamp
/// so the use-case bench can compute the control frequency (Table 1).
class EngineActuator : public Device {
 public:
  struct Command {
    std::uint64_t cycle;
    std::uint32_t value;
  };

  [[nodiscard]] std::string_view name() const override { return "engine"; }
  [[nodiscard]] std::uint32_t base() const override { return kMmioEngine; }
  [[nodiscard]] std::uint32_t size() const override { return 0x100; }

  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;
  void tick(std::uint64_t now) override { now_ = now; }
  [[nodiscard]] bool wants_tick() const override { return true; }
  /// tick() is a pure time latch (command timestamps); the machine latches
  /// it lazily on MMIO access instead of every instruction.
  [[nodiscard]] std::uint64_t next_tick_due() const override {
    return kNeverTicks;
  }

  [[nodiscard]] const std::vector<Command>& commands() const { return commands_; }
  void clear() { commands_.clear(); }

  void save_state(snap::Writer& w) const override;
  Status restore_state(snap::Reader& r) override;

 private:
  std::uint64_t now_ = 0;
  std::vector<Command> commands_;
};

/// CAN bus controller model ("react to an event like an arriving network
/// package", paper §4).  The host injects RX frames, which raise IRQ
/// kVecCan; the guest driver reads them through an RX FIFO window and can
/// transmit frames the host observes.
///
/// Registers (word offsets):
///   +0  STATUS   (ro) number of frames waiting in the RX FIFO
///   +4  RX_ID    (ro) identifier of the head frame (11-bit) | dlc << 16
///   +8  RX_DATA0 (ro) payload bytes 0..3 (little endian)
///   +12 RX_DATA1 (ro) payload bytes 4..7
///   +16 RX_POP   (wo) any write pops the head frame
///   +20 TX_ID    (rw) identifier | dlc << 16 for the next transmission
///   +24 TX_DATA0 (rw)
///   +28 TX_DATA1 (rw)
///   +32 TX_SEND  (wo) any write queues the frame onto the (host) bus
class CanBusDevice : public Device {
 public:
  struct Frame {
    std::uint16_t id = 0;   ///< 11-bit identifier
    std::uint8_t dlc = 8;   ///< payload length 0..8
    std::array<std::uint8_t, 8> data{};
  };
  static constexpr std::uint32_t kStatus = 0;
  static constexpr std::uint32_t kRxId = 4;
  static constexpr std::uint32_t kRxData0 = 8;
  static constexpr std::uint32_t kRxData1 = 12;
  static constexpr std::uint32_t kRxPop = 16;
  static constexpr std::uint32_t kTxId = 20;
  static constexpr std::uint32_t kTxData0 = 24;
  static constexpr std::uint32_t kTxData1 = 28;
  static constexpr std::uint32_t kTxSend = 32;
  static constexpr std::size_t kRxFifoDepth = 16;

  [[nodiscard]] std::string_view name() const override { return "can"; }
  [[nodiscard]] std::uint32_t base() const override { return kMmioCan; }
  [[nodiscard]] std::uint32_t size() const override { return 0x100; }

  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;

  /// Host side: put a frame on the bus; raises kVecCan.  Returns false if
  /// the RX FIFO overflowed (frame dropped, counted).
  bool inject(const Frame& frame);
  [[nodiscard]] const std::vector<Frame>& transmitted() const { return tx_log_; }
  [[nodiscard]] std::uint64_t rx_overflows() const { return rx_overflows_; }

  void save_state(snap::Writer& w) const override;
  Status restore_state(snap::Reader& r) override;

 private:
  std::deque<Frame> rx_fifo_;
  std::vector<Frame> tx_log_;
  Frame tx_staging_;
  std::uint64_t rx_overflows_ = 0;
};

/// Deterministic xorshift RNG for nonces.  The seed is per-instance
/// (Platform::Config::rng_seed) so fleet devices draw distinct but
/// reproducible nonce streams; a zero seed is coerced to the default
/// (xorshift has an all-zero fixed point).
class RngDevice : public Device {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x1234'5678'9abc'def0ull;

  explicit RngDevice(std::uint64_t seed = kDefaultSeed)
      : state_(seed != 0 ? seed : kDefaultSeed) {}

  [[nodiscard]] std::string_view name() const override { return "rng"; }
  [[nodiscard]] std::uint32_t base() const override { return kMmioRng; }
  [[nodiscard]] std::uint32_t size() const override { return 0x100; }

  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;

  std::uint64_t next64();

  void save_state(snap::Writer& w) const override;
  Status restore_state(snap::Reader& r) override;

 private:
  std::uint64_t state_;
};

}  // namespace tytan::sim
