#include "sim/devices.h"

#include <algorithm>

#include "common/bytes.h"

namespace tytan::sim {

// ---------------------------------------------------------------------------
// TimerDevice
// ---------------------------------------------------------------------------

std::uint32_t TimerDevice::read32(std::uint32_t offset) {
  switch (offset) {
    case kCtrl: return enabled_ ? 1u : 0u;
    case kPeriod: return period_;
    case kTicks: return static_cast<std::uint32_t>(ticks_);
    default: return 0;
  }
}

void TimerDevice::write32(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kCtrl:
      if ((value & 1u) != 0 && !enabled_ && period_ != 0) {
        enabled_ = true;
        next_fire_ = last_now_ + period_;
      } else if ((value & 1u) == 0) {
        enabled_ = false;
      }
      break;
    case kPeriod:
      period_ = value;
      break;
    default:
      break;
  }
}

void TimerDevice::tick(std::uint64_t now) {
  last_now_ = now;
  if (!enabled_ || period_ == 0) {
    return;
  }
  while (now >= next_fire_) {
    ++ticks_;
    raise_irq(kVecTimer);
    next_fire_ += period_;
  }
}

// ---------------------------------------------------------------------------
// SerialConsole
// ---------------------------------------------------------------------------

std::uint32_t SerialConsole::read32(std::uint32_t offset) {
  return offset == kStatus ? 1u : 0u;  // always ready
}

void SerialConsole::write32(std::uint32_t offset, std::uint32_t value) {
  if (offset == kData) {
    output_.push_back(static_cast<char>(value & 0xFF));
  }
}

// ---------------------------------------------------------------------------
// SensorDevice
// ---------------------------------------------------------------------------

std::uint32_t SensorDevice::read32(std::uint32_t offset) {
  if (offset == 0) {
    ++reads_;
    return value_;
  }
  if (offset == 4) {
    return value2_;
  }
  return 0;
}

void SensorDevice::write32(std::uint32_t /*offset*/, std::uint32_t /*value*/) {
  // Sensors are read-only from the guest; writes are ignored.
}

// ---------------------------------------------------------------------------
// EngineActuator
// ---------------------------------------------------------------------------

std::uint32_t EngineActuator::read32(std::uint32_t offset) {
  if (offset == 0 && !commands_.empty()) {
    return commands_.back().value;
  }
  (void)offset;
  return 0;
}

void EngineActuator::write32(std::uint32_t offset, std::uint32_t value) {
  if (offset == 0) {
    commands_.push_back({now_, value});
  }
}

// ---------------------------------------------------------------------------
// CanBusDevice
// ---------------------------------------------------------------------------

namespace {
std::uint32_t pack_id(const CanBusDevice::Frame& frame) {
  return static_cast<std::uint32_t>(frame.id & 0x7FF) |
         (static_cast<std::uint32_t>(frame.dlc) << 16);
}
}  // namespace

std::uint32_t CanBusDevice::read32(std::uint32_t offset) {
  switch (offset) {
    case kStatus:
      return static_cast<std::uint32_t>(rx_fifo_.size());
    case kRxId:
      return rx_fifo_.empty() ? 0 : pack_id(rx_fifo_.front());
    case kRxData0:
      return rx_fifo_.empty() ? 0 : load_le32(rx_fifo_.front().data.data());
    case kRxData1:
      return rx_fifo_.empty() ? 0 : load_le32(rx_fifo_.front().data.data() + 4);
    case kTxId:
      return pack_id(tx_staging_);
    case kTxData0:
      return load_le32(tx_staging_.data.data());
    case kTxData1:
      return load_le32(tx_staging_.data.data() + 4);
    default:
      return 0;
  }
}

void CanBusDevice::write32(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kRxPop:
      if (!rx_fifo_.empty()) {
        rx_fifo_.pop_front();
      }
      break;
    case kTxId:
      tx_staging_.id = static_cast<std::uint16_t>(value & 0x7FF);
      tx_staging_.dlc = static_cast<std::uint8_t>(std::min<std::uint32_t>(8, value >> 16));
      break;
    case kTxData0:
      store_le32(tx_staging_.data.data(), value);
      break;
    case kTxData1:
      store_le32(tx_staging_.data.data() + 4, value);
      break;
    case kTxSend:
      tx_log_.push_back(tx_staging_);
      break;
    default:
      break;
  }
}

bool CanBusDevice::inject(const Frame& frame) {
  if (rx_fifo_.size() >= kRxFifoDepth) {
    ++rx_overflows_;
    return false;
  }
  rx_fifo_.push_back(frame);
  raise_irq(kVecCan);
  return true;
}

// ---------------------------------------------------------------------------
// RngDevice
// ---------------------------------------------------------------------------

std::uint64_t RngDevice::next64() {
  state_ ^= state_ << 13;
  state_ ^= state_ >> 7;
  state_ ^= state_ << 17;
  return state_;
}

std::uint32_t RngDevice::read32(std::uint32_t /*offset*/) {
  return static_cast<std::uint32_t>(next64());
}

void RngDevice::write32(std::uint32_t /*offset*/, std::uint32_t value) {
  state_ ^= value;
}

}  // namespace tytan::sim
