#include "sim/devices.h"

#include <algorithm>

#include "common/bytes.h"

namespace tytan::sim {

// ---------------------------------------------------------------------------
// TimerDevice
// ---------------------------------------------------------------------------

std::uint32_t TimerDevice::read32(std::uint32_t offset) {
  switch (offset) {
    case kCtrl: return enabled_ ? 1u : 0u;
    case kPeriod: return period_;
    case kTicks: return static_cast<std::uint32_t>(ticks_);
    default: return 0;
  }
}

void TimerDevice::write32(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kCtrl:
      if ((value & 1u) != 0 && !enabled_ && period_ != 0) {
        enabled_ = true;
        next_fire_ = last_now_ + period_;
      } else if ((value & 1u) == 0) {
        enabled_ = false;
      }
      touch_timing();  // next_tick_due() changed
      break;
    case kPeriod:
      period_ = value;
      touch_timing();
      break;
    default:
      break;
  }
}

void TimerDevice::tick(std::uint64_t now) {
  last_now_ = now;
  if (!enabled_ || period_ == 0) {
    return;
  }
  while (now >= next_fire_) {
    ++ticks_;
    raise_irq(kVecTimer);
    next_fire_ += period_;
  }
}

void TimerDevice::save_state(snap::Writer& w) const {
  w.boolean(enabled_);
  w.u32(period_);
  w.u64(next_fire_);
  w.u64(last_now_);
  w.u64(ticks_);
}

Status TimerDevice::restore_state(snap::Reader& r) {
  enabled_ = r.boolean();
  period_ = r.u32();
  next_fire_ = r.u64();
  last_now_ = r.u64();
  ticks_ = r.u64();
  touch_timing();  // restored schedule replaces whatever the machine cached
  return Status::ok();
}

// ---------------------------------------------------------------------------
// SerialConsole
// ---------------------------------------------------------------------------

std::uint32_t SerialConsole::read32(std::uint32_t offset) {
  return offset == kStatus ? 1u : 0u;  // always ready
}

void SerialConsole::write32(std::uint32_t offset, std::uint32_t value) {
  if (offset == kData) {
    output_.push_back(static_cast<char>(value & 0xFF));
  }
}

void SerialConsole::save_state(snap::Writer& w) const { w.str(output_); }

Status SerialConsole::restore_state(snap::Reader& r) {
  output_ = r.str();
  return Status::ok();
}

// ---------------------------------------------------------------------------
// SensorDevice
// ---------------------------------------------------------------------------

std::uint32_t SensorDevice::read32(std::uint32_t offset) {
  if (offset == 0) {
    ++reads_;
    return value_;
  }
  if (offset == 4) {
    return value2_;
  }
  return 0;
}

void SensorDevice::write32(std::uint32_t /*offset*/, std::uint32_t /*value*/) {
  // Sensors are read-only from the guest; writes are ignored.
}

void SensorDevice::save_state(snap::Writer& w) const {
  w.u32(value_);
  w.u32(value2_);
  w.u64(reads_);
}

Status SensorDevice::restore_state(snap::Reader& r) {
  value_ = r.u32();
  value2_ = r.u32();
  reads_ = r.u64();
  return Status::ok();
}

// ---------------------------------------------------------------------------
// EngineActuator
// ---------------------------------------------------------------------------

std::uint32_t EngineActuator::read32(std::uint32_t offset) {
  if (offset == 0 && !commands_.empty()) {
    return commands_.back().value;
  }
  (void)offset;
  return 0;
}

void EngineActuator::write32(std::uint32_t offset, std::uint32_t value) {
  if (offset == 0) {
    commands_.push_back({now_, value});
  }
}

void EngineActuator::save_state(snap::Writer& w) const {
  w.u64(now_);
  w.u32(static_cast<std::uint32_t>(commands_.size()));
  for (const Command& c : commands_) {
    w.u64(c.cycle);
    w.u32(c.value);
  }
}

Status EngineActuator::restore_state(snap::Reader& r) {
  now_ = r.u64();
  const std::uint32_t count = r.u32();
  commands_.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    Command c;
    c.cycle = r.u64();
    c.value = r.u32();
    commands_.push_back(c);
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// CanBusDevice
// ---------------------------------------------------------------------------

namespace {
std::uint32_t pack_id(const CanBusDevice::Frame& frame) {
  return static_cast<std::uint32_t>(frame.id & 0x7FF) |
         (static_cast<std::uint32_t>(frame.dlc) << 16);
}
}  // namespace

std::uint32_t CanBusDevice::read32(std::uint32_t offset) {
  switch (offset) {
    case kStatus:
      return static_cast<std::uint32_t>(rx_fifo_.size());
    case kRxId:
      return rx_fifo_.empty() ? 0 : pack_id(rx_fifo_.front());
    case kRxData0:
      return rx_fifo_.empty() ? 0 : load_le32(rx_fifo_.front().data.data());
    case kRxData1:
      return rx_fifo_.empty() ? 0 : load_le32(rx_fifo_.front().data.data() + 4);
    case kTxId:
      return pack_id(tx_staging_);
    case kTxData0:
      return load_le32(tx_staging_.data.data());
    case kTxData1:
      return load_le32(tx_staging_.data.data() + 4);
    default:
      return 0;
  }
}

void CanBusDevice::write32(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kRxPop:
      if (!rx_fifo_.empty()) {
        rx_fifo_.pop_front();
      }
      break;
    case kTxId:
      tx_staging_.id = static_cast<std::uint16_t>(value & 0x7FF);
      tx_staging_.dlc = static_cast<std::uint8_t>(std::min<std::uint32_t>(8, value >> 16));
      break;
    case kTxData0:
      store_le32(tx_staging_.data.data(), value);
      break;
    case kTxData1:
      store_le32(tx_staging_.data.data() + 4, value);
      break;
    case kTxSend:
      tx_log_.push_back(tx_staging_);
      break;
    default:
      break;
  }
}

namespace {

void write_frame(snap::Writer& w, const CanBusDevice::Frame& frame) {
  w.u32(frame.id);
  w.u8(frame.dlc);
  w.raw(frame.data);
}

CanBusDevice::Frame read_frame(snap::Reader& r) {
  CanBusDevice::Frame frame;
  frame.id = static_cast<std::uint16_t>(r.u32());
  frame.dlc = r.u8();
  r.raw(frame.data);
  return frame;
}

}  // namespace

void CanBusDevice::save_state(snap::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(rx_fifo_.size()));
  for (const Frame& frame : rx_fifo_) {
    write_frame(w, frame);
  }
  w.u32(static_cast<std::uint32_t>(tx_log_.size()));
  for (const Frame& frame : tx_log_) {
    write_frame(w, frame);
  }
  write_frame(w, tx_staging_);
  w.u64(rx_overflows_);
}

Status CanBusDevice::restore_state(snap::Reader& r) {
  const std::uint32_t rx_count = r.u32();
  rx_fifo_.clear();
  for (std::uint32_t i = 0; i < rx_count && r.ok(); ++i) {
    rx_fifo_.push_back(read_frame(r));
  }
  const std::uint32_t tx_count = r.u32();
  tx_log_.clear();
  for (std::uint32_t i = 0; i < tx_count && r.ok(); ++i) {
    tx_log_.push_back(read_frame(r));
  }
  tx_staging_ = read_frame(r);
  rx_overflows_ = r.u64();
  return Status::ok();
}

bool CanBusDevice::inject(const Frame& frame) {
  if (rx_fifo_.size() >= kRxFifoDepth) {
    ++rx_overflows_;
    return false;
  }
  rx_fifo_.push_back(frame);
  raise_irq(kVecCan);
  return true;
}

// ---------------------------------------------------------------------------
// RngDevice
// ---------------------------------------------------------------------------

std::uint64_t RngDevice::next64() {
  state_ ^= state_ << 13;
  state_ ^= state_ >> 7;
  state_ ^= state_ << 17;
  return state_;
}

std::uint32_t RngDevice::read32(std::uint32_t /*offset*/) {
  return static_cast<std::uint32_t>(next64());
}

void RngDevice::write32(std::uint32_t /*offset*/, std::uint32_t value) {
  state_ ^= value;
}

void RngDevice::save_state(snap::Writer& w) const { w.u64(state_); }

Status RngDevice::restore_state(snap::Reader& r) {
  state_ = r.u64();
  return Status::ok();
}

}  // namespace tytan::sim
