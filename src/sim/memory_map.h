// Physical memory map of the simulated platform.
//
// Siskiyou Peak uses a flat physical address space with MMIO (paper §4).
// Layout (all constants in bytes):
//
//   0x000000  IDT (64 vectors x 4 bytes)            -- EA-MPU protected
//   0x000400  boot ROM image + manifest             -- read-only by policy
//   0x010000  trusted firmware windows (4 KiB each): OS kernel, EA-MPU
//             driver, Int Mux, IPC proxy, RTM, Remote Attest, Secure
//             Storage, fault handler
//   0x018000  trusted data (RTM registry, shadow TCBs, sealed store, ...)
//   0x020000  general RAM: OS heap and task memory
//   0x100000  MMIO window (timer, serial, sensors, platform-key register)
#pragma once

#include <cstdint>

namespace tytan::sim {

inline constexpr std::uint32_t kIdtBase = 0x0000'0000;
inline constexpr std::uint32_t kIdtEntries = 64;
inline constexpr std::uint32_t kIdtSize = kIdtEntries * 4;

inline constexpr std::uint32_t kRomBase = 0x0000'0400;
inline constexpr std::uint32_t kRomSize = 0x0000'FC00;

/// Trusted firmware windows.  Each trusted software component of TyTAN
/// occupies one window; the window address doubles as the component's
/// execution identity for the EA-MPU.
inline constexpr std::uint32_t kFwWindowSize = 0x2000;
inline constexpr std::uint32_t kFwOsKernel = 0x0001'0000;
inline constexpr std::uint32_t kFwEaMpuDriver = 0x0001'2000;
inline constexpr std::uint32_t kFwIntMux = 0x0001'4000;
inline constexpr std::uint32_t kFwIpcProxy = 0x0001'6000;
inline constexpr std::uint32_t kFwRtm = 0x0001'8000;
inline constexpr std::uint32_t kFwRemoteAttest = 0x0001'A000;
inline constexpr std::uint32_t kFwSecureStorage = 0x0001'C000;
inline constexpr std::uint32_t kFwFaultHandler = 0x0001'E000;

inline constexpr std::uint32_t kTrustedDataBase = 0x0002'0000;
inline constexpr std::uint32_t kTrustedDataSize = 0x0000'8000;

inline constexpr std::uint32_t kRamBase = 0x0002'8000;
inline constexpr std::uint32_t kRamEnd = 0x0010'0000;  // exclusive

inline constexpr std::uint32_t kMmioBase = 0x0010'0000;
inline constexpr std::uint32_t kMmioSize = 0x0000'1000;

inline constexpr std::uint32_t kMemSize = kMmioBase + kMmioSize;

/// MMIO device bases (offsets are device-local).
inline constexpr std::uint32_t kMmioTimer = kMmioBase + 0x000;
inline constexpr std::uint32_t kMmioSerial = kMmioBase + 0x100;
inline constexpr std::uint32_t kMmioPedal = kMmioBase + 0x200;
inline constexpr std::uint32_t kMmioRadar = kMmioBase + 0x300;
inline constexpr std::uint32_t kMmioEngine = kMmioBase + 0x400;
inline constexpr std::uint32_t kMmioRng = kMmioBase + 0x500;
inline constexpr std::uint32_t kMmioKeyReg = kMmioBase + 0x600;
inline constexpr std::uint32_t kMmioCan = kMmioBase + 0x700;

/// Interrupt vectors.
inline constexpr std::uint8_t kVecReset = 0;
inline constexpr std::uint8_t kVecFault = 1;
inline constexpr std::uint8_t kVecTimer = 0x20;
inline constexpr std::uint8_t kVecSyscall = 0x21;
inline constexpr std::uint8_t kVecIpc = 0x22;
inline constexpr std::uint8_t kVecCan = 0x23;

/// Paper's platform clock: Xilinx Spartan-6 FPGA at 48 MHz (§4).
inline constexpr std::uint64_t kClockHz = 48'000'000;

}  // namespace tytan::sim
