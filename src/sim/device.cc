#include "sim/device.h"

#include "common/bytes.h"
#include "common/status.h"

namespace tytan::sim {

void MmioBus::attach(std::shared_ptr<Device> device) {
  TYTAN_CHECK(device != nullptr, "attach(nullptr)");
  for (const auto& existing : devices_) {
    TYTAN_CHECK(!ranges_overlap(existing->base(), existing->size(), device->base(),
                                device->size()),
                "MMIO ranges overlap");
  }
  devices_.push_back(std::move(device));
  Device* attached = devices_.back().get();
  if (attached->wants_tick()) {
    tickers_.push_back(attached);
  }
  attached->set_timing_listener([this] { ++timing_epoch_; });
  ++timing_epoch_;  // a new ticker may be due immediately
}

Device* MmioBus::find(std::uint32_t addr) const {
  for (const auto& device : devices_) {
    if (addr >= device->base() && addr < device->base() + device->size()) {
      return device.get();
    }
  }
  return nullptr;
}

}  // namespace tytan::sim
