// The simulated platform: physical memory, MMIO bus, CPU interpreter,
// exception engine with IDT, cycle clock, and trusted-firmware dispatch.
//
// Trusted software components (Int Mux, IPC proxy, RTM, EA-MPU driver, OS
// kernel entry points) are *firmware handlers*: host functions registered at
// fixed addresses inside the trusted firmware windows.  When EIP reaches a
// registered address the machine invokes the handler instead of interpreting
// guest code.  Handlers charge cycles explicitly through the CostModel and
// perform memory accesses through the fw_* accessors, which are checked
// against the EA-MPU under the handler's execution identity — so the same
// access-control matrix governs guest code and trusted components.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/log.h"
#include "common/status.h"
#include "obs/heat.h"
#include "obs/hub.h"
#include "obs/profiler.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/decode_cache.h"
#include "sim/device.h"
#include "sim/memory.h"
#include "sim/tracer.h"

namespace tytan::fault {
class FaultEngine;
}  // namespace tytan::fault

namespace tytan::sim {

class Machine;

/// Host implementation of a trusted software component entry point.  The
/// handler must either advance cpu().eip (branch somewhere) or leave it at
/// its own address to be re-invoked next step (resumable firmware tasks —
/// this is how the RTM stays interruptible).
using FirmwareHandler = std::function<void(Machine&)>;

/// Observer of guest indirect transfers: (site pc, register target, is_call).
using IndirectBranchHook =
    std::function<void(std::uint32_t, std::uint32_t, bool)>;

enum class StepOutcome : std::uint8_t {
  kOk = 0,        ///< executed one instruction / firmware quantum / dispatch
  kHalted,        ///< machine is halted
};

/// How guest instructions are dispatched.  Both modes produce bit-identical
/// simulated state (registers, EIP, EFLAGS, cycles, instructions, faults) at
/// every step — tests/test_dispatch.cc runs them in lockstep — only the host
/// cost differs.
enum class DispatchMode : std::uint8_t {
  kInterpreter = 0,  ///< fetch → decode → check → dispatch, every step
  kCached,           ///< decoded basic-block cache + table-driven dispatch
};

class Machine {
 public:
  /// `log` may be nullptr, meaning the process-default context.  Machines
  /// built by a fleet get a per-platform context so concurrent devices never
  /// share mutable log state.
  explicit Machine(CostModel costs = {}, const LogContext* log = nullptr);

  // The obs hub's clock and the firmware handlers' captured references are
  // wired to this object once, in the constructor — a Machine never moves.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  Machine(Machine&&) = delete;
  Machine& operator=(Machine&&) = delete;

  // -- component access -------------------------------------------------------
  [[nodiscard]] PhysicalMemory& memory() { return memory_; }
  [[nodiscard]] const PhysicalMemory& memory() const { return memory_; }
  [[nodiscard]] CpuState& cpu() { return cpu_; }
  [[nodiscard]] const CpuState& cpu() const { return cpu_; }
  [[nodiscard]] MmioBus& bus() { return bus_; }

  /// Latch every device's time to what the classic every-instruction tick
  /// regime would show — call before serializing device state.  No-op when
  /// no step has run since the last flush or restore, so save → restore →
  /// save round trips stay byte-identical.
  void flush_device_time() {
    if (device_time_dirty_) {
      bus_.tick_all(step_top_cycles_);
      device_time_dirty_ = false;
    }
  }
  [[nodiscard]] const CostModel& costs() const { return costs_; }

  /// Install the EA-MPU (or any policy).  Non-owning; may be nullptr
  /// (pre-secure-boot: everything allowed).  Drops the decode cache — cached
  /// fetch and transfer verdicts were issued by the previous policy.
  void set_policy(const AccessPolicy* policy) {
    policy_ = policy;
    invalidate_decode_cache();
  }
  [[nodiscard]] const AccessPolicy* policy() const { return policy_; }

  // -- dispatch mode -----------------------------------------------------------
  /// Default is kCached; kInterpreter is the reference implementation the
  /// differential tests and the bench A/B compare against.
  void set_dispatch_mode(DispatchMode mode) {
    dispatch_ = mode;
    cur_block_ = nullptr;
  }
  [[nodiscard]] DispatchMode dispatch_mode() const { return dispatch_; }

  /// Host-only decode-cache state (stats, block count) — never snapshotted.
  [[nodiscard]] const DecodeCache& decode_cache() const { return dcache_; }
  /// Drop every cached block (task load/unload, firmware changes, restores).
  void invalidate_decode_cache() {
    dcache_.invalidate_all();
    cur_block_ = nullptr;
  }

  // -- clock -------------------------------------------------------------------
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  void charge(std::uint64_t c) { cycles_ += c; }

  // -- interrupt lines ----------------------------------------------------------
  void raise_irq(std::uint8_t vector);
  [[nodiscard]] bool irq_pending() const { return pending_ != 0; }

  /// Hardware latches set by the exception engine at dispatch: the EIP the
  /// interrupt originated from (the IPC proxy derives the *sender identity*
  /// from this, paper §4) and the dispatched vector.
  [[nodiscard]] std::uint32_t int_origin_eip() const { return int_origin_eip_; }
  [[nodiscard]] std::uint8_t int_vector() const { return int_vector_; }

  /// Raise `vector` synchronously (used by the INT instruction and tests).
  /// Returns true when control actually reached the handler; false when the
  /// dispatch failed (no IDT entry, or a stack fault while pushing the
  /// EFLAGS/EIP frame) — in that case the interrupt latches are NOT updated,
  /// so the IPC proxy never authenticates a sender from a failed dispatch.
  bool dispatch_interrupt(std::uint8_t vector, std::uint32_t origin_eip,
                          std::uint32_t return_eip);

  // -- faults -------------------------------------------------------------------
  void raise_fault(const FaultInfo& fault);
  /// Record a fault without dispatching (used by firmware that routes to the
  /// fault handler itself and must not recurse through the IDT).
  void record_fault(const FaultInfo& fault);
  [[nodiscard]] const FaultInfo& last_fault() const { return last_fault_; }
  [[nodiscard]] std::uint64_t fault_count() const { return fault_count_; }

  // -- firmware ----------------------------------------------------------------
  void register_firmware(std::uint32_t addr, std::string name, FirmwareHandler handler);
  [[nodiscard]] bool is_firmware(std::uint32_t addr) const {
    return firmware_.contains(addr);
  }
  [[nodiscard]] std::string_view firmware_name(std::uint32_t addr) const;

  /// Policy-checked accessors for firmware handlers.  `exec_ip` is the
  /// handler's execution identity (its firmware window address).  These do
  /// NOT charge cycles — handlers charge calibrated primitive costs instead.
  Result<std::uint32_t> fw_read32(std::uint32_t exec_ip, std::uint32_t addr);
  Status fw_write32(std::uint32_t exec_ip, std::uint32_t addr, std::uint32_t value);
  Result<std::uint8_t> fw_read8(std::uint32_t exec_ip, std::uint32_t addr);
  Status fw_write8(std::uint32_t exec_ip, std::uint32_t addr, std::uint8_t value);

  // -- execution ----------------------------------------------------------------
  StepOutcome step();

  /// Run until halt or until the cycle clock reaches `cycle_limit`.
  HaltReason run(std::uint64_t cycle_limit);

  [[nodiscard]] bool halted() const { return halt_reason_ != HaltReason::kNone; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_reason_; }
  void clear_halt() { halt_reason_ = HaltReason::kNone; }
  void halt(HaltReason reason) { halt_reason_ = reason; }

  // -- instrumentation -----------------------------------------------------------
  [[nodiscard]] std::uint64_t instructions_executed() const { return instructions_; }
  [[nodiscard]] std::uint64_t interrupts_dispatched() const { return interrupts_; }
  [[nodiscard]] std::uint64_t firmware_invocations() const { return fw_invocations_; }

  /// Enable (capacity > 0) or disable (capacity == 0) instruction tracing
  /// into a ring buffer; useful for post-mortem fault analysis.
  void enable_trace(std::size_t capacity) {
    tracer_ = capacity == 0 ? nullptr : std::make_unique<Tracer>(capacity);
  }
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }

  /// Enable (interval > 0) or disable (interval == 0) the guest-PC sampling
  /// profiler: one sample every `interval_cycles` simulated cycles.  Like the
  /// obs hub, sampling never charges simulated cycles — cycle counts stay
  /// bit-identical with the profiler on.  Already-registered firmware entry
  /// points are imported as exact-address symbols.
  void enable_profiler(std::uint64_t interval_cycles,
                       std::size_t capacity = obs::SampleProfiler::kDefaultCapacity);
  [[nodiscard]] obs::SampleProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const obs::SampleProfiler* profiler() const { return profiler_.get(); }

  /// Enable the execution observatory (obs/heat.h): per-block heat counters,
  /// per-opcode dispatch histograms with batched host-ns attribution, EA-MPU
  /// check counters split by granting rule, and indirect-branch edge
  /// profiles, recorded into the obs metrics registry's "machine" heat
  /// profile.  Never charges simulated cycles — cycle counts stay
  /// bit-identical with the observatory on; disabled (the default) every
  /// hook is a single null-pointer check.  `time_dispatch` false skips the
  /// host-clock sampling so the recorded profile is a deterministic function
  /// of the simulated execution (the mode fleet devices use).
  void enable_heat(bool time_dispatch = true);
  void disable_heat() { heat_ = nullptr; }
  [[nodiscard]] obs::HeatRecorder* heat() { return heat_.get(); }
  [[nodiscard]] const obs::HeatRecorder* heat() const { return heat_.get(); }

  /// Structured observability (event bus + metrics + per-task accounting).
  /// Disabled by default; never charges simulated cycles.  The clock is
  /// wired once in the constructor (Machine is non-movable).
  [[nodiscard]] obs::Hub& obs() { return obs_; }
  [[nodiscard]] const obs::Hub& obs() const { return obs_; }

  /// The log context this machine (and every component built on it) emits
  /// through.  Defaults to the process-wide context.
  [[nodiscard]] const LogContext& log() const { return *log_; }

  /// Source of the current rtos task handle, wired by the platform so the
  /// tracer can stamp entries with the running task (-1 when unknown).  Only
  /// consulted while tracing is enabled.
  void set_task_context(std::function<std::int32_t()> provider) {
    task_context_ = std::move(provider);
  }

  /// Instrumentation hook fired on every guest `jmpr`/`callr`, before the
  /// transfer is attempted, with the site address, the register target, and
  /// whether the transfer is a call.  Used by the differential-soundness
  /// harness to compare dynamically taken indirect edges against the static
  /// analyzer's resolved set.  Charges no simulated cycles; null (the
  /// default) costs one branch per indirect transfer.
  void set_indirect_branch_hook(IndirectBranchHook hook) {
    indirect_branch_hook_ = std::move(hook);
  }

  /// Optional fault-injection engine (non-owning, same lifetime discipline
  /// as the tracer/profiler hooks: Platform owns it, hook sites only consult
  /// it).  Null — the default — means every hook is one pointer compare.
  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }
  [[nodiscard]] fault::FaultEngine* faults() const { return faults_; }

  /// IDT entry for `vector` (raw read, as the exception engine sees it).
  [[nodiscard]] std::uint32_t idt_entry(std::uint8_t vector) const;
  /// Install an IDT entry (raw write; used by secure boot before the EA-MPU
  /// locks the table).
  void set_idt_entry(std::uint8_t vector, std::uint32_t handler);

  // -- snapshots ---------------------------------------------------------------
  /// Serialize / overwrite the machine's core execution state: CPU registers,
  /// cycle clock, interrupt and fault latches, halt reason, instruction
  /// counters.  Physical memory, devices, and the tracer are separate snapshot
  /// sections; firmware registrations, hooks, and obs state are wiring or
  /// host-only and deliberately excluded.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  // The per-opcode handlers (machine_ops.cc) are the interpreter switch
  // bodies factored into the OpVariant table; they need the same access the
  // switch had.
  friend struct MachineOps;

  [[nodiscard]] std::int32_t current_task_context() const;
  [[nodiscard]] bool check(std::uint32_t exec_ip, std::uint32_t addr, Access access) const;
  [[nodiscard]] bool is_mmio(std::uint32_t addr) const {
    return addr >= kMmioBase && addr < kMmioBase + kMmioSize;
  }

  /// Raw access with MMIO dispatch; returns false on bus error.
  bool raw_read32(std::uint32_t addr, std::uint32_t* out);
  bool raw_write32(std::uint32_t addr, std::uint32_t value);
  bool raw_read8(std::uint32_t addr, std::uint8_t* out);
  bool raw_write8(std::uint32_t addr, std::uint8_t value);

  void dispatch_pending();
  void execute_one();
  /// Dispatch one decoded instruction through its OpVariant handler (the
  /// former opcode switch, factored into machine_ops.cc).  Split out of
  /// execute_one so the heat recorder can host-time a sampled dispatch
  /// without touching the interpreter body.  Both dispatch modes funnel
  /// through this — a single implementation per opcode cannot diverge.
  void execute_op(const DecodedOp& op);

  // Cached-dispatch slow path: sync the cache with the policy epoch, look up
  // or build the block at EIP, park the cursor, and run its first op.
  // Returns false when the head is uncacheable (fault, MMIO, firmware) and
  // the interpreter path must handle this step.
  bool execute_one_cached();
  /// Tracer replay + memoized fetch check + charge + heat hooks + dispatch
  /// for one cached op (the per-step body shared by fast and slow paths).
  void run_cached_op(const DecodedOp& op);
  /// Decode straight-line code starting at `pc` into a block; empty when the
  /// head instruction cannot be cached.
  DecodeCache::Block build_block(std::uint32_t pc) const;

  // Guest-side memory helpers: on violation, raise the fault and return false.
  bool guest_read32(std::uint32_t addr, std::uint32_t* out);
  bool guest_write32(std::uint32_t addr, std::uint32_t value);
  bool guest_read8(std::uint32_t addr, std::uint8_t* out);
  bool guest_write8(std::uint32_t addr, std::uint8_t value);
  bool guest_push32(std::uint32_t value);
  bool guest_pop32(std::uint32_t* out);
  bool guest_transfer(std::uint32_t target);

  // Inline: every ALU handler calls one of these, so they sit on the
  // per-instruction hot path of both dispatch modes.
  void set_alu_flags_logic(std::uint32_t result) {
    cpu_.set_flag(isa::kFlagZ, result == 0);
    cpu_.set_flag(isa::kFlagN, (result >> 31) != 0);
  }
  void set_alu_flags_addsub(std::uint64_t wide, std::uint32_t a, std::uint32_t b,
                            std::uint32_t result, bool is_sub) {
    cpu_.set_flag(isa::kFlagZ, result == 0);
    cpu_.set_flag(isa::kFlagN, (result >> 31) != 0);
    cpu_.set_flag(isa::kFlagC, (wide >> 32) != 0);
    const bool sa = (a >> 31) != 0;
    const bool sb = (b >> 31) != 0;
    const bool sr = (result >> 31) != 0;
    const bool overflow = is_sub ? (sa != sb && sr != sa) : (sa == sb && sr != sa);
    cpu_.set_flag(isa::kFlagV, overflow);
  }

  PhysicalMemory memory_;
  MmioBus bus_;
  CpuState cpu_;
  CostModel costs_;
  const AccessPolicy* policy_ = nullptr;

  std::uint64_t cycles_ = 0;
  // Event-driven device time (host-only scheduling state; never snapshotted
  // — the observable device state it manages is bit-identical to the classic
  // every-instruction tick regime).  next_device_tick_ = 0 forces a tick on
  // the first step; device_timing_epoch_ starts mismatched for the same
  // reason.  step_top_cycles_ is the cycle count at the top of the current
  // (or last) step — the `now` every lazy latch must deliver.
  std::uint64_t next_device_tick_ = 0;
  std::uint64_t device_timing_epoch_ = 0;
  std::uint64_t step_top_cycles_ = 0;
  bool device_time_dirty_ = false;  ///< steps ran since the last flush/restore
  std::uint64_t pending_ = 0;  ///< bitmask over 64 vectors; bit i = vector i
  std::uint32_t int_origin_eip_ = 0;
  std::uint8_t int_vector_ = 0;

  FaultInfo last_fault_;
  std::uint64_t fault_count_ = 0;
  bool in_fault_dispatch_ = false;
  /// True when the most recent raise_fault() redirected EIP into the fault
  /// handler.  Load/store/push/pop recovery consults this instead of
  /// comparing EIP against `next` — an address-based guess that broke when
  /// the handler happened to live at `next`.  Consumed within the same
  /// instruction; host-transient, not snapshot state.
  bool fault_eip_redirected_ = false;
  HaltReason halt_reason_ = HaltReason::kNone;

  struct FirmwareEntry {
    std::string name;
    FirmwareHandler handler;
  };
  std::map<std::uint32_t, FirmwareEntry> firmware_;

  std::uint64_t instructions_ = 0;
  std::uint64_t interrupts_ = 0;
  std::uint64_t fw_invocations_ = 0;

  // Decode cache + cursor (host-only; excluded from snapshots).  Declared
  // after memory_ so the cache detaches its write watch before memory dies.
  // The cursor is valid only while cur_gen_ matches dcache_.generation() —
  // checked before every dereference, since any invalidation (policy epoch,
  // code write, explicit drop) frees the pointed-to block.
  DispatchMode dispatch_ = DispatchMode::kCached;
  DecodeCache dcache_;
  const DecodeCache::Block* cur_block_ = nullptr;
  std::size_t cur_idx_ = 0;
  std::uint64_t cur_gen_ = 0;
  // Direct-mapped block-head LUT: hot loops chain block-to-block without the
  // firmware map probe or the hash lookup the cold path pays.  Each entry is
  // stamped with the generation it was filled under and checked with the
  // same live() guard as the cursor, so invalidations kill it for free; a
  // hit is safe to run without the firmware probe because build_block never
  // caches a block whose head is a firmware entry (register_firmware also
  // invalidates, which bumps the generation).
  struct BlockLutEntry {
    std::uint32_t pc = 0;
    std::uint64_t gen = 0;  ///< 0 never matches a real generation
    const DecodeCache::Block* block = nullptr;
  };
  static constexpr std::size_t kBlockLutSize = 256;
  std::array<BlockLutEntry, kBlockLutSize> block_lut_{};

  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<obs::SampleProfiler> profiler_;
  std::unique_ptr<obs::HeatRecorder> heat_;  ///< see enable_heat()
  fault::FaultEngine* faults_ = nullptr;  ///< non-owning; see set_fault_engine
  obs::Hub obs_;
  const LogContext* log_;  ///< never null; defaults to process_log_context()
  std::function<std::int32_t()> task_context_;
  IndirectBranchHook indirect_branch_hook_;
};

}  // namespace tytan::sim
