// The simulated platform: physical memory, MMIO bus, CPU interpreter,
// exception engine with IDT, cycle clock, and trusted-firmware dispatch.
//
// Trusted software components (Int Mux, IPC proxy, RTM, EA-MPU driver, OS
// kernel entry points) are *firmware handlers*: host functions registered at
// fixed addresses inside the trusted firmware windows.  When EIP reaches a
// registered address the machine invokes the handler instead of interpreting
// guest code.  Handlers charge cycles explicitly through the CostModel and
// perform memory accesses through the fw_* accessors, which are checked
// against the EA-MPU under the handler's execution identity — so the same
// access-control matrix governs guest code and trusted components.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/log.h"
#include "common/status.h"
#include "obs/heat.h"
#include "obs/hub.h"
#include "obs/profiler.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/device.h"
#include "sim/memory.h"
#include "sim/tracer.h"

namespace tytan::fault {
class FaultEngine;
}  // namespace tytan::fault

namespace tytan::sim {

class Machine;

/// Host implementation of a trusted software component entry point.  The
/// handler must either advance cpu().eip (branch somewhere) or leave it at
/// its own address to be re-invoked next step (resumable firmware tasks —
/// this is how the RTM stays interruptible).
using FirmwareHandler = std::function<void(Machine&)>;

/// Observer of guest indirect transfers: (site pc, register target, is_call).
using IndirectBranchHook =
    std::function<void(std::uint32_t, std::uint32_t, bool)>;

enum class StepOutcome : std::uint8_t {
  kOk = 0,        ///< executed one instruction / firmware quantum / dispatch
  kHalted,        ///< machine is halted
};

class Machine {
 public:
  /// `log` may be nullptr, meaning the process-default context.  Machines
  /// built by a fleet get a per-platform context so concurrent devices never
  /// share mutable log state.
  explicit Machine(CostModel costs = {}, const LogContext* log = nullptr);

  // The obs hub's clock and the firmware handlers' captured references are
  // wired to this object once, in the constructor — a Machine never moves.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  Machine(Machine&&) = delete;
  Machine& operator=(Machine&&) = delete;

  // -- component access -------------------------------------------------------
  [[nodiscard]] PhysicalMemory& memory() { return memory_; }
  [[nodiscard]] const PhysicalMemory& memory() const { return memory_; }
  [[nodiscard]] CpuState& cpu() { return cpu_; }
  [[nodiscard]] const CpuState& cpu() const { return cpu_; }
  [[nodiscard]] MmioBus& bus() { return bus_; }
  [[nodiscard]] const CostModel& costs() const { return costs_; }

  /// Install the EA-MPU (or any policy).  Non-owning; may be nullptr
  /// (pre-secure-boot: everything allowed).
  void set_policy(const AccessPolicy* policy) { policy_ = policy; }
  [[nodiscard]] const AccessPolicy* policy() const { return policy_; }

  // -- clock -------------------------------------------------------------------
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  void charge(std::uint64_t c) { cycles_ += c; }

  // -- interrupt lines ----------------------------------------------------------
  void raise_irq(std::uint8_t vector);
  [[nodiscard]] bool irq_pending() const { return pending_ != 0; }

  /// Hardware latches set by the exception engine at dispatch: the EIP the
  /// interrupt originated from (the IPC proxy derives the *sender identity*
  /// from this, paper §4) and the dispatched vector.
  [[nodiscard]] std::uint32_t int_origin_eip() const { return int_origin_eip_; }
  [[nodiscard]] std::uint8_t int_vector() const { return int_vector_; }

  /// Raise `vector` synchronously (used by the INT instruction and tests).
  void dispatch_interrupt(std::uint8_t vector, std::uint32_t origin_eip,
                          std::uint32_t return_eip);

  // -- faults -------------------------------------------------------------------
  void raise_fault(const FaultInfo& fault);
  /// Record a fault without dispatching (used by firmware that routes to the
  /// fault handler itself and must not recurse through the IDT).
  void record_fault(const FaultInfo& fault);
  [[nodiscard]] const FaultInfo& last_fault() const { return last_fault_; }
  [[nodiscard]] std::uint64_t fault_count() const { return fault_count_; }

  // -- firmware ----------------------------------------------------------------
  void register_firmware(std::uint32_t addr, std::string name, FirmwareHandler handler);
  [[nodiscard]] bool is_firmware(std::uint32_t addr) const {
    return firmware_.contains(addr);
  }
  [[nodiscard]] std::string_view firmware_name(std::uint32_t addr) const;

  /// Policy-checked accessors for firmware handlers.  `exec_ip` is the
  /// handler's execution identity (its firmware window address).  These do
  /// NOT charge cycles — handlers charge calibrated primitive costs instead.
  Result<std::uint32_t> fw_read32(std::uint32_t exec_ip, std::uint32_t addr);
  Status fw_write32(std::uint32_t exec_ip, std::uint32_t addr, std::uint32_t value);
  Result<std::uint8_t> fw_read8(std::uint32_t exec_ip, std::uint32_t addr);
  Status fw_write8(std::uint32_t exec_ip, std::uint32_t addr, std::uint8_t value);

  // -- execution ----------------------------------------------------------------
  StepOutcome step();

  /// Run until halt or until the cycle clock reaches `cycle_limit`.
  HaltReason run(std::uint64_t cycle_limit);

  [[nodiscard]] bool halted() const { return halt_reason_ != HaltReason::kNone; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_reason_; }
  void clear_halt() { halt_reason_ = HaltReason::kNone; }
  void halt(HaltReason reason) { halt_reason_ = reason; }

  // -- instrumentation -----------------------------------------------------------
  [[nodiscard]] std::uint64_t instructions_executed() const { return instructions_; }
  [[nodiscard]] std::uint64_t interrupts_dispatched() const { return interrupts_; }
  [[nodiscard]] std::uint64_t firmware_invocations() const { return fw_invocations_; }

  /// Enable (capacity > 0) or disable (capacity == 0) instruction tracing
  /// into a ring buffer; useful for post-mortem fault analysis.
  void enable_trace(std::size_t capacity) {
    tracer_ = capacity == 0 ? nullptr : std::make_unique<Tracer>(capacity);
  }
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }

  /// Enable (interval > 0) or disable (interval == 0) the guest-PC sampling
  /// profiler: one sample every `interval_cycles` simulated cycles.  Like the
  /// obs hub, sampling never charges simulated cycles — cycle counts stay
  /// bit-identical with the profiler on.  Already-registered firmware entry
  /// points are imported as exact-address symbols.
  void enable_profiler(std::uint64_t interval_cycles,
                       std::size_t capacity = obs::SampleProfiler::kDefaultCapacity);
  [[nodiscard]] obs::SampleProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const obs::SampleProfiler* profiler() const { return profiler_.get(); }

  /// Enable the execution observatory (obs/heat.h): per-block heat counters,
  /// per-opcode dispatch histograms with batched host-ns attribution, EA-MPU
  /// check counters split by granting rule, and indirect-branch edge
  /// profiles, recorded into the obs metrics registry's "machine" heat
  /// profile.  Never charges simulated cycles — cycle counts stay
  /// bit-identical with the observatory on; disabled (the default) every
  /// hook is a single null-pointer check.  `time_dispatch` false skips the
  /// host-clock sampling so the recorded profile is a deterministic function
  /// of the simulated execution (the mode fleet devices use).
  void enable_heat(bool time_dispatch = true);
  void disable_heat() { heat_ = nullptr; }
  [[nodiscard]] obs::HeatRecorder* heat() { return heat_.get(); }
  [[nodiscard]] const obs::HeatRecorder* heat() const { return heat_.get(); }

  /// Structured observability (event bus + metrics + per-task accounting).
  /// Disabled by default; never charges simulated cycles.  The clock is
  /// wired once in the constructor (Machine is non-movable).
  [[nodiscard]] obs::Hub& obs() { return obs_; }
  [[nodiscard]] const obs::Hub& obs() const { return obs_; }

  /// The log context this machine (and every component built on it) emits
  /// through.  Defaults to the process-wide context.
  [[nodiscard]] const LogContext& log() const { return *log_; }

  /// Source of the current rtos task handle, wired by the platform so the
  /// tracer can stamp entries with the running task (-1 when unknown).  Only
  /// consulted while tracing is enabled.
  void set_task_context(std::function<std::int32_t()> provider) {
    task_context_ = std::move(provider);
  }

  /// Instrumentation hook fired on every guest `jmpr`/`callr`, before the
  /// transfer is attempted, with the site address, the register target, and
  /// whether the transfer is a call.  Used by the differential-soundness
  /// harness to compare dynamically taken indirect edges against the static
  /// analyzer's resolved set.  Charges no simulated cycles; null (the
  /// default) costs one branch per indirect transfer.
  void set_indirect_branch_hook(IndirectBranchHook hook) {
    indirect_branch_hook_ = std::move(hook);
  }

  /// Optional fault-injection engine (non-owning, same lifetime discipline
  /// as the tracer/profiler hooks: Platform owns it, hook sites only consult
  /// it).  Null — the default — means every hook is one pointer compare.
  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }
  [[nodiscard]] fault::FaultEngine* faults() const { return faults_; }

  /// IDT entry for `vector` (raw read, as the exception engine sees it).
  [[nodiscard]] std::uint32_t idt_entry(std::uint8_t vector) const;
  /// Install an IDT entry (raw write; used by secure boot before the EA-MPU
  /// locks the table).
  void set_idt_entry(std::uint8_t vector, std::uint32_t handler);

  // -- snapshots ---------------------------------------------------------------
  /// Serialize / overwrite the machine's core execution state: CPU registers,
  /// cycle clock, interrupt and fault latches, halt reason, instruction
  /// counters.  Physical memory, devices, and the tracer are separate snapshot
  /// sections; firmware registrations, hooks, and obs state are wiring or
  /// host-only and deliberately excluded.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  [[nodiscard]] std::int32_t current_task_context() const;
  [[nodiscard]] bool check(std::uint32_t exec_ip, std::uint32_t addr, Access access) const;
  [[nodiscard]] bool is_mmio(std::uint32_t addr) const {
    return addr >= kMmioBase && addr < kMmioBase + kMmioSize;
  }

  /// Raw access with MMIO dispatch; returns false on bus error.
  bool raw_read32(std::uint32_t addr, std::uint32_t* out);
  bool raw_write32(std::uint32_t addr, std::uint32_t value);
  bool raw_read8(std::uint32_t addr, std::uint8_t* out);
  bool raw_write8(std::uint32_t addr, std::uint8_t value);

  void dispatch_pending();
  void execute_one();
  /// Dispatch one decoded instruction (the opcode switch).  Split out of
  /// execute_one so the heat recorder can host-time a sampled dispatch
  /// without touching the interpreter body.
  void execute_op(const isa::Instruction& instr, std::uint32_t pc);

  // Guest-side memory helpers: on violation, raise the fault and return false.
  bool guest_read32(std::uint32_t addr, std::uint32_t* out);
  bool guest_write32(std::uint32_t addr, std::uint32_t value);
  bool guest_read8(std::uint32_t addr, std::uint8_t* out);
  bool guest_write8(std::uint32_t addr, std::uint8_t value);
  bool guest_push32(std::uint32_t value);
  bool guest_pop32(std::uint32_t* out);
  bool guest_transfer(std::uint32_t target);

  void set_alu_flags_logic(std::uint32_t result);
  void set_alu_flags_addsub(std::uint64_t wide, std::uint32_t a, std::uint32_t b,
                            std::uint32_t result, bool is_sub);

  PhysicalMemory memory_;
  MmioBus bus_;
  CpuState cpu_;
  CostModel costs_;
  const AccessPolicy* policy_ = nullptr;

  std::uint64_t cycles_ = 0;
  std::uint64_t pending_ = 0;  ///< bitmask over 64 vectors; bit i = vector i
  std::uint32_t int_origin_eip_ = 0;
  std::uint8_t int_vector_ = 0;

  FaultInfo last_fault_;
  std::uint64_t fault_count_ = 0;
  bool in_fault_dispatch_ = false;
  HaltReason halt_reason_ = HaltReason::kNone;

  struct FirmwareEntry {
    std::string name;
    FirmwareHandler handler;
  };
  std::map<std::uint32_t, FirmwareEntry> firmware_;

  std::uint64_t instructions_ = 0;
  std::uint64_t interrupts_ = 0;
  std::uint64_t fw_invocations_ = 0;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<obs::SampleProfiler> profiler_;
  std::unique_ptr<obs::HeatRecorder> heat_;  ///< see enable_heat()
  fault::FaultEngine* faults_ = nullptr;  ///< non-owning; see set_fault_engine
  obs::Hub obs_;
  const LogContext* log_;  ///< never null; defaults to process_log_context()
  std::function<std::int32_t()> task_context_;
  IndirectBranchHook indirect_branch_hook_;
};

}  // namespace tytan::sim
