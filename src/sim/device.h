// MMIO device interface and bus.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "snap/snapshot.h"

namespace tytan::sim {

/// Callback a device uses to raise an interrupt line.
using IrqSink = std::function<void(std::uint8_t vector)>;

class Device {
 public:
  virtual ~Device() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::uint32_t base() const = 0;
  [[nodiscard]] virtual std::uint32_t size() const = 0;

  /// Word access at a device-local byte offset.
  virtual std::uint32_t read32(std::uint32_t offset) = 0;
  virtual void write32(std::uint32_t offset, std::uint32_t value) = 0;

  /// Advance device time to the absolute cycle count `now`.
  virtual void tick(std::uint64_t now) { (void)now; }

  /// Serialize / overwrite the device's guest-visible state for machine
  /// snapshots.  The default is stateless (devices holding only wiring or
  /// fused constants); every device with mutable registers overrides both.
  virtual void save_state(snap::Writer& w) const { (void)w; }
  virtual Status restore_state(snap::Reader& r) {
    (void)r;
    return Status::ok();
  }

  void set_irq_sink(IrqSink sink) { irq_sink_ = std::move(sink); }

 protected:
  void raise_irq(std::uint8_t vector) {
    if (irq_sink_) {
      irq_sink_(vector);
    }
  }

 private:
  IrqSink irq_sink_;
};

/// Dispatches MMIO-range accesses to registered devices.
class MmioBus {
 public:
  /// Register a device; ranges must not overlap (checked).
  void attach(std::shared_ptr<Device> device);

  /// Device covering `addr`, or nullptr.
  [[nodiscard]] Device* find(std::uint32_t addr) const;

  void tick_all(std::uint64_t now);

  [[nodiscard]] const std::vector<std::shared_ptr<Device>>& devices() const {
    return devices_;
  }

 private:
  std::vector<std::shared_ptr<Device>> devices_;
};

}  // namespace tytan::sim
