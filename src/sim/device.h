// MMIO device interface and bus.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "snap/snapshot.h"

namespace tytan::sim {

/// Callback a device uses to raise an interrupt line.
using IrqSink = std::function<void(std::uint8_t vector)>;

class Device {
 public:
  virtual ~Device() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::uint32_t base() const = 0;
  [[nodiscard]] virtual std::uint32_t size() const = 0;

  /// Word access at a device-local byte offset.
  virtual std::uint32_t read32(std::uint32_t offset) = 0;
  virtual void write32(std::uint32_t offset, std::uint32_t value) = 0;

  /// tick() cycle stamp meaning "no time-driven action pending": a device
  /// returning this from next_tick_due() is skipped by the per-instruction
  /// walk and instead has its time latched lazily (on MMIO access and
  /// before serialization).
  static constexpr std::uint64_t kNeverTicks = ~0ull;

  /// Advance device time to the absolute cycle count `now`.
  virtual void tick(std::uint64_t now) { (void)now; }

  /// A device overriding tick() must also return true here: tick_all() runs
  /// once per executed instruction, so the bus only walks devices that
  /// declared they need time (skipping a default no-op tick is invisible).
  [[nodiscard]] virtual bool wants_tick() const { return false; }

  /// Earliest future cycle at which tick() performs observable work (fires
  /// an IRQ, advances a counter), or kNeverTicks when tick() is currently a
  /// pure time latch.  The machine skips the per-instruction tick walk until
  /// the earliest due cycle across the bus.  The conservative default — 0,
  /// "always due" — keeps any wants_tick() device that does not implement
  /// this on the classic every-instruction regime.  A device that DOES skip
  /// ahead must bump the bus timing epoch (touch_timing()) from every
  /// register write or restore that changes its schedule.
  [[nodiscard]] virtual std::uint64_t next_tick_due() const { return 0; }

  /// Serialize / overwrite the device's guest-visible state for machine
  /// snapshots.  The default is stateless (devices holding only wiring or
  /// fused constants); every device with mutable registers overrides both.
  virtual void save_state(snap::Writer& w) const { (void)w; }
  virtual Status restore_state(snap::Reader& r) {
    (void)r;
    return Status::ok();
  }

  void set_irq_sink(IrqSink sink) { irq_sink_ = std::move(sink); }

  /// Wired by MmioBus::attach — bumps the bus timing epoch so the machine
  /// re-evaluates next_tick_due() after an out-of-band schedule change.
  void set_timing_listener(std::function<void()> listener) {
    timing_listener_ = std::move(listener);
  }

 protected:
  void raise_irq(std::uint8_t vector) {
    if (irq_sink_) {
      irq_sink_(vector);
    }
  }

  /// Call from any mutation that changes next_tick_due() — register writes,
  /// snapshot restores.  Harmless when unwired (device not on a bus).
  void touch_timing() {
    if (timing_listener_) {
      timing_listener_();
    }
  }

 private:
  IrqSink irq_sink_;
  std::function<void()> timing_listener_;
};

/// Dispatches MMIO-range accesses to registered devices.
class MmioBus {
 public:
  /// Register a device; ranges must not overlap (checked).
  void attach(std::shared_ptr<Device> device);

  /// Device covering `addr`, or nullptr.
  [[nodiscard]] Device* find(std::uint32_t addr) const;

  /// Advance every tick-declaring device; inline and walks only tickers_.
  /// The machine calls this at most once per instruction, and skips calls
  /// entirely while `now < next_tick_due()` and the timing epoch is stable.
  void tick_all(std::uint64_t now) {
    for (Device* device : tickers_) {
      device->tick(now);
    }
  }

  /// Earliest cycle at which any ticker has observable work, or
  /// Device::kNeverTicks.  Recompute after every tick_all() (firing moves
  /// the schedule) and on every timing-epoch change.
  [[nodiscard]] std::uint64_t next_tick_due() const {
    std::uint64_t due = Device::kNeverTicks;
    for (Device* device : tickers_) {
      due = std::min(due, device->next_tick_due());
    }
    return due;
  }

  /// Bumped whenever a device's tick schedule changes out of band (register
  /// write, snapshot restore) and on every attach.  One load on the
  /// per-instruction path buys skipping the whole tick walk between events.
  [[nodiscard]] std::uint64_t timing_epoch() const { return timing_epoch_; }

  [[nodiscard]] const std::vector<std::shared_ptr<Device>>& devices() const {
    return devices_;
  }

 private:
  std::vector<std::shared_ptr<Device>> devices_;
  // Raw pointers into devices_ (same lifetime): only the devices that
  // declared wants_tick(), so the per-instruction tick walk skips the rest.
  std::vector<Device*> tickers_;
  std::uint64_t timing_epoch_ = 1;
};

}  // namespace tytan::sim
