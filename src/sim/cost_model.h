// Cycle-cost model of the simulated platform.
//
// Guest instructions charge their ISA base cost plus memory-system costs.
// Trusted firmware (Int Mux, IPC proxy, EA-MPU driver, RTM) runs host-side
// and charges costs through the named constants below.  The constants are
// calibrated once against the paper's Siskiyou Peak measurements (Tables
// 2-7); every *trend* — linearity of relocation in the number of addresses,
// of measurement in the number of hash blocks, of slot search in the slot
// position — emerges from real loops over real data structures, only the
// per-primitive constants are calibrated.  See DESIGN.md §5.
#pragma once

#include <cstdint>

namespace tytan::sim {

struct CostModel {
  // -- memory system ---------------------------------------------------------
  std::uint64_t mem_access = 1;   ///< extra cycles per data memory access
  std::uint64_t mmio_access = 2;  ///< extra cycles per MMIO access
  std::uint64_t branch_taken = 2; ///< extra cycles for a taken branch
  std::uint64_t int_dispatch = 14; ///< exception engine: latch, frame push, vector

  // -- Int Mux (Table 2: store 38 + wipe 16 + branch 41 = 95) ---------------
  std::uint64_t intmux_store_reg = 5;    ///< per saved register (7 GPRs)
  std::uint64_t intmux_store_shadow = 3; ///< save SP to the shadow TCB
  std::uint64_t intmux_wipe_reg = 2;     ///< per wiped register (7 GPRs + flags)
  std::uint64_t intmux_branch = 41;      ///< locate handler + branch
  std::uint64_t ctx_save_normal = 38;    ///< unmodified-FreeRTOS handler save cost

  // -- secure resume (Table 3: branch 106 + restore 254 = 384) --------------
  std::uint64_t resume_branch = 106;     ///< scheduler -> Int Mux -> entry point
  std::uint64_t resume_entry_check = 40; ///< entry-routine reason dispatch
  std::uint64_t resume_pop_reg = 26;     ///< per restored register (7 GPRs)
  std::uint64_t resume_iret = 32;        ///< final iret (EIP + EFLAGS)
  std::uint64_t resume_normal = 254;     ///< FreeRTOS context restore (baseline)

  // -- EA-MPU driver (Table 6: find + policy 824 + write 225) ---------------
  std::uint64_t eampu_probe_slot = 19;   ///< per examined slot during search
  std::uint64_t eampu_find_base = 57;    ///< search setup
  std::uint64_t eampu_policy_per_slot = 44; ///< overlap check against one slot
  std::uint64_t eampu_policy_base = 32;  ///< policy-check setup
  std::uint64_t eampu_write_rule = 225;  ///< commit rule to the EA-MPU
  std::uint64_t eampu_clear_rule = 96;   ///< clear a slot on unload

  // -- loader / relocation (Table 5: ~37 + n*660) ----------------------------
  std::uint64_t reloc_base = 37;       ///< ELF/TBF header walk, zero relocations
  std::uint64_t reloc_per_addr = 660;  ///< fetch record, compute, patch one site
  std::uint64_t load_per_word = 190;   ///< allocate + copy one image word into place
  std::uint64_t stack_prep = 900;      ///< initial stack frame preparation
  std::uint64_t alloc_base = 2600;     ///< allocator bookkeeping

  // -- RTM measurement (Table 7: T ~= 4300 + b*3900 + 100 + a*500) ----------
  std::uint64_t rtm_setup = 4300;       ///< hash init + registry bookkeeping
  std::uint64_t rtm_hash_block = 3900;  ///< SHA-1 compression of one 64 B block
  std::uint64_t rtm_finalize = 100;     ///< digest finalization
  std::uint64_t rtm_per_addr = 500;     ///< revert + re-apply one relocation
  std::uint64_t rtm_reloc_walk = 110;   ///< relocation-table walk (paper's ~114 floor)

  // -- IPC proxy (paper text: proxy 1208 + receiver entry 116) --------------
  std::uint64_t ipc_proxy_base = 892;    ///< origin lookup, validation
  std::uint64_t ipc_registry_probe = 26; ///< per registry entry examined
  std::uint64_t ipc_copy_word = 22;      ///< copy one message word + sender id word
  std::uint64_t ipc_receiver_entry = 116;///< receiver entry-routine processing
  std::uint64_t ipc_shm_setup = 410;     ///< shared-memory grant bookkeeping

  // -- misc trusted services --------------------------------------------------
  std::uint64_t syscall_base = 60;      ///< OS syscall dispatch
  std::uint64_t sched_pick = 85;        ///< scheduler: pick highest-priority ready task
  std::uint64_t sched_tick = 120;       ///< tick bookkeeping (delays, timers)
  std::uint64_t attest_mac_block = 3950;///< HMAC block inside Remote Attest
  std::uint64_t storage_crypt_block = 640; ///< XTEA-CTR block inside Secure Storage
};

}  // namespace tytan::sim
