// Flat physical memory of the simulated platform.
//
// Raw accessors perform *no* policy checks and charge *no* cycles; they model
// what the silicon stores.  All guest and firmware accesses must go through
// Machine, which layers the EA-MPU and the cycle clock on top.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "sim/memory_map.h"

namespace tytan::sim {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint32_t size = kMemSize)
      : bytes_(size, 0), dirty_lo_(size), dirty_hi_(0) {}

  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }

  [[nodiscard]] bool in_bounds(std::uint32_t addr, std::uint32_t len) const {
    return addr < size() && len <= size() - addr;
  }

  [[nodiscard]] std::uint8_t read8(std::uint32_t addr) const { return bytes_.at(addr); }
  [[nodiscard]] std::uint32_t read32(std::uint32_t addr) const;
  void write8(std::uint32_t addr, std::uint8_t v) {
    bytes_.at(addr) = v;
    touch(addr, 1);
  }
  void write32(std::uint32_t addr, std::uint32_t v);

  /// Bulk copy in/out (loader, RTM, tests).
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data);
  void read_block(std::uint32_t addr, std::span<std::uint8_t> out) const;
  void fill(std::uint32_t addr, std::uint32_t len, std::uint8_t value);

  /// Read-only view of a region (bounds-checked).
  [[nodiscard]] std::span<const std::uint8_t> view(std::uint32_t addr, std::uint32_t len) const;

  // -- dirty-range tracking (host-side; snapshot restore fast path) ----------
  // Every write widens [dirty_lo, dirty_hi).  Platform::restore marks memory
  // clean after overwriting it from a snapshot; re-restoring the *same*
  // snapshot then only rewrites the dirtied range — the fork-based fuzzing
  // hot path, where most inputs are rejected before touching guest memory at
  // all.  Two compares per write; charges no simulated cycles.
  [[nodiscard]] std::uint32_t dirty_lo() const { return dirty_lo_; }
  [[nodiscard]] std::uint32_t dirty_hi() const { return dirty_hi_; }
  [[nodiscard]] bool dirty() const { return dirty_hi_ > dirty_lo_; }
  void mark_clean() {
    dirty_lo_ = size();
    dirty_hi_ = 0;
  }

 private:
  void touch(std::uint32_t addr, std::uint32_t len) {
    if (len == 0) {
      return;
    }
    if (addr < dirty_lo_) {
      dirty_lo_ = addr;
    }
    if (addr + len > dirty_hi_) {
      dirty_hi_ = addr + len;
    }
  }

  std::vector<std::uint8_t> bytes_;
  std::uint32_t dirty_lo_;
  std::uint32_t dirty_hi_;
};

}  // namespace tytan::sim
