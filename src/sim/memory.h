// Flat physical memory of the simulated platform.
//
// Raw accessors perform *no* policy checks and charge *no* cycles; they model
// what the silicon stores.  All guest and firmware accesses must go through
// Machine, which layers the EA-MPU and the cycle clock on top.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "sim/memory_map.h"

namespace tytan::sim {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint32_t size = kMemSize) : bytes_(size, 0) {}

  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }

  [[nodiscard]] bool in_bounds(std::uint32_t addr, std::uint32_t len) const {
    return addr < size() && len <= size() - addr;
  }

  [[nodiscard]] std::uint8_t read8(std::uint32_t addr) const { return bytes_.at(addr); }
  [[nodiscard]] std::uint32_t read32(std::uint32_t addr) const;
  void write8(std::uint32_t addr, std::uint8_t v) { bytes_.at(addr) = v; }
  void write32(std::uint32_t addr, std::uint32_t v);

  /// Bulk copy in/out (loader, RTM, tests).
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data);
  void read_block(std::uint32_t addr, std::span<std::uint8_t> out) const;
  void fill(std::uint32_t addr, std::uint32_t len, std::uint8_t value);

  /// Read-only view of a region (bounds-checked).
  [[nodiscard]] std::span<const std::uint8_t> view(std::uint32_t addr, std::uint32_t len) const;

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace tytan::sim
