// Flat physical memory of the simulated platform.
//
// Raw accessors perform *no* policy checks and charge *no* cycles; they model
// what the silicon stores.  All guest and firmware accesses must go through
// Machine, which layers the EA-MPU and the cycle clock on top.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "sim/memory_map.h"

namespace tytan::sim {

/// Observer of writes landing inside a watched address range (the decode
/// cache registers itself to catch self-modifying code, loader copies, and
/// snapshot restores without instrumenting every caller).
class WriteWatcher {
 public:
  virtual ~WriteWatcher() = default;
  /// A write of `len` bytes at `addr` intersected the watched range.
  virtual void on_watched_write(std::uint32_t addr, std::uint32_t len) = 0;
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint32_t size = kMemSize)
      : bytes_(size, 0), dirty_lo_(size), dirty_hi_(0) {}

  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }

  [[nodiscard]] bool in_bounds(std::uint32_t addr, std::uint32_t len) const {
    return addr < size() && len <= size() - addr;
  }

  [[nodiscard]] std::uint8_t read8(std::uint32_t addr) const { return bytes_.at(addr); }
  [[nodiscard]] std::uint32_t read32(std::uint32_t addr) const;
  void write8(std::uint32_t addr, std::uint8_t v) {
    bytes_.at(addr) = v;
    touch(addr, 1);
    notify_watch(addr, 1);
  }
  void write32(std::uint32_t addr, std::uint32_t v);

  /// Bulk copy in/out (loader, RTM, tests).
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data);
  void read_block(std::uint32_t addr, std::span<std::uint8_t> out) const;
  void fill(std::uint32_t addr, std::uint32_t len, std::uint8_t value);

  /// Read-only view of a region (bounds-checked).
  [[nodiscard]] std::span<const std::uint8_t> view(std::uint32_t addr, std::uint32_t len) const;

  // -- dirty-range tracking (host-side; snapshot restore fast path) ----------
  // Every write widens [dirty_lo, dirty_hi).  Platform::restore marks memory
  // clean after overwriting it from a snapshot; re-restoring the *same*
  // snapshot then only rewrites the dirtied range — the fork-based fuzzing
  // hot path, where most inputs are rejected before touching guest memory at
  // all.  Two compares per write; charges no simulated cycles.
  [[nodiscard]] std::uint32_t dirty_lo() const { return dirty_lo_; }
  [[nodiscard]] std::uint32_t dirty_hi() const { return dirty_hi_; }
  [[nodiscard]] bool dirty() const { return dirty_hi_ > dirty_lo_; }
  void mark_clean() {
    dirty_lo_ = size();
    dirty_hi_ = 0;
  }

  // -- write watch (host-side; decode-cache invalidation) --------------------
  // At most one watcher; [lo, hi) is the union of ranges it cares about.  An
  // empty range (hi <= lo, the default) keeps every write at two compares —
  // the same budget as dirty tracking.  Like dirty tracking this is host
  // bookkeeping: it charges no simulated cycles and is not snapshot state.
  void set_write_watch(WriteWatcher* watcher, std::uint32_t lo, std::uint32_t hi) {
    watcher_ = watcher;
    watch_lo_ = lo;
    watch_hi_ = hi;
  }
  void clear_write_watch() { set_write_watch(nullptr, 0, 0); }

 private:
  void notify_watch(std::uint32_t addr, std::uint32_t len) {
    if (watcher_ != nullptr && addr < watch_hi_ && addr + len > watch_lo_) {
      watcher_->on_watched_write(addr, len);
    }
  }

  void touch(std::uint32_t addr, std::uint32_t len) {
    if (len == 0) {
      return;
    }
    if (addr < dirty_lo_) {
      dirty_lo_ = addr;
    }
    if (addr + len > dirty_hi_) {
      dirty_hi_ = addr + len;
    }
  }

  std::vector<std::uint8_t> bytes_;
  std::uint32_t dirty_lo_;
  std::uint32_t dirty_hi_;
  WriteWatcher* watcher_ = nullptr;
  std::uint32_t watch_lo_ = 0;
  std::uint32_t watch_hi_ = 0;
};

}  // namespace tytan::sim
