#include "sim/tracer.h"

#include <sstream>

#include "isa/disasm.h"

namespace tytan::sim {

std::string Tracer::format() const {
  std::ostringstream os;
  for (const Entry& entry : entries_) {
    os << "cycle " << entry.cycle << "  0x" << std::hex << entry.eip << std::dec << "  ";
    if (entry.task >= 0) {
      os << "[task " << entry.task << "] ";
    }
    if (!entry.note.empty()) {
      os << "[firmware: " << entry.note << "]";
    } else {
      os << isa::disassemble_word(entry.word, entry.eip);
      if (entry.verdict == kVerdictDenied) {
        os << "  <exec denied>";
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace tytan::sim
