// Access-policy interface the machine consults on every fetch, load, store,
// and control transfer.  The EA-MPU (src/hw) implements it; a null policy
// means "allow everything" (pre-secure-boot state).
#pragma once

#include <cstdint>

namespace tytan::sim {

enum class Access : std::uint8_t { kRead, kWrite, kExecute };

inline const char* access_name(Access a) {
  switch (a) {
    case Access::kRead: return "read";
    case Access::kWrite: return "write";
    case Access::kExecute: return "execute";
  }
  return "?";
}

/// classify() outcome codes.  Non-negative values are policy-specific rule
/// indices (the EA-MPU returns the granting slot); the negative codes name
/// every non-slot outcome.  The execution observatory (obs/heat.h) buckets
/// check counters by these values — its bucket table mirrors this list.
inline constexpr int kCheckDenied = -1;        ///< access would be refused
inline constexpr int kCheckUnprotected = -2;   ///< address covered by no rule
inline constexpr int kCheckImplicitSelf = -3;  ///< region's own code touched it
inline constexpr int kCheckOsWindow = -4;      ///< os_accessible + OS kernel IP
inline constexpr int kCheckUnclassified = -5;  ///< policy has no classify()
inline constexpr int kCheckNoPolicy = -6;      ///< machine runs with no policy

class AccessPolicy {
 public:
  virtual ~AccessPolicy() = default;

  /// Monotonic configuration-change counter.  Implementations bump it on any
  /// mutation that can change an allows()/allows_transfer()/classify()
  /// verdict; consumers that memoize verdicts (the decode cache,
  /// sim/decode_cache.h) compare epochs instead of subscribing to callbacks.
  /// Non-virtual and inline — the comparison sits on the per-instruction
  /// fast path.  Starts at 1 so "no policy observed yet" (0) never matches.
  [[nodiscard]] std::uint64_t config_epoch() const { return config_epoch_; }

  /// May code at `exec_ip` perform `access` on `addr`?
  [[nodiscard]] virtual bool allows(std::uint32_t exec_ip, std::uint32_t addr,
                                    Access access) const = 0;

  /// May control transfer from `from_ip` to `to_ip`?  This is where dedicated
  /// entry points are enforced (paper §3, EA-MPU property 2).
  [[nodiscard]] virtual bool allows_transfer(std::uint32_t from_ip,
                                             std::uint32_t to_ip) const = 0;

  /// Attribution twin of allows(): *which* rule decided the access — a
  /// non-negative rule index or one of the kCheck* codes above.  Purely
  /// observational: the machine consults it only while the execution
  /// observatory is recording, and correctness never depends on it (the
  /// verdict still comes from allows()).  Implementations must agree with
  /// allows(): classify() == kCheckDenied iff allows() is false.
  [[nodiscard]] virtual int classify(std::uint32_t exec_ip, std::uint32_t addr,
                                     Access access) const {
    (void)exec_ip;
    (void)addr;
    (void)access;
    return kCheckUnclassified;
  }

 protected:
  void bump_config_epoch() { ++config_epoch_; }

 private:
  std::uint64_t config_epoch_ = 1;
};

}  // namespace tytan::sim
