// Access-policy interface the machine consults on every fetch, load, store,
// and control transfer.  The EA-MPU (src/hw) implements it; a null policy
// means "allow everything" (pre-secure-boot state).
#pragma once

#include <cstdint>

namespace tytan::sim {

enum class Access : std::uint8_t { kRead, kWrite, kExecute };

inline const char* access_name(Access a) {
  switch (a) {
    case Access::kRead: return "read";
    case Access::kWrite: return "write";
    case Access::kExecute: return "execute";
  }
  return "?";
}

class AccessPolicy {
 public:
  virtual ~AccessPolicy() = default;

  /// May code at `exec_ip` perform `access` on `addr`?
  [[nodiscard]] virtual bool allows(std::uint32_t exec_ip, std::uint32_t addr,
                                    Access access) const = 0;

  /// May control transfer from `from_ip` to `to_ip`?  This is where dedicated
  /// entry points are enforced (paper §3, EA-MPU property 2).
  [[nodiscard]] virtual bool allows_transfer(std::uint32_t from_ip,
                                             std::uint32_t to_ip) const = 0;
};

}  // namespace tytan::sim
