#include "sim/machine.h"

#include <bit>
#include <chrono>
#include <sstream>

#include "common/log.h"
#include "isa/disasm.h"

namespace tytan::sim {

using isa::Opcode;

const char* fault_name(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kBadOpcode: return "bad-opcode";
    case FaultType::kBusError: return "bus-error";
    case FaultType::kMpuData: return "mpu-data";
    case FaultType::kMpuFetch: return "mpu-fetch";
    case FaultType::kMpuTransfer: return "mpu-transfer";
    case FaultType::kStackFault: return "stack-fault";
    case FaultType::kNoHandler: return "no-handler";
    case FaultType::kPrivileged: return "privileged";
  }
  return "?";
}

std::string FaultInfo::to_string() const {
  std::ostringstream os;
  os << fault_name(type) << " at eip=0x" << std::hex << eip << " addr=0x" << addr << " ("
     << access_name(access) << ")";
  return os.str();
}

Machine::Machine(CostModel costs, const LogContext* log)
    : costs_(costs), log_(log != nullptr ? log : &process_log_context()) {
  obs_.set_clock(&cycles_);
}

std::int32_t Machine::current_task_context() const {
  return task_context_ ? task_context_() : -1;
}

// ---------------------------------------------------------------------------
// Interrupts and faults
// ---------------------------------------------------------------------------

void Machine::raise_irq(std::uint8_t vector) {
  TYTAN_CHECK(vector < 64, "IRQ vector out of range");
  pending_ |= (1ull << vector);
}

std::uint32_t Machine::idt_entry(std::uint8_t vector) const {
  return memory_.read32(kIdtBase + 4u * vector);
}

void Machine::set_idt_entry(std::uint8_t vector, std::uint32_t handler) {
  memory_.write32(kIdtBase + 4u * vector, handler);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

void Machine::save_state(snap::Writer& w) const {
  for (const std::uint32_t reg : cpu_.regs) {
    w.u32(reg);
  }
  w.u32(cpu_.eip);
  w.u32(cpu_.eflags);
  w.u64(cycles_);
  w.u64(pending_);
  w.u32(int_origin_eip_);
  w.u8(int_vector_);
  w.u8(static_cast<std::uint8_t>(last_fault_.type));
  w.u32(last_fault_.eip);
  w.u32(last_fault_.addr);
  w.u8(static_cast<std::uint8_t>(last_fault_.access));
  w.u64(fault_count_);
  w.boolean(in_fault_dispatch_);
  w.u8(static_cast<std::uint8_t>(halt_reason_));
  w.u64(instructions_);
  w.u64(interrupts_);
  w.u64(fw_invocations_);
}

Status Machine::restore_state(snap::Reader& r) {
  for (std::uint32_t& reg : cpu_.regs) {
    reg = r.u32();
  }
  cpu_.eip = r.u32();
  cpu_.eflags = r.u32();
  cycles_ = r.u64();
  pending_ = r.u64();
  int_origin_eip_ = r.u32();
  int_vector_ = r.u8();
  last_fault_.type = static_cast<FaultType>(r.u8());
  last_fault_.eip = r.u32();
  last_fault_.addr = r.u32();
  last_fault_.access = static_cast<Access>(r.u8());
  fault_count_ = r.u64();
  in_fault_dispatch_ = r.boolean();
  halt_reason_ = static_cast<HaltReason>(r.u8());
  instructions_ = r.u64();
  interrupts_ = r.u64();
  fw_invocations_ = r.u64();
  return Status::ok();
}

void Machine::dispatch_interrupt(std::uint8_t vector, std::uint32_t origin_eip,
                                 std::uint32_t return_eip) {
  charge(costs_.int_dispatch);
  const std::uint32_t handler = idt_entry(vector);
  if (handler == 0) {
    raise_fault({FaultType::kNoHandler, origin_eip, vector, Access::kExecute});
    return;
  }
  // Hardware latches: the IPC proxy authenticates the sender from these.
  int_origin_eip_ = origin_eip;
  int_vector_ = vector;
  // Exception engine pushes EFLAGS then EIP onto the *current* stack (paper
  // §4: "The instruction pointer (EIP) and flags register (EFLAGS) are saved
  // by the exception engine to the stack of the interrupted task").  The
  // pushes run under the interrupted code's identity, so a task whose SP
  // points outside its own memory faults here instead of corrupting others.
  std::uint32_t sp = cpu_.sp();
  sp -= 4;
  if (!check(origin_eip, sp, Access::kWrite) || !raw_write32(sp, cpu_.eflags)) {
    raise_fault({FaultType::kStackFault, origin_eip, sp, Access::kWrite});
    return;
  }
  sp -= 4;
  if (!check(origin_eip, sp, Access::kWrite) || !raw_write32(sp, return_eip)) {
    raise_fault({FaultType::kStackFault, origin_eip, sp, Access::kWrite});
    return;
  }
  cpu_.set_sp(sp);
  cpu_.set_flag(isa::kFlagIF, false);
  cpu_.eip = handler;
  ++interrupts_;
  obs_.emit(obs::EventKind::kIrqEnter, current_task_context(), vector, origin_eip);
}

void Machine::record_fault(const FaultInfo& fault) {
  last_fault_ = fault;
  ++fault_count_;
  obs_.emit(obs::EventKind::kFault, current_task_context(),
            static_cast<std::uint32_t>(fault.type), fault.eip);
}

void Machine::raise_fault(const FaultInfo& fault) {
  last_fault_ = fault;
  ++fault_count_;
  obs_.emit(obs::EventKind::kFault, current_task_context(),
            static_cast<std::uint32_t>(fault.type), fault.eip);
  TYTAN_CLOG(log(), LogLevel::kDebug, "machine") << "fault: " << fault.to_string();
  if (in_fault_dispatch_) {
    halt(HaltReason::kDoubleFault);
    in_fault_dispatch_ = false;
    return;
  }
  in_fault_dispatch_ = true;
  const std::uint32_t handler = idt_entry(kVecFault);
  if (handler == 0) {
    halt(HaltReason::kDoubleFault);
    in_fault_dispatch_ = false;
    return;
  }
  // Fault dispatch does not touch the (possibly bad) guest stack; the fault
  // handler reads the latched FaultInfo through last_fault().
  int_origin_eip_ = fault.eip;
  int_vector_ = kVecFault;
  cpu_.set_flag(isa::kFlagIF, false);
  cpu_.eip = handler;
  in_fault_dispatch_ = false;
}

// ---------------------------------------------------------------------------
// Firmware registry
// ---------------------------------------------------------------------------

void Machine::register_firmware(std::uint32_t addr, std::string name,
                                FirmwareHandler handler) {
  TYTAN_CHECK(!firmware_.contains(addr), "firmware address already registered");
  if (profiler_ != nullptr) {
    profiler_->add_global_symbol(addr, name);
  }
  firmware_[addr] = {std::move(name), std::move(handler)};
}

void Machine::enable_profiler(std::uint64_t interval_cycles, std::size_t capacity) {
  if (interval_cycles == 0) {
    profiler_ = nullptr;
    return;
  }
  profiler_ = std::make_unique<obs::SampleProfiler>(interval_cycles, capacity);
  for (const auto& [addr, entry] : firmware_) {
    profiler_->add_global_symbol(addr, entry.name);
  }
}

void Machine::enable_heat(bool time_dispatch) {
  // The profile lives in the obs metrics registry so fleet aggregation folds
  // it with the same merge_from discipline as every other instrument; the
  // recorder is the machine-owned hot-path state bound to it.
  heat_ = std::make_unique<obs::HeatRecorder>(&obs_.metrics().heat_profile("machine"),
                                              time_dispatch);
}

std::string_view Machine::firmware_name(std::uint32_t addr) const {
  const auto it = firmware_.find(addr);
  return it == firmware_.end() ? std::string_view{} : std::string_view{it->second.name};
}

// ---------------------------------------------------------------------------
// Memory paths
// ---------------------------------------------------------------------------

bool Machine::check(std::uint32_t exec_ip, std::uint32_t addr, Access access) const {
  if (heat_ == nullptr) {
    return policy_ == nullptr || policy_->allows(exec_ip, addr, access);
  }
  // Observatory enabled: also ask the policy *which* rule decided.  The
  // verdict still comes from allows() — classify() is attribution only, so a
  // policy without a classify() override stays correct (its checks land in
  // the "unclassified" bucket).
  const bool allowed = policy_ == nullptr || policy_->allows(exec_ip, addr, access);
  heat_->count_check(static_cast<int>(access),
                     policy_ == nullptr ? kCheckNoPolicy
                                        : policy_->classify(exec_ip, addr, access));
  return allowed;
}

bool Machine::raw_read32(std::uint32_t addr, std::uint32_t* out) {
  if (is_mmio(addr)) {
    if (addr % 4 != 0) {
      return false;
    }
    Device* device = bus_.find(addr);
    if (device == nullptr) {
      return false;
    }
    charge(costs_.mmio_access);
    *out = device->read32(addr - device->base());
    return true;
  }
  if (!memory_.in_bounds(addr, 4)) {
    return false;
  }
  *out = memory_.read32(addr);
  return true;
}

bool Machine::raw_write32(std::uint32_t addr, std::uint32_t value) {
  if (is_mmio(addr)) {
    if (addr % 4 != 0) {
      return false;
    }
    Device* device = bus_.find(addr);
    if (device == nullptr) {
      return false;
    }
    charge(costs_.mmio_access);
    device->write32(addr - device->base(), value);
    return true;
  }
  if (!memory_.in_bounds(addr, 4)) {
    return false;
  }
  memory_.write32(addr, value);
  return true;
}

bool Machine::raw_read8(std::uint32_t addr, std::uint8_t* out) {
  if (is_mmio(addr)) {
    std::uint32_t word = 0;
    if (!raw_read32(addr & ~3u, &word)) {
      return false;
    }
    *out = static_cast<std::uint8_t>(word >> (8 * (addr % 4)));
    return true;
  }
  if (!memory_.in_bounds(addr, 1)) {
    return false;
  }
  *out = memory_.read8(addr);
  return true;
}

bool Machine::raw_write8(std::uint32_t addr, std::uint8_t value) {
  if (is_mmio(addr)) {
    // Byte writes to MMIO write the byte into lane 0 (devices are word-based).
    return raw_write32(addr & ~3u, value);
  }
  if (!memory_.in_bounds(addr, 1)) {
    return false;
  }
  memory_.write8(addr, value);
  return true;
}

Result<std::uint32_t> Machine::fw_read32(std::uint32_t exec_ip, std::uint32_t addr) {
  if (!check(exec_ip, addr, Access::kRead)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware read");
  }
  std::uint32_t value = 0;
  if (!raw_read32(addr, &value)) {
    return make_error(Err::kOutOfRange, "firmware read bus error");
  }
  return value;
}

Status Machine::fw_write32(std::uint32_t exec_ip, std::uint32_t addr, std::uint32_t value) {
  if (!check(exec_ip, addr, Access::kWrite)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware write");
  }
  if (!raw_write32(addr, value)) {
    return make_error(Err::kOutOfRange, "firmware write bus error");
  }
  return Status::ok();
}

Result<std::uint8_t> Machine::fw_read8(std::uint32_t exec_ip, std::uint32_t addr) {
  if (!check(exec_ip, addr, Access::kRead)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware read");
  }
  std::uint8_t value = 0;
  if (!raw_read8(addr, &value)) {
    return make_error(Err::kOutOfRange, "firmware read bus error");
  }
  return value;
}

Status Machine::fw_write8(std::uint32_t exec_ip, std::uint32_t addr, std::uint8_t value) {
  if (!check(exec_ip, addr, Access::kWrite)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware write");
  }
  if (!raw_write8(addr, value)) {
    return make_error(Err::kOutOfRange, "firmware write bus error");
  }
  return Status::ok();
}

bool Machine::guest_read32(std::uint32_t addr, std::uint32_t* out) {
  if (!check(cpu_.eip, addr, Access::kRead)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kRead});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_read32(addr, out)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kRead});
    return false;
  }
  return true;
}

bool Machine::guest_write32(std::uint32_t addr, std::uint32_t value) {
  if (!check(cpu_.eip, addr, Access::kWrite)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_write32(addr, value)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  return true;
}

bool Machine::guest_read8(std::uint32_t addr, std::uint8_t* out) {
  if (!check(cpu_.eip, addr, Access::kRead)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kRead});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_read8(addr, out)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kRead});
    return false;
  }
  return true;
}

bool Machine::guest_write8(std::uint32_t addr, std::uint8_t value) {
  if (!check(cpu_.eip, addr, Access::kWrite)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_write8(addr, value)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  return true;
}

bool Machine::guest_push32(std::uint32_t value) {
  const std::uint32_t sp = cpu_.sp() - 4;
  if (!guest_write32(sp, value)) {
    return false;
  }
  cpu_.set_sp(sp);
  return true;
}

bool Machine::guest_pop32(std::uint32_t* out) {
  if (!guest_read32(cpu_.sp(), out)) {
    return false;
  }
  cpu_.set_sp(cpu_.sp() + 4);
  return true;
}

bool Machine::guest_transfer(std::uint32_t target) {
  if (policy_ != nullptr && !policy_->allows_transfer(cpu_.eip, target)) {
    raise_fault({FaultType::kMpuTransfer, cpu_.eip, target, Access::kExecute});
    return false;
  }
  charge(costs_.branch_taken);
  cpu_.eip = target;
  return true;
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

void Machine::set_alu_flags_logic(std::uint32_t result) {
  cpu_.set_flag(isa::kFlagZ, result == 0);
  cpu_.set_flag(isa::kFlagN, (result >> 31) != 0);
}

void Machine::set_alu_flags_addsub(std::uint64_t wide, std::uint32_t a, std::uint32_t b,
                                   std::uint32_t result, bool is_sub) {
  cpu_.set_flag(isa::kFlagZ, result == 0);
  cpu_.set_flag(isa::kFlagN, (result >> 31) != 0);
  cpu_.set_flag(isa::kFlagC, (wide >> 32) != 0);
  const bool sa = (a >> 31) != 0;
  const bool sb = (b >> 31) != 0;
  const bool sr = (result >> 31) != 0;
  const bool overflow = is_sub ? (sa != sb && sr != sa) : (sa == sb && sr != sa);
  cpu_.set_flag(isa::kFlagV, overflow);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

StepOutcome Machine::step() {
  if (halted()) {
    return StepOutcome::kHalted;
  }
  // Sampling reads the clock and EIP only — never charges a cycle, so the
  // profiler-on run is bit-identical to the profiler-off run.
  if (profiler_ != nullptr && profiler_->due(cycles_)) {
    profiler_->take(cycles_, cpu_.eip, current_task_context());
  }
  bus_.tick_all(cycles_);
  if (pending_ != 0 && cpu_.flag(isa::kFlagIF)) {
    dispatch_pending();
    return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
  }
  const auto fw = firmware_.find(cpu_.eip);
  if (fw != firmware_.end()) {
    ++fw_invocations_;
    if (tracer_ != nullptr) {
      tracer_->record(cycles_, cpu_.eip, 0, fw->second.name, current_task_context(),
                      Tracer::kVerdictNone);
    }
    fw->second.handler(*this);
    return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
  }
  if (tracer_ != nullptr && memory_.in_bounds(cpu_.eip, 4) && !is_mmio(cpu_.eip)) {
    const int verdict = policy_ == nullptr ? Tracer::kVerdictNone
                        : policy_->allows(cpu_.eip, cpu_.eip, Access::kExecute)
                            ? Tracer::kVerdictAllowed
                            : Tracer::kVerdictDenied;
    tracer_->record(cycles_, cpu_.eip, memory_.read32(cpu_.eip), {},
                    current_task_context(), verdict);
  }
  execute_one();
  return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
}

void Machine::dispatch_pending() {
  const unsigned vector = static_cast<unsigned>(std::countr_zero(pending_));
  pending_ &= pending_ - 1;  // clear lowest set bit
  dispatch_interrupt(static_cast<std::uint8_t>(vector), cpu_.eip, cpu_.eip);
}

HaltReason Machine::run(std::uint64_t cycle_limit) {
  while (!halted() && cycles_ < cycle_limit) {
    step();
  }
  return halted() ? halt_reason_ : HaltReason::kCycleLimit;
}

void Machine::execute_one() {
  const std::uint32_t pc = cpu_.eip;
  if (!check(pc, pc, Access::kExecute)) {
    raise_fault({FaultType::kMpuFetch, pc, pc, Access::kExecute});
    return;
  }
  if (is_mmio(pc) || !memory_.in_bounds(pc, 4)) {
    raise_fault({FaultType::kBusError, pc, pc, Access::kExecute});
    return;
  }
  const std::uint32_t word = memory_.read32(pc);
  const auto decoded = isa::decode(word);
  if (!decoded) {
    raise_fault({FaultType::kBadOpcode, pc, pc, Access::kExecute});
    return;
  }
  const isa::Instruction instr = *decoded;
  charge(isa::base_cycles(instr.opcode));
  ++instructions_;

  if (heat_ == nullptr) {  // hot path: observatory off costs one null check
    execute_op(instr, pc);
    return;
  }
  if (heat_->on_instruction(pc, static_cast<std::uint8_t>(instr.opcode))) {
    // Sampled dispatch: attribute host nanoseconds to this opcode.  Host
    // clocks never feed back into simulated state, so cycle counts stay
    // bit-identical with the observatory on or off.
    const auto t0 = std::chrono::steady_clock::now();
    execute_op(instr, pc);
    const auto t1 = std::chrono::steady_clock::now();
    heat_->attribute(
        static_cast<std::uint8_t>(instr.opcode),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  } else {
    execute_op(instr, pc);
  }
}

void Machine::execute_op(const isa::Instruction& instr, std::uint32_t pc) {
  auto& regs = cpu_.regs;
  const std::uint32_t next = pc + isa::kInstrSize;
  cpu_.eip = next;  // default; branches overwrite below

  auto branch_if = [&](bool taken) {
    if (taken) {
      // Relative branches within the running code cannot violate entry
      // points only when staying in-region; still check the policy so a
      // crafted displacement into another region faults.
      const std::uint32_t target =
          static_cast<std::uint32_t>(static_cast<std::int64_t>(next) + instr.simm());
      cpu_.eip = pc;  // transfer check sees the branching instruction
      if (guest_transfer(target)) {
        return;
      }
    }
  };

  switch (instr.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kMov:
      regs[instr.rd] = regs[instr.ra];
      break;
    case Opcode::kMovi:
      regs[instr.rd] = static_cast<std::uint32_t>(instr.simm());
      break;
    case Opcode::kMoviu:
      regs[instr.rd] = instr.imm;
      break;
    case Opcode::kMovhi:
      regs[instr.rd] = (regs[instr.rd] & 0xFFFFu) | (static_cast<std::uint32_t>(instr.imm) << 16);
      break;
    case Opcode::kAdd:
    case Opcode::kAddi: {
      const std::uint32_t a = regs[instr.rd];
      const std::uint32_t b = instr.opcode == Opcode::kAdd
                                  ? regs[instr.ra]
                                  : static_cast<std::uint32_t>(instr.simm());
      const std::uint64_t wide = static_cast<std::uint64_t>(a) + b;
      const auto result = static_cast<std::uint32_t>(wide);
      set_alu_flags_addsub(wide, a, b, result, /*is_sub=*/false);
      regs[instr.rd] = result;
      break;
    }
    case Opcode::kSub:
    case Opcode::kSubi:
    case Opcode::kCmp:
    case Opcode::kCmpi: {
      const std::uint32_t a = regs[instr.rd];
      const std::uint32_t b =
          (instr.opcode == Opcode::kSub || instr.opcode == Opcode::kCmp)
              ? regs[instr.ra]
              : static_cast<std::uint32_t>(instr.simm());
      const std::uint64_t wide =
          static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b);
      const auto result = static_cast<std::uint32_t>(wide);
      set_alu_flags_addsub(wide, a, b, result, /*is_sub=*/true);
      if (instr.opcode == Opcode::kSub || instr.opcode == Opcode::kSubi) {
        regs[instr.rd] = result;
      }
      break;
    }
    case Opcode::kAnd:
      regs[instr.rd] &= regs[instr.ra];
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kAndi:
      regs[instr.rd] &= instr.imm;
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kOr:
      regs[instr.rd] |= regs[instr.ra];
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kOri:
      regs[instr.rd] |= instr.imm;
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kXor:
      regs[instr.rd] ^= regs[instr.ra];
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kShl:
      regs[instr.rd] <<= (regs[instr.ra] & 31u);
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kShli:
      regs[instr.rd] <<= (instr.imm & 31u);
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kShr:
      regs[instr.rd] >>= (regs[instr.ra] & 31u);
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kShri:
      regs[instr.rd] >>= (instr.imm & 31u);
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kMul:
      regs[instr.rd] *= regs[instr.ra];
      set_alu_flags_logic(regs[instr.rd]);
      break;
    case Opcode::kLdw: {
      std::uint32_t value = 0;
      if (guest_read32(regs[instr.ra] + static_cast<std::uint32_t>(instr.simm()), &value)) {
        regs[instr.rd] = value;
      } else {
        cpu_.eip = (cpu_.eip == next) ? pc : cpu_.eip;
      }
      break;
    }
    case Opcode::kStw:
      if (!guest_write32(regs[instr.ra] + static_cast<std::uint32_t>(instr.simm()),
                         regs[instr.rd])) {
        cpu_.eip = (cpu_.eip == next) ? pc : cpu_.eip;
      }
      break;
    case Opcode::kLdb: {
      std::uint8_t value = 0;
      if (guest_read8(regs[instr.ra] + static_cast<std::uint32_t>(instr.simm()), &value)) {
        regs[instr.rd] = value;
      } else {
        cpu_.eip = (cpu_.eip == next) ? pc : cpu_.eip;
      }
      break;
    }
    case Opcode::kStb:
      if (!guest_write8(regs[instr.ra] + static_cast<std::uint32_t>(instr.simm()),
                        static_cast<std::uint8_t>(regs[instr.rd]))) {
        cpu_.eip = (cpu_.eip == next) ? pc : cpu_.eip;
      }
      break;
    case Opcode::kJmp:
      branch_if(true);
      break;
    case Opcode::kJz:
      branch_if(cpu_.flag(isa::kFlagZ));
      break;
    case Opcode::kJnz:
      branch_if(!cpu_.flag(isa::kFlagZ));
      break;
    case Opcode::kJlt:
      branch_if(cpu_.flag(isa::kFlagN) != cpu_.flag(isa::kFlagV));
      break;
    case Opcode::kJge:
      branch_if(cpu_.flag(isa::kFlagN) == cpu_.flag(isa::kFlagV));
      break;
    case Opcode::kJc:
      branch_if(cpu_.flag(isa::kFlagC));
      break;
    case Opcode::kJnc:
      branch_if(!cpu_.flag(isa::kFlagC));
      break;
    case Opcode::kJmpr: {
      const std::uint32_t target = regs[instr.ra];
      if (heat_ != nullptr) {
        heat_->record_edge(pc, target, /*is_call=*/false);
      }
      if (indirect_branch_hook_) {
        indirect_branch_hook_(pc, target, /*is_call=*/false);
      }
      cpu_.eip = pc;
      guest_transfer(target);
      break;
    }
    case Opcode::kCall: {
      if (!guest_push32(next)) {
        break;
      }
      const std::uint32_t target =
          static_cast<std::uint32_t>(static_cast<std::int64_t>(next) + instr.simm());
      cpu_.eip = pc;
      guest_transfer(target);
      break;
    }
    case Opcode::kCallr: {
      if (!guest_push32(next)) {
        break;
      }
      const std::uint32_t target = regs[instr.ra];
      if (heat_ != nullptr) {
        heat_->record_edge(pc, target, /*is_call=*/true);
      }
      if (indirect_branch_hook_) {
        indirect_branch_hook_(pc, target, /*is_call=*/true);
      }
      cpu_.eip = pc;
      guest_transfer(target);
      break;
    }
    case Opcode::kRet: {
      std::uint32_t target = 0;
      if (!guest_pop32(&target)) {
        break;
      }
      cpu_.eip = pc;
      guest_transfer(target);
      break;
    }
    case Opcode::kPush:
      if (!guest_push32(regs[instr.rd])) {
        cpu_.eip = (cpu_.eip == next) ? pc : cpu_.eip;
      }
      break;
    case Opcode::kPop: {
      std::uint32_t value = 0;
      if (guest_pop32(&value)) {
        regs[instr.rd] = value;
      } else {
        cpu_.eip = (cpu_.eip == next) ? pc : cpu_.eip;
      }
      break;
    }
    case Opcode::kInt:
      dispatch_interrupt(static_cast<std::uint8_t>(instr.imm & 0x3F), pc, next);
      break;
    case Opcode::kIret: {
      std::uint32_t new_eip = 0;
      std::uint32_t new_eflags = 0;
      if (!guest_pop32(&new_eip) || !guest_pop32(&new_eflags)) {
        break;
      }
      cpu_.eflags = new_eflags;
      cpu_.eip = pc;
      guest_transfer(new_eip);
      break;
    }
    case Opcode::kHlt:
      // With the EA-MPU armed, HLT is privileged: a guest task must not be
      // able to stop the platform (availability, paper §5).  On the bare
      // pre-boot machine it halts normally (tests, bring-up).
      if (policy_ != nullptr) {
        raise_fault({FaultType::kPrivileged, pc, pc, Access::kExecute});
      } else {
        halt(HaltReason::kHltInstruction);
      }
      break;
    case Opcode::kCli:
      cpu_.set_flag(isa::kFlagIF, false);
      break;
    case Opcode::kSti:
      cpu_.set_flag(isa::kFlagIF, true);
      break;
    case Opcode::kRdcyc:
      regs[instr.rd] = static_cast<std::uint32_t>(cycles_);
      break;
  }
}

}  // namespace tytan::sim
