#include "sim/machine.h"

#include <bit>
#include <chrono>
#include <sstream>

#include "common/log.h"
#include "isa/disasm.h"

namespace tytan::sim {

using isa::Opcode;

const char* fault_name(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kBadOpcode: return "bad-opcode";
    case FaultType::kBusError: return "bus-error";
    case FaultType::kMpuData: return "mpu-data";
    case FaultType::kMpuFetch: return "mpu-fetch";
    case FaultType::kMpuTransfer: return "mpu-transfer";
    case FaultType::kStackFault: return "stack-fault";
    case FaultType::kNoHandler: return "no-handler";
    case FaultType::kPrivileged: return "privileged";
  }
  return "?";
}

std::string FaultInfo::to_string() const {
  std::ostringstream os;
  os << fault_name(type) << " at eip=0x" << std::hex << eip << " addr=0x" << addr << " ("
     << access_name(access) << ")";
  return os.str();
}

Machine::Machine(CostModel costs, const LogContext* log)
    : costs_(costs), log_(log != nullptr ? log : &process_log_context()) {
  obs_.set_clock(&cycles_);
  dcache_.attach(&memory_);
}

std::int32_t Machine::current_task_context() const {
  return task_context_ ? task_context_() : -1;
}

// ---------------------------------------------------------------------------
// Interrupts and faults
// ---------------------------------------------------------------------------

void Machine::raise_irq(std::uint8_t vector) {
  TYTAN_CHECK(vector < 64, "IRQ vector out of range");
  pending_ |= (1ull << vector);
}

std::uint32_t Machine::idt_entry(std::uint8_t vector) const {
  return memory_.read32(kIdtBase + 4u * vector);
}

void Machine::set_idt_entry(std::uint8_t vector, std::uint32_t handler) {
  memory_.write32(kIdtBase + 4u * vector, handler);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

void Machine::save_state(snap::Writer& w) const {
  for (const std::uint32_t reg : cpu_.regs) {
    w.u32(reg);
  }
  w.u32(cpu_.eip);
  w.u32(cpu_.eflags);
  w.u64(cycles_);
  w.u64(pending_);
  w.u32(int_origin_eip_);
  w.u8(int_vector_);
  w.u8(static_cast<std::uint8_t>(last_fault_.type));
  w.u32(last_fault_.eip);
  w.u32(last_fault_.addr);
  w.u8(static_cast<std::uint8_t>(last_fault_.access));
  w.u64(fault_count_);
  w.boolean(in_fault_dispatch_);
  w.u8(static_cast<std::uint8_t>(halt_reason_));
  w.u64(instructions_);
  w.u64(interrupts_);
  w.u64(fw_invocations_);
}

Status Machine::restore_state(snap::Reader& r) {
  for (std::uint32_t& reg : cpu_.regs) {
    reg = r.u32();
  }
  cpu_.eip = r.u32();
  cpu_.eflags = r.u32();
  cycles_ = r.u64();
  pending_ = r.u64();
  int_origin_eip_ = r.u32();
  int_vector_ = r.u8();
  last_fault_.type = static_cast<FaultType>(r.u8());
  last_fault_.eip = r.u32();
  last_fault_.addr = r.u32();
  last_fault_.access = static_cast<Access>(r.u8());
  fault_count_ = r.u64();
  in_fault_dispatch_ = r.boolean();
  halt_reason_ = static_cast<HaltReason>(r.u8());
  instructions_ = r.u64();
  interrupts_ = r.u64();
  fw_invocations_ = r.u64();
  // The decode cache is host-only state: never serialized, rebuilt on demand
  // against the restored memory image and policy configuration.  (The memory
  // write watch already dropped blocks overwritten by the image restore;
  // this also covers order-of-restore races and the transient fault flag.)
  fault_eip_redirected_ = false;
  invalidate_decode_cache();
  // Device tick scheduling is host-only: force a full resync on the next
  // step (devices restore their own schedules after this), and mark device
  // time clean so a save immediately after restore reproduces the restored
  // bytes instead of re-latching.
  next_device_tick_ = 0;
  device_timing_epoch_ = 0;
  step_top_cycles_ = cycles_;
  device_time_dirty_ = false;
  return Status::ok();
}

bool Machine::dispatch_interrupt(std::uint8_t vector, std::uint32_t origin_eip,
                                 std::uint32_t return_eip) {
  charge(costs_.int_dispatch);
  const std::uint32_t handler = idt_entry(vector);
  if (handler == 0) {
    raise_fault({FaultType::kNoHandler, origin_eip, vector, Access::kExecute});
    return false;
  }
  // Exception engine pushes EFLAGS then EIP onto the *current* stack (paper
  // §4: "The instruction pointer (EIP) and flags register (EFLAGS) are saved
  // by the exception engine to the stack of the interrupted task").  The
  // pushes run under the interrupted code's identity, so a task whose SP
  // points outside its own memory faults here instead of corrupting others.
  std::uint32_t sp = cpu_.sp();
  sp -= 4;
  if (!check(origin_eip, sp, Access::kWrite) || !raw_write32(sp, cpu_.eflags)) {
    raise_fault({FaultType::kStackFault, origin_eip, sp, Access::kWrite});
    return false;
  }
  sp -= 4;
  if (!check(origin_eip, sp, Access::kWrite) || !raw_write32(sp, return_eip)) {
    raise_fault({FaultType::kStackFault, origin_eip, sp, Access::kWrite});
    return false;
  }
  // Hardware latches: the IPC proxy authenticates the sender from these.
  // Updated only once the frame is safely pushed — an aborted dispatch must
  // leave the latches of the last *successful* dispatch intact, or a task
  // could forge its identity by interrupting with a bad SP.
  int_origin_eip_ = origin_eip;
  int_vector_ = vector;
  cpu_.set_sp(sp);
  cpu_.set_flag(isa::kFlagIF, false);
  cpu_.eip = handler;
  ++interrupts_;
  obs_.emit(obs::EventKind::kIrqEnter, current_task_context(), vector, origin_eip);
  return true;
}

void Machine::record_fault(const FaultInfo& fault) {
  last_fault_ = fault;
  ++fault_count_;
  obs_.emit(obs::EventKind::kFault, current_task_context(),
            static_cast<std::uint32_t>(fault.type), fault.eip);
}

void Machine::raise_fault(const FaultInfo& fault) {
  fault_eip_redirected_ = false;
  last_fault_ = fault;
  ++fault_count_;
  obs_.emit(obs::EventKind::kFault, current_task_context(),
            static_cast<std::uint32_t>(fault.type), fault.eip);
  TYTAN_CLOG(log(), LogLevel::kDebug, "machine") << "fault: " << fault.to_string();
  if (in_fault_dispatch_) {
    halt(HaltReason::kDoubleFault);
    in_fault_dispatch_ = false;
    return;
  }
  in_fault_dispatch_ = true;
  const std::uint32_t handler = idt_entry(kVecFault);
  if (handler == 0) {
    halt(HaltReason::kDoubleFault);
    in_fault_dispatch_ = false;
    return;
  }
  // Fault dispatch does not touch the (possibly bad) guest stack; the fault
  // handler reads the latched FaultInfo through last_fault().
  int_origin_eip_ = fault.eip;
  int_vector_ = kVecFault;
  cpu_.set_flag(isa::kFlagIF, false);
  cpu_.eip = handler;
  fault_eip_redirected_ = true;
  in_fault_dispatch_ = false;
}

// ---------------------------------------------------------------------------
// Firmware registry
// ---------------------------------------------------------------------------

void Machine::register_firmware(std::uint32_t addr, std::string name,
                                FirmwareHandler handler) {
  TYTAN_CHECK(!firmware_.contains(addr), "firmware address already registered");
  if (profiler_ != nullptr) {
    profiler_->add_global_symbol(addr, name);
  }
  firmware_[addr] = {std::move(name), std::move(handler)};
  // A cached block may span the new address; from now on a step landing
  // there must invoke the handler, not a pre-decoded instruction.
  invalidate_decode_cache();
}

void Machine::enable_profiler(std::uint64_t interval_cycles, std::size_t capacity) {
  if (interval_cycles == 0) {
    profiler_ = nullptr;
    return;
  }
  profiler_ = std::make_unique<obs::SampleProfiler>(interval_cycles, capacity);
  for (const auto& [addr, entry] : firmware_) {
    profiler_->add_global_symbol(addr, entry.name);
  }
}

void Machine::enable_heat(bool time_dispatch) {
  // The profile lives in the obs metrics registry so fleet aggregation folds
  // it with the same merge_from discipline as every other instrument; the
  // recorder is the machine-owned hot-path state bound to it.
  heat_ = std::make_unique<obs::HeatRecorder>(&obs_.metrics().heat_profile("machine"),
                                              time_dispatch);
}

std::string_view Machine::firmware_name(std::uint32_t addr) const {
  const auto it = firmware_.find(addr);
  return it == firmware_.end() ? std::string_view{} : std::string_view{it->second.name};
}

// ---------------------------------------------------------------------------
// Memory paths
// ---------------------------------------------------------------------------

bool Machine::check(std::uint32_t exec_ip, std::uint32_t addr, Access access) const {
  if (heat_ == nullptr) {
    return policy_ == nullptr || policy_->allows(exec_ip, addr, access);
  }
  // Observatory enabled: also ask the policy *which* rule decided.  The
  // verdict still comes from allows() — classify() is attribution only, so a
  // policy without a classify() override stays correct (its checks land in
  // the "unclassified" bucket).
  const bool allowed = policy_ == nullptr || policy_->allows(exec_ip, addr, access);
  heat_->count_check(static_cast<int>(access),
                     policy_ == nullptr ? kCheckNoPolicy
                                        : policy_->classify(exec_ip, addr, access));
  return allowed;
}

bool Machine::raw_read32(std::uint32_t addr, std::uint32_t* out) {
  if (is_mmio(addr)) {
    if (addr % 4 != 0) {
      return false;
    }
    Device* device = bus_.find(addr);
    if (device == nullptr) {
      return false;
    }
    charge(costs_.mmio_access);
    // Lazy time latch: deliver the step-top cycle the per-instruction tick
    // regime would have, so counters and timestamps read identically.
    device->tick(step_top_cycles_);
    *out = device->read32(addr - device->base());
    return true;
  }
  if (!memory_.in_bounds(addr, 4)) {
    return false;
  }
  *out = memory_.read32(addr);
  return true;
}

bool Machine::raw_write32(std::uint32_t addr, std::uint32_t value) {
  if (is_mmio(addr)) {
    if (addr % 4 != 0) {
      return false;
    }
    Device* device = bus_.find(addr);
    if (device == nullptr) {
      return false;
    }
    charge(costs_.mmio_access);
    device->tick(step_top_cycles_);  // lazy time latch; see raw_read32
    device->write32(addr - device->base(), value);
    return true;
  }
  if (!memory_.in_bounds(addr, 4)) {
    return false;
  }
  memory_.write32(addr, value);
  return true;
}

bool Machine::raw_read8(std::uint32_t addr, std::uint8_t* out) {
  if (is_mmio(addr)) {
    std::uint32_t word = 0;
    if (!raw_read32(addr & ~3u, &word)) {
      return false;
    }
    *out = static_cast<std::uint8_t>(word >> (8 * (addr % 4)));
    return true;
  }
  if (!memory_.in_bounds(addr, 1)) {
    return false;
  }
  *out = memory_.read8(addr);
  return true;
}

bool Machine::raw_write8(std::uint32_t addr, std::uint8_t value) {
  if (is_mmio(addr)) {
    // Devices are word-based; a byte write is modeled as ONE read-modify-
    // write bus transaction on the addressed lane (charged once), symmetric
    // with raw_read8's lane extract.  Registers with read side effects see
    // the RMW read — that is the documented cost of byte-granular MMIO.
    const std::uint32_t aligned = addr & ~3u;
    Device* device = bus_.find(aligned);
    if (device == nullptr) {
      return false;
    }
    charge(costs_.mmio_access);
    device->tick(step_top_cycles_);  // lazy time latch; see raw_read32
    const unsigned shift = 8 * (addr % 4);
    std::uint32_t word = device->read32(aligned - device->base());
    word = (word & ~(0xFFu << shift)) |
           (static_cast<std::uint32_t>(value) << shift);
    device->write32(aligned - device->base(), word);
    return true;
  }
  if (!memory_.in_bounds(addr, 1)) {
    return false;
  }
  memory_.write8(addr, value);
  return true;
}

Result<std::uint32_t> Machine::fw_read32(std::uint32_t exec_ip, std::uint32_t addr) {
  if (!check(exec_ip, addr, Access::kRead)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware read");
  }
  std::uint32_t value = 0;
  if (!raw_read32(addr, &value)) {
    return make_error(Err::kOutOfRange, "firmware read bus error");
  }
  return value;
}

Status Machine::fw_write32(std::uint32_t exec_ip, std::uint32_t addr, std::uint32_t value) {
  if (!check(exec_ip, addr, Access::kWrite)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware write");
  }
  if (!raw_write32(addr, value)) {
    return make_error(Err::kOutOfRange, "firmware write bus error");
  }
  return Status::ok();
}

Result<std::uint8_t> Machine::fw_read8(std::uint32_t exec_ip, std::uint32_t addr) {
  if (!check(exec_ip, addr, Access::kRead)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware read");
  }
  std::uint8_t value = 0;
  if (!raw_read8(addr, &value)) {
    return make_error(Err::kOutOfRange, "firmware read bus error");
  }
  return value;
}

Status Machine::fw_write8(std::uint32_t exec_ip, std::uint32_t addr, std::uint8_t value) {
  if (!check(exec_ip, addr, Access::kWrite)) {
    return make_error(Err::kPermissionDenied, "EA-MPU denied firmware write");
  }
  if (!raw_write8(addr, value)) {
    return make_error(Err::kOutOfRange, "firmware write bus error");
  }
  return Status::ok();
}

bool Machine::guest_read32(std::uint32_t addr, std::uint32_t* out) {
  if (!check(cpu_.eip, addr, Access::kRead)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kRead});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_read32(addr, out)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kRead});
    return false;
  }
  return true;
}

bool Machine::guest_write32(std::uint32_t addr, std::uint32_t value) {
  if (!check(cpu_.eip, addr, Access::kWrite)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_write32(addr, value)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  return true;
}

bool Machine::guest_read8(std::uint32_t addr, std::uint8_t* out) {
  if (!check(cpu_.eip, addr, Access::kRead)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kRead});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_read8(addr, out)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kRead});
    return false;
  }
  return true;
}

bool Machine::guest_write8(std::uint32_t addr, std::uint8_t value) {
  if (!check(cpu_.eip, addr, Access::kWrite)) {
    raise_fault({FaultType::kMpuData, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  charge(costs_.mem_access);
  if (!raw_write8(addr, value)) {
    raise_fault({FaultType::kBusError, cpu_.eip, addr, Access::kWrite});
    return false;
  }
  return true;
}

bool Machine::guest_push32(std::uint32_t value) {
  const std::uint32_t sp = cpu_.sp() - 4;
  if (!guest_write32(sp, value)) {
    return false;
  }
  cpu_.set_sp(sp);
  return true;
}

bool Machine::guest_pop32(std::uint32_t* out) {
  if (!guest_read32(cpu_.sp(), out)) {
    return false;
  }
  cpu_.set_sp(cpu_.sp() + 4);
  return true;
}

bool Machine::guest_transfer(std::uint32_t target) {
  if (policy_ != nullptr && !policy_->allows_transfer(cpu_.eip, target)) {
    raise_fault({FaultType::kMpuTransfer, cpu_.eip, target, Access::kExecute});
    return false;
  }
  charge(costs_.branch_taken);
  cpu_.eip = target;
  return true;
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

StepOutcome Machine::step() {
  if (halted()) {
    return StepOutcome::kHalted;
  }
  // Sampling reads the clock and EIP only — never charges a cycle, so the
  // profiler-on run is bit-identical to the profiler-off run.
  if (profiler_ != nullptr && profiler_->due(cycles_)) {
    profiler_->take(cycles_, cpu_.eip, current_task_context());
  }
  // Event-driven device time: walk the tick list only when a device has due
  // work (a timer crossing next_fire_) or a schedule changed out of band
  // (register write, attach, restore — the bus timing epoch).  Devices whose
  // tick is a pure time latch are instead latched lazily: on their own MMIO
  // accesses (raw_* paths) and before serialization (flush_device_time), in
  // both cases with the step-top cycle the classic every-instruction regime
  // would have delivered — so IRQ timing, command timestamps, and snapshot
  // bytes are identical to ticking every step.
  step_top_cycles_ = cycles_;
  device_time_dirty_ = true;
  if (cycles_ >= next_device_tick_ || bus_.timing_epoch() != device_timing_epoch_) {
    bus_.tick_all(cycles_);
    device_timing_epoch_ = bus_.timing_epoch();
    next_device_tick_ = bus_.next_tick_due();
  }
  if (pending_ != 0 && cpu_.flag(isa::kFlagIF)) {
    dispatch_pending();
    return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
  }
  // Cached-dispatch fast paths.  Still one instruction per step(): quantum
  // boundaries, device ticks, and IRQ windows land exactly where the
  // interpreter puts them.
  if (dispatch_ == DispatchMode::kCached) {
    // Cursor hit: the cursor points at the next op of a live block and EIP
    // agrees — skip fetch, decode, the EA-MPU walk, and the firmware map
    // probe (blocks never contain firmware addresses, and register_firmware
    // invalidates).  Liveness is checked BEFORE the block pointer is
    // dereferenced: any invalidation freed it.
    if (cur_block_ != nullptr && dcache_.live(cur_gen_, policy_) &&
        cur_idx_ < cur_block_->ops.size() &&
        cur_block_->ops[cur_idx_].pc == cpu_.eip) {
      // Reference, not copy: a self-modifying store can only *graveyard* the
      // block (deferred free), never destroy it mid-instruction.
      const DecodedOp& op = cur_block_->ops[cur_idx_];
      ++cur_idx_;
      run_cached_op(op);
      return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
    }
    // Block-head LUT hit: a branch landed on a block head this machine has
    // activated before — chain straight into it without the firmware map
    // probe or the hash lookup.  Safe for the same reason as the cursor: a
    // cached head is never a firmware entry, and the entry's generation
    // stamp dies with any invalidation (live() also rechecks the policy
    // configuration epoch).
    const BlockLutEntry& lut = block_lut_[(cpu_.eip >> 2) & (kBlockLutSize - 1)];
    if (lut.pc == cpu_.eip && dcache_.live(lut.gen, policy_)) {
      cur_block_ = lut.block;
      cur_gen_ = lut.gen;
      cur_idx_ = 1;
      dcache_.note_fast_hit();
      run_cached_op(lut.block->ops[0]);
      return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
    }
  }
  const auto fw = firmware_.find(cpu_.eip);
  if (fw != firmware_.end()) {
    ++fw_invocations_;
    if (tracer_ != nullptr) {
      tracer_->record(cycles_, cpu_.eip, 0, fw->second.name, current_task_context(),
                      Tracer::kVerdictNone);
    }
    fw->second.handler(*this);
    return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
  }
  if (dispatch_ == DispatchMode::kCached && execute_one_cached()) {
    return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
  }
  if (tracer_ != nullptr && memory_.in_bounds(cpu_.eip, 4) && !is_mmio(cpu_.eip)) {
    const int verdict = policy_ == nullptr ? Tracer::kVerdictNone
                        : policy_->allows(cpu_.eip, cpu_.eip, Access::kExecute)
                            ? Tracer::kVerdictAllowed
                            : Tracer::kVerdictDenied;
    tracer_->record(cycles_, cpu_.eip, memory_.read32(cpu_.eip), {},
                    current_task_context(), verdict);
  }
  execute_one();
  return halted() ? StepOutcome::kHalted : StepOutcome::kOk;
}

void Machine::dispatch_pending() {
  const unsigned vector = static_cast<unsigned>(std::countr_zero(pending_));
  pending_ &= pending_ - 1;  // clear lowest set bit
  if (!dispatch_interrupt(static_cast<std::uint8_t>(vector), cpu_.eip, cpu_.eip)) {
    // A stack fault is transient: the line stays pending and the dispatch
    // retries once the fault handler repairs SP (no spin — IF is off until
    // its IRET).  A missing IDT entry is a configuration error: the request
    // is dropped, since re-asserting would retry a vector that can never
    // dispatch.  Both are pinned in tests/test_machine.cc.
    if (last_fault_.type == FaultType::kStackFault) {
      pending_ |= (1ull << vector);
    }
  }
}

HaltReason Machine::run(std::uint64_t cycle_limit) {
  while (!halted() && cycles_ < cycle_limit) {
    step();
  }
  return halted() ? halt_reason_ : HaltReason::kCycleLimit;
}

void Machine::execute_one() {
  const std::uint32_t pc = cpu_.eip;
  if (!check(pc, pc, Access::kExecute)) {
    raise_fault({FaultType::kMpuFetch, pc, pc, Access::kExecute});
    return;
  }
  if (is_mmio(pc) || !memory_.in_bounds(pc, 4)) {
    raise_fault({FaultType::kBusError, pc, pc, Access::kExecute});
    return;
  }
  const std::uint32_t word = memory_.read32(pc);
  const auto decoded = isa::decode(word);
  if (!decoded) {
    raise_fault({FaultType::kBadOpcode, pc, pc, Access::kExecute});
    return;
  }
  // Transient decoded op: same OpVariant handler the cache dispatches, with
  // nothing memoized (transfer/fetch verdicts resolved live).
  DecodedOp op;
  op.instr = *decoded;
  op.pc = pc;
  op.word = word;
  const OpVariant& variant = op_table()[static_cast<std::size_t>(op.instr.opcode)];
  op.exec = variant.exec;
  op.base_cycles = variant.base_cycles;
  charge(variant.base_cycles);
  ++instructions_;

  if (heat_ == nullptr) {  // hot path: observatory off costs one null check
    execute_op(op);
    return;
  }
  if (heat_->on_instruction(pc, static_cast<std::uint8_t>(op.instr.opcode))) {
    // Sampled dispatch: attribute host nanoseconds to this opcode.  Host
    // clocks never feed back into simulated state, so cycle counts stay
    // bit-identical with the observatory on or off.
    const auto t0 = std::chrono::steady_clock::now();
    execute_op(op);
    const auto t1 = std::chrono::steady_clock::now();
    heat_->attribute(
        static_cast<std::uint8_t>(op.instr.opcode),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  } else {
    execute_op(op);
  }
}

void Machine::run_cached_op(const DecodedOp& op) {
  if (tracer_ == nullptr && heat_ == nullptr) {
    // Observatory off: the common case pays two null checks and goes
    // straight to dispatch.
    charge(op.base_cycles);
    ++instructions_;
    execute_op(op);
    return;
  }
  if (tracer_ != nullptr) {
    // Same record the interpreter path emits: the memoized word, and the
    // fetch verdict every cached op has by construction (a denied fetch
    // never enters a block).
    tracer_->record(cycles_, op.pc, op.word, {}, current_task_context(),
                    policy_ == nullptr ? Tracer::kVerdictNone
                                       : Tracer::kVerdictAllowed);
  }
  if (heat_ != nullptr) {
    // Replay the memoized classify() code into the MPU counters — cached
    // fetches skip the policy walk, but heat profiles must be identical
    // across dispatch modes.
    heat_->count_check(static_cast<int>(Access::kExecute), op.fetch_class);
  }
  charge(op.base_cycles);
  ++instructions_;
  if (heat_ == nullptr) {
    execute_op(op);
    return;
  }
  if (heat_->on_instruction(op.pc, static_cast<std::uint8_t>(op.instr.opcode))) {
    const auto t0 = std::chrono::steady_clock::now();
    execute_op(op);
    const auto t1 = std::chrono::steady_clock::now();
    heat_->attribute(
        static_cast<std::uint8_t>(op.instr.opcode),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  } else {
    execute_op(op);
  }
}

bool Machine::execute_one_cached() {
  // Any policy reconfiguration since the last build — EA-MPU slot writes by
  // the driver firmware, host-side test mutations — drops the whole cache
  // here, before any memoized verdict can be replayed.
  dcache_.sync_policy(policy_);
  const DecodeCache::Block* block = dcache_.find(cpu_.eip);
  if (block == nullptr) {
    DecodeCache::Block built = build_block(cpu_.eip);
    if (built.ops.empty()) {
      return false;  // uncacheable head: the interpreter raises the exact fault
    }
    block = dcache_.insert(std::move(built));
  }
  cur_block_ = block;
  cur_gen_ = dcache_.generation();
  cur_idx_ = 1;
  // Remember this head so the next branch here takes the LUT fast path.
  BlockLutEntry& lut = block_lut_[(cpu_.eip >> 2) & (kBlockLutSize - 1)];
  lut.pc = cpu_.eip;
  lut.gen = cur_gen_;
  lut.block = block;
  // Reference is safe even against a store erasing its own block: erased
  // blocks are graveyarded, not destroyed, until the next find()/insert().
  run_cached_op(block->ops[0]);
  return true;
}

DecodeCache::Block Machine::build_block(std::uint32_t pc) const {
  DecodeCache::Block block;
  block.start = pc;
  std::uint32_t p = pc;
  while (block.ops.size() < DecodeCache::kMaxBlockOps) {
    // Stop at anything the fast path must not step over: firmware entry
    // points, MMIO/out-of-bounds fetches, denied fetches, undecodable
    // words.  A bad *head* yields an empty block and the interpreter path
    // raises the corresponding fault; a bad tail just ends the block early.
    if (firmware_.contains(p) || is_mmio(p) || !memory_.in_bounds(p, 4)) {
      break;
    }
    if (policy_ != nullptr && !policy_->allows(p, p, Access::kExecute)) {
      break;
    }
    const std::uint32_t word = memory_.read32(p);
    const auto decoded = isa::decode(word);
    if (!decoded) {
      break;
    }
    DecodedOp op;
    op.instr = *decoded;
    op.pc = p;
    op.word = word;
    const OpVariant& variant = op_table()[static_cast<std::size_t>(op.instr.opcode)];
    op.exec = variant.exec;
    op.base_cycles = variant.base_cycles;
    op.fetch_class = policy_ == nullptr
                         ? kCheckNoPolicy
                         : policy_->classify(p, p, Access::kExecute);
    const std::uint32_t next = p + isa::kInstrSize;
    bool terminator = false;
    switch (op.instr.opcode) {
      // Static-target transfers: the entry-point verdict is a pure function
      // of (pc, policy configuration) — memoize it under the same epoch that
      // guards the fetch memo.
      case Opcode::kJmp:
      case Opcode::kJz:
      case Opcode::kJnz:
      case Opcode::kJlt:
      case Opcode::kJge:
      case Opcode::kJc:
      case Opcode::kJnc:
      case Opcode::kCall: {
        const std::uint32_t target = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(next) + op.instr.simm());
        op.transfer = (policy_ == nullptr || policy_->allows_transfer(p, target))
                          ? TransferMemo::kAllowed
                          : TransferMemo::kDenied;
        // Conditional branches fall through inside the block; the taken path
        // re-enters through the cursor-miss slow path.
        terminator =
            op.instr.opcode == Opcode::kJmp || op.instr.opcode == Opcode::kCall;
        break;
      }
      case Opcode::kJmpr:
      case Opcode::kCallr:
      case Opcode::kRet:
      case Opcode::kInt:
      case Opcode::kIret:
      case Opcode::kHlt:
        terminator = true;  // EIP never falls through sequentially
        break;
      default:
        break;
    }
    block.ops.push_back(op);
    p = next;
    if (terminator) {
      break;
    }
  }
  block.end = p;
  return block;
}

void Machine::execute_op(const DecodedOp& op) {
  cpu_.eip = op.pc + isa::kInstrSize;  // default; branch handlers overwrite
  op.exec(*this, op);
}

}  // namespace tytan::sim
