// Decoded basic-block cache for table-driven dispatch (ROADMAP item 1).
//
// The interpreter re-fetches, re-decodes, and re-runs the EA-MPU fetch walk
// for every instruction on every execution.  The decode cache trades that
// per-step work for a one-time *block build*: starting at a physical PC it
// pre-decodes straight-line code into DecodedOps — operands resolved, the
// per-opcode handler function pointer and base cycle cost pulled from the
// OpVariant table (src/sim/machine_ops.cc), the fetch-check classify() code
// and static-branch transfer verdicts memoized — and the machine then steps
// through the block with a cursor: one compare-and-copy instead of the full
// fetch→decode→check walk.
//
// Everything memoized is a pure function of (guest memory bytes, the access
// policy's configuration, the firmware registry), so the cache is correct
// exactly as long as it observes every change to those three inputs:
//
//   * policy configuration — AccessPolicy::config_epoch() (bumped by every
//     EaMpu::write_slot/clear_slot/add_exec_region/remove_exec_region and
//     table restore); live() compares epochs on the per-step fast path;
//   * guest code bytes — a PhysicalMemory write watch over the union of
//     cached block ranges catches self-modifying stores, loader copies,
//     region wipes on unload, and snapshot restores, and erases exactly the
//     intersected blocks;
//   * firmware registry / wholesale state changes — Machine invalidates
//     explicitly on register_firmware, set_policy, and restore_state, and
//     the task loader invalidates on load/unload (belt and braces: the
//     write watch and the policy epoch already cover those paths).
//
// The cache is HOST-ONLY state: it never appears in snapshots, contributes
// nothing to simulated cycles, and is rebuilt on demand after a restore —
// the bit-identical contract is that a cached-dispatch run and an
// interpreter run agree on every simulated quantity (registers, EIP, EFLAGS,
// cycles, instructions, the fault stream) at every step.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/isa.h"
#include "sim/memory.h"
#include "sim/policy.h"

namespace tytan::sim {

class Machine;
struct DecodedOp;

/// Memoized allows_transfer() verdict for transfers whose target is a pure
/// function of the instruction's PC (jmp/jz/../jnc/call).  kUnknown — the
/// interpreter's transient ops and register-indirect transfers — means "ask
/// the policy live".
enum class TransferMemo : std::uint8_t { kUnknown = 0, kAllowed, kDenied };

/// Per-opcode dispatch table entry (the sixfive-style variant record): the
/// handler the big interpreter switch is factored into, plus the base cycle
/// cost so cached dispatch skips the base_cycles() switch.
struct OpVariant {
  void (*exec)(Machine&, const DecodedOp&) = nullptr;
  std::uint8_t base_cycles = 0;
};

/// The 256-entry table indexed by the raw opcode byte.  Undefined opcodes
/// hold a null exec — they can never enter a block (decode rejects them) and
/// the interpreter faults before dispatch.  Defined in machine_ops.cc.
const std::array<OpVariant, 256>& op_table();

/// One pre-decoded instruction.  Handlers receive a reference into the
/// owning block; that is safe against a self-modifying store erasing the
/// very block it lives in because erased blocks are graveyarded (freed only
/// between instructions), never destroyed mid-dispatch.
struct DecodedOp {
  isa::Instruction instr{};
  std::uint32_t pc = 0;
  std::uint32_t word = 0;  ///< raw encoding (tracer replay)
  void (*exec)(Machine&, const DecodedOp&) = nullptr;
  std::uint8_t base_cycles = 0;
  TransferMemo transfer = TransferMemo::kUnknown;
  /// Memoized policy->classify(pc, pc, kExecute) — replayed into the heat
  /// recorder's MPU counters so observatory profiles are identical across
  /// dispatch modes.  kCheckNoPolicy when built without a policy.
  int fetch_class = kCheckNoPolicy;
};

class DecodeCache final : public WriteWatcher {
 public:
  /// Block length cap: bounds build latency and the invalidation scan.
  static constexpr std::size_t kMaxBlockOps = 128;
  /// Block count cap: a runaway-SMC workload cannot grow the cache without
  /// bound; hitting the cap drops everything and starts over.
  static constexpr std::size_t kMaxBlocks = 4096;

  struct Block {
    std::uint32_t start = 0;
    std::uint32_t end = 0;  ///< exclusive: start + 4 * ops.size()
    std::vector<DecodedOp> ops;
  };

  struct Stats {
    std::uint64_t hits = 0;          ///< block lookups served from the cache
    std::uint64_t builds = 0;        ///< blocks decoded and inserted
    std::uint64_t invalidations = 0; ///< invalidate_all() calls
    std::uint64_t code_writes = 0;   ///< watched writes that erased blocks
  };

  /// Bind to the memory whose writes must be observed.  The cache registers
  /// its watch lazily (first insert) and must be destroyed or detached
  /// before the memory (Machine declares it after memory_).
  void attach(PhysicalMemory* memory) { memory_ = memory; }
  void detach() {
    if (memory_ != nullptr) {
      memory_->clear_write_watch();
      memory_ = nullptr;
    }
  }
  ~DecodeCache() override { detach(); }

  /// Fast-path liveness: the caller's cursor generation still matches and
  /// the policy configuration is the one the blocks were built under.
  [[nodiscard]] bool live(std::uint64_t gen, const AccessPolicy* policy) const {
    return gen == generation_ && policy == policy_ &&
           (policy == nullptr || policy->config_epoch() == policy_epoch_);
  }

  /// Slow-path entry: drop everything if the policy pointer or its
  /// configuration epoch moved since the cache was last (re)built.
  void sync_policy(const AccessPolicy* policy) {
    const std::uint64_t epoch = policy == nullptr ? 0 : policy->config_epoch();
    if (policy != policy_ || epoch != policy_epoch_) {
      invalidate_all();
      policy_ = policy;
      policy_epoch_ = epoch;
    }
  }

  [[nodiscard]] const Block* find(std::uint32_t pc) {
    collect();  // between instructions by construction — see graveyard_
    const auto it = blocks_.find(pc);
    if (it == blocks_.end()) {
      return nullptr;
    }
    ++stats_.hits;
    return it->second.get();
  }

  /// A block activation served from the Machine's block-head LUT instead of
  /// the hash map — still a cache hit for accounting purposes.
  void note_fast_hit() { ++stats_.hits; }

  /// Insert a freshly built block (keyed by its start PC, replacing any
  /// previous block there) and widen the write watch over it.
  const Block* insert(Block block);

  /// Drop every block and bump the generation (cursors die).
  void invalidate_all();

  /// WriteWatcher: a write landed inside the watched span — erase every
  /// block whose [start, end) intersects the written range.
  void on_watched_write(std::uint32_t addr, std::uint32_t len) override;

  /// Cursor guard: any structural change (invalidate_all or a block erase)
  /// bumps this, so a Machine cursor never dereferences a dead block.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void update_watch();
  /// Free deferred blocks.  Only called from find()/insert(), which the
  /// Machine only reaches between instructions — never while a DecodedOp
  /// reference into a block is live.
  void collect() {
    if (!graveyard_.empty()) {
      graveyard_.clear();
    }
  }

  // unique_ptr values keep Block* stable across rehash and foreign erases;
  // the generation guard covers erases of the pointed-to block itself.
  std::unordered_map<std::uint32_t, std::unique_ptr<Block>> blocks_;
  // Invalidated blocks are moved here instead of destroyed: an invalidation
  // can fire mid-instruction (a self-modifying store erasing its own block)
  // while the dispatch fast paths hold a *reference* into the block.  The
  // generation bump keeps dead blocks unreachable; collect() frees them at
  // the next safe point.
  std::vector<std::unique_ptr<Block>> graveyard_;
  PhysicalMemory* memory_ = nullptr;
  const AccessPolicy* policy_ = nullptr;
  std::uint64_t policy_epoch_ = 0;
  std::uint64_t generation_ = 1;
  // Union span of cached blocks; only grows until invalidate_all (precise
  // per-write filtering happens in on_watched_write).
  std::uint32_t span_lo_ = 0;
  std::uint32_t span_hi_ = 0;
  Stats stats_;
};

}  // namespace tytan::sim
