#include "sim/decode_cache.h"

#include <algorithm>

namespace tytan::sim {

const DecodeCache::Block* DecodeCache::insert(Block block) {
  collect();  // find() missed, so no op reference is alive — safe to free
  if (blocks_.size() >= kMaxBlocks) {
    invalidate_all();
  }
  ++stats_.builds;
  const std::uint32_t start = block.start;
  auto owned = std::make_unique<Block>(std::move(block));
  const Block* result = owned.get();
  blocks_[start] = std::move(owned);
  if (blocks_.size() == 1) {
    span_lo_ = result->start;
    span_hi_ = result->end;
  } else {
    span_lo_ = std::min(span_lo_, result->start);
    span_hi_ = std::max(span_hi_, result->end);
  }
  update_watch();
  return result;
}

void DecodeCache::invalidate_all() {
  ++stats_.invalidations;
  ++generation_;
  for (auto& entry : blocks_) {
    graveyard_.push_back(std::move(entry.second));
  }
  blocks_.clear();
  span_lo_ = 0;
  span_hi_ = 0;
  update_watch();
}

void DecodeCache::on_watched_write(std::uint32_t addr, std::uint32_t len) {
  // The span filter in PhysicalMemory is coarse (union of all blocks); only
  // blocks actually intersecting the written range die.  Writes between
  // blocks — data words interleaved with code — erase nothing and must not
  // kill cursors, so the generation only bumps when a block goes.
  bool erased = false;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    const Block& block = *it->second;
    if (addr < block.end && addr + len > block.start) {
      // Defer destruction: the write may come from an op executing out of
      // this very block, and the fast paths hold a reference into it.  The
      // graveyard is drained at the next find()/insert(), which only ever
      // run between instructions.
      graveyard_.push_back(std::move(it->second));
      it = blocks_.erase(it);
      erased = true;
    } else {
      ++it;
    }
  }
  if (erased) {
    ++stats_.code_writes;
    ++generation_;
  }
}

void DecodeCache::update_watch() {
  if (memory_ == nullptr) {
    return;
  }
  if (blocks_.empty()) {
    memory_->clear_write_watch();
  } else {
    memory_->set_write_watch(this, span_lo_, span_hi_);
  }
}

}  // namespace tytan::sim
