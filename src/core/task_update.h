// Runtime task update — the paper's stated future work (§8): "extending
// TyTAN with a mechanism to update tasks at runtime (i.e., without stopping
// and restarting them) to meet the high availability requirements of
// embedded applications."
//
// Implementation: the replacement binary is loaded and measured *while the
// old version keeps running* (the loader and RTM are interruptible, so the
// old task's deadlines hold — exactly the Table 1 property).  The moment the
// replacement is registered, the manager performs an atomic swap:
//   1. any pending mailbox message of the old instance is carried over
//      (delivered exactly once, to whichever version handles it),
//   2. optionally, the old version's sealed storage is re-sealed under the
//      new identity (SecureStorage::migrate — the new id_t differs, so
//      without migration the new version could not read old state),
//   3. the old instance is unloaded and the new one scheduled.
// Downtime is the swap itself (a few hundred cycles), not the ~30 ms load.
#pragma once

#include "core/secure_storage.h"
#include "core/task_loader.h"

namespace tytan::core {

struct UpdateParams {
  /// Re-seal the old version's storage under the new identity.
  bool migrate_storage = true;
};

class UpdateManager {
 public:
  UpdateManager(sim::Machine& machine, rtos::Scheduler& scheduler, TaskLoader& loader,
                SecureStorage& storage)
      : machine_(machine), scheduler_(scheduler), loader_(loader), storage_(storage) {}

  /// Synchronous update (no simulation advance; for tests/benches).
  Result<rtos::TaskHandle> update_now(rtos::TaskHandle old_handle, isa::ObjectFile next,
                                      LoadParams load_params, UpdateParams params = {});

  /// Hitless update: queue the load; the swap runs automatically when the
  /// replacement is ready.  The caller must keep the machine running (the
  /// loader task does the work).  Returns the *new* handle immediately.
  Result<rtos::TaskHandle> begin_update(rtos::TaskHandle old_handle, isa::ObjectFile next,
                                        LoadParams load_params, UpdateParams params = {});

  [[nodiscard]] bool update_in_progress() const { return pending_; }
  [[nodiscard]] rtos::TaskHandle last_updated() const { return last_updated_; }
  [[nodiscard]] std::uint64_t last_swap_cycles() const { return last_swap_cycles_; }
  /// Status of the most recent completed swap.
  [[nodiscard]] const Status& last_swap_status() const { return last_swap_status_; }

  // -- snapshots ----------------------------------------------------------------
  /// Serialize / overwrite the update ledger.  A *pending* hitless update
  /// rides on the loader's on_loaded callback, so Platform::save refuses
  /// while one is in flight (the loader reports job_has_callback()).
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  Status swap(rtos::TaskHandle old_handle, rtos::TaskHandle new_handle,
              const UpdateParams& params);

  sim::Machine& machine_;
  rtos::Scheduler& scheduler_;
  TaskLoader& loader_;
  SecureStorage& storage_;
  bool pending_ = false;
  rtos::TaskHandle last_updated_ = rtos::kNoTask;
  std::uint64_t last_swap_cycles_ = 0;
  Status last_swap_status_;
};

}  // namespace tytan::core
