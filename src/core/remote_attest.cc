#include "core/remote_attest.h"

#include "common/bytes.h"

namespace tytan::core {

ByteVec AttestationReport::serialize() const {
  ByteVec out;
  out.reserve(8 + identity.size() + mac.size());
  append_le64(out, nonce);
  out.insert(out.end(), identity.begin(), identity.end());
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

Result<AttestationReport> AttestationReport::deserialize(std::span<const std::uint8_t> raw) {
  if (raw.size() != 8 + 8 + crypto::kSha1DigestSize) {
    return make_error(Err::kCorrupt, "attestation report has wrong size");
  }
  AttestationReport report;
  report.nonce = load_le64(raw.data());
  std::copy(raw.begin() + 8, raw.begin() + 16, report.identity.begin());
  std::copy(raw.begin() + 16, raw.end(), report.mac.begin());
  return report;
}

crypto::Key128 RemoteAttest::attestation_key() {
  crypto::Key128 kp{};
  for (std::uint32_t i = 0; i < crypto::kKeySize; i += 4) {
    auto word = machine_.fw_read32(kIdent, sim::kMmioKeyReg + i);
    TYTAN_CHECK(word.is_ok(), "Remote Attest denied platform-key access");
    store_le32(kp.data() + i, *word);
  }
  return derive_ka(kp);
}

crypto::Key128 RemoteAttest::derive_ka(const crypto::Key128& kp) {
  return crypto::derive_key128(kp, kKaLabel, {});
}

Result<AttestationReport> RemoteAttest::attest_identity(const rtos::TaskIdentity& identity,
                                                        std::uint64_t nonce) {
  const crypto::Key128 ka = attestation_key();
  AttestationReport report;
  report.nonce = nonce;
  report.identity = identity;

  ByteVec message;
  append_le64(message, nonce);
  message.insert(message.end(), identity.begin(), identity.end());
  report.mac = crypto::HmacSha1::mac(ka, message);
  // HMAC-SHA1 over a short message: two inner + two outer compression blocks.
  machine_.charge(machine_.costs().attest_mac_block * 4);
  return report;
}

Result<AttestationReport> RemoteAttest::attest_task(rtos::TaskHandle handle,
                                                    std::uint64_t nonce) {
  const RegistryEntry* entry = rtm_.find_by_handle(handle);
  if (entry == nullptr) {
    return make_error(Err::kNotFound, "attest: task not in RTM registry");
  }
  const std::uint64_t start = machine_.cycles();
  // Prover-side MAC phase; nests under the challenger's attest-round span
  // when one is open (Fleet::attest_all), roots its own trace otherwise.
  const obs::SpanRecorder::SpanId span =
      machine_.obs().spans().begin(obs::SpanPhase::kHmacCompute, handle);
  auto report = attest_identity(entry->identity, nonce);
  machine_.obs().spans().end(
      span, report.is_ok() ? obs::SpanOutcome::kOk : obs::SpanOutcome::kFailed);
  if (report.is_ok()) {
    machine_.obs().emit(obs::EventKind::kAttest, handle,
                        static_cast<std::uint32_t>(machine_.cycles() - start));
  }
  return report;
}

Result<rtos::TaskIdentity> RemoteAttest::local_attest(rtos::TaskHandle handle) {
  const RegistryEntry* entry = rtm_.find_by_handle(handle);
  if (entry == nullptr) {
    return make_error(Err::kNotFound, "local attest: task not in RTM registry");
  }
  return entry->identity;
}

bool RemoteAttest::verify(const crypto::Key128& ka, const AttestationReport& report,
                          std::uint64_t expected_nonce,
                          const rtos::TaskIdentity& expected_identity) {
  if (report.nonce != expected_nonce || report.identity != expected_identity) {
    return false;
  }
  ByteVec message;
  append_le64(message, report.nonce);
  message.insert(message.end(), report.identity.begin(), report.identity.end());
  return crypto::HmacSha1::verify(ka, message, report.mac);
}

}  // namespace tytan::core
