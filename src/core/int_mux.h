// Trusted interrupt multiplexer (paper §4, "Interrupting secure tasks").
//
// All interrupt vectors point here (first-level handler).  On entry the
// hardware exception engine has already pushed EIP and EFLAGS onto the
// interrupted task's stack and latched the interrupt origin and vector.
// The Int Mux then:
//   1. identifies the interrupted code by the latched origin EIP,
//   2. for a *secure* task: saves the remaining CPU registers to the task's
//      own stack, records the resulting SP in the shadow TCB (a trusted
//      region the OS cannot read), and wipes the register file so the
//      untrusted handler learns nothing about the task's state,
//   3. for a *normal* task: saves the registers without wiping (this is the
//      unmodified-FreeRTOS behaviour the paper compares against in Table 2),
//   4. branches to the second-level handler registered for the vector.
//
// It also implements the trusted resume services (Table 3) and message
// delivery entry used by the IPC proxy.
#pragma once

#include <functional>
#include <map>

#include "common/status.h"
#include "core/layout.h"
#include "rtos/task.h"
#include "sim/machine.h"

namespace tytan::core {

class IntMux {
 public:
  /// Cycle breakdown of the last context save (bench for Table 2).
  struct SaveStats {
    std::uint64_t store = 0;
    std::uint64_t wipe = 0;
    std::uint64_t branch = 0;
    std::uint64_t total = 0;
    bool secure = false;
  };

  /// Cycle breakdown of the last resume request (bench for Table 3).
  struct ResumeStats {
    std::uint64_t branch = 0;
    std::uint64_t restore = 0;
    std::uint64_t total = 0;
  };

  explicit IntMux(sim::Machine& machine) : machine_(machine) {}

  /// Execution identity of this component (EA-MPU code region).
  static constexpr std::uint32_t kIdent = sim::kFwIntMux;

  // -- wiring -------------------------------------------------------------------
  /// Second-level handler (a firmware address) for an interrupt vector.
  void set_vector_handler(std::uint8_t vector, std::uint32_t fw_addr);
  /// Resolver mapping a code address to the guest task executing there.
  void set_task_lookup(std::function<rtos::Tcb*(std::uint32_t)> lookup) {
    task_lookup_ = std::move(lookup);
  }

  // -- shadow TCBs ----------------------------------------------------------------
  Status register_secure_task(const rtos::Tcb& tcb);
  void unregister_secure_task(rtos::TaskHandle handle);
  /// Saved SP of a secure task (trusted read; tests use it to validate the
  /// frame the OS cannot see).
  Result<std::uint32_t> shadow_sp(rtos::TaskHandle handle) const;

  // -- first-level interrupt entry (registered at kIdent) ---------------------------
  void on_interrupt();

  // -- trusted services for the kernel / IPC proxy ----------------------------------
  /// Resume an interrupted secure task: SP from the shadow TCB, reason code
  /// in r1, branch to the dedicated entry point whose routine restores the
  /// context and irets (paper §4, "(Re)starting secure tasks").
  Status resume_secure(rtos::Tcb& tcb);
  /// First activation of a secure task (reason kReasonStart).
  Status start_secure(rtos::Tcb& tcb);
  /// Branch into a secure task's entry routine for message delivery
  /// (reason kReasonMessage).  Remembers the pre-message context so
  /// msg_done can restore it.
  Status enter_message(rtos::Tcb& tcb);
  /// End-of-message bookkeeping: restore the pre-message shadow SP.
  /// Returns true if a pre-message context exists (task should be resumed),
  /// false if the task should park until its next activation.
  Result<bool> finish_message(rtos::Tcb& tcb);
  /// True while the task is executing its message handler.
  [[nodiscard]] bool message_active(rtos::TaskHandle handle) const;

  /// Write a register slot inside a task's saved frame (syscall results).
  Status poke_saved_reg(const rtos::Tcb& tcb, unsigned reg, std::uint32_t value);
  /// Read a register slot from a task's saved frame (trusted; tests).
  Result<std::uint32_t> peek_saved_reg(const rtos::Tcb& tcb, unsigned reg) const;

  // -- normal-task context ops (the OS-visible path) --------------------------------
  /// Restore a normal task's context from its stack (FreeRTOS behaviour;
  /// exposed here so kernel and benches share one implementation).
  Status resume_normal(rtos::Tcb& tcb);

  [[nodiscard]] const SaveStats& last_save() const { return save_stats_; }
  [[nodiscard]] const ResumeStats& last_resume() const { return resume_stats_; }

  // -- snapshots ----------------------------------------------------------------
  /// Serialize / overwrite the shadow-TCB index, vector handler table, and
  /// last save/resume stats.  The authoritative shadow slot *contents* live
  /// in trusted physical memory and travel with the memory section.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  struct ShadowIndex {
    std::uint32_t region_base = 0;
    std::uint32_t region_size = 0;
    std::uint32_t entry = 0;
    std::uint32_t stack_top = 0;
    std::uint32_t slot_addr = 0;  ///< address of the entry in trusted memory
  };

  /// Shadow slot field offsets (trusted memory, kShadowTcbBase).
  static constexpr std::uint32_t kShadowSlotSize = 20;
  static constexpr std::uint32_t kOffFlags = 0;
  static constexpr std::uint32_t kOffSavedSp = 4;
  static constexpr std::uint32_t kOffMsgResumeSp = 8;
  static constexpr std::uint32_t kOffMsgHadCtx = 12;
  static constexpr std::uint32_t kFlagValid = 1u << 0;
  static constexpr std::uint32_t kFlagMsgActive = 1u << 1;

  [[nodiscard]] std::uint32_t saved_frame_base(const rtos::Tcb& tcb) const;

  /// Return false if the task's stack is not writable (wild SP); the caller
  /// routes to the fault handler instead of crashing the TCB.
  bool save_secure(rtos::Tcb& tcb);
  bool save_normal(rtos::Tcb& tcb);

  sim::Machine& machine_;
  std::function<rtos::Tcb*(std::uint32_t)> task_lookup_;
  std::map<std::uint8_t, std::uint32_t> vector_handlers_;
  std::map<rtos::TaskHandle, ShadowIndex> shadow_;
  SaveStats save_stats_;
  ResumeStats resume_stats_;
};

}  // namespace tytan::core
