// The (untrusted) operating-system kernel: the FreeRTOS port of the paper,
// extended with secure-task support.
//
// The kernel runs as firmware in the OS window.  It is *not* part of the
// trusted computing base with respect to secure tasks: every access it makes
// goes through the EA-MPU under the OS identity, so it can manage normal
// tasks (their regions are os_accessible) but cannot read or write a secure
// task's memory, stack, or saved context — resuming a secure task is
// delegated to the trusted Int Mux.
//
// Second-level interrupt handlers (the Int Mux branches here):
//   kFwOsKernel + kTickHandlerOff    timer tick -> scheduler
//   kFwOsKernel + kSyscallHandlerOff INT kVecSyscall dispatch
//   kFwFaultHandler                  EA-MPU / CPU fault -> kill offending task
//
// Firmware-backed tasks (idle, loader) execute one bounded quantum per
// machine step, so they are preemptible by design.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/int_mux.h"
#include "core/task_loader.h"
#include "rtos/queue.h"
#include "rtos/scheduler.h"
#include "rtos/timers.h"
#include "sim/devices.h"

namespace tytan::core {

class SecureStorage;
class Rtm;

class Kernel {
 public:
  static constexpr std::uint32_t kIdent = sim::kFwOsKernel;
  static constexpr std::uint32_t kTickHandlerOff = 0x00;
  static constexpr std::uint32_t kSyscallHandlerOff = 0x10;
  static constexpr std::uint32_t kDeviceIrqHandlerOff = 0x20;
  /// Firmware-task entries are handed out from this offset upward.
  static constexpr std::uint32_t kFwTaskEntryOff = 0x100;
  static constexpr std::uint32_t kFwTaskEntryStride = 0x20;

  Kernel(sim::Machine& machine, rtos::Scheduler& scheduler, IntMux& int_mux);

  // -- wiring (Platform) -------------------------------------------------------
  void set_loader(TaskLoader* loader) { loader_ = loader; }
  void set_storage(SecureStorage* storage) { storage_ = storage; }
  void set_rtm(Rtm* rtm) { rtm_ = rtm; }
  void set_serial(sim::SerialConsole* serial) { serial_ = serial; }
  void set_timer(sim::TimerDevice* timer) { timer_ = timer; }

  /// Register the kernel's firmware handlers and the Int Mux vector table.
  void install();

  /// Create the idle and loader firmware tasks, program the tick timer, and
  /// dispatch the first task.  `tick_period_cycles` is the RTOS tick period.
  Status start(std::uint32_t tick_period_cycles);

  // -- firmware tasks ------------------------------------------------------------
  /// Create a host-backed task executing `quantum` once per step while
  /// running.  Returning false parks the task until someone wakes it.
  Result<rtos::TaskHandle> create_firmware_task(const std::string& name, unsigned priority,
                                                std::function<bool()> quantum);

  /// Scheduler::QuantumRebuild hook for snapshot restore into a platform
  /// whose live task table has no matching firmware task: rebuilds the
  /// quantum closure of the kernel's own firmware tasks ("idle", "loader")
  /// and re-registers their machine firmware entry.  Firmware tasks created
  /// by test harnesses cannot be rebuilt and are a typed error — such
  /// platforms must restore in place.
  Status adopt_firmware_task(rtos::Tcb& tcb);

  // -- scheduling services ----------------------------------------------------------
  /// Pick and dispatch the highest-priority ready task (idle always exists).
  void reschedule();
  /// Dispatch a specific ready task immediately (IPC fast resume).
  Status resume_specific(rtos::TaskHandle handle);
  /// Activate a secure task's entry routine for message delivery.
  Status activate_message(rtos::TaskHandle handle);
  /// Wake the loader task (a load job was queued).
  void kick_loader();

  // -- handlers (invoked via firmware dispatch) ----------------------------------------
  void on_tick();
  void on_syscall();
  void on_fault();
  void on_device_irq();

  /// Route a device interrupt vector through the kernel so guest tasks can
  /// park on it with kSysWaitIrq (paper §4: tasks are interrupted "to react
  /// to an event like an arriving network package").
  void route_device_irq(std::uint8_t vector);

  // -- observability --------------------------------------------------------------------
  [[nodiscard]] std::uint64_t tick_count() const { return scheduler_.tick_count(); }
  [[nodiscard]] std::uint64_t syscall_count() const { return syscalls_; }
  [[nodiscard]] std::uint64_t fault_kills() const { return fault_kills_; }

  /// Stall watchdog: a task wedged (BlockReason::kStalled) for this many
  /// ticks is made ready again on the next tick boundary.
  void set_watchdog_ticks(std::uint64_t ticks) { watchdog_ticks_ = ticks; }
  [[nodiscard]] std::uint64_t watchdog_ticks() const { return watchdog_ticks_; }
  [[nodiscard]] std::uint64_t watchdog_restarts() const { return watchdog_restarts_; }
  [[nodiscard]] rtos::TaskHandle idle_task() const { return idle_task_; }
  [[nodiscard]] rtos::TaskHandle loader_task() const { return loader_task_; }
  [[nodiscard]] rtos::QueueSet& queues() { return queues_; }
  [[nodiscard]] rtos::TimerService& timers() { return timers_; }

  // -- snapshots ----------------------------------------------------------------
  /// Serialize / overwrite the kernel's own state: queues, task handles,
  /// firmware-entry cursor, counters, IRQ routing.  The scheduler's task
  /// table is a separate section.  Software timers hold closures and cannot
  /// travel; Platform::save refuses while any are active, and restore resets
  /// the timer service to empty.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  [[nodiscard]] std::function<bool()> idle_quantum();
  [[nodiscard]] std::function<bool()> loader_quantum();
  void run_firmware_quantum();
  void dispatch_guest(rtos::Tcb& tcb);
  void syscall_result(rtos::Tcb& tcb, std::uint32_t value);
  [[nodiscard]] std::uint32_t saved_reg(const rtos::Tcb& tcb, unsigned reg);

  sim::Machine& machine_;
  rtos::Scheduler& scheduler_;
  IntMux& int_mux_;
  TaskLoader* loader_ = nullptr;
  SecureStorage* storage_ = nullptr;
  Rtm* rtm_ = nullptr;
  sim::SerialConsole* serial_ = nullptr;
  sim::TimerDevice* timer_ = nullptr;

  rtos::QueueSet queues_;
  rtos::TimerService timers_;

  rtos::TaskHandle idle_task_ = rtos::kNoTask;
  rtos::TaskHandle loader_task_ = rtos::kNoTask;
  std::uint32_t next_fw_entry_ = kFwTaskEntryOff;
  std::uint64_t syscalls_ = 0;
  std::uint64_t fault_kills_ = 0;
  std::uint64_t watchdog_ticks_ = 8;
  std::uint64_t watchdog_restarts_ = 0;
  std::map<std::uint8_t, std::vector<rtos::TaskHandle>> irq_waiters_;
  std::set<std::uint8_t> routed_irqs_;
};

}  // namespace tytan::core
