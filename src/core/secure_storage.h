// Secure storage (paper §3, "Secure storage").
//
// "For each task a task key Kt = HMAC(id_t | Kp) is generated which is bound
// to the task identity (id_t) and the platform (Kp). [...] a task that tries
// to access data stored before will only succeed if it has the same id_t as
// the task that stored the data."
//
// Implemented as a trusted service: it reads Kp through the EA-MPU-gated key
// register under its own identity, derives Kt per caller identity, and keeps
// sealed blobs (XTEA-CTR + HMAC-SHA1, encrypt-then-MAC) in a trusted memory
// region.  Guest tasks reach it through the kSysSealStore/kSysSealLoad
// syscalls; hosts (tests, benches) may call the typed API directly.
#pragma once

#include <optional>

#include "core/layout.h"
#include "core/rtm.h"
#include "crypto/seal.h"
#include "rtos/task.h"
#include "sim/machine.h"

namespace tytan::core {

class SecureStorage {
 public:
  static constexpr std::uint32_t kIdent = sim::kFwSecureStorage;

  SecureStorage(sim::Machine& machine, Rtm& rtm) : machine_(machine), rtm_(rtm) {}

  /// Seal `data` under the caller's task key and persist it under `slot`.
  /// Re-storing a slot replaces the previous blob.
  Status store(const rtos::TaskIdentity& caller, std::uint32_t slot,
               std::span<const std::uint8_t> data);

  /// Verify and decrypt the blob at `slot`; fails with kCorrupt if the
  /// caller's identity (and hence Kt) differs from the sealer's.
  Result<ByteVec> load(const rtos::TaskIdentity& caller, std::uint32_t slot);

  /// Syscall backends: copy through guest memory under the *storage* identity
  /// (a static EA-MPU rule lets the service touch task memory; the OS cannot).
  std::uint32_t store_from_guest(const rtos::Tcb& caller, std::uint32_t ptr,
                                 std::uint32_t len, std::uint32_t slot);
  std::uint32_t load_to_guest(const rtos::Tcb& caller, std::uint32_t ptr,
                              std::uint32_t capacity, std::uint32_t slot);

  /// Task key Kt = HMAC(Kp, id_t) (the paper's HMAC(id_t | Kp) binding).
  crypto::Key128 task_key(const rtos::TaskIdentity& identity);

  /// Re-seal every blob owned by `from` under `to`'s task key.  Supports the
  /// paper's future-work runtime task update: after an authorized update the
  /// new binary (new id_t) inherits the old version's sealed state.  This is
  /// a trusted-service operation; authorization policy (e.g. a task-provider
  /// signature over old->new) is the caller's responsibility.
  Result<std::size_t> migrate(const rtos::TaskIdentity& from, const rtos::TaskIdentity& to);

  [[nodiscard]] std::uint32_t bytes_used() const { return next_offset_; }
  [[nodiscard]] std::size_t blob_count() const;
  /// Seal nonces consumed so far.  A failed store must not advance this —
  /// nonces are a consumable bound to persisted data (pinned by test_fault).
  [[nodiscard]] std::uint64_t nonces_used() const { return nonce_counter_ - 1; }
  /// Blobs marked poisoned after a failed unseal (graceful degradation: the
  /// typed kCorrupt error is returned once, later loads fail fast until a
  /// re-store supersedes the blob).
  [[nodiscard]] std::size_t poisoned_count() const;

  // -- snapshots ----------------------------------------------------------------
  /// Serialize / overwrite the blob index and nonce ledger.  The sealed
  /// bytes themselves live in trusted physical memory and travel with the
  /// memory section.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  struct BlobIndex {
    rtos::TaskIdentity owner{};
    std::uint32_t slot = 0;
    std::uint32_t addr = 0;  ///< serialized blob location in trusted memory
    std::uint32_t len = 0;
    bool valid = false;
    bool poisoned = false;  ///< unseal failed; cleared by a superseding store
  };

  crypto::Key128 read_kp();
  [[nodiscard]] BlobIndex* find(const rtos::TaskIdentity& owner, std::uint32_t slot);

  sim::Machine& machine_;
  Rtm& rtm_;
  std::vector<BlobIndex> blobs_;
  std::uint32_t next_offset_ = 0;
  std::uint64_t nonce_counter_ = 1;
};

}  // namespace tytan::core
