#include "core/eampu_driver.h"

#include "common/bytes.h"

namespace tytan::core {

namespace {
bool is_trusted_code(const hw::Rule& rule) {
  return rule.code_start >= sim::kFwOsKernel &&
         rule.code_start < sim::kTrustedDataBase + sim::kTrustedDataSize;
}
}  // namespace

bool EaMpuDriver::policy_violation(const hw::Rule& rule) const {
  for (std::size_t i = 0; i < hw::EaMpu::kNumSlots; ++i) {
    machine_.charge(machine_.costs().eampu_policy_per_slot);
    if (!mpu_.slot_used(i)) {
      continue;
    }
    const hw::Rule& existing = mpu_.slot(i);
    if (is_trusted_code(existing) || is_trusted_code(rule)) {
      continue;
    }
    // Exact aliases are deliberate sharing (the IPC proxy grants the same
    // window to both endpoints); only *partial* overlap is a policy breach.
    if (existing.data_start == rule.data_start && existing.data_size == rule.data_size) {
      continue;
    }
    if (ranges_overlap(existing.data_start, existing.data_size, rule.data_start,
                       rule.data_size)) {
      return true;
    }
  }
  return false;
}

Result<std::size_t> EaMpuDriver::configure(const hw::Rule& rule) {
  const sim::CostModel& costs = machine_.costs();
  stats_ = ConfigStats{};
  const std::uint64_t t0 = machine_.cycles();

  // Phase 1: find a free slot (linear probe, Table 6 "Finding free slot").
  machine_.charge(costs.eampu_find_base);
  std::size_t slot = hw::EaMpu::kNumSlots;
  for (std::size_t i = 0; i < hw::EaMpu::kNumSlots; ++i) {
    machine_.charge(costs.eampu_probe_slot);
    if (!mpu_.slot_used(i)) {
      slot = i;
      break;
    }
  }
  stats_.find = machine_.cycles() - t0;
  if (slot == hw::EaMpu::kNumSlots) {
    stats_.total = machine_.cycles() - t0;
    machine_.obs().emit(obs::EventKind::kMpuReject, -1, 0);
    return make_error(Err::kOutOfMemory, "EA-MPU: no free slot");
  }

  // Phase 2: policy check against every slot (Table 6 "Policy check").
  const std::uint64_t t1 = machine_.cycles();
  machine_.charge(costs.eampu_policy_base);
  const bool violation = policy_violation(rule);
  stats_.policy = machine_.cycles() - t1;
  if (violation) {
    stats_.total = machine_.cycles() - t0;
    machine_.obs().emit(obs::EventKind::kMpuReject, -1, 1);
    return make_error(Err::kAlreadyExists, "EA-MPU: protected regions overlap");
  }

  // Phase 3: write the rule (Table 6 "Writing rule").
  const std::uint64_t t2 = machine_.cycles();
  machine_.charge(costs.eampu_write_rule);
  hw::EaMpu::PortUnlock unlock(mpu_);
  if (Status s = mpu_.write_slot(slot, rule); !s.is_ok()) {
    return s;
  }
  stats_.write = machine_.cycles() - t2;
  stats_.total = machine_.cycles() - t0;
  stats_.slot = slot;
  machine_.obs().emit(obs::EventKind::kMpuConfig, -1,
                      static_cast<std::uint32_t>(slot),
                      static_cast<std::uint32_t>(stats_.total));
  return slot;
}

Status EaMpuDriver::unconfigure(std::size_t slot) {
  machine_.charge(machine_.costs().eampu_clear_rule);
  hw::EaMpu::PortUnlock unlock(mpu_);
  machine_.obs().emit(obs::EventKind::kMpuClear, -1, static_cast<std::uint32_t>(slot));
  return mpu_.clear_slot(slot);
}

Result<std::size_t> EaMpuDriver::add_exec_region(const hw::ExecRegion& region) {
  machine_.charge(machine_.costs().eampu_write_rule);
  hw::EaMpu::PortUnlock unlock(mpu_);
  return mpu_.add_exec_region(region);
}

Status EaMpuDriver::remove_exec_region(std::size_t idx) {
  machine_.charge(machine_.costs().eampu_clear_rule);
  hw::EaMpu::PortUnlock unlock(mpu_);
  return mpu_.remove_exec_region(idx);
}

void EaMpuDriver::save_state(snap::Writer& w) const {
  w.u64(stats_.find);
  w.u64(stats_.policy);
  w.u64(stats_.write);
  w.u64(stats_.total);
  w.u64(stats_.slot);
}

Status EaMpuDriver::restore_state(snap::Reader& r) {
  stats_.find = r.u64();
  stats_.policy = r.u64();
  stats_.write = r.u64();
  stats_.total = r.u64();
  stats_.slot = static_cast<std::size_t>(r.u64());
  return Status::ok();
}

}  // namespace tytan::core
