#include "core/ipc_proxy.h"

#include "common/log.h"
#include "fault/fault.h"

namespace tytan::core {

using rtos::TaskHandle;
using rtos::TaskIdentity;
using rtos::Tcb;

void IpcProxy::install() {
  machine_.register_firmware(kIdent, "ipc-proxy", [this](sim::Machine&) { on_ipc(); });
  int_mux_.set_vector_handler(sim::kVecIpc, kIdent);
}

Status IpcProxy::write_mailbox(const RegistryEntry& receiver, const TaskIdentity& sender_id,
                               const std::array<std::uint32_t, 4>& message) {
  if (receiver.mailbox == 0) {
    return make_error(Err::kInvalidArgument, "receiver has no mailbox (normal task?)");
  }
  const sim::CostModel& costs = machine_.costs();
  std::uint32_t addr = receiver.mailbox;
  machine_.charge(costs.ipc_copy_word);
  if (Status s = machine_.fw_write32(kIdent, addr, load_le32(sender_id.data())); !s.is_ok()) {
    return s;
  }
  machine_.charge(costs.ipc_copy_word);
  machine_.fw_write32(kIdent, addr + 4, load_le32(sender_id.data() + 4));
  for (unsigned i = 0; i < 4; ++i) {
    machine_.charge(costs.ipc_copy_word);
    machine_.fw_write32(kIdent, addr + 8 + i * 4, message[i]);
  }
  return Status::ok();
}

void IpcProxy::on_ipc() {
  const sim::CostModel& costs = machine_.costs();
  stats_ = IpcStats{};
  const std::uint64_t t0 = machine_.cycles();
  machine_.charge(costs.ipc_proxy_base);

  Tcb* sender = scheduler_.current();
  if (sender == nullptr || sender->kind != rtos::TaskKind::kGuest ||
      !sender->context_saved) {
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject,
                        sender != nullptr ? sender->handle : -1);
    kernel_.reschedule();
    return;
  }

  // Sender identity from the hardware interrupt origin (paper §4: the proxy
  // "obtains the origin of the interrupt from the hardware and determines
  // S's identity id_S") — not from anything the sender could forge.
  const std::uint32_t origin = machine_.int_origin_eip();
  const RegistryEntry* sender_entry = nullptr;
  for (const RegistryEntry& entry : rtm_.entries()) {
    machine_.charge(costs.ipc_registry_probe);
    if (origin >= entry.base && origin - entry.base < entry.size) {
      sender_entry = &entry;
      break;
    }
  }
  const TaskIdentity sender_id =
      sender_entry != nullptr ? sender_entry->identity : TaskIdentity{};

  // Message and receiver identity from the sender's *saved* context.
  auto reg = [&](unsigned r) {
    auto v = int_mux_.peek_saved_reg(*sender, r);
    return v.is_ok() ? *v : 0u;
  };
  const std::uint32_t op = reg(0);
  TaskIdentity receiver_id{};
  store_le32(receiver_id.data(), reg(1));
  store_le32(receiver_id.data() + 4, reg(2));
  const std::array<std::uint32_t, 4> message{reg(3), reg(4), reg(5), reg(6)};

  if (op != kIpcShmGrant) {
    if (fault::FaultEngine* engine = machine_.faults();
        engine != nullptr && engine->on_ipc_message()) {
      // Lossy transport: the message vanishes, the sender gets the same
      // typed kSysErr it would see on any rejection and may retry.
      ++rejected_;
      ++dropped_;
      machine_.obs().emit(obs::EventKind::kFaultInject, sender->handle,
                          static_cast<std::uint32_t>(fault::FaultClass::kIpcDrop));
      machine_.obs().emit(obs::EventKind::kIpcReject, sender->handle);
      TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "ipc")
          << "fault injection: dropped message from task " << sender->handle;
      int_mux_.poke_saved_reg(*sender, 0, kSysErr);
      kernel_.resume_specific(sender->handle);
      return;
    }
  }

  // Receiver lookup.
  const RegistryEntry* receiver_entry = nullptr;
  for (const RegistryEntry& entry : rtm_.entries()) {
    machine_.charge(costs.ipc_registry_probe);
    if (entry.identity == receiver_id) {
      receiver_entry = &entry;
      break;
    }
  }

  if (op == kIpcShmGrant) {
    handle_shm(*sender, sender_entry, receiver_entry, message[0] != 0 ? message[0] : reg(3));
    return;
  }

  if (receiver_entry == nullptr) {
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject, sender->handle);
    int_mux_.poke_saved_reg(*sender, 0, kSysErr);
    kernel_.resume_specific(sender->handle);
    return;
  }
  Tcb* receiver = scheduler_.get(receiver_entry->handle);
  if (receiver == nullptr || receiver->handle == sender->handle) {
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject, sender->handle);
    int_mux_.poke_saved_reg(*sender, 0, kSysErr);
    kernel_.resume_specific(sender->handle);
    return;
  }

  if (Status s = write_mailbox(*receiver_entry, sender_id, message); !s.is_ok()) {
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject, sender->handle);
    int_mux_.poke_saved_reg(*sender, 0, kSysErr);
    kernel_.resume_specific(sender->handle);
    return;
  }
  int_mux_.poke_saved_reg(*sender, 0, kSysOk);
  ++delivered_;
  stats_.proxy = machine_.cycles() - t0;

  const bool sync = (op == kIpcSendSync) && !int_mux_.message_active(receiver->handle);
  machine_.obs().emit(obs::EventKind::kIpcSend, sender->handle,
                      static_cast<std::uint32_t>(receiver->handle), sync ? 1u : 0u);
  machine_.obs().emit(obs::EventKind::kIpcDeliver, receiver->handle);
  if (sync) {
    // Paper: "For synchronous communication, the IPC proxy branches to R,
    // whose entry routine processes m."  The sender goes back to the ready
    // queue; the receiver runs now.
    scheduler_.yield_current();
    const std::uint64_t t1 = machine_.cycles();
    if (receiver->state == rtos::TaskState::kBlocked ||
        receiver->state == rtos::TaskState::kSuspended) {
      scheduler_.make_ready(receiver->handle);
    }
    receiver->message_pending = true;
    if (Status s = kernel_.activate_message(receiver->handle); !s.is_ok()) {
      // Could not branch (e.g. handler busy): leave it pending (async).
      kernel_.reschedule();
    }
    // The branch into the receiver is proxy work (paper: proxy 1,208 incl.
    // the branch; entry routine 116); attribute it accordingly.
    const std::uint64_t branch = machine_.costs().resume_branch;
    const std::uint64_t entry_span = machine_.cycles() - t1;
    stats_.entry = entry_span > branch ? entry_span - branch : entry_span;
    stats_.proxy += std::min(branch, entry_span);
    stats_.total = machine_.cycles() - t0;
    stats_.delivered = true;
    return;
  }

  // Async: mark pending; R processes m the next time it is scheduled; the
  // proxy continues executing S.
  receiver->message_pending = true;
  if (receiver->state == rtos::TaskState::kBlocked &&
      receiver->block_reason == rtos::BlockReason::kMessage) {
    scheduler_.make_ready(receiver->handle);
  }
  stats_.total = machine_.cycles() - t0;
  stats_.delivered = true;
  kernel_.resume_specific(sender->handle);
}

void IpcProxy::handle_shm(Tcb& sender, const RegistryEntry* sender_entry,
                          const RegistryEntry* receiver_entry, std::uint32_t size) {
  machine_.charge(machine_.costs().ipc_shm_setup);
  if (sender_entry == nullptr || receiver_entry == nullptr || size == 0 ||
      size > 0x10000) {
    TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "ipc")
        << "shm grant rejected: sender_entry=" << (sender_entry != nullptr)
        << " receiver_entry=" << (receiver_entry != nullptr) << " size=" << size;
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject, sender.handle);
    int_mux_.poke_saved_reg(sender, 0, kSysErr);
    kernel_.resume_specific(sender.handle);
    return;
  }
  auto base = arena_.alloc(size);
  if (!base.is_ok()) {
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject, sender.handle);
    int_mux_.poke_saved_reg(sender, 0, kSysErr);
    kernel_.resume_specific(sender.handle);
    return;
  }
  const hw::Rule rule_a{.code_start = sender_entry->base,
                        .code_size = sender_entry->size,
                        .data_start = *base,
                        .data_size = size,
                        .perms = hw::kPermRead | hw::kPermWrite};
  const hw::Rule rule_b{.code_start = receiver_entry->base,
                        .code_size = receiver_entry->size,
                        .data_start = *base,
                        .data_size = size,
                        .perms = hw::kPermRead | hw::kPermWrite};
  auto slot_a = driver_.configure(rule_a);
  if (!slot_a.is_ok()) {
    TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "ipc") << "shm rule A rejected: "
                                      << slot_a.status().to_string();
    arena_.free(*base);
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject, sender.handle);
    int_mux_.poke_saved_reg(sender, 0, kSysErr);
    kernel_.resume_specific(sender.handle);
    return;
  }
  auto slot_b = driver_.configure(rule_b);
  if (!slot_b.is_ok()) {
    TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "ipc") << "shm rule B rejected: "
                                      << slot_b.status().to_string();
    driver_.unconfigure(*slot_a);
    arena_.free(*base);
    ++rejected_;
    machine_.obs().emit(obs::EventKind::kIpcReject, sender.handle);
    int_mux_.poke_saved_reg(sender, 0, kSysErr);
    kernel_.resume_specific(sender.handle);
    return;
  }
  grants_.push_back({sender.handle, receiver_entry->handle, *base, size, *slot_a, *slot_b});
  machine_.obs().emit(obs::EventKind::kIpcShmGrant, sender.handle, *base, size);

  // Tell the receiver where the window lives (async notification message).
  Tcb* receiver = scheduler_.get(receiver_entry->handle);
  if (receiver != nullptr) {
    write_mailbox(*receiver_entry,
                  sender_entry != nullptr ? sender_entry->identity : TaskIdentity{},
                  {0x53484D31u /* "SHM1" */, *base, size, 0});
    receiver->message_pending = true;
    if (receiver->state == rtos::TaskState::kBlocked &&
        receiver->block_reason == rtos::BlockReason::kMessage) {
      scheduler_.make_ready(receiver->handle);
    }
  }
  ++delivered_;
  int_mux_.poke_saved_reg(sender, 0, *base);
  kernel_.resume_specific(sender.handle);
}

Status IpcProxy::deliver(const TaskIdentity& sender_id, const TaskIdentity& receiver_id,
                         const std::array<std::uint32_t, 4>& message, bool sync) {
  if (fault::FaultEngine* engine = machine_.faults();
      engine != nullptr && engine->on_ipc_message()) {
    ++rejected_;
    ++dropped_;
    machine_.obs().emit(obs::EventKind::kFaultInject, -1,
                        static_cast<std::uint32_t>(fault::FaultClass::kIpcDrop));
    machine_.obs().emit(obs::EventKind::kIpcReject, -1);
    return make_error(Err::kUnavailable, "fault injection: ipc message dropped");
  }
  const RegistryEntry* receiver_entry = rtm_.find_by_identity(receiver_id);
  if (receiver_entry == nullptr) {
    return make_error(Err::kNotFound, "deliver: unknown receiver identity");
  }
  Tcb* receiver = scheduler_.get(receiver_entry->handle);
  if (receiver == nullptr) {
    return make_error(Err::kNotFound, "deliver: receiver task gone");
  }
  machine_.charge(machine_.costs().ipc_proxy_base);
  if (Status s = write_mailbox(*receiver_entry, sender_id, message); !s.is_ok()) {
    return s;
  }
  receiver->message_pending = true;
  if (receiver->state == rtos::TaskState::kBlocked &&
      receiver->block_reason == rtos::BlockReason::kMessage) {
    scheduler_.make_ready(receiver->handle);
  }
  ++delivered_;
  machine_.obs().emit(obs::EventKind::kIpcDeliver, receiver->handle,
                      0, sync ? 1u : 0u);
  if (sync && scheduler_.current() == nullptr) {
    return kernel_.activate_message(receiver_entry->handle);
  }
  return Status::ok();
}

Status IpcProxy::release_grant(std::uint32_t base) {
  for (std::size_t i = 0; i < grants_.size(); ++i) {
    if (grants_[i].base == base) {
      driver_.unconfigure(grants_[i].slot_a);
      driver_.unconfigure(grants_[i].slot_b);
      arena_.free(base);
      grants_.erase(grants_.begin() + static_cast<std::ptrdiff_t>(i));
      return Status::ok();
    }
  }
  return make_error(Err::kNotFound, "no grant at this base");
}

void IpcProxy::save_state(snap::Writer& w) const {
  w.u64(stats_.proxy);
  w.u64(stats_.entry);
  w.u64(stats_.total);
  w.boolean(stats_.delivered);
  w.u32(static_cast<std::uint32_t>(grants_.size()));
  for (const ShmGrant& grant : grants_) {
    w.i32(grant.a);
    w.i32(grant.b);
    w.u32(grant.base);
    w.u32(grant.size);
    w.u64(grant.slot_a);
    w.u64(grant.slot_b);
  }
  w.u64(delivered_);
  w.u64(rejected_);
  w.u64(dropped_);
}

Status IpcProxy::restore_state(snap::Reader& r) {
  stats_.proxy = r.u64();
  stats_.entry = r.u64();
  stats_.total = r.u64();
  stats_.delivered = r.boolean();
  const std::uint32_t count = r.u32();
  grants_.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    ShmGrant grant;
    grant.a = r.i32();
    grant.b = r.i32();
    grant.base = r.u32();
    grant.size = r.u32();
    grant.slot_a = static_cast<std::size_t>(r.u64());
    grant.slot_b = static_cast<std::size_t>(r.u64());
    grants_.push_back(grant);
  }
  delivered_ = r.u64();
  rejected_ = r.u64();
  dropped_ = r.u64();
  return Status::ok();
}

}  // namespace tytan::core
