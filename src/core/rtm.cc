#include "core/rtm.h"

#include "common/bytes.h"
#include "common/log.h"
#include "tbf/tbf.h"

namespace tytan::core {

using rtos::TaskHandle;
using rtos::TaskIdentity;

rtos::TaskIdentity Rtm::identity_from_digest(const crypto::Sha1Digest& digest) {
  TaskIdentity id{};
  std::copy(digest.begin(), digest.begin() + 8, id.begin());
  return id;
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

Status Rtm::begin_measurement(const rtos::Tcb& tcb, std::vector<isa::Relocation> relocs) {
  if (job_.has_value()) {
    return make_error(Err::kUnavailable, "RTM: measurement already in progress");
  }
  if (tcb.image_size == 0) {
    return make_error(Err::kInvalidArgument, "RTM: task has no image");
  }
  for (const isa::Relocation& reloc : relocs) {
    if (reloc.offset + 4 > tcb.image_size) {
      return make_error(Err::kInvalidArgument, "RTM: relocation outside image");
    }
  }
  Job job;
  job.handle = tcb.handle;
  job.base = tcb.region_base;
  job.image_size = tcb.image_size;
  job.relocs = std::move(relocs);
  job.start_cycles = machine_.cycles();
  stats_ = MeasureStats{};
  stats_.addresses = static_cast<std::uint32_t>(job.relocs.size());
  machine_.charge(machine_.costs().rtm_setup);
  stats_.setup = machine_.costs().rtm_setup;
  // Walking the relocation table costs a fixed floor even with zero entries
  // (Table 7's "# of addresses = 0 -> 114 cycles" row).
  machine_.charge(machine_.costs().rtm_reloc_walk);
  stats_.reloc = machine_.costs().rtm_reloc_walk;
  job_ = std::move(job);
  result_.reset();
  // The measurement spans many scheduler quanta; it closes at Phase::kDone.
  job_->span = machine_.obs().spans().begin(obs::SpanPhase::kRtmMeasure, tcb.handle);
  machine_.obs().emit(obs::EventKind::kRtmBegin, tcb.handle, tcb.image_size);
  return Status::ok();
}

void Rtm::patch_site(const isa::Relocation& reloc, std::uint32_t base, bool revert) {
  const std::uint32_t addr = job_->base + reloc.offset;
  auto word = machine_.fw_read32(kIdent, addr);
  TYTAN_CHECK(word.is_ok(), "RTM denied read of task image: " + word.status().to_string());
  std::uint8_t bytes[4];
  store_le32(bytes, *word);
  const isa::Relocation local{.offset = 0, .kind = reloc.kind, .addend = reloc.addend};
  tbf::apply_relocation(local, bytes, revert ? 0 : base);
  const Status s = machine_.fw_write32(kIdent, addr, load_le32(bytes));
  TYTAN_CHECK(s.is_ok(), "RTM denied write of task image: " + s.to_string());
}

bool Rtm::measure_quantum() {
  if (!job_.has_value()) {
    return false;
  }
  Job& job = *job_;
  const sim::CostModel& costs = machine_.costs();
  ++stats_.quanta;

  switch (job.phase) {
    case Job::Phase::kRevert: {
      if (job.reloc_index < job.relocs.size()) {
        machine_.charge(costs.rtm_per_addr / 2);
        stats_.reloc += costs.rtm_per_addr / 2;
        patch_site(job.relocs[job.reloc_index], job.base, /*revert=*/true);
        ++job.reloc_index;
        return true;
      }
      job.phase = Job::Phase::kHash;
      job.reloc_index = 0;
      return true;
    }
    case Job::Phase::kHash: {
      if (job.hash_offset < job.image_size) {
        const std::uint32_t take =
            std::min<std::uint32_t>(crypto::kSha1BlockSize, job.image_size - job.hash_offset);
        std::uint8_t block[crypto::kSha1BlockSize];
        for (std::uint32_t i = 0; i < take; ++i) {
          auto byte = machine_.fw_read8(kIdent, job.base + job.hash_offset + i);
          TYTAN_CHECK(byte.is_ok(), "RTM denied image read");
          block[i] = *byte;
        }
        job.sha.update(std::span<const std::uint8_t>(block, take));
        machine_.charge(costs.rtm_hash_block);
        stats_.hash += costs.rtm_hash_block;
        ++stats_.blocks;
        machine_.obs().emit(obs::EventKind::kRtmHashBlock, job.handle, stats_.blocks);
        job.hash_offset += take;
        return true;
      }
      job.digest = job.sha.finish();
      machine_.charge(costs.rtm_finalize);
      stats_.finalize = costs.rtm_finalize;
      job.phase = Job::Phase::kReapply;
      return true;
    }
    case Job::Phase::kReapply: {
      if (job.reloc_index < job.relocs.size()) {
        machine_.charge(costs.rtm_per_addr - costs.rtm_per_addr / 2);
        stats_.reloc += costs.rtm_per_addr - costs.rtm_per_addr / 2;
        patch_site(job.relocs[job.reloc_index], job.base, /*revert=*/false);
        ++job.reloc_index;
        return true;
      }
      job.phase = Job::Phase::kDone;
      result_ = job.digest;
      stats_.total = machine_.cycles() - job.start_cycles;
      machine_.obs().spans().end(job.span, obs::SpanOutcome::kOk);
      machine_.obs().emit(obs::EventKind::kRtmDone, job.handle,
                          static_cast<std::uint32_t>(stats_.total));
      job_.reset();
      return false;
    }
    case Job::Phase::kDone:
      return false;
  }
  return false;
}

Result<crypto::Sha1Digest> Rtm::take_result() {
  if (!result_.has_value()) {
    return make_error(Err::kUnavailable, "RTM: no completed measurement");
  }
  const crypto::Sha1Digest digest = *result_;
  result_.reset();
  return digest;
}

Result<crypto::Sha1Digest> Rtm::measure_now(const rtos::Tcb& tcb,
                                            std::vector<isa::Relocation> relocs) {
  if (Status s = begin_measurement(tcb, std::move(relocs)); !s.is_ok()) {
    return s;
  }
  while (measure_quantum()) {
  }
  return take_result();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Status Rtm::register_task(const rtos::Tcb& tcb, const crypto::Sha1Digest& digest) {
  if (find_by_handle(tcb.handle) != nullptr) {
    return make_error(Err::kAlreadyExists, "RTM registry: task already registered");
  }
  if ((entries_.size() + 1) * kRegistryEntrySize > kRtmRegistrySize) {
    return make_error(Err::kOutOfMemory, "RTM registry full");
  }
  RegistryEntry entry;
  entry.handle = tcb.handle;
  entry.digest = digest;
  entry.identity = identity_from_digest(digest);
  entry.base = tcb.region_base;
  entry.size = tcb.region_size;
  entry.entry = tcb.entry;
  entry.mailbox = tcb.mailbox;
  entry.secure = tcb.secure;
  entry.entry_addr =
      kRtmRegistryBase + static_cast<std::uint32_t>(entries_.size()) * kRegistryEntrySize;

  // Serialize into the EA-MPU-protected registry region (RTM-only writable);
  // probe the first byte so a misconfigured platform surfaces as an error.
  if (Status s = machine_.fw_write8(kIdent, entry.entry_addr, entry.identity[0]);
      !s.is_ok()) {
    return s;
  }
  serialize_entry(entry);
  entries_.push_back(entry);
  return Status::ok();
}

void Rtm::serialize_entry(const RegistryEntry& entry) {
  std::uint32_t addr = entry.entry_addr;
  for (std::size_t i = 0; i < entry.identity.size(); ++i) {
    machine_.fw_write8(kIdent, addr + static_cast<std::uint32_t>(i), entry.identity[i]);
  }
  addr += 8;
  for (std::size_t i = 0; i < entry.digest.size(); ++i) {
    machine_.fw_write8(kIdent, addr + static_cast<std::uint32_t>(i), entry.digest[i]);
  }
  addr += 20;
  machine_.fw_write32(kIdent, addr + 0, entry.base);
  machine_.fw_write32(kIdent, addr + 4, entry.size);
  machine_.fw_write32(kIdent, addr + 8, entry.entry);
  machine_.fw_write32(kIdent, addr + 12, entry.mailbox);
  machine_.fw_write32(kIdent, addr + 16,
                      kRegistryFlagValid | (entry.secure ? kRegistryFlagSecure : 0));
}

Status Rtm::unregister_task(TaskHandle handle) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].handle == handle) {
      // Invalidate the vacated tail slot, compact, and re-serialize so the
      // wire registry stays dense and consistent with the host index.
      const std::uint32_t last_addr =
          kRtmRegistryBase +
          static_cast<std::uint32_t>(entries_.size() - 1) * kRegistryEntrySize;
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      for (std::size_t j = i; j < entries_.size(); ++j) {
        entries_[j].entry_addr =
            kRtmRegistryBase + static_cast<std::uint32_t>(j) * kRegistryEntrySize;
        serialize_entry(entries_[j]);
      }
      machine_.fw_write32(kIdent, last_addr + 44, 0);
      return Status::ok();
    }
  }
  return make_error(Err::kNotFound, "RTM registry: no such task");
}

const RegistryEntry* Rtm::find_by_handle(TaskHandle handle) const {
  for (const RegistryEntry& entry : entries_) {
    if (entry.handle == handle) {
      return &entry;
    }
  }
  return nullptr;
}

const RegistryEntry* Rtm::find_by_identity(const TaskIdentity& id) const {
  for (const RegistryEntry& entry : entries_) {
    if (entry.identity == id) {
      return &entry;
    }
  }
  return nullptr;
}

const RegistryEntry* Rtm::find_by_region(std::uint32_t addr) const {
  for (const RegistryEntry& entry : entries_) {
    if (addr >= entry.base && addr - entry.base < entry.size) {
      return &entry;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

void Rtm::save_state(snap::Writer& w) const {
  w.boolean(job_.has_value());
  if (job_) {
    w.i32(job_->handle);
    w.u32(job_->base);
    w.u32(job_->image_size);
    w.u32(static_cast<std::uint32_t>(job_->relocs.size()));
    for (const isa::Relocation& reloc : job_->relocs) {
      w.u32(reloc.offset);
      w.u8(static_cast<std::uint8_t>(reloc.kind));
      w.u32(reloc.addend);
    }
    const crypto::Sha1::State sha = job_->sha.save_state();
    for (const std::uint32_t word : sha.h) {
      w.u32(word);
    }
    w.raw(sha.buffer);
    w.u64(sha.buffer_len);
    w.u64(sha.total_bits);
    w.u64(sha.blocks);
    w.u8(static_cast<std::uint8_t>(job_->phase));
    w.u64(job_->reloc_index);
    w.u32(job_->hash_offset);
    w.u64(job_->start_cycles);
    w.boolean(job_->digest.has_value());
    if (job_->digest) {
      w.raw(*job_->digest);
    }
  }
  w.boolean(result_.has_value());
  if (result_) {
    w.raw(*result_);
  }
  w.u64(stats_.setup);
  w.u64(stats_.hash);
  w.u64(stats_.reloc);
  w.u64(stats_.finalize);
  w.u64(stats_.total);
  w.u32(stats_.blocks);
  w.u32(stats_.addresses);
  w.u32(stats_.quanta);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const RegistryEntry& entry : entries_) {
    w.i32(entry.handle);
    w.raw(entry.identity);
    w.raw(entry.digest);
    w.u32(entry.base);
    w.u32(entry.size);
    w.u32(entry.entry);
    w.u32(entry.mailbox);
    w.boolean(entry.secure);
    w.u32(entry.entry_addr);
  }
}

Status Rtm::restore_state(snap::Reader& r) {
  job_.reset();
  if (r.boolean()) {
    Job job;
    job.handle = r.i32();
    job.base = r.u32();
    job.image_size = r.u32();
    const std::uint32_t relocs = r.u32();
    for (std::uint32_t i = 0; i < relocs && r.ok(); ++i) {
      isa::Relocation reloc;
      reloc.offset = r.u32();
      reloc.kind = static_cast<isa::RelocKind>(r.u8());
      reloc.addend = r.u32();
      job.relocs.push_back(reloc);
    }
    crypto::Sha1::State sha;
    for (std::uint32_t& word : sha.h) {
      word = r.u32();
    }
    r.raw(sha.buffer);
    sha.buffer_len = r.u64();
    sha.total_bits = r.u64();
    sha.blocks = r.u64();
    job.sha.restore_state(sha);
    job.phase = static_cast<Job::Phase>(r.u8());
    job.reloc_index = static_cast<std::size_t>(r.u64());
    job.hash_offset = r.u32();
    job.start_cycles = r.u64();
    job.span = 0;  // spans are host observability and do not travel
    if (r.boolean()) {
      crypto::Sha1Digest digest{};
      r.raw(digest);
      job.digest = digest;
    }
    job_ = std::move(job);
  }
  result_.reset();
  if (r.boolean()) {
    crypto::Sha1Digest digest{};
    r.raw(digest);
    result_ = digest;
  }
  stats_.setup = r.u64();
  stats_.hash = r.u64();
  stats_.reloc = r.u64();
  stats_.finalize = r.u64();
  stats_.total = r.u64();
  stats_.blocks = r.u32();
  stats_.addresses = r.u32();
  stats_.quanta = r.u32();
  const std::uint32_t entries = r.u32();
  entries_.clear();
  for (std::uint32_t i = 0; i < entries && r.ok(); ++i) {
    RegistryEntry entry;
    entry.handle = r.i32();
    r.raw(entry.identity);
    r.raw(entry.digest);
    entry.base = r.u32();
    entry.size = r.u32();
    entry.entry = r.u32();
    entry.mailbox = r.u32();
    entry.secure = r.boolean();
    entry.entry_addr = r.u32();
    entries_.push_back(entry);
  }
  return Status::ok();
}

}  // namespace tytan::core
