#include "core/task_update.h"

#include "common/log.h"

namespace tytan::core {

using rtos::TaskHandle;
using rtos::Tcb;

Status UpdateManager::swap(TaskHandle old_handle, TaskHandle new_handle,
                           const UpdateParams& params) {
  const std::uint64_t t0 = machine_.cycles();
  Tcb* old_tcb = scheduler_.get(old_handle);
  Tcb* new_tcb = scheduler_.get(new_handle);
  if (old_tcb == nullptr || new_tcb == nullptr) {
    return make_error(Err::kNotFound, "update swap: task vanished");
  }
  if (old_tcb->secure != new_tcb->secure) {
    return make_error(Err::kInvalidArgument, "update swap: task kind changed");
  }

  // Carry over an undelivered mailbox message (exactly-once delivery).
  if (old_tcb->message_pending && old_tcb->mailbox != 0 && new_tcb->mailbox != 0) {
    for (std::uint32_t i = 0; i < 24; i += 4) {
      auto word = machine_.fw_read32(sim::kFwIpcProxy, old_tcb->mailbox + i);
      if (word.is_ok()) {
        machine_.fw_write32(sim::kFwIpcProxy, new_tcb->mailbox + i, *word);
      }
    }
    new_tcb->message_pending = true;
  }

  // Sealed-state hand-over: the identity changed, so Kt changed — re-seal.
  bool migrated_storage = false;
  if (params.migrate_storage && old_tcb->measured && new_tcb->measured) {
    auto migrated = storage_.migrate(old_tcb->identity, new_tcb->identity);
    if (!migrated.is_ok()) {
      return migrated.status();
    }
    migrated_storage = *migrated > 0;
    TYTAN_CLOG(machine_.log(), LogLevel::kInfo, "update")
        << "migrated " << *migrated << " sealed blob(s) to the new identity";
  }

  const unsigned priority = old_tcb->priority;
  const rtos::TaskIdentity old_identity = old_tcb->identity;
  const rtos::TaskIdentity new_identity = new_tcb->identity;
  if (Status s = loader_.unload(old_handle); !s.is_ok()) {
    // The old version stays in service; hand its sealed blobs back so a
    // failed swap does not leave them bound to an identity about to vanish
    // (update_now unloads the replacement on any swap error).
    if (migrated_storage) {
      storage_.migrate(new_identity, old_identity);
    }
    return s;
  }
  new_tcb->priority = priority;  // the replacement inherits the slot's priority
  scheduler_.make_ready(new_handle);
  last_swap_cycles_ = machine_.cycles() - t0;
  last_updated_ = new_handle;
  return Status::ok();
}

Result<TaskHandle> UpdateManager::update_now(TaskHandle old_handle, isa::ObjectFile next,
                                             LoadParams load_params, UpdateParams params) {
  if (scheduler_.get(old_handle) == nullptr) {
    return make_error(Err::kNotFound, "update: no such task");
  }
  load_params.auto_start = false;
  load_params.on_loaded = nullptr;
  auto new_handle = loader_.load_now(std::move(next), std::move(load_params));
  if (!new_handle.is_ok()) {
    return new_handle;
  }
  if (Status s = swap(old_handle, *new_handle, params); !s.is_ok()) {
    loader_.unload(*new_handle);
    return s;
  }
  return new_handle;
}

Result<TaskHandle> UpdateManager::begin_update(TaskHandle old_handle, isa::ObjectFile next,
                                               LoadParams load_params, UpdateParams params) {
  if (pending_) {
    return make_error(Err::kUnavailable, "update already in progress");
  }
  if (scheduler_.get(old_handle) == nullptr) {
    return make_error(Err::kNotFound, "update: no such task");
  }
  load_params.auto_start = false;
  load_params.on_loaded = [this, old_handle, params](TaskHandle new_handle) {
    last_swap_status_ = swap(old_handle, new_handle, params);
    if (!last_swap_status_.is_ok()) {
      TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "update")
          << "swap failed: " << last_swap_status_.to_string();
      loader_.unload(new_handle);
    }
    pending_ = false;
  };
  auto new_handle = loader_.begin_load(std::move(next), std::move(load_params));
  if (!new_handle.is_ok()) {
    return new_handle;
  }
  pending_ = true;
  return new_handle;
}

void UpdateManager::save_state(snap::Writer& w) const {
  w.boolean(pending_);
  w.i32(last_updated_);
  w.u64(last_swap_cycles_);
  w.i32(static_cast<std::int32_t>(last_swap_status_.code()));
  w.str(last_swap_status_.message());
}

Status UpdateManager::restore_state(snap::Reader& r) {
  pending_ = r.boolean();
  last_updated_ = r.i32();
  last_swap_cycles_ = r.u64();
  const auto code = static_cast<Err>(r.i32());
  std::string message = r.str();
  last_swap_status_ = code == Err::kOk ? Status::ok() : make_error(code, std::move(message));
  return Status::ok();
}

}  // namespace tytan::core
