#include "core/task_loader.h"

#include "common/bytes.h"
#include "common/log.h"
#include "fault/fault.h"
#include "tbf/tbf.h"

namespace tytan::core {

using rtos::TaskHandle;

namespace {
constexpr std::uint32_t align_up(std::uint32_t v, std::uint32_t a) {
  return (v + a - 1) & ~(a - 1);
}
/// Words copied per loader quantum (bounded execution time per quantum).
constexpr std::uint32_t kCopyWordsPerQuantum = 64;
/// Relocations applied per loader quantum.
constexpr std::size_t kRelocsPerQuantum = 4;
}  // namespace

// ---------------------------------------------------------------------------
// RamArena
// ---------------------------------------------------------------------------

RamArena::RamArena(std::uint32_t base, std::uint32_t size) {
  blocks_.push_back({base, size, false});
}

Result<std::uint32_t> RamArena::alloc(std::uint32_t size, std::uint32_t align) {
  if (size == 0) {
    return make_error(Err::kInvalidArgument, "arena: zero-size allocation");
  }
  size = align_up(size, align);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    Block& block = blocks_[i];
    if (block.used) {
      continue;
    }
    const std::uint32_t aligned = align_up(block.base, align);
    const std::uint32_t pad = aligned - block.base;
    if (block.size < pad + size) {
      continue;
    }
    // Split off padding and tail as free blocks.
    if (pad != 0) {
      blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(i),
                     {block.base, pad, false});
      Block& b = blocks_[i + 1];
      b.base += pad;
      b.size -= pad;
      return alloc(size, align);  // retry with clean layout
    }
    if (block.size > size) {
      blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     {block.base + size, block.size - size, false});
      blocks_[i].size = size;
    }
    blocks_[i].used = true;
    return blocks_[i].base;
  }
  return make_error(Err::kOutOfMemory, "arena: no block large enough");
}

Status RamArena::free(std::uint32_t base) {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].base == base && blocks_[i].used) {
      blocks_[i].used = false;
      // Coalesce with neighbours.
      if (i + 1 < blocks_.size() && !blocks_[i + 1].used) {
        blocks_[i].size += blocks_[i + 1].size;
        blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      }
      if (i > 0 && !blocks_[i - 1].used) {
        blocks_[i - 1].size += blocks_[i].size;
        blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      return Status::ok();
    }
  }
  return make_error(Err::kNotFound, "arena: no allocation at this base");
}

std::uint32_t RamArena::free_bytes() const {
  std::uint32_t total = 0;
  for (const Block& block : blocks_) {
    total += block.used ? 0 : block.size;
  }
  return total;
}

// ---------------------------------------------------------------------------
// TaskLoader
// ---------------------------------------------------------------------------

TaskLoader::TaskLoader(sim::Machine& machine, rtos::Scheduler& scheduler,
                       EaMpuDriver& driver, Rtm& rtm, IntMux& int_mux)
    : machine_(machine),
      scheduler_(scheduler),
      driver_(driver),
      rtm_(rtm),
      int_mux_(int_mux),
      arena_(sim::kRamBase, sim::kRamEnd - sim::kRamBase) {}

Result<TaskHandle> TaskLoader::begin_load(isa::ObjectFile object, LoadParams params) {
  if (job_.has_value()) {
    return make_error(Err::kUnavailable, "loader busy");
  }
  if (object.image.empty()) {
    return make_error(Err::kInvalidArgument, "empty task image");
  }
  if (object.entry >= object.image.size()) {
    return make_error(Err::kInvalidArgument, "entry outside image");
  }
  if (fault::FaultEngine* engine = machine_.faults(); engine != nullptr) {
    const std::int64_t bit = engine->on_load(params.name, object.image.size());
    if (bit >= 0) {
      // Corrupt the image in transit, before any measurement: the RTM must
      // catch this downstream (expected_identity) or the lint gate may.
      object.image[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::uint8_t>(1U << (bit % 8));
      machine_.obs().emit(obs::EventKind::kFaultInject, -1,
                          static_cast<std::uint32_t>(fault::FaultClass::kTbfBitflip),
                          static_cast<std::uint32_t>(bit));
      TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "loader")
          << "fault injection: flipped bit " << bit << " of image '" << params.name
          << "'";
    }
  }
  rtos::TaskParams task_params{.name = params.name,
                               .priority = params.priority,
                               .secure = object.secure(),
                               .kind = rtos::TaskKind::kGuest};
  auto handle = scheduler_.create(task_params);
  if (!handle.is_ok()) {
    return handle.status();
  }
  Job job;
  job.object = std::move(object);
  job.params = std::move(params);
  job.handle = *handle;
  job.start_cycles = machine_.cycles();
  stats_ = CreateStats{};
  stats_.secure = job.object.secure();
  stats_.relocations = static_cast<std::uint32_t>(job.object.relocs.size());
  stats_.image_bytes = static_cast<std::uint32_t>(job.object.image.size());
  job_ = std::move(job);
  machine_.obs().emit(obs::EventKind::kLoadBegin, *handle, stats_.image_bytes,
                      stats_.secure ? 1u : 0u);
  return *handle;
}

void TaskLoader::fail_job(Status status) {
  TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "loader") << "load failed: " << status.to_string();
  if (rtos::Tcb* tcb = scheduler_.get(job_->handle); tcb != nullptr) {
    if (tcb->mpu_slot >= 0) {
      driver_.unconfigure(static_cast<std::size_t>(tcb->mpu_slot));
    }
    if (tcb->exec_region_idx >= 0) {
      driver_.remove_exec_region(static_cast<std::size_t>(tcb->exec_region_idx));
    }
    int_mux_.unregister_secure_task(job_->handle);
  }
  scheduler_.destroy(job_->handle);
  if (job_->base != 0) {
    arena_.free(job_->base);
  }
  job_->failed = true;
  job_->failure = std::move(status);
}

bool TaskLoader::load_quantum() {
  if (!job_.has_value()) {
    return false;
  }
  if (job_->failed) {
    job_.reset();
    return false;
  }
  const Phase before = job_->phase;
  const TaskHandle handle = job_->handle;
  bool more = false;
  switch (before) {
    case Phase::kVerify: more = quantum_verify(); break;
    case Phase::kAlloc: more = quantum_alloc(); break;
    case Phase::kCopy: more = quantum_copy(); break;
    case Phase::kReloc: more = quantum_reloc(); break;
    case Phase::kStackPrep: more = quantum_stack_prep(); break;
    case Phase::kMpu: more = quantum_mpu(); break;
    case Phase::kMeasure: more = quantum_measure(); break;
    case Phase::kRegister: more = quantum_register(); break;
    case Phase::kDone:
      job_.reset();
      return false;
  }
  // An on_loaded callback may have replaced job_ with a different load; only
  // report a transition of the job this quantum actually advanced.
  if (job_.has_value() && job_->handle == handle && job_->phase != before) {
    machine_.obs().emit(obs::EventKind::kLoadPhase, handle,
                        static_cast<std::uint32_t>(job_->phase));
  }
  return more;
}

bool TaskLoader::quantum_verify() {
  Job& job = *job_;
  // Step 0: static verification.  Runs host-side before any task memory is
  // allocated and charges no simulated cycles — the paper's load-time cost
  // model (Tables 4/5) is unchanged by the lint gate.
  lint_report_ = analysis::Report{};
  if (lint_mode_ != LintMode::kOff) {
    lint_report_ = analysis::analyze(job.object, lint_config_);
    stats_.lint_findings = static_cast<std::uint32_t>(lint_report_.findings.size());
    for (const analysis::Finding& finding : lint_report_.findings) {
      const LogLevel level = finding.severity == analysis::Severity::kError
                                 ? LogLevel::kWarn
                                 : LogLevel::kInfo;
      TYTAN_CLOG(machine_.log(), level, "loader")
          << "lint " << job.params.name << ": " << analysis::format_finding(finding);
    }
    if (lint_mode_ == LintMode::kStrict && lint_report_.errors() > 0) {
      const analysis::Finding* first = lint_report_.first(analysis::Severity::kError);
      fail_job(make_error(Err::kInvalidArgument,
                          "static verifier rejected image: " +
                              analysis::format_finding(*first)));
      return true;
    }
  }
  job.phase = Phase::kAlloc;
  return true;
}

bool TaskLoader::quantum_alloc() {
  Job& job = *job_;
  const std::uint64_t t0 = machine_.cycles();
  machine_.charge(machine_.costs().alloc_base);
  const auto image_end = align_up(static_cast<std::uint32_t>(job.object.image.size()) +
                                      job.object.bss_size,
                                  16);
  job.total_size = image_end + align_up(std::max(job.object.stack_size, 64u), 16);
  auto base = arena_.alloc(job.total_size);
  if (!base.is_ok()) {
    fail_job(base.status());
    return true;
  }
  job.base = *base;
  stats_.alloc = machine_.cycles() - t0;
  job.phase = Phase::kCopy;
  return true;
}

bool TaskLoader::quantum_copy() {
  Job& job = *job_;
  const std::uint64_t t0 = machine_.cycles();
  const auto image_size = static_cast<std::uint32_t>(job.object.image.size());
  std::uint32_t copied = 0;
  while (job.copy_offset < image_size && copied < kCopyWordsPerQuantum * 4) {
    const std::uint32_t remaining = image_size - job.copy_offset;
    if (remaining >= 4) {
      machine_.charge(machine_.costs().load_per_word);
      const std::uint32_t word = load_le32(job.object.image.data() + job.copy_offset);
      if (Status s = machine_.fw_write32(kIdent, job.base + job.copy_offset, word);
          !s.is_ok()) {
        fail_job(s);
        return true;
      }
      job.copy_offset += 4;
      copied += 4;
    } else {
      machine_.charge(machine_.costs().load_per_word);
      for (std::uint32_t i = 0; i < remaining; ++i) {
        machine_.fw_write8(kIdent, job.base + job.copy_offset + i,
                           job.object.image[job.copy_offset + i]);
      }
      job.copy_offset += remaining;
      copied += remaining;
    }
  }
  stats_.copy += machine_.cycles() - t0;
  if (job.copy_offset >= image_size) {
    job.phase = Phase::kReloc;
    machine_.charge(machine_.costs().reloc_base);
    stats_.reloc += machine_.costs().reloc_base;
  }
  return true;
}

bool TaskLoader::quantum_reloc() {
  Job& job = *job_;
  const std::uint64_t t0 = machine_.cycles();
  std::size_t applied = 0;
  while (job.reloc_index < job.object.relocs.size() && applied < kRelocsPerQuantum) {
    const isa::Relocation& reloc = job.object.relocs[job.reloc_index];
    machine_.charge(machine_.costs().reloc_per_addr);
    auto word = machine_.fw_read32(kIdent, job.base + reloc.offset);
    if (!word.is_ok()) {
      fail_job(word.status());
      return true;
    }
    std::uint8_t bytes[4];
    store_le32(bytes, *word);
    const isa::Relocation local{.offset = 0, .kind = reloc.kind, .addend = reloc.addend};
    tbf::apply_relocation(local, bytes, job.base);
    machine_.fw_write32(kIdent, job.base + reloc.offset, load_le32(bytes));
    ++job.reloc_index;
    ++applied;
  }
  stats_.reloc += machine_.cycles() - t0;
  if (job.reloc_index >= job.object.relocs.size()) {
    job.phase = Phase::kStackPrep;
  }
  return true;
}

bool TaskLoader::quantum_stack_prep() {
  Job& job = *job_;
  const std::uint64_t t0 = machine_.cycles();
  machine_.charge(machine_.costs().stack_prep);

  rtos::Tcb* tcb = scheduler_.get(job.handle);
  TYTAN_CHECK(tcb != nullptr, "loader: TCB vanished");
  tcb->region_base = job.base;
  tcb->region_size = job.total_size;
  tcb->image_size = static_cast<std::uint32_t>(job.object.image.size());
  tcb->entry = job.base + job.object.entry;
  tcb->msg_handler = job.object.msg_handler != 0 ? job.base + job.object.msg_handler : 0;
  tcb->mailbox = job.object.mailbox != 0 ? job.base + job.object.mailbox : 0;
  tcb->stack_top = job.base + job.total_size;

  // Zero bss + stack.
  const auto image_size = static_cast<std::uint32_t>(job.object.image.size());
  machine_.memory().fill(job.base + image_size, job.total_size - image_size, 0);

  if (!tcb->secure) {
    // Paper: "the OS prepares the stack of this task as if it had been
    // executed before and was interrupted" — an initial frame so the normal
    // resume path starts the task.
    std::uint32_t sp = tcb->stack_top;
    sp -= 4;
    machine_.fw_write32(kIdent, sp, isa::kFlagIF);  // EFLAGS
    sp -= 4;
    machine_.fw_write32(kIdent, sp, tcb->entry);  // EIP
    for (unsigned i = 0; i < 7; ++i) {
      sp -= 4;
      machine_.fw_write32(kIdent, sp, 0);  // r0..r6 image (stored r6-first)
    }
    tcb->saved_sp = sp;
    tcb->context_saved = true;
  }
  stats_.stack = machine_.cycles() - t0;
  job.phase = Phase::kMpu;
  return true;
}

bool TaskLoader::quantum_mpu() {
  Job& job = *job_;
  rtos::Tcb* tcb = scheduler_.get(job.handle);
  const std::uint64_t t0 = machine_.cycles();

  hw::ExecRegion exec{.start = job.base,
                      .size = job.total_size,
                      .entry = tcb->secure ? tcb->entry : hw::ExecRegion::kEntryAnywhere};
  auto exec_idx = driver_.add_exec_region(exec);
  if (!exec_idx.is_ok()) {
    fail_job(exec_idx.status());
    return true;
  }
  tcb->exec_region_idx = static_cast<int>(*exec_idx);

  hw::Rule rule{.code_start = job.base,
                .code_size = job.total_size,
                .data_start = job.base,
                .data_size = job.total_size,
                .perms = hw::kPermRead | hw::kPermWrite,
                .os_accessible = !tcb->secure};
  auto slot = driver_.configure(rule);
  if (!slot.is_ok()) {
    driver_.remove_exec_region(*exec_idx);
    tcb->exec_region_idx = -1;
    fail_job(slot.status());
    return true;
  }
  tcb->mpu_slot = static_cast<int>(*slot);
  stats_.eampu = machine_.cycles() - t0;

  if (tcb->secure) {
    if (Status s = int_mux_.register_secure_task(*tcb); !s.is_ok()) {
      fail_job(s);
      return true;
    }
    job.phase = Phase::kMeasure;
    if (Status s = rtm_.begin_measurement(*tcb, job.object.relocs); !s.is_ok()) {
      fail_job(s);
      return true;
    }
  } else {
    job.phase = Phase::kRegister;
  }
  return true;
}

bool TaskLoader::quantum_measure() {
  // The RTM state machine does one bounded unit per quantum; the loader task
  // simply drives it (the paper's RTM task is preemptible in exactly the
  // same way — see DESIGN.md).
  const std::uint64_t t0 = machine_.cycles();
  const bool more = rtm_.measure_quantum();
  stats_.rtm += machine_.cycles() - t0;
  if (!more) {
    job_->phase = Phase::kRegister;
  }
  return true;
}

bool TaskLoader::quantum_register() {
  Job& job = *job_;
  rtos::Tcb* tcb = scheduler_.get(job.handle);
  machine_.charge(machine_.costs().sched_pick);

  if (tcb->secure) {
    auto digest = rtm_.take_result();
    if (!digest.is_ok()) {
      fail_job(digest.status());
      return true;
    }
    const rtos::TaskIdentity measured = Rtm::identity_from_digest(*digest);
    if (job.params.expected_identity.has_value() &&
        measured != *job.params.expected_identity) {
      // Graceful degradation: quarantine the binary (keep the evidence)
      // instead of registering a task the verifier would reject anyway.
      quarantine_.push_back({job.params.name, measured, machine_.cycles()});
      machine_.obs().emit(obs::EventKind::kFaultRecover, job.handle,
                          static_cast<std::uint32_t>(fault::RecoveryKind::kQuarantine),
                          static_cast<std::uint32_t>(quarantine_.size()));
      if (fault::FaultEngine* engine = machine_.faults(); engine != nullptr) {
        engine->note_recovery(fault::FaultClass::kTbfBitflip);
      }
      fail_job(make_error(Err::kCorrupt,
                          "measured identity of '" + job.params.name +
                              "' differs from golden expectation — quarantined"));
      return true;
    }
    if (Status s = rtm_.register_task(*tcb, *digest); !s.is_ok()) {
      fail_job(s);
      return true;
    }
    tcb->identity = measured;
    tcb->measured = true;
  }
  if (job.params.auto_start) {
    scheduler_.make_ready(job.handle);
  }
  if (machine_.profiler() != nullptr) {
    // Side table for the sampling profiler: the task's code region plus the
    // TBF symbol table (every assembler label), so samples resolve to
    // task + symbol without touching the simulated state.
    machine_.profiler()->add_region(job.handle, job.params.name, tcb->region_base,
                                    tcb->region_size, job.object.symbols);
  }
  if (obs::HeatRecorder* heat = machine_.heat(); heat != nullptr) {
    // Execution observatory: name the loaded region and seed static block
    // leaders from CFG recovery so heat blocks line up with the disassembler's
    // basic blocks (runtime leader detection alone would split only at
    // discontinuities).  Heat regions deliberately persist across unload —
    // the profile is cumulative history, not live state.
    heat->add_region(job.handle, job.params.name, tcb->region_base, tcb->region_size);
    analysis::Report scratch;
    const analysis::Cfg cfg = analysis::recover_cfg(job.object, scratch);
    std::vector<std::uint32_t> offsets;
    offsets.reserve(cfg.blocks.size());
    for (const auto& [start, block] : cfg.blocks) {
      offsets.push_back(start);
    }
    heat->add_leaders(tcb->region_base, offsets);
  }
  // The decode cache already observed the image copy (write watch) and the
  // EA-MPU slot writes (config epoch); dropping it here is belt and braces
  // so a freshly loaded region can never execute stale decoded blocks.
  machine_.invalidate_decode_cache();
  stats_.total = machine_.cycles() - job.start_cycles;
  machine_.obs().emit(obs::EventKind::kLoadDone, job.handle,
                      static_cast<std::uint32_t>(stats_.total));
  TYTAN_CLOG(machine_.log(), LogLevel::kInfo, "loader")
      << "loaded " << job.params.name << " in " << stats_.total << " cycles";
  last_loaded_ = job.handle;
  job.phase = Phase::kDone;
  if (job.params.on_loaded) {
    // Move the callback out: it may start another load, which replaces job_.
    auto callback = std::move(job.params.on_loaded);
    const rtos::TaskHandle loaded = job.handle;
    job_.reset();
    callback(loaded);
    return job_.has_value();
  }
  return true;
}

Result<TaskHandle> TaskLoader::load_now(isa::ObjectFile object, LoadParams params) {
  auto handle = begin_load(std::move(object), std::move(params));
  if (!handle.is_ok()) {
    return handle;
  }
  Status failure = Status::ok();
  while (job_.has_value()) {
    if (job_->failed) {
      failure = job_->failure;
    }
    load_quantum();
  }
  if (!failure.is_ok()) {
    return failure;
  }
  return handle;
}

Status TaskLoader::unload(TaskHandle handle) {
  rtos::Tcb* tcb = scheduler_.get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "unload: no such task");
  }
  if (tcb->mpu_slot >= 0) {
    driver_.unconfigure(static_cast<std::size_t>(tcb->mpu_slot));
  }
  if (tcb->exec_region_idx >= 0) {
    driver_.remove_exec_region(static_cast<std::size_t>(tcb->exec_region_idx));
  }
  if (tcb->secure) {
    rtm_.unregister_task(handle);
    int_mux_.unregister_secure_task(handle);
  }
  if (tcb->region_base != 0) {
    // Wipe the region so secrets never leak into the next allocation.
    machine_.memory().fill(tcb->region_base, tcb->region_size, 0);
    arena_.free(tcb->region_base);
  }
  if (machine_.profiler() != nullptr) {
    machine_.profiler()->remove_region(handle);
  }
  // See the matching invalidate in finish_load: the wipe and the EA-MPU
  // teardown above already killed the affected blocks; this pins the
  // invariant even if the region was never wiped (region_base == 0).
  machine_.invalidate_decode_cache();
  return scheduler_.destroy(handle);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

void RamArena::save_state(snap::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(blocks_.size()));
  for (const Block& block : blocks_) {
    w.u32(block.base);
    w.u32(block.size);
    w.boolean(block.used);
  }
}

Status RamArena::restore_state(snap::Reader& r) {
  const std::uint32_t count = r.u32();
  blocks_.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    Block block{};
    block.base = r.u32();
    block.size = r.u32();
    block.used = r.boolean();
    blocks_.push_back(block);
  }
  return Status::ok();
}

namespace {

void write_object(snap::Writer& w, const isa::ObjectFile& object) {
  w.blob(object.image);
  w.u32(object.bss_size);
  w.u32(object.stack_size);
  w.u32(object.entry);
  w.u32(object.msg_handler);
  w.u32(object.mailbox);
  w.u32(object.flags);
  w.u32(static_cast<std::uint32_t>(object.relocs.size()));
  for (const isa::Relocation& reloc : object.relocs) {
    w.u32(reloc.offset);
    w.u8(static_cast<std::uint8_t>(reloc.kind));
    w.u32(reloc.addend);
  }
  w.u32(static_cast<std::uint32_t>(object.symbols.size()));
  for (const auto& [name, offset] : object.symbols) {
    w.str(name);
    w.u32(offset);
  }
}

isa::ObjectFile read_object(snap::Reader& r) {
  isa::ObjectFile object;
  object.image = r.blob();
  object.bss_size = r.u32();
  object.stack_size = r.u32();
  object.entry = r.u32();
  object.msg_handler = r.u32();
  object.mailbox = r.u32();
  object.flags = r.u32();
  const std::uint32_t relocs = r.u32();
  for (std::uint32_t i = 0; i < relocs && r.ok(); ++i) {
    isa::Relocation reloc;
    reloc.offset = r.u32();
    reloc.kind = static_cast<isa::RelocKind>(r.u8());
    reloc.addend = r.u32();
    object.relocs.push_back(reloc);
  }
  const std::uint32_t symbols = r.u32();
  for (std::uint32_t i = 0; i < symbols && r.ok(); ++i) {
    std::string name = r.str();
    object.symbols[std::move(name)] = r.u32();
  }
  return object;
}

void write_status(snap::Writer& w, const Status& status) {
  w.i32(static_cast<std::int32_t>(status.code()));
  w.str(status.message());
}

Status read_status(snap::Reader& r) {
  const auto code = static_cast<Err>(r.i32());
  std::string message = r.str();
  if (code == Err::kOk) {
    return Status::ok();
  }
  return make_error(code, std::move(message));
}

}  // namespace

void TaskLoader::save_state(snap::Writer& w) const {
  arena_.save_state(w);
  w.boolean(job_.has_value());
  if (job_) {
    write_object(w, job_->object);
    w.str(job_->params.name);
    w.u32(job_->params.priority);
    w.boolean(job_->params.auto_start);
    w.boolean(job_->params.expected_identity.has_value());
    if (job_->params.expected_identity) {
      w.raw(*job_->params.expected_identity);
    }
    w.i32(job_->handle);
    w.u8(static_cast<std::uint8_t>(job_->phase));
    w.u32(job_->base);
    w.u32(job_->total_size);
    w.u32(job_->copy_offset);
    w.u64(job_->reloc_index);
    w.u64(job_->start_cycles);
    w.boolean(job_->failed);
    write_status(w, job_->failure);
  }
  w.i32(last_loaded_);
  w.u64(stats_.alloc);
  w.u64(stats_.copy);
  w.u64(stats_.reloc);
  w.u64(stats_.stack);
  w.u64(stats_.eampu);
  w.u64(stats_.rtm);
  w.u64(stats_.total);
  w.u32(stats_.relocations);
  w.u32(stats_.image_bytes);
  w.boolean(stats_.secure);
  w.u32(stats_.lint_findings);
  w.u32(static_cast<std::uint32_t>(quarantine_.size()));
  for (const QuarantineRecord& record : quarantine_) {
    w.str(record.name);
    w.raw(record.measured);
    w.u64(record.cycle);
  }
}

Status TaskLoader::restore_state(snap::Reader& r) {
  if (Status s = arena_.restore_state(r); !s.is_ok()) {
    return s;
  }
  job_.reset();
  if (r.boolean()) {
    Job job;
    job.object = read_object(r);
    job.params.name = r.str();
    job.params.priority = r.u32();
    job.params.auto_start = r.boolean();
    if (r.boolean()) {
      rtos::TaskIdentity identity{};
      r.raw(identity);
      job.params.expected_identity = identity;
    }
    job.handle = r.i32();
    job.phase = static_cast<Phase>(r.u8());
    job.base = r.u32();
    job.total_size = r.u32();
    job.copy_offset = r.u32();
    job.reloc_index = static_cast<std::size_t>(r.u64());
    job.start_cycles = r.u64();
    job.failed = r.boolean();
    job.failure = read_status(r);
    job_ = std::move(job);
  }
  last_loaded_ = r.i32();
  stats_.alloc = r.u64();
  stats_.copy = r.u64();
  stats_.reloc = r.u64();
  stats_.stack = r.u64();
  stats_.eampu = r.u64();
  stats_.rtm = r.u64();
  stats_.total = r.u64();
  stats_.relocations = r.u32();
  stats_.image_bytes = r.u32();
  stats_.secure = r.boolean();
  stats_.lint_findings = r.u32();
  const std::uint32_t records = r.u32();
  quarantine_.clear();
  for (std::uint32_t i = 0; i < records && r.ok(); ++i) {
    QuarantineRecord record;
    record.name = r.str();
    r.raw(record.measured);
    record.cycle = r.u64();
    quarantine_.push_back(std::move(record));
  }
  return Status::ok();
}

}  // namespace tytan::core
