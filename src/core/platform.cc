#include "core/platform.h"

#include "common/log.h"

namespace tytan::core {

DeviceSet DeviceSet::standard(const crypto::Key128& kp, std::uint64_t rng_seed) {
  DeviceSet set;
  set.timer = std::make_shared<sim::TimerDevice>();
  set.serial = std::make_shared<sim::SerialConsole>();
  set.pedal = std::make_shared<sim::SensorDevice>("pedal", sim::kMmioPedal);
  set.radar = std::make_shared<sim::SensorDevice>("radar", sim::kMmioRadar);
  set.engine = std::make_shared<sim::EngineActuator>();
  set.rng = std::make_shared<sim::RngDevice>(rng_seed);
  set.can = std::make_shared<sim::CanBusDevice>();
  set.key_register = std::make_shared<hw::KeyRegister>(kp);
  return set;
}

std::vector<std::shared_ptr<sim::Device>> DeviceSet::all() const {
  std::vector<std::shared_ptr<sim::Device>> devices;
  for (const std::shared_ptr<sim::Device>& device :
       std::initializer_list<std::shared_ptr<sim::Device>>{timer, serial, pedal, radar,
                                                           engine, rng, can,
                                                           key_register}) {
    if (device != nullptr) {
      devices.push_back(device);
    }
  }
  devices.insert(devices.end(), extra.begin(), extra.end());
  return devices;
}

Platform::Platform(const Config& config, DeviceSet devices)
    : config_(config), devices_(std::move(devices)) {
  machine_ = std::make_unique<sim::Machine>(config.costs, config.log);
  machine_->set_dispatch_mode(config.dispatch);
  if (!config.fault_plan.empty()) {
    fault_engine_ = std::make_unique<fault::FaultEngine>(config.fault_plan);
    machine_->set_fault_engine(fault_engine_.get());
  }
  mpu_ = std::make_unique<hw::EaMpu>();
  scheduler_ = std::make_unique<rtos::Scheduler>();

  // Observability wiring: the scheduler feeds the machine's event bus, and
  // the machine learns which task is current so events and tracer entries can
  // be attributed.  No cycles are charged by any of this.
  scheduler_->set_event_bus(&machine_->obs().bus());
  machine_->set_task_context(
      [s = scheduler_.get()] { return static_cast<std::int32_t>(s->current_handle()); });

  // MMIO devices.
  for (const std::shared_ptr<sim::Device>& device : devices_.all()) {
    device->set_irq_sink([m = machine_.get()](std::uint8_t vec) { m->raise_irq(vec); });
    machine_->bus().attach(device);
  }

  // Trusted components and the kernel.
  int_mux_ = std::make_unique<IntMux>(*machine_);
  driver_ = std::make_unique<EaMpuDriver>(*machine_, *mpu_);
  rtm_ = std::make_unique<Rtm>(*machine_);
  loader_ = std::make_unique<TaskLoader>(*machine_, *scheduler_, *driver_, *rtm_, *int_mux_);
  loader_->set_lint(config.lint_mode, config.lint_config);
  kernel_ = std::make_unique<Kernel>(*machine_, *scheduler_, *int_mux_);
  storage_ = std::make_unique<SecureStorage>(*machine_, *rtm_);
  attest_ = std::make_unique<RemoteAttest>(*machine_, *rtm_);
  proxy_ = std::make_unique<IpcProxy>(*machine_, *scheduler_, *rtm_, *int_mux_, *driver_,
                                      *kernel_, loader_->arena());
  updater_ = std::make_unique<UpdateManager>(*machine_, *scheduler_, *loader_, *storage_);
  boot_rom_ = std::make_unique<SecureBootRom>(*machine_, *mpu_);

  kernel_->set_loader(loader_.get());
  kernel_->set_storage(storage_.get());
  kernel_->set_rtm(rtm_.get());
  kernel_->set_serial(devices_.serial.get());
  kernel_->set_timer(devices_.timer.get());

  // Firmware handler registration (the Int Mux is the first-level handler).
  machine_->register_firmware(IntMux::kIdent, "int-mux",
                              [this](sim::Machine&) { int_mux_->on_interrupt(); });
  kernel_->install();
  kernel_->route_device_irq(sim::kVecCan);
  proxy_->install();
}

Result<BootReport> Platform::boot() {
  if (booted_) {
    return make_error(Err::kAlreadyExists, "platform already booted");
  }
  const std::vector<BootComponent> manifest = default_manifest();
  boot_rom_->load_images(manifest);
  auto report = boot_rom_->verify_and_lock(manifest);
  if (!report.is_ok() || !report->ok) {
    boot_report_ = report.is_ok() ? *report : BootReport{};
    return make_error(Err::kCorrupt, "secure boot failed");
  }
  boot_report_ = *report;
  if (Status s = kernel_->start(config_.tick_period); !s.is_ok()) {
    return s;
  }
  booted_ = true;
  return boot_report_;
}

// ---------------------------------------------------------------------------
// Task management
// ---------------------------------------------------------------------------

Result<rtos::TaskHandle> Platform::load_task_source(std::string_view source,
                                                    LoadParams params) {
  auto object = isa::assemble(source);
  if (!object.is_ok()) {
    return object.status();
  }
  return load_task(object.take(), std::move(params));
}

Result<rtos::TaskHandle> Platform::load_task(isa::ObjectFile object, LoadParams params) {
  if (!booted_) {
    return make_error(Err::kUnavailable, "platform not booted");
  }
  return loader_->load_now(std::move(object), std::move(params));
}

Result<rtos::TaskHandle> Platform::load_task_async(isa::ObjectFile object,
                                                   LoadParams params) {
  if (!booted_) {
    return make_error(Err::kUnavailable, "platform not booted");
  }
  auto handle = loader_->begin_load(std::move(object), std::move(params));
  if (handle.is_ok()) {
    kernel_->kick_loader();
  }
  return handle;
}

Result<rtos::TaskHandle> Platform::load_task_source_async(std::string_view source,
                                                          LoadParams params) {
  auto object = isa::assemble(source);
  if (!object.is_ok()) {
    return object.status();
  }
  return load_task_async(object.take(), std::move(params));
}

Result<rtos::TaskHandle> Platform::update_task(rtos::TaskHandle handle,
                                               std::string_view source, LoadParams params,
                                               UpdateParams update) {
  auto object = isa::assemble(source);
  if (!object.is_ok()) {
    return object.status();
  }
  auto result = updater_->update_now(handle, object.take(), std::move(params), update);
  ensure_scheduled();
  return result;
}

Result<rtos::TaskHandle> Platform::update_task_async(rtos::TaskHandle handle,
                                                     isa::ObjectFile object,
                                                     LoadParams params,
                                                     UpdateParams update) {
  auto new_handle = updater_->begin_update(handle, std::move(object), std::move(params),
                                           update);
  if (new_handle.is_ok()) {
    kernel_->kick_loader();
  }
  return new_handle;
}

void Platform::ensure_scheduled() {
  // Host-side task operations can tear the *running* task out from under the
  // CPU (unload/suspend/update of the current task).  The scheduler then has
  // no current task while EIP still points into the old region — dispatch a
  // fresh task before the machine steps again.  A secure task suspended this
  // way restarts fresh on resume (its live register state is not captured).
  if (booted_ && scheduler_->current() == nullptr) {
    kernel_->reschedule();
  }
}

Status Platform::unload_task(rtos::TaskHandle handle) {
  Status s = loader_->unload(handle);
  ensure_scheduled();
  return s;
}

Status Platform::suspend_task(rtos::TaskHandle handle) {
  Status s = scheduler_->suspend(handle);
  ensure_scheduled();
  return s;
}

Status Platform::resume_task(rtos::TaskHandle handle) {
  return scheduler_->resume(handle);
}

Status Platform::set_task_budget(rtos::TaskHandle handle, std::uint64_t cycles_per_tick) {
  rtos::Tcb* tcb = scheduler_->get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "set_task_budget: no such task");
  }
  tcb->budget_per_tick = cycles_per_tick;
  tcb->budget_used = 0;
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

sim::HaltReason Platform::run_for(std::uint64_t cycles) {
  return machine_->run(machine_->cycles() + cycles);
}

bool Platform::run_until(const std::function<bool()>& predicate,
                         std::uint64_t max_cycles) {
  const std::uint64_t deadline = machine_->cycles() + max_cycles;
  while (machine_->cycles() < deadline && !machine_->halted()) {
    if (predicate()) {
      return true;
    }
    machine_->step();
  }
  return predicate();
}

}  // namespace tytan::core
