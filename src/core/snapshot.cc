// Platform state enumeration and versioned snapshot/restore.
//
// State ownership contract (docs/SNAPSHOT.md): every piece of guest-visible
// state is reachable from the Platform and appears in exactly one section of
// visit_state().  Host-only observability (profiler samples, event bus,
// metrics, spans, the lint report) and pure wiring (firmware handler
// registrations, IRQ sinks, hooks) are deliberately excluded: they never
// influence guest execution, so a restored platform re-executes
// bit-identically without them.

#include <cstring>
#include <type_traits>

#include "core/platform.h"
#include "isa/isa.h"

namespace tytan::core {

namespace {

std::string fault_plan_text(const fault::FaultPlan& plan) {
  std::string text;
  for (const fault::FaultSpec& spec : plan.specs) {
    if (!text.empty()) {
      text += ';';
    }
    text += spec.to_string();
  }
  return text;
}

std::array<std::uint8_t, sizeof(sim::CostModel)> cost_model_bytes(
    const sim::CostModel& costs) {
  static_assert(std::is_trivially_copyable_v<sim::CostModel>);
  std::array<std::uint8_t, sizeof(sim::CostModel)> bytes{};
  std::memcpy(bytes.data(), &costs, sizeof(sim::CostModel));
  return bytes;
}

/// The CONF section doubles as the restore compatibility check and the
/// platform-reconstruction recipe (config_from_snapshot) for replay tooling.
void save_conf(Platform& platform, snap::Writer& w) {
  const Platform::Config& config = platform.config();
  w.u32(platform.machine().memory().size());
  w.u32(config.tick_period);
  w.raw(config.kp);
  w.u64(config.rng_seed);
  w.u8(static_cast<std::uint8_t>(config.lint_mode));
  w.str(fault_plan_text(config.fault_plan));
  w.u64(config.fault_plan.seed);
  w.blob(cost_model_bytes(config.costs));
  const auto& devices = platform.machine().bus().devices();
  w.u32(static_cast<std::uint32_t>(devices.size()));
  for (const auto& device : devices) {
    w.str(device->name());
  }
}

Status check_conf(Platform& platform, snap::Reader& r) {
  const Platform::Config& config = platform.config();
  auto mismatch = [](const std::string& what) {
    return make_error(Err::kInvalidArgument,
                      "snapshot incompatible with this platform: " + what +
                          " differs");
  };
  if (r.u32() != platform.machine().memory().size()) {
    return mismatch("memory size");
  }
  if (r.u32() != config.tick_period) {
    return mismatch("tick period");
  }
  crypto::Key128 kp{};
  r.raw(kp);
  if (kp != config.kp) {
    return mismatch("platform key Kp");
  }
  if (r.u64() != config.rng_seed) {
    return mismatch("rng seed");
  }
  if (static_cast<LintMode>(r.u8()) != config.lint_mode) {
    return mismatch("lint mode");
  }
  if (r.str() != fault_plan_text(config.fault_plan)) {
    return mismatch("fault plan");
  }
  if (r.u64() != config.fault_plan.seed) {
    return mismatch("fault seed");
  }
  const ByteVec costs = r.blob();
  const auto own_costs = cost_model_bytes(config.costs);
  if (costs.size() != own_costs.size() ||
      !std::equal(costs.begin(), costs.end(), own_costs.begin())) {
    return mismatch("cost model");
  }
  const auto& devices = platform.machine().bus().devices();
  if (r.u32() != devices.size()) {
    return mismatch("device complement");
  }
  for (const auto& device : devices) {
    if (r.str() != device->name()) {
      return mismatch("device complement");
    }
  }
  return Status::ok();
}

void save_boot_report(const BootReport& report, snap::Writer& w) {
  w.boolean(report.ok);
  w.u32(report.trusted_bytes);
  w.u32(static_cast<std::uint32_t>(report.components.size()));
  for (const BootReport::Entry& entry : report.components) {
    w.str(entry.name);
    w.u32(entry.window);
    w.u32(entry.footprint);
    w.boolean(entry.verified);
  }
}

BootReport read_boot_report(snap::Reader& r) {
  BootReport report;
  report.ok = r.boolean();
  report.trusted_bytes = r.u32();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    BootReport::Entry entry;
    entry.name = r.str();
    entry.window = r.u32();
    entry.footprint = r.u32();
    entry.verified = r.boolean();
    report.components.push_back(std::move(entry));
  }
  return report;
}

}  // namespace

Status Platform::visit_state(snap::StateVisitor& visitor) {
  // Fixed section order — this IS the schema.  Reordering, adding, or
  // removing a section (or changing any section's payload layout) is a
  // wire-format change: bump snap::kSchemaVersion.
  Status s = visitor.section(
      "CONF", [this](snap::Writer& w) { save_conf(*this, w); },
      [this](snap::Reader& r) { return check_conf(*this, r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "PLAT",
      [this](snap::Writer& w) {
        w.boolean(booted_);
        save_boot_report(boot_report_, w);
      },
      [this](snap::Reader& r) {
        booted_ = r.boolean();
        boot_report_ = read_boot_report(r);
        return Status::ok();
      });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "MACH", [this](snap::Writer& w) { machine_->save_state(w); },
      [this](snap::Reader& r) { return machine_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  // Physical memory is authoritative for everything the guest can address:
  // the IDT, firmware windows, task images and stacks, the shadow-TCB
  // region, mailbox words, and the sealed-storage arena.
  s = visitor.section(
      "MEMR",
      [this](snap::Writer& w) {
        const sim::PhysicalMemory& memory = machine_->memory();
        w.blob(memory.view(0, memory.size()));
      },
      [this](snap::Reader& r) {
        const std::span<const std::uint8_t> bytes = r.blob_view();
        sim::PhysicalMemory& memory = machine_->memory();
        if (bytes.size() != memory.size()) {
          return make_error(Err::kCorrupt,
                            "snapshot memory image is " +
                                std::to_string(bytes.size()) +
                                " bytes, machine has " +
                                std::to_string(memory.size()));
        }
        if (memr_rewind_) {
          // Rewinding to the snapshot we last restored: everything outside
          // the dirty range already equals the image.
          if (memory.dirty()) {
            const std::uint32_t lo = memory.dirty_lo();
            memory.write_block(lo, bytes.subspan(lo, memory.dirty_hi() - lo));
          }
        } else {
          memory.write_block(0, bytes);
        }
        memory.mark_clean();
        return Status::ok();
      });
  if (!s.is_ok()) {
    return s;
  }

  // Devices in bus attach order; each device owns its payload layout, so the
  // section nests one length-prefixed blob per device.
  s = visitor.section(
      "DEVS",
      [this](snap::Writer& w) {
        // Devices latch their time lazily between tick events; bring every
        // latch up to the classic per-instruction value before serializing.
        machine_->flush_device_time();
        const auto& devices = machine_->bus().devices();
        w.u32(static_cast<std::uint32_t>(devices.size()));
        for (const auto& device : devices) {
          w.str(device->name());
          snap::Writer payload;
          device->save_state(payload);
          w.blob(payload.buffer());
        }
      },
      [this](snap::Reader& r) {
        const auto& devices = machine_->bus().devices();
        if (r.u32() != devices.size()) {
          return make_error(Err::kInvalidArgument,
                            "snapshot device count differs from this platform");
        }
        for (const auto& device : devices) {
          const std::string name = r.str();
          if (name != device->name()) {
            return make_error(Err::kInvalidArgument,
                              "snapshot device '" + name + "' does not match '" +
                                  std::string(device->name()) + "'");
          }
          const ByteVec payload = r.blob();
          snap::Reader device_reader(payload);
          if (Status ds = device->restore_state(device_reader); !ds.is_ok()) {
            return ds;
          }
          if (!device_reader.ok() || device_reader.remaining() != 0) {
            return make_error(Err::kCorrupt, "snapshot payload of device '" +
                                                 name + "' is malformed");
          }
        }
        return Status::ok();
      });
  if (!s.is_ok()) {
    return s;
  }

  // The tracer's ring is guest-replay-relevant (tytan-trace dumps it after a
  // replayed run), so enablement, capacity and entries travel.
  s = visitor.section(
      "TRCE",
      [this](snap::Writer& w) {
        const sim::Tracer* tracer = machine_->tracer();
        w.boolean(tracer != nullptr);
        if (tracer != nullptr) {
          w.u64(tracer->capacity());
          const auto entries = tracer->snapshot();
          w.u32(static_cast<std::uint32_t>(entries.size()));
          for (const sim::Tracer::Entry& entry : entries) {
            w.u64(entry.cycle);
            w.u32(entry.eip);
            w.u32(entry.word);
            w.str(entry.note);
            w.i32(entry.task);
            w.i32(entry.verdict);
          }
        }
      },
      [this](snap::Reader& r) {
        if (!r.boolean()) {
          machine_->enable_trace(0);
          return Status::ok();
        }
        machine_->enable_trace(static_cast<std::size_t>(r.u64()));
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
          const std::uint64_t cycle = r.u64();
          const std::uint32_t eip = r.u32();
          const std::uint32_t word = r.u32();
          std::string note = r.str();
          const std::int32_t task = r.i32();
          const int verdict = r.i32();
          machine_->tracer()->record(cycle, eip, word, std::move(note), task,
                                     verdict);
        }
        return Status::ok();
      });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "EMPU", [this](snap::Writer& w) { mpu_->save_state(w); },
      [this](snap::Reader& r) { return mpu_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "DRVS", [this](snap::Writer& w) { driver_->save_state(w); },
      [this](snap::Reader& r) { return driver_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "SCHD", [this](snap::Writer& w) { scheduler_->save_state(w); },
      [this](snap::Reader& r) {
        return scheduler_->restore_state(r, [this](rtos::Tcb& tcb) {
          return kernel_->adopt_firmware_task(tcb);
        });
      });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "KRNL", [this](snap::Writer& w) { kernel_->save_state(w); },
      [this](snap::Reader& r) { return kernel_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "IMUX", [this](snap::Writer& w) { int_mux_->save_state(w); },
      [this](snap::Reader& r) { return int_mux_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "LOAD", [this](snap::Writer& w) { loader_->save_state(w); },
      [this](snap::Reader& r) { return loader_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "RTMS", [this](snap::Writer& w) { rtm_->save_state(w); },
      [this](snap::Reader& r) { return rtm_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "STOR", [this](snap::Writer& w) { storage_->save_state(w); },
      [this](snap::Reader& r) { return storage_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "IPCP", [this](snap::Writer& w) { proxy_->save_state(w); },
      [this](snap::Reader& r) { return proxy_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "UPDT", [this](snap::Writer& w) { updater_->save_state(w); },
      [this](snap::Reader& r) { return updater_->restore_state(r); });
  if (!s.is_ok()) {
    return s;
  }

  s = visitor.section(
      "FALT",
      [this](snap::Writer& w) {
        w.boolean(fault_engine_ != nullptr);
        if (fault_engine_ != nullptr) {
          fault_engine_->save_state(w);
        }
      },
      [this](snap::Reader& r) {
        const bool present = r.boolean();
        if (present != (fault_engine_ != nullptr)) {
          return make_error(
              Err::kInvalidArgument,
              "snapshot fault-engine presence differs from this platform");
        }
        if (present) {
          return fault_engine_->restore_state(r);
        }
        return Status::ok();
      });
  return s;
}

Result<snap::Snapshot> Platform::save() const {
  if (loader_->job_has_callback()) {
    return make_error(Err::kUnavailable,
                      "cannot snapshot while an async load with a completion "
                      "callback is in flight (let the update finish first)");
  }
  if (kernel_->timers().active_count() != 0) {
    return make_error(Err::kUnavailable,
                      "cannot snapshot while software timers are active "
                      "(timer callbacks cannot travel)");
  }
  snap::SaveVisitor visitor;
  // The save closures of the walk never mutate; visit_state is non-const
  // only because the restore closures bind mutable state.
  Platform& self = const_cast<Platform&>(*this);
  if (Status s = self.visit_state(visitor); !s.is_ok()) {
    return s;
  }
  return visitor.take();
}

Status Platform::restore(const snap::Snapshot& snapshot) {
  memr_rewind_ =
      last_restore_digest_ != 0 && snapshot.digest() == last_restore_digest_;
  snap::RestoreVisitor visitor(snapshot);
  const Status walked = visit_state(visitor);
  memr_rewind_ = false;
  if (!walked.is_ok()) {
    // The platform may be partially overwritten; in particular memory may no
    // longer match any snapshot, so the rewind fast path must not fire.
    last_restore_digest_ = 0;
    return walked;
  }
  last_restore_digest_ = snapshot.digest();
  // The machine's policy pointer is wiring, not serialized state: armed
  // exactly when the restored platform is past secure boot.
  machine_->set_policy(booted_ ? mpu_.get() : nullptr);
  return Status::ok();
}

Result<std::unique_ptr<Platform>> Platform::clone() const {
  auto snapshot = save();
  if (!snapshot.is_ok()) {
    return snapshot.status();
  }
  // No boot(): the clone's post-boot state — locked EA-MPU, verified
  // firmware, kernel tasks — travels inside the snapshot.  That is what
  // makes cloning much cheaper than a reboot (bench_snapshot).
  auto copy = std::make_unique<Platform>(config_);
  if (Status s = copy->restore(*snapshot); !s.is_ok()) {
    return s;
  }
  return copy;
}

Result<Platform::Config> Platform::config_from_snapshot(
    const snap::Snapshot& snapshot, const LogContext* log) {
  const ByteVec* payload = snapshot.find("CONF");
  if (payload == nullptr) {
    return make_error(Err::kCorrupt, "snapshot missing section 'CONF'");
  }
  snap::Reader r(*payload);
  Config config;
  const std::uint32_t mem_size = r.u32();
  if (mem_size != sim::kMemSize) {
    return make_error(Err::kInvalidArgument,
                      "snapshot machine has " + std::to_string(mem_size) +
                          " bytes of memory; this build simulates " +
                          std::to_string(sim::kMemSize));
  }
  config.tick_period = r.u32();
  r.raw(config.kp);
  config.rng_seed = r.u64();
  config.lint_mode = static_cast<LintMode>(r.u8());
  const std::string plan_text = r.str();
  const std::uint64_t plan_seed = r.u64();
  const ByteVec costs = r.blob();
  if (!r.ok() || costs.size() != sizeof(sim::CostModel)) {
    return make_error(Err::kCorrupt, "snapshot section 'CONF' truncated");
  }
  std::memcpy(&config.costs, costs.data(), sizeof(sim::CostModel));
  if (!plan_text.empty()) {
    auto plan = fault::FaultPlan::parse(plan_text);
    if (!plan.is_ok()) {
      return plan.status();
    }
    config.fault_plan = std::move(*plan);
  }
  config.fault_plan.seed = plan_seed;
  config.log = log;
  // The lint analysis config is host tuning, not serialized — it comes back
  // default (docs/SNAPSHOT.md).
  return config;
}

Result<std::uint64_t> Platform::snapshot_cycle(const snap::Snapshot& snapshot) {
  const ByteVec* payload = snapshot.find("MACH");
  if (payload == nullptr) {
    return make_error(Err::kCorrupt, "snapshot missing section 'MACH'");
  }
  snap::Reader r(*payload);
  for (std::size_t i = 0; i < isa::kNumGprs + 2; ++i) {
    r.u32();  // registers, EIP, EFLAGS — the cycle clock follows
  }
  const std::uint64_t cycle = r.u64();
  if (!r.ok()) {
    return make_error(Err::kCorrupt, "snapshot section 'MACH' truncated");
  }
  return cycle;
}

}  // namespace tytan::core
