// Local and remote attestation (paper §3, "Attestation").
//
// Local attestation: id_t itself, maintained in the RTM registry, serves as
// identifier and attestation report — any on-platform component that can
// read the registry can verify a peer.
//
// Remote attestation: "TyTAN uses Message Authentication Codes (MAC) along
// with an attestation key Ka to prove the authenticity of id_t to a remote
// verifier.  Ka is derivated from Kp and only accessible to the Remote
// Attest task."  The service reads Kp through the EA-MPU-gated key register
// under its own identity and MACs (nonce | id_t).  The verifier side — who
// obtained Ka from the manufacturer — is provided for tests, benches, and
// examples.
#pragma once

#include "core/rtm.h"
#include "crypto/kdf.h"
#include "rtos/task.h"
#include "sim/machine.h"

namespace tytan::core {

/// What the device sends to a remote verifier.
struct AttestationReport {
  std::uint64_t nonce = 0;       ///< verifier challenge (freshness)
  rtos::TaskIdentity identity{}; ///< id_t of the attested task
  crypto::HmacTag mac{};         ///< HMAC-SHA1(Ka, nonce | id_t)

  [[nodiscard]] ByteVec serialize() const;
  static Result<AttestationReport> deserialize(std::span<const std::uint8_t> raw);
};

class RemoteAttest {
 public:
  static constexpr std::uint32_t kIdent = sim::kFwRemoteAttest;
  static constexpr std::string_view kKaLabel = "tytan-attest";

  RemoteAttest(sim::Machine& machine, Rtm& rtm) : machine_(machine), rtm_(rtm) {}

  /// Produce a report for the task currently registered under `handle`.
  Result<AttestationReport> attest_task(rtos::TaskHandle handle, std::uint64_t nonce);
  /// Produce a report for an explicit identity (e.g. after local attestation).
  Result<AttestationReport> attest_identity(const rtos::TaskIdentity& identity,
                                            std::uint64_t nonce);

  /// Local attestation: read a peer's id_t from the registry.
  Result<rtos::TaskIdentity> local_attest(rtos::TaskHandle handle);

  // -- verifier side (host; Ka provisioned out of band by the manufacturer) ----
  static crypto::Key128 derive_ka(const crypto::Key128& kp);
  static bool verify(const crypto::Key128& ka, const AttestationReport& report,
                     std::uint64_t expected_nonce,
                     const rtos::TaskIdentity& expected_identity);

 private:
  crypto::Key128 attestation_key();

  sim::Machine& machine_;
  Rtm& rtm_;
};

}  // namespace tytan::core
