#include "core/platform_builder.h"

namespace tytan::core {

std::unique_ptr<Platform> PlatformBuilder::build() const {
  DeviceSet set = devices_.has_value()
                      ? *devices_
                      : DeviceSet::standard(config_.kp, config_.rng_seed);
  set.extra.insert(set.extra.end(), extra_.begin(), extra_.end());
  return std::make_unique<Platform>(config_, std::move(set));
}

}  // namespace tytan::core
