#include "core/secure_boot.h"

#include "common/log.h"
#include "core/layout.h"

namespace tytan::core {

std::vector<BootComponent> default_manifest() {
  // Footprints sum to 34,326 bytes — the TyTAN-over-FreeRTOS memory overhead
  // the paper measures in Table 8 (249,943 - 215,617).
  std::vector<BootComponent> manifest = {
      {"os-kernel", sim::kFwOsKernel, 3'888, {}},       // ELF/TBF loader extension
      {"eampu-driver", sim::kFwEaMpuDriver, 3'910, {}},
      {"int-mux", sim::kFwIntMux, 2'118, {}},
      {"ipc-proxy", sim::kFwIpcProxy, 4'462, {}},
      {"rtm", sim::kFwRtm, 8'004, {}},
      {"remote-attest", sim::kFwRemoteAttest, 5'626, {}},
      {"secure-storage", sim::kFwSecureStorage, 6'318, {}},
  };
  for (BootComponent& component : manifest) {
    const ByteVec image =
        SecureBootRom::image_bytes(component, sim::kFwWindowSize);
    component.expected = crypto::Sha1::hash(image);
  }
  return manifest;
}

ByteVec SecureBootRom::image_bytes(const BootComponent& component, std::uint32_t max_len) {
  // Deterministic pseudo-code bytes seeded by the component name; stands in
  // for the real firmware binary (host-implemented in this reproduction).
  const std::uint32_t len = std::min(component.footprint, max_len);
  ByteVec image(len);
  std::uint64_t state = 0x9E37'79B9'7F4A'7C15ull;
  for (const char c : component.name) {
    state = (state ^ static_cast<std::uint8_t>(c)) * 0x100'0000'01B3ull;
  }
  for (std::uint32_t i = 0; i < len; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    image[i] = static_cast<std::uint8_t>(state);
  }
  return image;
}

void SecureBootRom::load_images(const std::vector<BootComponent>& manifest) {
  for (const BootComponent& component : manifest) {
    const ByteVec image = image_bytes(component, sim::kFwWindowSize);
    machine_.memory().write_block(component.window, image);
  }
}

void SecureBootRom::install_idt() {
  for (std::uint32_t vec = 0; vec < sim::kIdtEntries; ++vec) {
    machine_.set_idt_entry(static_cast<std::uint8_t>(vec), 0);
  }
  machine_.set_idt_entry(sim::kVecFault, sim::kFwIntMux);
  machine_.set_idt_entry(sim::kVecTimer, sim::kFwIntMux);
  machine_.set_idt_entry(sim::kVecSyscall, sim::kFwIntMux);
  machine_.set_idt_entry(sim::kVecIpc, sim::kFwIntMux);
  machine_.set_idt_entry(sim::kVecCan, sim::kFwIntMux);
}

void SecureBootRom::install_exec_regions() {
  // Firmware windows are enterable only through hardware interrupt dispatch.
  const std::uint32_t windows[] = {
      sim::kFwOsKernel,      sim::kFwEaMpuDriver,  sim::kFwIntMux,
      sim::kFwIpcProxy,      sim::kFwRtm,          sim::kFwRemoteAttest,
      sim::kFwSecureStorage, sim::kFwFaultHandler,
  };
  for (const std::uint32_t window : windows) {
    auto idx = mpu_.add_exec_region({.start = window,
                                     .size = sim::kFwWindowSize,
                                     .entry = hw::ExecRegion::kEntryNone});
    TYTAN_CHECK(idx.is_ok(), "secure boot: exec region install failed");
  }
}

void SecureBootRom::install_static_rules() {
  const auto rw = static_cast<std::uint8_t>(hw::kPermRead | hw::kPermWrite);
  const auto ro = static_cast<std::uint8_t>(hw::kPermRead);
  const std::uint32_t ram_size = sim::kRamEnd - sim::kRamBase;
  const hw::Rule static_rules[] = {
      // Int Mux: secure-task stacks (anywhere in RAM) + the shadow TCBs.
      {sim::kFwIntMux, sim::kFwWindowSize, sim::kRamBase, ram_size, rw, false, true},
      {sim::kFwIntMux, sim::kFwWindowSize, kShadowTcbBase, kShadowTcbSize, rw, false, false},
      // RTM: reads and de-relocates task images; sole writer of the registry.
      {sim::kFwRtm, sim::kFwWindowSize, sim::kRamBase, ram_size, rw, false, true},
      {sim::kFwRtm, sim::kFwWindowSize, kRtmRegistryBase, kRtmRegistrySize, rw, false, false},
      // IPC proxy: writes mailboxes in task regions; reads the registry.
      {sim::kFwIpcProxy, sim::kFwWindowSize, sim::kRamBase, ram_size, rw, false, true},
      {sim::kFwIpcProxy, sim::kFwWindowSize, kRtmRegistryBase, kRtmRegistrySize, ro, false,
       false},
      // Remote Attest: registry read + platform key.
      {sim::kFwRemoteAttest, sim::kFwWindowSize, kRtmRegistryBase, kRtmRegistrySize, ro,
       false, false},
      {sim::kFwRemoteAttest, sim::kFwWindowSize, sim::kMmioKeyReg, 0x20, ro, false, false},
      // Secure Storage: platform key + blob area + guest buffers.
      {sim::kFwSecureStorage, sim::kFwWindowSize, sim::kMmioKeyReg, 0x20, ro, false, false},
      {sim::kFwSecureStorage, sim::kFwWindowSize, kStorageBase, kStorageSize, rw, false,
       false},
      {sim::kFwSecureStorage, sim::kFwWindowSize, sim::kRamBase, ram_size, rw, false, true},
      // IDT lock: an empty code region matches no software — the register
      // pointing at the IDT "is static and cannot be modified" (paper §4).
      {0, 0, sim::kIdtBase, sim::kIdtSize, 0, false, false},
  };
  std::size_t slot = 0;
  for (const hw::Rule& rule : static_rules) {
    const Status s = mpu_.write_slot(slot++, rule);
    TYTAN_CHECK(s.is_ok(), "secure boot: static rule install failed: " + s.to_string());
  }
}

Result<BootReport> SecureBootRom::verify_and_lock(
    const std::vector<BootComponent>& manifest) {
  BootReport report;
  bool all_ok = true;
  for (const BootComponent& component : manifest) {
    const std::uint32_t len = std::min(component.footprint, sim::kFwWindowSize);
    const auto view = machine_.memory().view(component.window, len);
    const crypto::Sha1Digest digest = crypto::Sha1::hash(view);
    const bool verified = digest == component.expected;
    all_ok = all_ok && verified;
    report.components.push_back(
        {component.name, component.window, component.footprint, verified});
    if (verified) {
      report.trusted_bytes += component.footprint;
    } else {
      TYTAN_CLOG(machine_.log(), LogLevel::kError, "boot")
          << "component '" << component.name << "' failed verification";
    }
  }
  if (!all_ok) {
    machine_.halt(sim::HaltReason::kDoubleFault);
    report.ok = false;
    return report;
  }
  install_idt();
  install_exec_regions();
  install_static_rules();
  mpu_.set_port_guard(true);
  machine_.set_policy(&mpu_);
  report.ok = true;
  TYTAN_CLOG(machine_.log(), LogLevel::kInfo, "boot")
      << "secure boot complete: " << report.components.size() << " components, "
      << report.trusted_bytes << " trusted bytes";
  return report;
}

}  // namespace tytan::core
