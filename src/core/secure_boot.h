// Secure boot (paper §3, "Secure boot").
//
// "TyTAN's trusted software components (i.e., EA-MPU driver, Int Mux, IPC
// Proxy, RTM task, Remote Attest and Secure Storage) are loaded with secure
// boot and isolated from the rest of the system by the EA-MPU."
//
// The boot ROM model here:
//   1. writes each component's firmware image into its window,
//   2. verifies every image against the manufacturer manifest (SHA-1),
//   3. installs the IDT (all vectors route through the Int Mux) and locks it,
//   4. installs the execution regions of the firmware windows and the static
//      EA-MPU rule matrix,
//   5. locks the EA-MPU configuration port and arms the policy.
//
// Component footprints (bytes) model the measured Table 8 memory overhead:
// firmware is host-implemented, so its image bytes are a deterministic
// stand-in whose *sizes* carry the accounting.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha1.h"
#include "hw/eampu.h"
#include "sim/machine.h"

namespace tytan::core {

/// One trusted software component in the boot manifest.
struct BootComponent {
  std::string name;
  std::uint32_t window = 0;     ///< firmware window base (execution identity)
  std::uint32_t footprint = 0;  ///< modeled code+data size in bytes (Table 8)
  crypto::Sha1Digest expected{};
};

/// FreeRTOS baseline OS image size measured by the paper (Table 8).
inline constexpr std::uint32_t kFreeRtosFootprint = 215'617;

/// The TyTAN components and their modeled footprints (sum = 34,326 bytes,
/// the paper's measured TyTAN-over-FreeRTOS overhead).
std::vector<BootComponent> default_manifest();

struct BootReport {
  bool ok = false;
  struct Entry {
    std::string name;
    std::uint32_t window;
    std::uint32_t footprint;
    bool verified;
  };
  std::vector<Entry> components;
  std::uint32_t trusted_bytes = 0;  ///< sum of verified component footprints
};

class SecureBootRom {
 public:
  SecureBootRom(sim::Machine& machine, hw::EaMpu& mpu) : machine_(machine), mpu_(mpu) {}

  /// Write the firmware images into their windows (pre-verification state).
  void load_images(const std::vector<BootComponent>& manifest);

  /// Verify every window against the manifest; on success install IDT,
  /// execution regions, static rules, lock the EA-MPU, and arm the policy.
  /// On any hash mismatch the boot aborts with the report marked not-ok and
  /// the machine halted (a bricked device is safer than an untrusted one).
  Result<BootReport> verify_and_lock(const std::vector<BootComponent>& manifest);

  /// Deterministic image bytes for a component (also used to compute the
  /// manufacturer manifest digests).
  static ByteVec image_bytes(const BootComponent& component, std::uint32_t max_len);

 private:
  void install_static_rules();
  void install_exec_regions();
  void install_idt();

  sim::Machine& machine_;
  hw::EaMpu& mpu_;
};

}  // namespace tytan::core
