// Dynamic task loading (paper §4, "Dynamic task handling" / "Loading tasks").
//
// A new task t is loaded in the paper's six steps:
//   (1) the OS allocates memory for t;
//   (2) loads t into memory performing relocation;
//   (3) prepares the stack;
//   (4) the EA-MPU is configured to protect the memory of t;
//   (5) t is measured (secure tasks);
//   (6) the OS is notified to schedule t.
//
// Loading is implemented as a *resumable job* processed in bounded quanta by
// a low-priority loader task, so a long load (27.8 ms in the paper's use
// case) never blocks higher-priority real-time tasks — the property Table 1
// demonstrates.  load_now() runs the same state machine to completion for
// tests and benches.
#pragma once

#include <optional>

#include "analysis/analyzer.h"
#include "core/eampu_driver.h"
#include "core/int_mux.h"
#include "core/rtm.h"
#include "isa/object.h"
#include "rtos/scheduler.h"

namespace tytan::core {

/// How the loader treats static-verifier findings (step 0, before any
/// memory is touched).  The verifier runs host-side and charges no
/// simulated cycles, so kWarn/kStrict do not perturb the cost model.
enum class LintMode {
  kOff,     ///< skip the verifier entirely
  kWarn,    ///< log findings, load anyway (default)
  kStrict,  ///< reject the image if any error-severity finding exists
};

struct LoadParams {
  std::string name;
  unsigned priority = 1;
  /// Make the task ready immediately after loading (step 6).  When false the
  /// task stays suspended (paper: tasks are "loadable, unloadable, and
  /// suspendable at runtime").
  bool auto_start = true;
  /// Invoked once when the load completes (step 6 done).  Used by the
  /// runtime-update manager to swap versions the moment the replacement is
  /// measured and ready.
  std::function<void(rtos::TaskHandle)> on_loaded;
  /// Golden identity the measured image must match (secure tasks only).  A
  /// mismatch — e.g. a bit flipped in transit — rejects the load with
  /// kCorrupt and records a QuarantineRecord instead of registering the
  /// task; the platform keeps running.
  std::optional<rtos::TaskIdentity> expected_identity;
};

/// Simple first-fit allocator over the task RAM arena.
class RamArena {
 public:
  RamArena(std::uint32_t base, std::uint32_t size);

  Result<std::uint32_t> alloc(std::uint32_t size, std::uint32_t align = 64);
  Status free(std::uint32_t base);
  [[nodiscard]] std::uint32_t free_bytes() const;
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  struct Block {
    std::uint32_t base;
    std::uint32_t size;
    bool used;
  };
  std::vector<Block> blocks_;
};

class TaskLoader {
 public:
  /// Cycle breakdown of the last completed load (bench for Tables 4/5).
  struct CreateStats {
    std::uint64_t alloc = 0;
    std::uint64_t copy = 0;
    std::uint64_t reloc = 0;
    std::uint64_t stack = 0;
    std::uint64_t eampu = 0;
    std::uint64_t rtm = 0;
    std::uint64_t total = 0;
    std::uint32_t relocations = 0;
    std::uint32_t image_bytes = 0;
    bool secure = false;
    std::uint32_t lint_findings = 0;  ///< verifier findings on the last load
  };

  static constexpr std::uint32_t kIdent = sim::kFwOsKernel;  // loading is OS work

  TaskLoader(sim::Machine& machine, rtos::Scheduler& scheduler, EaMpuDriver& driver,
             Rtm& rtm, IntMux& int_mux);

  // -- resumable job API -----------------------------------------------------
  /// Create the TCB and queue the load job.  The returned handle is valid
  /// immediately but the task stays suspended until the job finishes.
  Result<rtos::TaskHandle> begin_load(isa::ObjectFile object, LoadParams params);
  [[nodiscard]] bool load_in_progress() const { return job_.has_value(); }
  /// Process one bounded quantum; returns true while work remains.
  bool load_quantum();
  /// Handle of the most recently completed load.
  [[nodiscard]] rtos::TaskHandle last_loaded() const { return last_loaded_; }

  // -- synchronous convenience -------------------------------------------------
  Result<rtos::TaskHandle> load_now(isa::ObjectFile object, LoadParams params);

  /// Unload: remove from the scheduler, clear EA-MPU state, wipe and free the
  /// task's memory, drop registry and shadow entries.
  Status unload(rtos::TaskHandle handle);

  [[nodiscard]] const CreateStats& last_create() const { return stats_; }
  [[nodiscard]] RamArena& arena() { return arena_; }

  /// Configure the pre-load static verifier gate.
  void set_lint(LintMode mode, analysis::Config config = {}) {
    lint_mode_ = mode;
    lint_config_ = std::move(config);
  }
  [[nodiscard]] LintMode lint_mode() const { return lint_mode_; }
  /// Verifier report from the most recent begin_load (empty when kOff).
  [[nodiscard]] const analysis::Report& last_lint() const { return lint_report_; }

  /// Binaries rejected because their measured identity missed the golden
  /// expectation.  Quarantine keeps the evidence (name + measured identity)
  /// without ever scheduling the task.
  struct QuarantineRecord {
    std::string name;
    rtos::TaskIdentity measured{};
    std::uint64_t cycle = 0;
  };
  [[nodiscard]] const std::vector<QuarantineRecord>& quarantine() const {
    return quarantine_;
  }

  // -- snapshots ----------------------------------------------------------------
  /// True when an in-flight job carries an on_loaded callback — a closure
  /// that cannot travel through a snapshot; Platform::save refuses then.
  [[nodiscard]] bool job_has_callback() const {
    return job_.has_value() && static_cast<bool>(job_->params.on_loaded);
  }

  /// Serialize / overwrite the arena, the in-flight job (if any), the last
  /// load stats, and the quarantine ledger.  The host-side lint report is
  /// diagnostics, not guest state, and does not travel.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  enum class Phase { kVerify, kAlloc, kCopy, kReloc, kStackPrep, kMpu, kMeasure, kRegister, kDone };

  struct Job {
    isa::ObjectFile object;
    LoadParams params;
    rtos::TaskHandle handle = rtos::kNoTask;
    Phase phase = Phase::kVerify;
    std::uint32_t base = 0;
    std::uint32_t total_size = 0;
    std::uint32_t copy_offset = 0;
    std::size_t reloc_index = 0;
    std::uint64_t start_cycles = 0;
    bool failed = false;
    Status failure;
  };

  void fail_job(Status status);
  bool quantum_verify();
  bool quantum_alloc();
  bool quantum_copy();
  bool quantum_reloc();
  bool quantum_stack_prep();
  bool quantum_mpu();
  bool quantum_measure();
  bool quantum_register();

  sim::Machine& machine_;
  rtos::Scheduler& scheduler_;
  EaMpuDriver& driver_;
  Rtm& rtm_;
  IntMux& int_mux_;
  RamArena arena_;
  std::optional<Job> job_;
  rtos::TaskHandle last_loaded_ = rtos::kNoTask;
  CreateStats stats_;
  LintMode lint_mode_ = LintMode::kWarn;
  analysis::Config lint_config_;
  analysis::Report lint_report_;
  std::vector<QuarantineRecord> quarantine_;
};

}  // namespace tytan::core
