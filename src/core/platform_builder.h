// Fluent construction of per-instance platforms.
//
// Platform::Config is a plain aggregate; the builder adds per-field setters,
// device-set overrides, and extra-device attachment, and is the one place
// fleet code goes through so every device in a population is configured the
// same way:
//
//   auto platform = core::PlatformBuilder()
//                       .kp(manufacturer_kp)
//                       .rng_seed(0x1000 + device_index)
//                       .log_context(&device_log)
//                       .build();
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/platform.h"

namespace tytan::core {

class PlatformBuilder {
 public:
  PlatformBuilder& costs(const sim::CostModel& costs) {
    config_.costs = costs;
    return *this;
  }
  PlatformBuilder& tick_period(std::uint32_t cycles) {
    config_.tick_period = cycles;
    return *this;
  }
  PlatformBuilder& kp(const crypto::Key128& key) {
    config_.kp = key;
    return *this;
  }
  PlatformBuilder& rng_seed(std::uint64_t seed) {
    config_.rng_seed = seed;
    return *this;
  }
  PlatformBuilder& lint(LintMode mode, analysis::Config lint_config = {}) {
    config_.lint_mode = mode;
    config_.lint_config = lint_config;
    return *this;
  }
  /// The context must outlive the built platform.
  PlatformBuilder& log_context(const LogContext* log) {
    config_.log = log;
    return *this;
  }
  /// Install a fault-injection engine driven by `plan` (empty = none).
  PlatformBuilder& fault_plan(fault::FaultPlan plan) {
    config_.fault_plan = std::move(plan);
    return *this;
  }
  /// Replace the standard device complement entirely.  Overrides any
  /// kp/rng_seed already set as far as device construction is concerned
  /// (the caller's set is attached verbatim).
  PlatformBuilder& devices(DeviceSet set) {
    devices_ = std::move(set);
    return *this;
  }
  /// Attach an additional device after the core set.
  PlatformBuilder& add_device(std::shared_ptr<sim::Device> device) {
    extra_.push_back(std::move(device));
    return *this;
  }

  [[nodiscard]] const Platform::Config& config() const { return config_; }

  /// Build a platform; the builder can be reused (build() copies its state).
  [[nodiscard]] std::unique_ptr<Platform> build() const;

 private:
  Platform::Config config_{};
  std::optional<DeviceSet> devices_;
  std::vector<std::shared_ptr<sim::Device>> extra_;
};

}  // namespace tytan::core
