// Trusted-data layout, syscall ABI, and IPC ABI of the TyTAN platform.
#pragma once

#include <cstdint>

#include "sim/memory_map.h"

namespace tytan::core {

// ---------------------------------------------------------------------------
// Trusted data regions (inside sim::kTrustedDataBase .. +kTrustedDataSize).
// Each region is protected by a static EA-MPU rule installed by secure boot.
// ---------------------------------------------------------------------------

/// RTM registry: task identities and locations.  Writable only by the RTM
/// ("The EA-MPU ensures that only the RTM task can modify id_t", paper §3);
/// readable by the IPC proxy (receiver lookup) and Remote Attest.
inline constexpr std::uint32_t kRtmRegistryBase = sim::kTrustedDataBase + 0x0000;
inline constexpr std::uint32_t kRtmRegistrySize = 0x1000;

/// Shadow TCBs: per-secure-task saved stack pointers, maintained by the Int
/// Mux.  The OS never sees a secure task's SP.
inline constexpr std::uint32_t kShadowTcbBase = sim::kTrustedDataBase + 0x1000;
inline constexpr std::uint32_t kShadowTcbSize = 0x0800;

/// IPC proxy private data (pending queues, shared-memory grant table).
inline constexpr std::uint32_t kProxyDataBase = sim::kTrustedDataBase + 0x1800;
inline constexpr std::uint32_t kProxyDataSize = 0x0800;

/// Secure-storage blob area.
inline constexpr std::uint32_t kStorageBase = sim::kTrustedDataBase + 0x2000;
inline constexpr std::uint32_t kStorageSize = 0x4000;

/// Attestation scratch (derived-key cache).
inline constexpr std::uint32_t kAttestDataBase = sim::kTrustedDataBase + 0x6000;
inline constexpr std::uint32_t kAttestDataSize = 0x0400;

// ---------------------------------------------------------------------------
// RTM registry entry wire format (one entry per loaded task).
//   +0   identity (8 bytes; first 64 bits of the SHA-1, paper footnote 9)
//   +8   full SHA-1 digest (20 bytes)
//   +28  region base  (u32)
//   +32  region size  (u32)
//   +36  entry        (u32)
//   +40  mailbox      (u32, 0 for normal tasks)
//   +44  flags        (u32: bit0 = valid, bit1 = secure)
// ---------------------------------------------------------------------------
inline constexpr std::uint32_t kRegistryEntrySize = 48;
inline constexpr std::uint32_t kRegistryMaxEntries = kRtmRegistrySize / kRegistryEntrySize;
inline constexpr std::uint32_t kRegistryFlagValid = 1u << 0;
inline constexpr std::uint32_t kRegistryFlagSecure = 1u << 1;

// ---------------------------------------------------------------------------
// Syscall ABI: INT kVecSyscall with the call number in r0.  Results are
// written into the caller's saved r0 (the kernel pokes the saved frame).
// ---------------------------------------------------------------------------
enum Syscall : std::uint32_t {
  kSysYield = 1,      ///< give up the CPU, stay ready
  kSysDelay = 2,      ///< r1 = ticks to sleep
  kSysExit = 3,       ///< terminate and unload the calling task
  kSysPutchar = 4,    ///< r1 = byte for the serial console
  kSysGetTick = 5,    ///< r0 <- current tick count
  kSysWaitMsg = 8,    ///< park until an IPC message arrives (delivered via the
                      ///< message handler, not by returning)
  kSysMsgDone = 9,    ///< message handler finished; resume pre-message context
  kSysSealStore = 10, ///< r1 = ptr, r2 = len, r3 = slot; r0 <- status
  kSysSealLoad = 11,  ///< r1 = ptr, r2 = capacity, r3 = slot; r0 <- len | ~0
  kSysQueueSend = 12, ///< r1 = queue, r2 = ptr to 4 words; r0 <- status
  kSysQueueRecv = 13, ///< r1 = queue, r2 = ptr to 4 words; r0 <- status
  kSysGetId = 14,     ///< r1 = ptr to 8 bytes; writes caller id_t; r0 <- status
  kSysLocalAttest = 15, ///< r1 = ptr to 8-byte id_t; r0 <- kSysOk if a task
                        ///< with that identity is currently loaded (local
                        ///< attestation against the RTM registry)
  kSysWaitIrq = 16,   ///< r1 = interrupt vector; park until it fires
};

/// Syscall result codes (returned in saved r0).
inline constexpr std::uint32_t kSysOk = 0;
inline constexpr std::uint32_t kSysErr = 0xFFFF'FFFFu;

// ---------------------------------------------------------------------------
// IPC ABI: INT kVecIpc.
//   r0 = operation, r1/r2 = receiver identity (lo/hi 32 bits of id_R),
//   r3..r6 = message words.  Result in saved r0.
// Mailbox layout (24 bytes, written only by the IPC proxy):
//   +0 id_S lo, +4 id_S hi, +8..+20 message words 0..3
// ---------------------------------------------------------------------------
enum IpcOp : std::uint32_t {
  kIpcSendSync = 0,   ///< deliver and branch to the receiver immediately
  kIpcSendAsync = 1,  ///< deliver; receiver processes when next scheduled
  kIpcShmGrant = 2,   ///< r3 = size; allocate shared memory for S and R
};

/// Entry-reason values passed in r1 by the platform (must match the values
/// tested by the assembler's secure prologue, isa::EntryReason).
inline constexpr std::uint32_t kReasonStart = 0;
inline constexpr std::uint32_t kReasonRestore = 1;
inline constexpr std::uint32_t kReasonMessage = 2;

/// Saved-context frame layout relative to the saved SP (see Int Mux):
///   [sp+0]=r6 ... [sp+24]=r0, [sp+28]=EIP, [sp+32]=EFLAGS.
inline constexpr std::uint32_t kFrameWords = 9;
inline constexpr std::uint32_t kFrameSize = kFrameWords * 4;
inline constexpr std::uint32_t kFrameR0Offset = 24;
inline constexpr std::uint32_t kFrameEipOffset = 28;
inline constexpr std::uint32_t kFrameEflagsOffset = 32;

}  // namespace tytan::core
