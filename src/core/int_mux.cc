#include "core/int_mux.h"

#include "common/log.h"
#include "isa/isa.h"

namespace tytan::core {

using rtos::Tcb;
using rtos::TaskHandle;

void IntMux::set_vector_handler(std::uint8_t vector, std::uint32_t fw_addr) {
  vector_handlers_[vector] = fw_addr;
}

// ---------------------------------------------------------------------------
// Shadow TCBs
// ---------------------------------------------------------------------------

Status IntMux::register_secure_task(const Tcb& tcb) {
  if (shadow_.contains(tcb.handle)) {
    return make_error(Err::kAlreadyExists, "shadow TCB already registered");
  }
  const auto slot_index = static_cast<std::uint32_t>(shadow_.size());
  const std::uint32_t slot_addr = kShadowTcbBase + slot_index * kShadowSlotSize;
  if (slot_addr + kShadowSlotSize > kShadowTcbBase + kShadowTcbSize) {
    return make_error(Err::kOutOfMemory, "shadow TCB area exhausted");
  }
  ShadowIndex index{.region_base = tcb.region_base,
                    .region_size = tcb.region_size,
                    .entry = tcb.entry,
                    .stack_top = tcb.stack_top,
                    .slot_addr = slot_addr};
  if (Status s = machine_.fw_write32(kIdent, slot_addr + kOffFlags, kFlagValid); !s.is_ok()) {
    return s;
  }
  machine_.fw_write32(kIdent, slot_addr + kOffSavedSp, tcb.stack_top);
  machine_.fw_write32(kIdent, slot_addr + kOffMsgResumeSp, 0);
  machine_.fw_write32(kIdent, slot_addr + kOffMsgHadCtx, 0);
  shadow_[tcb.handle] = index;
  return Status::ok();
}

void IntMux::unregister_secure_task(TaskHandle handle) {
  const auto it = shadow_.find(handle);
  if (it == shadow_.end()) {
    return;
  }
  machine_.fw_write32(kIdent, it->second.slot_addr + kOffFlags, 0);
  shadow_.erase(it);
}

Result<std::uint32_t> IntMux::shadow_sp(TaskHandle handle) const {
  const auto it = shadow_.find(handle);
  if (it == shadow_.end()) {
    return make_error(Err::kNotFound, "no shadow TCB");
  }
  return machine_.fw_read32(kIdent, it->second.slot_addr + kOffSavedSp);
}

// ---------------------------------------------------------------------------
// First-level interrupt entry
// ---------------------------------------------------------------------------

void IntMux::on_interrupt() {
  const std::uint32_t origin = machine_.int_origin_eip();
  const std::uint8_t vector = machine_.int_vector();
  const sim::CostModel& costs = machine_.costs();

  save_stats_ = SaveStats{};
  const std::uint64_t t0 = machine_.cycles();

  Tcb* tcb = task_lookup_ ? task_lookup_(origin) : nullptr;
  if (tcb != nullptr && tcb->kind == rtos::TaskKind::kGuest) {
    // CPU-time accounting: everything since the last dispatch belongs to the
    // interrupted task (basis for the §5 execution-time bounding).
    const std::uint64_t consumed = machine_.cycles() - tcb->dispatch_cycle;
    tcb->cpu_cycles += consumed;
    tcb->budget_used += consumed;
    const bool saved = (tcb->secure && shadow_.contains(tcb->handle))
                           ? save_secure(*tcb)
                           : save_normal(*tcb);
    if (!saved) {
      // The task's stack pointer leads outside writable memory: the context
      // cannot be preserved.  Contain it — record a stack fault and route to
      // the fault handler, which kills the offending task.
      machine_.record_fault({sim::FaultType::kStackFault, origin,
                             machine_.cpu().sp(), sim::Access::kWrite});
      const auto fault_handler = vector_handlers_.find(sim::kVecFault);
      if (fault_handler == vector_handlers_.end()) {
        machine_.halt(sim::HaltReason::kDoubleFault);
        return;
      }
      machine_.charge(costs.intmux_branch);
      machine_.cpu().eip = fault_handler->second;
      return;
    }
  }
  // Firmware tasks and unknown origins keep their state host-side; nothing to
  // save beyond the hardware-pushed frame.

  const std::uint64_t before_branch = machine_.cycles();
  machine_.charge(costs.intmux_branch);
  save_stats_.branch = machine_.cycles() - before_branch;
  save_stats_.total = machine_.cycles() - t0;

  if (tcb != nullptr && tcb->kind == rtos::TaskKind::kGuest) {
    machine_.obs().emit(obs::EventKind::kCtxSave, tcb->handle,
                        static_cast<std::uint32_t>(save_stats_.total),
                        save_stats_.secure ? 1u : 0u);
    if (save_stats_.secure) {
      machine_.obs().emit(obs::EventKind::kCtxWipe, tcb->handle,
                          static_cast<std::uint32_t>(save_stats_.wipe));
    }
  }

  const auto handler = vector_handlers_.find(vector);
  if (handler == vector_handlers_.end()) {
    TYTAN_CLOG(machine_.log(), LogLevel::kError, "intmux") << "no handler for vector " << int(vector);
    machine_.halt(sim::HaltReason::kDoubleFault);
    return;
  }
  machine_.cpu().eip = handler->second;
}

bool IntMux::save_secure(Tcb& tcb) {
  const sim::CostModel& costs = machine_.costs();
  auto& cpu = machine_.cpu();
  const std::uint64_t t0 = machine_.cycles();

  // Store r0..r6 onto the task's stack (below the hardware frame).
  std::uint32_t sp = cpu.sp();
  for (unsigned i = 0; i < 7; ++i) {
    sp -= 4;
    machine_.charge(costs.intmux_store_reg);
    const Status s = machine_.fw_write32(kIdent, sp, cpu.regs[i]);
    if (!s.is_ok()) {
      return false;  // wild SP — caller contains the task
    }
  }
  // SP goes to the shadow TCB, not anywhere the OS can see.
  machine_.charge(costs.intmux_store_shadow);
  const ShadowIndex& index = shadow_.at(tcb.handle);
  machine_.fw_write32(kIdent, index.slot_addr + kOffSavedSp, sp);
  save_stats_.store = machine_.cycles() - t0;

  // Wipe the register file (7 GPRs + SP + arithmetic flags).
  const std::uint64_t t1 = machine_.cycles();
  for (unsigned i = 0; i < isa::kNumGprs; ++i) {
    machine_.charge(costs.intmux_wipe_reg);
    cpu.regs[i] = 0;
  }
  cpu.eflags &= isa::kFlagIF;  // clear Z/C/N/V; IF already cleared by dispatch
  save_stats_.wipe = machine_.cycles() - t1;
  save_stats_.secure = true;

  tcb.context_saved = true;
  return true;
}

bool IntMux::save_normal(Tcb& tcb) {
  // Unmodified-FreeRTOS path: the interrupt handler stores the registers to
  // the task stack; the OS may read them (normal tasks are OS-accessible).
  const sim::CostModel& costs = machine_.costs();
  auto& cpu = machine_.cpu();
  const std::uint64_t t0 = machine_.cycles();
  machine_.charge(costs.ctx_save_normal);
  std::uint32_t sp = cpu.sp();
  for (unsigned i = 0; i < 7; ++i) {
    sp -= 4;
    const Status s = machine_.fw_write32(kIdent, sp, cpu.regs[i]);
    if (!s.is_ok()) {
      return false;  // wild SP — caller contains the task
    }
  }
  cpu.set_sp(sp);
  tcb.saved_sp = sp;
  tcb.context_saved = true;
  save_stats_.store = machine_.cycles() - t0;
  save_stats_.secure = false;
  return true;
}

// ---------------------------------------------------------------------------
// Resume services
// ---------------------------------------------------------------------------

Status IntMux::resume_secure(Tcb& tcb) {
  const auto it = shadow_.find(tcb.handle);
  if (it == shadow_.end()) {
    return make_error(Err::kNotFound, "resume_secure: no shadow TCB");
  }
  if (!tcb.context_saved) {
    return make_error(Err::kInvalidArgument, "resume_secure: no saved context");
  }
  const sim::CostModel& costs = machine_.costs();
  resume_stats_ = ResumeStats{};
  const std::uint64_t t0 = machine_.cycles();
  machine_.charge(costs.resume_branch);
  resume_stats_.branch = machine_.cycles() - t0;

  auto sp = machine_.fw_read32(kIdent, it->second.slot_addr + kOffSavedSp);
  if (!sp.is_ok()) {
    return sp.status();
  }
  auto& cpu = machine_.cpu();
  cpu.set_sp(*sp);
  cpu.regs[1] = kReasonRestore;
  cpu.eflags = isa::kFlagIF;
  cpu.eip = it->second.entry;

  // Calibrated cost of the entry routine's restore path on the modeled core
  // (reason check, seven pops, iret); the guest instructions also execute.
  const std::uint64_t t1 = machine_.cycles();
  machine_.charge(costs.resume_entry_check + 7 * costs.resume_pop_reg + costs.resume_iret);
  resume_stats_.restore = machine_.cycles() - t1;
  resume_stats_.total = machine_.cycles() - t0;

  tcb.context_saved = false;
  tcb.dispatch_cycle = machine_.cycles();
  machine_.obs().emit(obs::EventKind::kCtxRestore, tcb.handle,
                      static_cast<std::uint32_t>(resume_stats_.total),
                      obs::kRestoreResume);
  return Status::ok();
}

Status IntMux::start_secure(Tcb& tcb) {
  const auto it = shadow_.find(tcb.handle);
  if (it == shadow_.end()) {
    return make_error(Err::kNotFound, "start_secure: no shadow TCB");
  }
  machine_.charge(machine_.costs().resume_branch);
  auto& cpu = machine_.cpu();
  cpu.regs.fill(0);
  cpu.set_sp(it->second.stack_top);
  cpu.regs[1] = kReasonStart;
  cpu.eflags = isa::kFlagIF;
  cpu.eip = it->second.entry;
  machine_.fw_write32(kIdent, it->second.slot_addr + kOffSavedSp, it->second.stack_top);
  tcb.started = true;
  tcb.dispatch_cycle = machine_.cycles();
  machine_.obs().emit(obs::EventKind::kCtxRestore, tcb.handle, 0,
                      obs::kRestoreStart);
  return Status::ok();
}

Status IntMux::enter_message(Tcb& tcb) {
  const auto it = shadow_.find(tcb.handle);
  if (it == shadow_.end()) {
    return make_error(Err::kNotFound, "enter_message: no shadow TCB");
  }
  const std::uint32_t slot = it->second.slot_addr;
  auto flags = machine_.fw_read32(kIdent, slot + kOffFlags);
  if (!flags.is_ok()) {
    return flags.status();
  }
  if ((*flags & kFlagMsgActive) != 0) {
    return make_error(Err::kUnavailable, "task already inside its message handler");
  }
  auto saved_sp = machine_.fw_read32(kIdent, slot + kOffSavedSp);
  if (!saved_sp.is_ok()) {
    return saved_sp.status();
  }
  const std::uint32_t sp = tcb.context_saved ? *saved_sp : it->second.stack_top;
  machine_.fw_write32(kIdent, slot + kOffMsgResumeSp, *saved_sp);
  machine_.fw_write32(kIdent, slot + kOffMsgHadCtx, tcb.context_saved ? 1 : 0);
  machine_.fw_write32(kIdent, slot + kOffFlags, *flags | kFlagMsgActive);

  machine_.charge(machine_.costs().resume_branch);
  auto& cpu = machine_.cpu();
  cpu.regs.fill(0);
  cpu.set_sp(sp);
  cpu.regs[1] = kReasonMessage;
  cpu.eflags = isa::kFlagIF;
  cpu.eip = it->second.entry;
  tcb.started = true;
  tcb.dispatch_cycle = machine_.cycles();
  // The message handler runs as a nested activation; a pre-message frame (if
  // any) stays intact above the handler's stack usage.
  tcb.context_saved = false;
  machine_.obs().emit(obs::EventKind::kCtxRestore, tcb.handle, 0,
                      obs::kRestoreMessage);
  return Status::ok();
}

Result<bool> IntMux::finish_message(Tcb& tcb) {
  const auto it = shadow_.find(tcb.handle);
  if (it == shadow_.end()) {
    return make_error(Err::kNotFound, "finish_message: no shadow TCB");
  }
  const std::uint32_t slot = it->second.slot_addr;
  auto flags = machine_.fw_read32(kIdent, slot + kOffFlags);
  if (!flags.is_ok()) {
    return flags.status();
  }
  if ((*flags & kFlagMsgActive) == 0) {
    return make_error(Err::kInvalidArgument, "finish_message: no message active");
  }
  auto resume_sp = machine_.fw_read32(kIdent, slot + kOffMsgResumeSp);
  auto had_ctx = machine_.fw_read32(kIdent, slot + kOffMsgHadCtx);
  if (!resume_sp.is_ok() || !had_ctx.is_ok()) {
    return make_error(Err::kInternal, "finish_message: shadow read failed");
  }
  machine_.fw_write32(kIdent, slot + kOffFlags, *flags & ~kFlagMsgActive);
  machine_.fw_write32(kIdent, slot + kOffSavedSp, *resume_sp);
  tcb.context_saved = (*had_ctx != 0);
  return tcb.context_saved;
}

bool IntMux::message_active(TaskHandle handle) const {
  const auto it = shadow_.find(handle);
  if (it == shadow_.end()) {
    return false;
  }
  auto flags = const_cast<sim::Machine&>(machine_).fw_read32(kIdent,
                                                             it->second.slot_addr + kOffFlags);
  return flags.is_ok() && (*flags & kFlagMsgActive) != 0;
}

// ---------------------------------------------------------------------------
// Saved-frame access
// ---------------------------------------------------------------------------

std::uint32_t IntMux::saved_frame_base(const Tcb& tcb) const {
  if (tcb.secure) {
    const auto it = shadow_.find(tcb.handle);
    TYTAN_CHECK(it != shadow_.end(), "saved_frame_base: no shadow TCB");
    auto sp = const_cast<sim::Machine&>(machine_).fw_read32(kIdent,
                                                            it->second.slot_addr + kOffSavedSp);
    TYTAN_CHECK(sp.is_ok(), "saved_frame_base: shadow read failed");
    return *sp;
  }
  return tcb.saved_sp;
}

Status IntMux::poke_saved_reg(const Tcb& tcb, unsigned reg, std::uint32_t value) {
  if (!tcb.context_saved) {
    return make_error(Err::kInvalidArgument, "poke_saved_reg: no saved context");
  }
  if (reg > 6) {
    return make_error(Err::kOutOfRange, "poke_saved_reg: r0..r6 only");
  }
  // Frame layout: [sp]=r6 ... [sp+24]=r0.
  const std::uint32_t addr = saved_frame_base(tcb) + (6 - reg) * 4;
  return machine_.fw_write32(kIdent, addr, value);
}

Result<std::uint32_t> IntMux::peek_saved_reg(const Tcb& tcb, unsigned reg) const {
  if (!tcb.context_saved) {
    return make_error(Err::kInvalidArgument, "peek_saved_reg: no saved context");
  }
  if (reg > 6) {
    return make_error(Err::kOutOfRange, "peek_saved_reg: r0..r6 only");
  }
  const std::uint32_t addr = saved_frame_base(tcb) + (6 - reg) * 4;
  return const_cast<sim::Machine&>(machine_).fw_read32(kIdent, addr);
}

// ---------------------------------------------------------------------------
// Normal-task restore (FreeRTOS baseline)
// ---------------------------------------------------------------------------

Status IntMux::resume_normal(Tcb& tcb) {
  if (!tcb.context_saved) {
    return make_error(Err::kInvalidArgument, "resume_normal: no saved context");
  }
  const sim::CostModel& costs = machine_.costs();
  resume_stats_ = ResumeStats{};
  const std::uint64_t t0 = machine_.cycles();
  machine_.charge(costs.resume_normal);

  auto& cpu = machine_.cpu();
  std::uint32_t sp = tcb.saved_sp;
  // Frame: [sp]=r6 ... [sp+24]=r0, [sp+28]=EIP, [sp+32]=EFLAGS.
  for (unsigned i = 0; i < 7; ++i) {
    auto value = machine_.fw_read32(sim::kFwOsKernel, sp + i * 4);
    if (!value.is_ok()) {
      return value.status();
    }
    cpu.regs[6 - i] = *value;
  }
  auto eip = machine_.fw_read32(sim::kFwOsKernel, sp + kFrameEipOffset);
  auto eflags = machine_.fw_read32(sim::kFwOsKernel, sp + kFrameEflagsOffset);
  if (!eip.is_ok() || !eflags.is_ok()) {
    return make_error(Err::kInternal, "resume_normal: frame read failed");
  }
  cpu.set_sp(sp + kFrameSize);
  cpu.eflags = *eflags | isa::kFlagIF;
  cpu.eip = *eip;
  tcb.context_saved = false;
  tcb.dispatch_cycle = machine_.cycles();
  resume_stats_.restore = machine_.cycles() - t0;
  resume_stats_.total = resume_stats_.restore;
  machine_.obs().emit(obs::EventKind::kCtxRestore, tcb.handle,
                      static_cast<std::uint32_t>(resume_stats_.total),
                      obs::kRestoreNormal);
  return Status::ok();
}

void IntMux::save_state(snap::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(vector_handlers_.size()));
  for (const auto& [vector, handler] : vector_handlers_) {
    w.u8(vector);
    w.u32(handler);
  }
  w.u32(static_cast<std::uint32_t>(shadow_.size()));
  for (const auto& [handle, index] : shadow_) {
    w.i32(handle);
    w.u32(index.region_base);
    w.u32(index.region_size);
    w.u32(index.entry);
    w.u32(index.stack_top);
    w.u32(index.slot_addr);
  }
  w.u64(save_stats_.store);
  w.u64(save_stats_.wipe);
  w.u64(save_stats_.branch);
  w.u64(save_stats_.total);
  w.boolean(save_stats_.secure);
  w.u64(resume_stats_.branch);
  w.u64(resume_stats_.restore);
  w.u64(resume_stats_.total);
}

Status IntMux::restore_state(snap::Reader& r) {
  const std::uint32_t handlers = r.u32();
  vector_handlers_.clear();
  for (std::uint32_t i = 0; i < handlers && r.ok(); ++i) {
    const std::uint8_t vector = r.u8();
    vector_handlers_[vector] = r.u32();
  }
  const std::uint32_t shadows = r.u32();
  shadow_.clear();
  for (std::uint32_t i = 0; i < shadows && r.ok(); ++i) {
    const rtos::TaskHandle handle = r.i32();
    ShadowIndex index;
    index.region_base = r.u32();
    index.region_size = r.u32();
    index.entry = r.u32();
    index.stack_top = r.u32();
    index.slot_addr = r.u32();
    shadow_[handle] = index;
  }
  save_stats_.store = r.u64();
  save_stats_.wipe = r.u64();
  save_stats_.branch = r.u64();
  save_stats_.total = r.u64();
  save_stats_.secure = r.boolean();
  resume_stats_.branch = r.u64();
  resume_stats_.restore = r.u64();
  resume_stats_.total = r.u64();
  return Status::ok();
}

}  // namespace tytan::core
