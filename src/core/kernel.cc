#include "core/kernel.h"

#include "common/log.h"
#include "core/secure_storage.h"
#include "fault/fault.h"

namespace tytan::core {

using rtos::BlockReason;
using rtos::TaskHandle;
using rtos::TaskKind;
using rtos::TaskState;
using rtos::Tcb;

Kernel::Kernel(sim::Machine& machine, rtos::Scheduler& scheduler, IntMux& int_mux)
    : machine_(machine), scheduler_(scheduler), int_mux_(int_mux) {}

void Kernel::install() {
  machine_.register_firmware(kIdent + kTickHandlerOff, "os-tick",
                             [this](sim::Machine&) { on_tick(); });
  machine_.register_firmware(kIdent + kSyscallHandlerOff, "os-syscall",
                             [this](sim::Machine&) { on_syscall(); });
  machine_.register_firmware(sim::kFwFaultHandler, "os-fault",
                             [this](sim::Machine&) { on_fault(); });
  machine_.register_firmware(kIdent + kDeviceIrqHandlerOff, "os-device-irq",
                             [this](sim::Machine&) { on_device_irq(); });
  int_mux_.set_vector_handler(sim::kVecTimer, kIdent + kTickHandlerOff);
  int_mux_.set_vector_handler(sim::kVecSyscall, kIdent + kSyscallHandlerOff);
  int_mux_.set_vector_handler(sim::kVecFault, sim::kFwFaultHandler);
  int_mux_.set_task_lookup([this](std::uint32_t addr) -> Tcb* {
    for (const TaskHandle handle : scheduler_.handles()) {
      Tcb* tcb = scheduler_.get(handle);
      if (tcb != nullptr && tcb->kind == TaskKind::kGuest && addr >= tcb->region_base &&
          addr - tcb->region_base < tcb->region_size) {
        return tcb;
      }
    }
    return nullptr;
  });
}

Result<TaskHandle> Kernel::create_firmware_task(const std::string& name, unsigned priority,
                                                std::function<bool()> quantum) {
  TYTAN_CHECK(loader_ != nullptr, "kernel needs the loader (for the arena) first");
  auto handle = scheduler_.create(
      {.name = name, .priority = priority, .secure = false, .kind = TaskKind::kFirmware});
  if (!handle.is_ok()) {
    return handle;
  }
  Tcb* tcb = scheduler_.get(*handle);
  tcb->quantum = std::move(quantum);

  // A small stack for hardware interrupt frames.
  auto stack = loader_->arena().alloc(256);
  if (!stack.is_ok()) {
    scheduler_.destroy(*handle);
    return stack.status();
  }
  tcb->region_base = *stack;
  tcb->region_size = 256;
  tcb->stack_top = *stack + 256;

  const std::uint32_t entry = kIdent + next_fw_entry_;
  next_fw_entry_ += kFwTaskEntryStride;
  tcb->entry = entry;
  machine_.register_firmware(entry, "fwtask:" + name,
                             [this](sim::Machine&) { run_firmware_quantum(); });
  return *handle;
}

std::function<bool()> Kernel::idle_quantum() {
  return [this]() {
    machine_.charge(20);  // the idle loop burns a few cycles per pass
    return true;
  };
}

std::function<bool()> Kernel::loader_quantum() {
  return [this]() { return loader_->load_quantum(); };
}

Status Kernel::adopt_firmware_task(Tcb& tcb) {
  if (tcb.name == "idle") {
    tcb.quantum = idle_quantum();
  } else if (tcb.name == "loader") {
    tcb.quantum = loader_quantum();
  } else {
    return make_error(Err::kUnavailable,
                      "cannot rebuild quantum for firmware task '" + tcb.name +
                          "' (restore in place instead)");
  }
  if (!machine_.is_firmware(tcb.entry)) {
    machine_.register_firmware(tcb.entry, "fwtask:" + tcb.name,
                               [this](sim::Machine&) { run_firmware_quantum(); });
  }
  return Status::ok();
}

Status Kernel::start(std::uint32_t tick_period_cycles) {
  TYTAN_CHECK(loader_ != nullptr, "kernel: loader not wired");
  auto idle = create_firmware_task("idle", rtos::kIdlePriority, idle_quantum());
  if (!idle.is_ok()) {
    return idle.status();
  }
  idle_task_ = *idle;
  scheduler_.make_ready(idle_task_);

  auto loader_task = create_firmware_task("loader", /*priority=*/1, loader_quantum());
  if (!loader_task.is_ok()) {
    return loader_task.status();
  }
  loader_task_ = *loader_task;
  // The loader parks until a job arrives.

  if (timer_ != nullptr && tick_period_cycles != 0) {
    timer_->write32(sim::TimerDevice::kPeriod, tick_period_cycles);
    timer_->write32(sim::TimerDevice::kCtrl, 1);
  }
  reschedule();
  return Status::ok();
}

void Kernel::kick_loader() {
  Tcb* tcb = scheduler_.get(loader_task_);
  if (tcb != nullptr && (tcb->state == TaskState::kBlocked ||
                         tcb->state == TaskState::kSuspended)) {
    scheduler_.make_ready(loader_task_);
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Kernel::reschedule() {
  machine_.charge(machine_.costs().sched_pick);
  Tcb* tcb = nullptr;
  while (true) {
    const TaskHandle next = scheduler_.pick_next();
    TYTAN_CHECK(next != rtos::kNoTask, "kernel: no ready task (idle missing?)");
    tcb = scheduler_.get(next);
    // Execution-time bounding (paper §5): a task that exhausted its CPU
    // budget for this tick window is deferred to the next tick.
    if (tcb->kind == TaskKind::kGuest && tcb->budget_per_tick != 0 &&
        tcb->budget_used >= tcb->budget_per_tick) {
      ++tcb->throttle_events;
      scheduler_.delay_until(next, scheduler_.tick_count() + 1);
      continue;
    }
    // Fault injection: wedge the task on the edge of its dispatch.  It stays
    // blocked as kStalled — nothing but the watchdog (on_tick) wakes it.
    if (tcb->kind == TaskKind::kGuest && !tcb->stalled) {
      if (fault::FaultEngine* engine = machine_.faults();
          engine != nullptr &&
          engine->on_task_dispatch(tcb->name, machine_.cycles())) {
        tcb->stalled = true;
        tcb->stall_since_tick = scheduler_.tick_count();
        machine_.obs().emit(obs::EventKind::kFaultInject, next,
                            static_cast<std::uint32_t>(fault::FaultClass::kTaskStall));
        TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "kernel")
            << "fault injection: task '" << tcb->name << "' stalled";
        scheduler_.block(next, rtos::BlockReason::kStalled);
        continue;
      }
    }
    const Status s = scheduler_.dispatch(next);
    TYTAN_CHECK(s.is_ok(), "kernel: dispatch failed: " + s.to_string());
    break;
  }

  if (tcb->kind == TaskKind::kFirmware) {
    auto& cpu = machine_.cpu();
    cpu.set_sp(tcb->stack_top);
    cpu.eflags = isa::kFlagIF;
    cpu.eip = tcb->entry;
    return;
  }
  dispatch_guest(*tcb);
}

void Kernel::dispatch_guest(Tcb& tcb) {
  if (tcb.secure) {
    Status s;
    if (tcb.context_saved) {
      s = int_mux_.resume_secure(tcb);
    } else if (tcb.message_pending) {
      tcb.message_pending = false;
      machine_.charge(machine_.costs().ipc_receiver_entry);
      s = int_mux_.enter_message(tcb);
    } else {
      s = int_mux_.start_secure(tcb);
    }
    TYTAN_CHECK(s.is_ok(), "kernel: secure dispatch failed: " + s.to_string());
    return;
  }
  // Normal task: the OS restores the context itself (FreeRTOS behaviour).
  const Status s = int_mux_.resume_normal(tcb);
  TYTAN_CHECK(s.is_ok(), "kernel: normal dispatch failed: " + s.to_string());
}

Status Kernel::resume_specific(TaskHandle handle) {
  Tcb* tcb = scheduler_.get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "resume_specific: no such task");
  }
  if (scheduler_.current_handle() == handle) {
    // Still the running task (e.g. returning from a syscall).  Yield only if
    // something more urgent became ready meanwhile.
    if (scheduler_.higher_priority_ready()) {
      scheduler_.preempt_current();
      reschedule();
      return Status::ok();
    }
    if (tcb->kind == TaskKind::kFirmware) {
      auto& cpu = machine_.cpu();
      cpu.set_sp(tcb->stack_top);
      cpu.eflags = isa::kFlagIF;
      cpu.eip = tcb->entry;
    } else {
      dispatch_guest(*tcb);
    }
    return Status::ok();
  }
  scheduler_.make_ready(handle);
  reschedule();
  return Status::ok();
}

Status Kernel::activate_message(TaskHandle handle) {
  Tcb* tcb = scheduler_.get(handle);
  if (tcb == nullptr || !tcb->secure) {
    return make_error(Err::kNotFound, "activate_message: no such secure task");
  }
  machine_.charge(machine_.costs().ipc_receiver_entry);
  if (Status s = int_mux_.enter_message(*tcb); !s.is_ok()) {
    return s;
  }
  // The receiver becomes the running task.
  scheduler_.make_ready(handle);
  scheduler_.dispatch(handle);
  tcb->message_pending = false;
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

void Kernel::route_device_irq(std::uint8_t vector) {
  // The IDT entry itself (vector -> Int Mux) is installed by secure boot and
  // locked; the kernel only chooses the second-level handler.
  int_mux_.set_vector_handler(vector, kIdent + kDeviceIrqHandlerOff);
  routed_irqs_.insert(vector);
}

void Kernel::on_device_irq() {
  machine_.charge(machine_.costs().syscall_base);
  const std::uint8_t vector = machine_.int_vector();
  // Wake every task parked on this vector (edge-triggered wake).
  auto& waiters = irq_waiters_[vector];
  for (const TaskHandle handle : waiters) {
    Tcb* tcb = scheduler_.get(handle);
    if (tcb != nullptr && tcb->state == TaskState::kBlocked &&
        tcb->block_reason == BlockReason::kIrq) {
      scheduler_.make_ready(handle);
    }
  }
  waiters.clear();
  if (scheduler_.current() != nullptr) {
    scheduler_.preempt_current();
  }
  reschedule();
}

void Kernel::on_tick() {
  machine_.charge(machine_.costs().sched_tick);
  scheduler_.tick();
  timers_.advance(scheduler_.tick_count());
  // Execution-time budgets refill as a leaky bucket: each tick drains one
  // budget quantum, so a task that used a whole window pays it back over the
  // following windows — long-run CPU share converges to budget/tick_period.
  for (const TaskHandle handle : scheduler_.handles()) {
    if (Tcb* tcb = scheduler_.get(handle); tcb != nullptr) {
      if (tcb->budget_per_tick == 0) {
        tcb->budget_used = 0;
      } else {
        tcb->budget_used = tcb->budget_used > tcb->budget_per_tick
                               ? tcb->budget_used - tcb->budget_per_tick
                               : 0;
      }
    }
  }
  // Watchdog: restart tasks wedged longer than the stall timeout.  This is
  // the recovery path for task-stall injection — the restart count feeds
  // telemetry so the fleet can tell flaky tasks from healthy ones.
  for (const TaskHandle handle : scheduler_.handles()) {
    Tcb* tcb = scheduler_.get(handle);
    if (tcb == nullptr || !tcb->stalled) {
      continue;
    }
    if (scheduler_.tick_count() - tcb->stall_since_tick < watchdog_ticks_) {
      continue;
    }
    tcb->stalled = false;
    ++tcb->watchdog_restarts;
    ++watchdog_restarts_;
    if (fault::FaultEngine* engine = machine_.faults(); engine != nullptr) {
      engine->note_recovery(fault::FaultClass::kTaskStall);
    }
    machine_.obs().emit(obs::EventKind::kFaultRecover, handle,
                        static_cast<std::uint32_t>(fault::RecoveryKind::kTaskRestart),
                        static_cast<std::uint32_t>(tcb->watchdog_restarts));
    TYTAN_CLOG(machine_.log(), LogLevel::kInfo, "kernel")
        << "watchdog restarted task '" << tcb->name << "' (restart "
        << tcb->watchdog_restarts << ")";
    scheduler_.make_ready(handle);
  }
  if (scheduler_.current() != nullptr) {
    scheduler_.preempt_current();
  }
  reschedule();
}

std::uint32_t Kernel::saved_reg(const Tcb& tcb, unsigned reg) {
  auto value = int_mux_.peek_saved_reg(tcb, reg);
  return value.is_ok() ? *value : 0;
}

void Kernel::syscall_result(Tcb& tcb, std::uint32_t value) {
  int_mux_.poke_saved_reg(tcb, 0, value);
}

void Kernel::on_syscall() {
  ++syscalls_;
  machine_.charge(machine_.costs().syscall_base);
  Tcb* tcb = scheduler_.current();
  if (tcb == nullptr || tcb->kind != TaskKind::kGuest) {
    // Spurious syscall (e.g. from firmware) — ignore and reschedule.
    reschedule();
    return;
  }
  const std::uint32_t number = saved_reg(*tcb, 0);
  machine_.obs().emit(obs::EventKind::kSyscall, tcb->handle, number);
  const std::uint32_t a1 = saved_reg(*tcb, 1);
  const std::uint32_t a2 = saved_reg(*tcb, 2);
  const std::uint32_t a3 = saved_reg(*tcb, 3);

  switch (number) {
    case kSysYield:
      syscall_result(*tcb, kSysOk);
      scheduler_.yield_current();
      reschedule();
      return;
    case kSysDelay: {
      syscall_result(*tcb, kSysOk);
      scheduler_.delay_until(tcb->handle, scheduler_.tick_count() + std::max(1u, a1));
      reschedule();
      return;
    }
    case kSysExit: {
      const TaskHandle handle = tcb->handle;
      if (loader_ != nullptr) {
        loader_->unload(handle);
      } else {
        scheduler_.destroy(handle);
      }
      reschedule();
      return;
    }
    case kSysPutchar: {
      if (serial_ != nullptr) {
        serial_->write32(sim::SerialConsole::kData, a1);
      }
      syscall_result(*tcb, kSysOk);
      resume_specific(tcb->handle);
      return;
    }
    case kSysGetTick:
      syscall_result(*tcb, static_cast<std::uint32_t>(scheduler_.tick_count()));
      resume_specific(tcb->handle);
      return;
    case kSysWaitMsg: {
      if (!tcb->secure) {
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      if (tcb->message_pending) {
        // Deliver immediately: discard the wait frame and run the handler.
        tcb->context_saved = false;
        scheduler_.block(tcb->handle, BlockReason::kMessage);
        scheduler_.make_ready(tcb->handle);
        activate_message(tcb->handle);
        return;
      }
      tcb->context_saved = false;  // parked; next activation is a fresh entry
      scheduler_.block(tcb->handle, BlockReason::kMessage);
      reschedule();
      return;
    }
    case kSysMsgDone: {
      if (!tcb->secure) {
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      auto had_ctx = int_mux_.finish_message(*tcb);
      if (!had_ctx.is_ok()) {
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      if (*had_ctx) {
        // Resume the pre-message context.
        scheduler_.yield_current();
        scheduler_.make_ready(tcb->handle);
        reschedule();
      } else {
        scheduler_.block(tcb->handle, BlockReason::kMessage);
        reschedule();
      }
      return;
    }
    case kSysSealStore:
    case kSysSealLoad: {
      if (storage_ == nullptr) {
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      const std::uint32_t result =
          (number == kSysSealStore)
              ? storage_->store_from_guest(*tcb, a1, a2, a3)
              : storage_->load_to_guest(*tcb, a1, a2, a3);
      syscall_result(*tcb, result);
      resume_specific(tcb->handle);
      return;
    }
    case kSysQueueSend:
    case kSysQueueRecv: {
      if (tcb->secure) {
        // Secure tasks use the authenticated IPC proxy, not OS queues (the
        // OS would have to touch their memory to copy the payload).
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      const auto queue = static_cast<rtos::QueueHandle>(a1);
      if (number == kSysQueueSend) {
        rtos::QueueItem item{};
        bool ok = true;
        for (unsigned i = 0; i < 4; ++i) {
          auto word = machine_.fw_read32(kIdent, a2 + i * 4);
          if (!word.is_ok()) {
            ok = false;
            break;
          }
          item[i] = *word;
        }
        syscall_result(*tcb, ok && queues_.send(queue, item).is_ok() ? kSysOk : kSysErr);
      } else {
        auto item = queues_.receive(queue);
        bool ok = item.is_ok();
        if (ok) {
          for (unsigned i = 0; i < 4; ++i) {
            ok = ok && machine_.fw_write32(kIdent, a2 + i * 4, (*item)[i]).is_ok();
          }
        }
        syscall_result(*tcb, ok ? kSysOk : kSysErr);
      }
      resume_specific(tcb->handle);
      return;
    }
    case kSysWaitIrq: {
      const auto vector = static_cast<std::uint8_t>(a1 & 0x3F);
      if (!routed_irqs_.contains(vector)) {
        // Only device vectors routed through the kernel are waitable; a task
        // must not park on the syscall/IPC/tick vectors.
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      syscall_result(*tcb, kSysOk);
      irq_waiters_[vector].push_back(tcb->handle);
      scheduler_.block(tcb->handle, BlockReason::kIrq);
      reschedule();
      return;
    }
    case kSysGetId: {
      // The RTM (sole owner of identities) writes the caller's id_t into the
      // caller-supplied buffer; its background rule reaches task memory.
      if (rtm_ == nullptr || !tcb->measured) {
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      bool ok = true;
      for (unsigned i = 0; i < 8; ++i) {
        ok = ok && machine_.fw_write8(Rtm::kIdent, a1 + i, tcb->identity[i]).is_ok();
      }
      syscall_result(*tcb, ok ? kSysOk : kSysErr);
      resume_specific(tcb->handle);
      return;
    }
    case kSysLocalAttest: {
      // Local attestation (paper §3): verify that a task with the given id_t
      // is currently loaded, by consulting the RTM registry.
      if (rtm_ == nullptr) {
        syscall_result(*tcb, kSysErr);
        resume_specific(tcb->handle);
        return;
      }
      rtos::TaskIdentity id{};
      bool ok = true;
      for (unsigned i = 0; i < 8; ++i) {
        auto byte = machine_.fw_read8(Rtm::kIdent, a1 + i);
        if (!byte.is_ok()) {
          ok = false;
          break;
        }
        id[i] = *byte;
      }
      syscall_result(*tcb, ok && rtm_->find_by_identity(id) != nullptr ? kSysOk : kSysErr);
      resume_specific(tcb->handle);
      return;
    }
    default:
      syscall_result(*tcb, kSysErr);
      resume_specific(tcb->handle);
      return;
  }
}

void Kernel::on_fault() {
  const sim::FaultInfo& fault = machine_.last_fault();
  Tcb* tcb = scheduler_.current();
  TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "kernel")
      << "fault: " << fault.to_string() << " current="
      << (tcb != nullptr ? tcb->name : std::string("<none>"));
  if (tcb != nullptr && tcb->kind == TaskKind::kGuest) {
    ++fault_kills_;
    const TaskHandle handle = tcb->handle;
    if (loader_ != nullptr) {
      loader_->unload(handle);
    } else {
      scheduler_.destroy(handle);
    }
    reschedule();
    return;
  }
  // Fault without a guest task: stop the machine, something is wrong with
  // the platform configuration itself.
  machine_.halt(sim::HaltReason::kDoubleFault);
}

// ---------------------------------------------------------------------------
// Firmware task execution
// ---------------------------------------------------------------------------

void Kernel::run_firmware_quantum() {
  Tcb* tcb = scheduler_.current();
  if (tcb == nullptr || tcb->kind != TaskKind::kFirmware ||
      machine_.cpu().eip != tcb->entry) {
    // Stale entry (task switched away mid-quantum) — just reschedule.
    reschedule();
    return;
  }
  const std::uint64_t t0 = machine_.cycles();
  const bool more = tcb->quantum();
  tcb->cpu_cycles += machine_.cycles() - t0;
  if (!more) {
    scheduler_.block(tcb->handle, BlockReason::kQueueRecv);
    reschedule();
  }
  // Otherwise EIP stays at the task entry: the next machine step re-invokes
  // the quantum, and pending interrupts can preempt in between.
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

void Kernel::save_state(snap::Writer& w) const {
  queues_.save_state(w);
  w.i32(idle_task_);
  w.i32(loader_task_);
  w.u32(next_fw_entry_);
  w.u64(syscalls_);
  w.u64(fault_kills_);
  w.u64(watchdog_ticks_);
  w.u64(watchdog_restarts_);
  w.u32(static_cast<std::uint32_t>(irq_waiters_.size()));
  for (const auto& [vector, waiters] : irq_waiters_) {
    w.u8(vector);
    w.u32(static_cast<std::uint32_t>(waiters.size()));
    for (const TaskHandle task : waiters) {
      w.i32(task);
    }
  }
  w.u32(static_cast<std::uint32_t>(routed_irqs_.size()));
  for (const std::uint8_t vector : routed_irqs_) {
    w.u8(vector);
  }
}

Status Kernel::restore_state(snap::Reader& r) {
  if (Status s = queues_.restore_state(r); !s.is_ok()) {
    return s;
  }
  timers_.clear();  // snapshots are only taken with no timers active
  idle_task_ = r.i32();
  loader_task_ = r.i32();
  next_fw_entry_ = r.u32();
  syscalls_ = r.u64();
  fault_kills_ = r.u64();
  watchdog_ticks_ = r.u64();
  watchdog_restarts_ = r.u64();
  const std::uint32_t waiter_maps = r.u32();
  irq_waiters_.clear();
  for (std::uint32_t i = 0; i < waiter_maps && r.ok(); ++i) {
    const std::uint8_t vector = r.u8();
    const std::uint32_t count = r.u32();
    std::vector<TaskHandle>& waiters = irq_waiters_[vector];
    for (std::uint32_t j = 0; j < count && r.ok(); ++j) {
      waiters.push_back(r.i32());
    }
  }
  const std::uint32_t routed = r.u32();
  routed_irqs_.clear();
  for (std::uint32_t i = 0; i < routed && r.ok(); ++i) {
    routed_irqs_.insert(r.u8());
  }
  return Status::ok();
}

}  // namespace tytan::core
