// EA-MPU driver (paper §3): the trusted software component that makes the
// EA-MPU *dynamically* configurable — TyTAN's extension over TrustLite's
// boot-time-static usage.
//
// Configuring a rule performs the three phases Table 6 measures:
//   1. find a free slot (linear probe; cost grows with the slot position),
//   2. policy-check the new rule against every existing slot (protected
//      regions must not overlap),
//   3. write the rule to the EA-MPU.
#pragma once

#include "common/status.h"
#include "hw/eampu.h"
#include "sim/machine.h"

namespace tytan::core {

class EaMpuDriver {
 public:
  /// Cycle breakdown of the last configure() (bench for Table 6).
  struct ConfigStats {
    std::uint64_t find = 0;
    std::uint64_t policy = 0;
    std::uint64_t write = 0;
    std::uint64_t total = 0;
    std::size_t slot = 0;
  };

  EaMpuDriver(sim::Machine& machine, hw::EaMpu& mpu) : machine_(machine), mpu_(mpu) {}

  static constexpr std::uint32_t kIdent = sim::kFwEaMpuDriver;

  /// Install a rule: find free slot, policy check, write.  Returns the slot.
  Result<std::size_t> configure(const hw::Rule& rule);

  /// Remove a rule installed by configure().
  Status unconfigure(std::size_t slot);

  /// Register an execution region (task descriptor with entry point).
  Result<std::size_t> add_exec_region(const hw::ExecRegion& region);
  Status remove_exec_region(std::size_t idx);

  [[nodiscard]] const ConfigStats& last_config() const { return stats_; }
  [[nodiscard]] hw::EaMpu& mpu() { return mpu_; }

  /// Serialize / overwrite the last-configure stats (the rule table itself
  /// is the EA-MPU's own snapshot section).
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  /// Overlap policy: a new data region may not overlap an existing rule's
  /// data region.  Rules whose code region lies in the trusted firmware area
  /// are exempt — the static trusted-component rules legitimately cover all
  /// of RAM (trusted components may access secure-task memory, paper §4).
  [[nodiscard]] bool policy_violation(const hw::Rule& rule) const;

  sim::Machine& machine_;
  hw::EaMpu& mpu_;
  ConfigStats stats_;
};

}  // namespace tytan::core
