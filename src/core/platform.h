// The TyTAN platform facade — the library's primary entry point.
//
// Owns the simulated machine, the EA-MPU, the MMIO devices, the FreeRTOS-like
// scheduler, and every TyTAN trusted component, wired exactly as Figure 1 of
// the paper shows.  Typical use:
//
//   tytan::core::Platform platform;
//   platform.boot();                              // secure boot + kernel start
//   auto task = platform.load_task_source(asm_src, {.name = "sensor"});
//   platform.run_for(1'000'000);                  // simulate one million cycles
//   auto report = platform.remote_attest().attest_task(*task, nonce);
#pragma once

#include <memory>

#include "core/eampu_driver.h"
#include "core/int_mux.h"
#include "core/ipc_proxy.h"
#include "core/kernel.h"
#include "core/remote_attest.h"
#include "core/rtm.h"
#include "core/secure_boot.h"
#include "core/secure_storage.h"
#include "core/task_loader.h"
#include "core/task_update.h"
#include "hw/key_register.h"
#include "isa/assembler.h"
#include "rtos/scheduler.h"
#include "sim/devices.h"

namespace tytan::core {

class Platform {
 public:
  struct Config {
    sim::CostModel costs{};
    /// RTOS tick period in cycles.  Default: 1 kHz at the paper's 48 MHz.
    std::uint32_t tick_period = 48'000;
    /// Platform key Kp (fused at manufacturing).
    crypto::Key128 kp{0x4b, 0x70, 0x2d, 0x74, 0x79, 0x74, 0x61, 0x6e,
                      0x2d, 0x64, 0x65, 0x76, 0x69, 0x63, 0x65, 0x31};
    /// Static-verifier gate the loader runs before allocating task memory.
    LintMode lint_mode = LintMode::kWarn;
    analysis::Config lint_config{};
  };

  Platform() : Platform(Config{}) {}
  explicit Platform(const Config& config);

  /// Secure boot + kernel start.  Must be called exactly once before tasks
  /// are loaded.
  Result<BootReport> boot();

  // -- task management ------------------------------------------------------------
  /// Assemble Peak-32 source and load it synchronously (the machine is not
  /// advanced; cycle costs are charged as if the loader ran uninterrupted).
  Result<rtos::TaskHandle> load_task_source(std::string_view source, LoadParams params);
  /// Load a pre-assembled object synchronously.
  Result<rtos::TaskHandle> load_task(isa::ObjectFile object, LoadParams params);
  /// Queue an asynchronous load processed by the (interruptible) loader task
  /// while the machine runs — the paper's dynamic loading path (Table 1).
  Result<rtos::TaskHandle> load_task_async(isa::ObjectFile object, LoadParams params);
  Result<rtos::TaskHandle> load_task_source_async(std::string_view source, LoadParams params);
  [[nodiscard]] bool load_in_progress() const { return loader_->load_in_progress(); }

  Status unload_task(rtos::TaskHandle handle);
  Status suspend_task(rtos::TaskHandle handle);
  Status resume_task(rtos::TaskHandle handle);

  /// Bound a task's CPU time (paper §5): at most `cycles_per_tick` cycles of
  /// execution per scheduler tick; excess is deferred to the next window.
  /// Pass 0 to lift the bound.
  Status set_task_budget(rtos::TaskHandle handle, std::uint64_t cycles_per_tick);

  /// Runtime update (paper §8 future work): replace `handle` with a new
  /// binary.  The synchronous form swaps immediately; the async form loads
  /// in the background while the old version keeps running and swaps when
  /// the replacement is measured (downtime = the swap, not the load).
  Result<rtos::TaskHandle> update_task(rtos::TaskHandle handle, std::string_view source,
                                       LoadParams params, UpdateParams update = {});
  Result<rtos::TaskHandle> update_task_async(rtos::TaskHandle handle,
                                             isa::ObjectFile object, LoadParams params,
                                             UpdateParams update = {});

  // -- execution --------------------------------------------------------------------
  /// Advance the simulation by `cycles` clock cycles.
  sim::HaltReason run_for(std::uint64_t cycles);
  /// Advance until `predicate()` is true or `max_cycles` elapse; returns
  /// true if the predicate fired.
  bool run_until(const std::function<bool()>& predicate, std::uint64_t max_cycles);

  // -- component access ----------------------------------------------------------------
  [[nodiscard]] sim::Machine& machine() { return *machine_; }
  [[nodiscard]] hw::EaMpu& mpu() { return *mpu_; }
  [[nodiscard]] rtos::Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] IntMux& int_mux() { return *int_mux_; }
  [[nodiscard]] EaMpuDriver& eampu_driver() { return *driver_; }
  [[nodiscard]] Rtm& rtm() { return *rtm_; }
  [[nodiscard]] TaskLoader& loader() { return *loader_; }
  [[nodiscard]] Kernel& kernel() { return *kernel_; }
  [[nodiscard]] IpcProxy& ipc_proxy() { return *proxy_; }
  [[nodiscard]] RemoteAttest& remote_attest() { return *attest_; }
  [[nodiscard]] SecureStorage& secure_storage() { return *storage_; }
  [[nodiscard]] UpdateManager& updater() { return *updater_; }

  [[nodiscard]] sim::TimerDevice& timer() { return *timer_; }
  [[nodiscard]] sim::SerialConsole& serial() { return *serial_; }
  [[nodiscard]] sim::SensorDevice& pedal() { return *pedal_; }
  [[nodiscard]] sim::SensorDevice& radar() { return *radar_; }
  [[nodiscard]] sim::EngineActuator& engine() { return *engine_; }
  [[nodiscard]] sim::RngDevice& rng() { return *rng_; }
  [[nodiscard]] sim::CanBusDevice& can_bus() { return *can_; }
  [[nodiscard]] hw::KeyRegister& key_register() { return *key_register_; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] bool booted() const { return booted_; }
  [[nodiscard]] const BootReport& boot_report() const { return boot_report_; }

 private:
  void ensure_scheduled();

  Config config_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<hw::EaMpu> mpu_;
  std::unique_ptr<rtos::Scheduler> scheduler_;
  std::unique_ptr<IntMux> int_mux_;
  std::unique_ptr<EaMpuDriver> driver_;
  std::unique_ptr<Rtm> rtm_;
  std::unique_ptr<TaskLoader> loader_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<IpcProxy> proxy_;
  std::unique_ptr<RemoteAttest> attest_;
  std::unique_ptr<SecureStorage> storage_;
  std::unique_ptr<UpdateManager> updater_;
  std::unique_ptr<SecureBootRom> boot_rom_;

  std::shared_ptr<sim::TimerDevice> timer_;
  std::shared_ptr<sim::SerialConsole> serial_;
  std::shared_ptr<sim::SensorDevice> pedal_;
  std::shared_ptr<sim::SensorDevice> radar_;
  std::shared_ptr<sim::EngineActuator> engine_;
  std::shared_ptr<sim::RngDevice> rng_;
  std::shared_ptr<sim::CanBusDevice> can_;
  std::shared_ptr<hw::KeyRegister> key_register_;

  bool booted_ = false;
  BootReport boot_report_;
};

}  // namespace tytan::core
