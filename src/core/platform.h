// The TyTAN platform facade — the library's primary entry point.
//
// Owns the simulated machine, the EA-MPU, the MMIO devices, the FreeRTOS-like
// scheduler, and every TyTAN trusted component, wired exactly as Figure 1 of
// the paper shows.  Typical use:
//
//   tytan::core::Platform platform;
//   platform.boot();                              // secure boot + kernel start
//   auto task = platform.load_task_source(asm_src, {.name = "sensor"});
//   platform.run_for(1'000'000);                  // simulate one million cycles
//   auto report = platform.remote_attest().attest_task(*task, nonce);
#pragma once

#include <memory>
#include <vector>

#include "common/log.h"
#include "core/eampu_driver.h"
#include "core/int_mux.h"
#include "core/ipc_proxy.h"
#include "core/kernel.h"
#include "core/remote_attest.h"
#include "core/rtm.h"
#include "core/secure_boot.h"
#include "core/secure_storage.h"
#include "core/task_loader.h"
#include "core/task_update.h"
#include "fault/fault.h"
#include "hw/key_register.h"
#include "isa/assembler.h"
#include "rtos/scheduler.h"
#include "sim/devices.h"
#include "snap/snapshot.h"

namespace tytan::core {

/// The MMIO device complement of one platform instance.  Construction is
/// separated from Platform so callers (PlatformBuilder, the fleet runner,
/// tests) can select devices and parameterize them per instance; every
/// device is owned by exactly one platform — nothing is shared.
struct DeviceSet {
  std::shared_ptr<sim::TimerDevice> timer;
  std::shared_ptr<sim::SerialConsole> serial;
  std::shared_ptr<sim::SensorDevice> pedal;
  std::shared_ptr<sim::SensorDevice> radar;
  std::shared_ptr<sim::EngineActuator> engine;
  std::shared_ptr<sim::RngDevice> rng;
  std::shared_ptr<sim::CanBusDevice> can;
  std::shared_ptr<hw::KeyRegister> key_register;
  /// Additional devices attached after the core set (custom workloads).
  std::vector<std::shared_ptr<sim::Device>> extra;

  /// The paper's fixed device complement (Figure 2), parameterized per
  /// instance: `kp` fuses the key register, `rng_seed` seeds the nonce RNG.
  static DeviceSet standard(const crypto::Key128& kp, std::uint64_t rng_seed);

  /// Every non-null device, core set first then extras, in attach order.
  [[nodiscard]] std::vector<std::shared_ptr<sim::Device>> all() const;
};

class Platform {
 public:
  struct Config {
    sim::CostModel costs{};
    /// RTOS tick period in cycles.  Default: 1 kHz at the paper's 48 MHz.
    std::uint32_t tick_period = 48'000;
    /// Platform key Kp (fused at manufacturing).
    crypto::Key128 kp{0x4b, 0x70, 0x2d, 0x74, 0x79, 0x74, 0x61, 0x6e,
                      0x2d, 0x64, 0x65, 0x76, 0x69, 0x63, 0x65, 0x31};
    /// Seed for the deterministic nonce RNG.  Fleet devices need distinct
    /// but reproducible seeds; 0 falls back to the device default.
    std::uint64_t rng_seed = sim::RngDevice::kDefaultSeed;
    /// Static-verifier gate the loader runs before allocating task memory.
    LintMode lint_mode = LintMode::kWarn;
    analysis::Config lint_config{};
    /// Log context every component of this platform emits through; nullptr
    /// means the process-default context (single-platform CLIs and tests).
    const LogContext* log = nullptr;
    /// Fault-injection plan (src/fault).  Empty — the default — installs no
    /// engine, so every hook site stays a single null-pointer compare.
    fault::FaultPlan fault_plan{};
    /// Instruction dispatch strategy.  kCached (the default) runs the
    /// decoded basic-block cache; kInterpreter is the reference path.  Both
    /// produce bit-identical simulated state — the knob exists for A/B
    /// verification (bench_host_perf, CI) and debugging.
    sim::DispatchMode dispatch = sim::DispatchMode::kCached;
  };

  Platform() : Platform(Config{}) {}
  explicit Platform(const Config& config)
      : Platform(config, DeviceSet::standard(config.kp, config.rng_seed)) {}
  /// Full control: a platform built around an explicit device set.  The
  /// standard accessors (timer() .. key_register()) require the matching
  /// member to be present; boot needs at least timer + key_register.
  Platform(const Config& config, DeviceSet devices);

  // One thread drives a Platform at a time; instances share no mutable
  // state, so distinct Platforms may run on distinct threads concurrently.
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Secure boot + kernel start.  Must be called exactly once before tasks
  /// are loaded.
  Result<BootReport> boot();

  // -- task management ------------------------------------------------------------
  /// Assemble Peak-32 source and load it synchronously (the machine is not
  /// advanced; cycle costs are charged as if the loader ran uninterrupted).
  Result<rtos::TaskHandle> load_task_source(std::string_view source, LoadParams params);
  /// Load a pre-assembled object synchronously.
  Result<rtos::TaskHandle> load_task(isa::ObjectFile object, LoadParams params);
  /// Queue an asynchronous load processed by the (interruptible) loader task
  /// while the machine runs — the paper's dynamic loading path (Table 1).
  Result<rtos::TaskHandle> load_task_async(isa::ObjectFile object, LoadParams params);
  Result<rtos::TaskHandle> load_task_source_async(std::string_view source, LoadParams params);
  [[nodiscard]] bool load_in_progress() const { return loader_->load_in_progress(); }

  Status unload_task(rtos::TaskHandle handle);
  Status suspend_task(rtos::TaskHandle handle);
  Status resume_task(rtos::TaskHandle handle);

  /// Bound a task's CPU time (paper §5): at most `cycles_per_tick` cycles of
  /// execution per scheduler tick; excess is deferred to the next window.
  /// Pass 0 to lift the bound.
  Status set_task_budget(rtos::TaskHandle handle, std::uint64_t cycles_per_tick);

  /// Runtime update (paper §8 future work): replace `handle` with a new
  /// binary.  The synchronous form swaps immediately; the async form loads
  /// in the background while the old version keeps running and swaps when
  /// the replacement is measured (downtime = the swap, not the load).
  Result<rtos::TaskHandle> update_task(rtos::TaskHandle handle, std::string_view source,
                                       LoadParams params, UpdateParams update = {});
  Result<rtos::TaskHandle> update_task_async(rtos::TaskHandle handle,
                                             isa::ObjectFile object, LoadParams params,
                                             UpdateParams update = {});

  // -- execution --------------------------------------------------------------------
  /// Advance the simulation by `cycles` clock cycles.
  sim::HaltReason run_for(std::uint64_t cycles);
  /// Advance until `predicate()` is true or `max_cycles` elapse; returns
  /// true if the predicate fired.
  bool run_until(const std::function<bool()>& predicate, std::uint64_t max_cycles);

  // -- component access ----------------------------------------------------------------
  [[nodiscard]] sim::Machine& machine() { return *machine_; }
  [[nodiscard]] const sim::Machine& machine() const { return *machine_; }
  [[nodiscard]] hw::EaMpu& mpu() { return *mpu_; }
  [[nodiscard]] rtos::Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] IntMux& int_mux() { return *int_mux_; }
  [[nodiscard]] EaMpuDriver& eampu_driver() { return *driver_; }
  [[nodiscard]] Rtm& rtm() { return *rtm_; }
  [[nodiscard]] TaskLoader& loader() { return *loader_; }
  [[nodiscard]] Kernel& kernel() { return *kernel_; }
  [[nodiscard]] IpcProxy& ipc_proxy() { return *proxy_; }
  [[nodiscard]] RemoteAttest& remote_attest() { return *attest_; }
  [[nodiscard]] SecureStorage& secure_storage() { return *storage_; }
  [[nodiscard]] UpdateManager& updater() { return *updater_; }
  /// Null unless Config::fault_plan was non-empty.
  [[nodiscard]] fault::FaultEngine* fault_engine() { return fault_engine_.get(); }
  [[nodiscard]] const fault::FaultEngine* fault_engine() const {
    return fault_engine_.get();
  }

  [[nodiscard]] sim::TimerDevice& timer() { return *devices_.timer; }
  [[nodiscard]] sim::SerialConsole& serial() { return *devices_.serial; }
  [[nodiscard]] sim::SensorDevice& pedal() { return *devices_.pedal; }
  [[nodiscard]] sim::SensorDevice& radar() { return *devices_.radar; }
  [[nodiscard]] sim::EngineActuator& engine() { return *devices_.engine; }
  [[nodiscard]] sim::RngDevice& rng() { return *devices_.rng; }
  [[nodiscard]] sim::CanBusDevice& can_bus() { return *devices_.can; }
  [[nodiscard]] hw::KeyRegister& key_register() { return *devices_.key_register; }
  [[nodiscard]] const DeviceSet& devices() const { return devices_; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] bool booted() const { return booted_; }
  [[nodiscard]] const BootReport& boot_report() const { return boot_report_; }

  // -- snapshots --------------------------------------------------------------------
  /// Walk every guest-visible state owner exactly once, in the fixed section
  /// order of docs/SNAPSHOT.md, handing the visitor each (tag, save,
  /// restore) triple.  Save, restore, and schema listing are all visitors
  /// over this single walk.  Host-only observability (profiler, event bus,
  /// spans, metrics) is deliberately not part of the walk.
  Status visit_state(snap::StateVisitor& visitor);

  /// Serialize the complete guest-visible platform state.  Refuses with
  /// kUnavailable while state that cannot travel is live: an in-flight async
  /// load carrying an on_loaded callback (hitless updates) or active
  /// software timers (closures).
  Result<snap::Snapshot> save() const;

  /// Overwrite this platform's state from `snapshot`, compat-checked against
  /// this platform's configuration (CONF section: memory size, cost model,
  /// Kp, devices, fault plan).  On success the platform re-executes exactly
  /// as the saved one would, including under an active fault plan.  On a
  /// typed error the platform may be partially overwritten — restore again
  /// (or discard it) before running.
  Status restore(const snap::Snapshot& snapshot);

  /// A fresh platform carrying identical state: constructed from this
  /// platform's config (no boot — boot state travels in the snapshot), then
  /// restored.  Requires the standard device set and only kernel-owned
  /// firmware tasks; platforms with custom extras restore in place instead.
  Result<std::unique_ptr<Platform>> clone() const;

  /// Rebuild a Config from a snapshot's CONF section (replay tooling: a
  /// compatible platform can be constructed from the snapshot alone).  The
  /// lint analysis config is not serialized and comes back default.
  static Result<Config> config_from_snapshot(const snap::Snapshot& snapshot,
                                             const LogContext* log = nullptr);

  /// Cycle count recorded in a snapshot (nearest-snapshot selection without
  /// constructing a platform).
  static Result<std::uint64_t> snapshot_cycle(const snap::Snapshot& snapshot);

 private:
  void ensure_scheduled();

  Config config_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<hw::EaMpu> mpu_;
  std::unique_ptr<rtos::Scheduler> scheduler_;
  std::unique_ptr<IntMux> int_mux_;
  std::unique_ptr<EaMpuDriver> driver_;
  std::unique_ptr<Rtm> rtm_;
  std::unique_ptr<TaskLoader> loader_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<IpcProxy> proxy_;
  std::unique_ptr<RemoteAttest> attest_;
  std::unique_ptr<SecureStorage> storage_;
  std::unique_ptr<UpdateManager> updater_;
  std::unique_ptr<SecureBootRom> boot_rom_;
  std::unique_ptr<fault::FaultEngine> fault_engine_;

  DeviceSet devices_;

  bool booted_ = false;
  BootReport boot_report_;

  // Digest of the last successfully restored snapshot.  When the same
  // snapshot is restored again (the fork-fuzzing rewind loop), guest memory
  // outside PhysicalMemory's dirty range already equals the image and is not
  // rewritten.  Zero means "no fast path" (fresh platform, or the previous
  // restore failed part-way).
  std::uint64_t last_restore_digest_ = 0;
  bool memr_rewind_ = false;
};

}  // namespace tytan::core
