// Root of Trust for Measurement (paper §3/§4, "RTM task").
//
// The RTM computes the SHA-1 digest of a task's loaded image.  Two paper
// properties drive the design:
//
//   * Position independence: the loader relocated the image, so the RTM
//     *temporarily reverts* every relocation (restoring the original,
//     base-0 addends recorded in the TBF) before hashing, then re-applies
//     them.  The same binary therefore measures to the same id_t at any
//     load address.
//
//   * Interruptibility: measurement is a resumable state machine processing
//     one bounded quantum (one relocation fix-up or one 64-byte hash block)
//     per invocation, so the RTM task can be preempted between quanta and
//     real-time deadlines of other tasks hold while a task is measured
//     (Tables 1 and 7).  The measured task is suspended and its memory is
//     EA-MPU-protected, so the image cannot change mid-measurement.
//
// The RTM also owns the *registry* of task identities and locations — in a
// trusted memory region only the RTM may write ("The EA-MPU ensures that
// only the RTM task can modify id_t").
#pragma once

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/layout.h"
#include "crypto/sha1.h"
#include "isa/object.h"
#include "rtos/task.h"
#include "sim/machine.h"

namespace tytan::core {

/// Host-side view of one registry entry (authoritative bytes live in the
/// EA-MPU-protected registry region).
struct RegistryEntry {
  rtos::TaskHandle handle = rtos::kNoTask;
  rtos::TaskIdentity identity{};
  crypto::Sha1Digest digest{};
  std::uint32_t base = 0;
  std::uint32_t size = 0;
  std::uint32_t entry = 0;
  std::uint32_t mailbox = 0;
  bool secure = false;
  std::uint32_t entry_addr = 0;  ///< address of the wire entry in trusted memory
};

class Rtm {
 public:
  struct MeasureStats {
    std::uint64_t setup = 0;
    std::uint64_t hash = 0;
    std::uint64_t reloc = 0;  ///< revert + re-apply
    std::uint64_t finalize = 0;
    std::uint64_t total = 0;
    std::uint32_t blocks = 0;
    std::uint32_t addresses = 0;
    std::uint32_t quanta = 0;
  };

  explicit Rtm(sim::Machine& machine) : machine_(machine) {}

  static constexpr std::uint32_t kIdent = sim::kFwRtm;

  // -- measurement (resumable) ---------------------------------------------------
  /// Begin measuring a loaded task.  `relocs` are the TBF relocation records
  /// (offsets relative to `tcb.region_base`).  The task must not be running.
  Status begin_measurement(const rtos::Tcb& tcb, std::vector<isa::Relocation> relocs);
  [[nodiscard]] bool measurement_in_progress() const { return job_.has_value(); }
  /// Process one bounded quantum; returns true while work remains.
  bool measure_quantum();
  /// Digest of the completed measurement (consumes the result).
  Result<crypto::Sha1Digest> take_result();

  /// Convenience: run a whole measurement to completion (benches, tests).
  Result<crypto::Sha1Digest> measure_now(const rtos::Tcb& tcb,
                                         std::vector<isa::Relocation> relocs);

  /// First 64 bits of a digest — the task identity (paper footnote 9).
  static rtos::TaskIdentity identity_from_digest(const crypto::Sha1Digest& digest);

  // -- registry ---------------------------------------------------------------------
  Status register_task(const rtos::Tcb& tcb, const crypto::Sha1Digest& digest);
  Status unregister_task(rtos::TaskHandle handle);
  [[nodiscard]] const RegistryEntry* find_by_handle(rtos::TaskHandle handle) const;
  [[nodiscard]] const RegistryEntry* find_by_identity(const rtos::TaskIdentity& id) const;
  /// Task whose region contains `addr` (the Int Mux / IPC proxy sender
  /// lookup).  Returns nullptr for firmware or OS addresses.
  [[nodiscard]] const RegistryEntry* find_by_region(std::uint32_t addr) const;
  [[nodiscard]] const std::vector<RegistryEntry>& entries() const { return entries_; }

  [[nodiscard]] const MeasureStats& last_measure() const { return stats_; }

  // -- snapshots ----------------------------------------------------------------
  /// Serialize / overwrite the registry mirror, the in-flight measurement
  /// job (including the streaming SHA-1 context — a task may be saved
  /// mid-measurement), the pending result, and the last-measure stats.  The
  /// job's span id does not travel (host-side observability; restored as 0).
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  struct Job {
    rtos::TaskHandle handle = rtos::kNoTask;
    std::uint32_t base = 0;
    std::uint32_t image_size = 0;
    std::vector<isa::Relocation> relocs;
    crypto::Sha1 sha;
    enum class Phase { kRevert, kHash, kReapply, kDone } phase = Phase::kRevert;
    std::size_t reloc_index = 0;
    std::uint32_t hash_offset = 0;
    std::uint64_t start_cycles = 0;
    obs::SpanRecorder::SpanId span = 0;  ///< rtm-measure span (0 = spans off)
    std::optional<crypto::Sha1Digest> digest;
  };

  void patch_site(const isa::Relocation& reloc, std::uint32_t base, bool revert);
  void serialize_entry(const RegistryEntry& entry);

  sim::Machine& machine_;
  std::optional<Job> job_;
  std::optional<crypto::Sha1Digest> result_;
  MeasureStats stats_;
  std::vector<RegistryEntry> entries_;
};

}  // namespace tytan::core
