#include "core/secure_storage.h"

#include "common/bytes.h"
#include "fault/fault.h"

namespace tytan::core {

crypto::Key128 SecureStorage::read_kp() {
  crypto::Key128 kp{};
  for (std::uint32_t i = 0; i < crypto::kKeySize; i += 4) {
    auto word = machine_.fw_read32(kIdent, sim::kMmioKeyReg + i);
    TYTAN_CHECK(word.is_ok(), "secure storage denied platform-key access");
    store_le32(kp.data() + i, *word);
  }
  return kp;
}

crypto::Key128 SecureStorage::task_key(const rtos::TaskIdentity& identity) {
  const crypto::Key128 kp = read_kp();
  const crypto::HmacTag tag = crypto::HmacSha1::mac(kp, identity);
  crypto::Key128 kt{};
  std::copy(tag.begin(), tag.begin() + crypto::kKeySize, kt.begin());
  return kt;
}

SecureStorage::BlobIndex* SecureStorage::find(const rtos::TaskIdentity& owner,
                                              std::uint32_t slot) {
  for (BlobIndex& blob : blobs_) {
    if (blob.valid && blob.owner == owner && blob.slot == slot) {
      return &blob;
    }
  }
  return nullptr;
}

std::size_t SecureStorage::blob_count() const {
  std::size_t n = 0;
  for (const BlobIndex& blob : blobs_) {
    n += blob.valid ? 1 : 0;
  }
  return n;
}

Status SecureStorage::store(const rtos::TaskIdentity& caller, std::uint32_t slot,
                            std::span<const std::uint8_t> data) {
  // Reserve space before consuming anything: a store that cannot persist
  // must not burn a seal nonce or bill crypt cycles for work never done.
  // Wire size: nonce (8) | ciphertext (n) | tag (20).
  const std::size_t raw_size = 8 + data.size() + crypto::kSha1DigestSize;
  if (next_offset_ + raw_size + 8 > kStorageSize) {
    return make_error(Err::kOutOfMemory, "secure storage area full");
  }
  const crypto::Key128 kt = task_key(caller);
  const crypto::SealedBlob sealed = crypto::seal(kt, nonce_counter_++, data);
  const ByteVec raw = sealed.serialize();
  machine_.charge(machine_.costs().storage_crypt_block *
                  ((data.size() + crypto::kXteaBlockSize - 1) / crypto::kXteaBlockSize + 3));

  const std::uint32_t addr = kStorageBase + next_offset_;
  // Wire format: u32 length, blob bytes.
  if (Status s = machine_.fw_write32(kIdent, addr, static_cast<std::uint32_t>(raw.size()));
      !s.is_ok()) {
    return s;
  }
  for (std::size_t i = 0; i < raw.size(); ++i) {
    machine_.fw_write8(kIdent, addr + 4 + static_cast<std::uint32_t>(i), raw[i]);
  }
  next_offset_ += static_cast<std::uint32_t>(4 + raw.size());

  if (BlobIndex* existing = find(caller, slot); existing != nullptr) {
    existing->valid = false;  // superseded; area is append-only (flash-like)
    if (existing->poisoned) {
      // Re-storing over a poisoned blob is the storage recovery path.
      machine_.obs().emit(obs::EventKind::kFaultRecover, -1,
                          static_cast<std::uint32_t>(fault::RecoveryKind::kPoisonMarked));
      if (fault::FaultEngine* engine = machine_.faults(); engine != nullptr) {
        engine->note_recovery(fault::FaultClass::kStorageCorrupt);
      }
      TYTAN_CLOG(machine_.log(), LogLevel::kInfo, "storage")
          << "slot " << slot << ": poisoned blob superseded by fresh store";
    }
  }
  blobs_.push_back(
      {caller, slot, addr, static_cast<std::uint32_t>(raw.size()), true, false});
  machine_.obs().emit(obs::EventKind::kSealStore, -1,
                      static_cast<std::uint32_t>(data.size()));
  return Status::ok();
}

Result<ByteVec> SecureStorage::load(const rtos::TaskIdentity& caller, std::uint32_t slot) {
  BlobIndex* blob = find(caller, slot);
  if (blob == nullptr) {
    return make_error(Err::kNotFound, "no sealed blob for this identity/slot");
  }
  if (blob->poisoned) {
    // Fail fast without re-running the unseal: the blob stays readable as an
    // error until a fresh store supersedes it.
    return make_error(Err::kCorrupt, "sealed blob is poisoned (previous unseal failed)");
  }
  if (fault::FaultEngine* engine = machine_.faults(); engine != nullptr) {
    const std::int64_t bit =
        engine->on_storage_access(slot, machine_.cycles(), blob->len);
    if (bit >= 0) {
      // Flip one persisted bit — the damage is durable, like real flash rot.
      const std::uint32_t addr =
          blob->addr + 4 + static_cast<std::uint32_t>(bit / 8);
      if (auto byte = machine_.fw_read8(kIdent, addr); byte.is_ok()) {
        machine_.fw_write8(kIdent, addr,
                           *byte ^ static_cast<std::uint8_t>(1U << (bit % 8)));
      }
      machine_.obs().emit(obs::EventKind::kFaultInject, -1,
                          static_cast<std::uint32_t>(fault::FaultClass::kStorageCorrupt),
                          static_cast<std::uint32_t>(bit));
      TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "storage")
          << "fault injection: flipped bit " << bit << " of slot " << slot;
    }
  }
  ByteVec raw(blob->len);
  for (std::uint32_t i = 0; i < blob->len; ++i) {
    auto byte = machine_.fw_read8(kIdent, blob->addr + 4 + i);
    if (!byte.is_ok()) {
      return byte.status();
    }
    raw[i] = *byte;
  }
  auto sealed = crypto::SealedBlob::deserialize(raw);
  if (!sealed.is_ok()) {
    blob->poisoned = true;
    return sealed.status();
  }
  machine_.charge(machine_.costs().storage_crypt_block *
                  (raw.size() / crypto::kXteaBlockSize + 3));
  machine_.obs().emit(obs::EventKind::kSealUnseal, -1,
                      static_cast<std::uint32_t>(raw.size()));
  const crypto::Key128 kt = task_key(caller);
  auto plain = crypto::unseal(kt, *sealed);
  if (!plain.is_ok() && plain.status().code() == Err::kCorrupt) {
    blob->poisoned = true;
    TYTAN_CLOG(machine_.log(), LogLevel::kWarn, "storage")
        << "slot " << slot << ": unseal failed, blob marked poisoned";
  }
  return plain;
}

std::size_t SecureStorage::poisoned_count() const {
  std::size_t n = 0;
  for (const BlobIndex& blob : blobs_) {
    n += (blob.valid && blob.poisoned) ? 1 : 0;
  }
  return n;
}

Result<std::size_t> SecureStorage::migrate(const rtos::TaskIdentity& from,
                                           const rtos::TaskIdentity& to) {
  if (from == to) {
    return make_error(Err::kInvalidArgument, "migrate: identical identities");
  }
  // Collect first: store() mutates the index.
  std::vector<std::uint32_t> slots;
  for (const BlobIndex& blob : blobs_) {
    if (blob.valid && blob.owner == from) {
      slots.push_back(blob.slot);
    }
  }
  std::size_t migrated = 0;
  for (const std::uint32_t slot : slots) {
    auto data = load(from, slot);
    if (!data.is_ok()) {
      return data.status();
    }
    if (Status s = store(to, slot, *data); !s.is_ok()) {
      return s;
    }
    if (BlobIndex* old = find(from, slot); old != nullptr) {
      old->valid = false;
    }
    ++migrated;
  }
  return migrated;
}

std::uint32_t SecureStorage::store_from_guest(const rtos::Tcb& caller, std::uint32_t ptr,
                                              std::uint32_t len, std::uint32_t slot) {
  if (!caller.measured || len > 4096) {
    return kSysErr;
  }
  ByteVec data(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    auto byte = machine_.fw_read8(kIdent, ptr + i);
    if (!byte.is_ok()) {
      return kSysErr;
    }
    data[i] = *byte;
  }
  return store(caller.identity, slot, data).is_ok() ? kSysOk : kSysErr;
}

std::uint32_t SecureStorage::load_to_guest(const rtos::Tcb& caller, std::uint32_t ptr,
                                           std::uint32_t capacity, std::uint32_t slot) {
  if (!caller.measured) {
    return kSysErr;
  }
  auto data = load(caller.identity, slot);
  if (!data.is_ok() || data->size() > capacity) {
    return kSysErr;
  }
  for (std::size_t i = 0; i < data->size(); ++i) {
    if (!machine_.fw_write8(kIdent, ptr + static_cast<std::uint32_t>(i), (*data)[i])
             .is_ok()) {
      return kSysErr;
    }
  }
  return static_cast<std::uint32_t>(data->size());
}

void SecureStorage::save_state(snap::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(blobs_.size()));
  for (const BlobIndex& blob : blobs_) {
    w.raw(blob.owner);
    w.u32(blob.slot);
    w.u32(blob.addr);
    w.u32(blob.len);
    w.boolean(blob.valid);
    w.boolean(blob.poisoned);
  }
  w.u32(next_offset_);
  w.u64(nonce_counter_);
}

Status SecureStorage::restore_state(snap::Reader& r) {
  const std::uint32_t count = r.u32();
  blobs_.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    BlobIndex blob;
    r.raw(blob.owner);
    blob.slot = r.u32();
    blob.addr = r.u32();
    blob.len = r.u32();
    blob.valid = r.boolean();
    blob.poisoned = r.boolean();
    blobs_.push_back(blob);
  }
  next_offset_ = r.u32();
  nonce_counter_ = r.u64();
  return Status::ok();
}

}  // namespace tytan::core
