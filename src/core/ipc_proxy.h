// Secure inter-process communication (paper §3/§4, "Secure IPC").
//
// The sender S loads the message and the receiver identity id_R into CPU
// registers and raises INT kVecIpc.  The proxy:
//   1. obtains the interrupt *origin* from the hardware latch and derives
//      the sender identity id_S from the RTM registry — the sender cannot
//      forge it;
//   2. looks up the receiver R by id_R in the registry;
//   3. writes the message and id_S into R's mailbox — a region only the
//      proxy may write (EA-MPU), which *implicitly authenticates* the data;
//   4. sync: branches to R's entry routine (reason kReasonMessage);
//      async: marks the message pending and continues executing S.
//
// For bulk data the proxy sets up shared memory accessible only to the two
// communicating tasks (two dynamically configured EA-MPU rules).
//
// Register ABI (values read from S's *saved* context, since the Int Mux
// wiped the live registers):
//   r0 = IpcOp, r1/r2 = id_R (lo/hi), r3..r6 = message words
//   result -> saved r0 (kSysOk / kSysErr; shm: region base address)
#pragma once

#include "core/eampu_driver.h"
#include "core/int_mux.h"
#include "core/kernel.h"
#include "core/rtm.h"

namespace tytan::core {

class IpcProxy {
 public:
  static constexpr std::uint32_t kIdent = sim::kFwIpcProxy;

  struct IpcStats {
    std::uint64_t proxy = 0;     ///< proxy runtime (paper: 1,208 cycles)
    std::uint64_t entry = 0;     ///< receiver entry routine (paper: 116 cycles)
    std::uint64_t total = 0;
    bool delivered = false;
  };

  struct ShmGrant {
    rtos::TaskHandle a = rtos::kNoTask;
    rtos::TaskHandle b = rtos::kNoTask;
    std::uint32_t base = 0;
    std::uint32_t size = 0;
    std::size_t slot_a = 0;
    std::size_t slot_b = 0;
  };

  IpcProxy(sim::Machine& machine, rtos::Scheduler& scheduler, Rtm& rtm, IntMux& int_mux,
           EaMpuDriver& driver, Kernel& kernel, RamArena& arena)
      : machine_(machine),
        scheduler_(scheduler),
        rtm_(rtm),
        int_mux_(int_mux),
        driver_(driver),
        kernel_(kernel),
        arena_(arena) {}

  /// Register the proxy's firmware handler and vector routing.
  void install();

  /// Second-level handler for kVecIpc.
  void on_ipc();

  /// Host-side send (benches and firmware services use the same path the
  /// guest INT takes, minus the sender context round-trip).
  Status deliver(const rtos::TaskIdentity& sender_id, const rtos::TaskIdentity& receiver_id,
                 const std::array<std::uint32_t, 4>& message, bool sync);

  [[nodiscard]] const IpcStats& last_ipc() const { return stats_; }
  [[nodiscard]] const std::vector<ShmGrant>& grants() const { return grants_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_rejected() const { return rejected_; }
  /// Subset of rejections caused by fault injection (ipc-drop clauses).
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

  /// Release a shared-memory grant (frees the region and both rules).
  Status release_grant(std::uint32_t base);

  // -- snapshots ----------------------------------------------------------------
  /// Serialize / overwrite delivery stats, counters, and shm grants.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

 private:
  /// Write id_S + message into the receiver's mailbox (proxy identity).
  Status write_mailbox(const RegistryEntry& receiver, const rtos::TaskIdentity& sender_id,
                       const std::array<std::uint32_t, 4>& message);
  void handle_shm(rtos::Tcb& sender, const RegistryEntry* sender_entry,
                  const RegistryEntry* receiver_entry, std::uint32_t size);

  sim::Machine& machine_;
  rtos::Scheduler& scheduler_;
  Rtm& rtm_;
  IntMux& int_mux_;
  EaMpuDriver& driver_;
  Kernel& kernel_;
  RamArena& arena_;
  IpcStats stats_;
  std::vector<ShmGrant> grants_;
  std::uint64_t delivered_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace tytan::core
