// XTEA block cipher (Needham/Wheeler), 64-bit block, 128-bit key, 64 rounds,
// plus a CTR-mode stream built on it.  XTEA is the kind of cipher actually
// deployed on MSP430/Cortex-M-class devices the paper targets: tiny code
// footprint, no tables.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "crypto/kdf.h"

namespace tytan::crypto {

inline constexpr std::size_t kXteaBlockSize = 8;
inline constexpr unsigned kXteaRounds = 64;

/// Encrypt/decrypt one 64-bit block in place (two 32-bit halves).
void xtea_encrypt_block(const Key128& key, std::uint32_t& v0, std::uint32_t& v1);
void xtea_decrypt_block(const Key128& key, std::uint32_t& v0, std::uint32_t& v1);

/// CTR keystream XOR: identical for encryption and decryption.  `nonce` is a
/// 64-bit per-message value; the counter occupies the second block half.
void xtea_ctr_crypt(const Key128& key, std::uint64_t nonce,
                    std::span<const std::uint8_t> in, std::span<std::uint8_t> out);

}  // namespace tytan::crypto
