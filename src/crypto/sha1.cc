#include "crypto/sha1.h"

#include <bit>
#include <cstring>

namespace tytan::crypto {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int n) { return std::rotl(x, n); }

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_bits_ = 0;
  blocks_ = 0;
}

void Sha1::compress(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = load_be32(block + 4 * i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  ++blocks_;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ != 0) {
    const std::size_t need = kSha1BlockSize - buffer_len_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kSha1BlockSize) {
      compress(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kSha1BlockSize <= data.size()) {
    compress(data.data() + offset);
    offset += kSha1BlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data() + buffer_len_, data.data() + offset, data.size() - offset);
    buffer_len_ += data.size() - offset;
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bits = total_bits_;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0x00;
  // Pad until 8 bytes remain in the current block.
  while (buffer_len_ != kSha1BlockSize - 8) {
    total_bits_ -= 8;  // padding does not count toward the message length
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t len_be[8];
  store_be32(len_be, static_cast<std::uint32_t>(bits >> 32));
  store_be32(len_be + 4, static_cast<std::uint32_t>(bits));
  std::memcpy(buffer_.data() + buffer_len_, len_be, 8);
  compress(buffer_.data());

  Sha1Digest digest{};
  for (int i = 0; i < 5; ++i) {
    store_be32(digest.data() + 4 * i, h_[i]);
  }
  reset();
  return digest;
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

std::uint64_t sha1_block_count(std::uint64_t message_len) {
  // message + 0x80 byte + zero padding + 8-byte length, rounded to 64.
  return (message_len + 1 + 8 + kSha1BlockSize - 1) / kSha1BlockSize;
}

}  // namespace tytan::crypto
