// SHA-1 (FIPS 180-4), implemented from scratch.
//
// The paper measures tasks with SHA-1 and uses the first 64 bits of the
// digest as the task identity (footnote 9).  The streaming interface below
// is what makes the RTM task *interruptible*: the RTM hashes one 64-byte
// block at a time and may be preempted between blocks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace tytan::crypto {

inline constexpr std::size_t kSha1DigestSize = 20;
inline constexpr std::size_t kSha1BlockSize = 64;

using Sha1Digest = std::array<std::uint8_t, kSha1DigestSize>;

/// Streaming SHA-1.  update() may be called any number of times; finish()
/// consumes the context.  Copyable so the RTM can checkpoint mid-measurement.
class Sha1 {
 public:
  Sha1() { reset(); }

  /// Restart hashing from the initial state.
  void reset();

  /// Absorb `data`.
  void update(std::span<const std::uint8_t> data);

  /// Pad, finalize, and return the 160-bit digest.  The context is reset.
  Sha1Digest finish();

  /// Number of full 64-byte compression blocks processed so far (used by the
  /// cycle-cost accounting in the RTM task).
  [[nodiscard]] std::uint64_t blocks_processed() const { return blocks_; }

  /// One-shot convenience.
  static Sha1Digest hash(std::span<const std::uint8_t> data);

  /// Full streaming state, for machine snapshots: the RTM may be saved
  /// mid-measurement, so the running context must survive a save/restore.
  struct State {
    std::array<std::uint32_t, 5> h{};
    std::array<std::uint8_t, kSha1BlockSize> buffer{};
    std::uint64_t buffer_len = 0;
    std::uint64_t total_bits = 0;
    std::uint64_t blocks = 0;
  };
  [[nodiscard]] State save_state() const {
    return {h_, buffer_, buffer_len_, total_bits_, blocks_};
  }
  void restore_state(const State& s) {
    h_ = s.h;
    buffer_ = s.buffer;
    buffer_len_ = static_cast<std::size_t>(s.buffer_len);
    total_bits_ = s.total_bits;
    blocks_ = s.blocks;
  }

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, kSha1BlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  std::uint64_t blocks_ = 0;
};

/// Number of 64-byte SHA-1 compression blocks needed to hash `message_len`
/// bytes including padding (what Table 7's "blocks" column counts).
std::uint64_t sha1_block_count(std::uint64_t message_len);

}  // namespace tytan::crypto
