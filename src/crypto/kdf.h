// Key derivation from the platform key Kp.
//
// The paper derives additional keys from Kp, e.g. the attestation key Ka and
// per-task storage keys Kt = HMAC(id_t | Kp).  We use an HKDF-expand-style
// construction over HMAC-SHA1: derive(K, label, context) =
// HMAC(K, label | 0x00 | context | counter) truncated/extended to the
// requested length.
#pragma once

#include <cstdint>
#include <string_view>

#include "crypto/hmac.h"

namespace tytan::crypto {

inline constexpr std::size_t kKeySize = 16;  ///< 128-bit symmetric keys
using Key128 = std::array<std::uint8_t, kKeySize>;

/// Derive `out_len` bytes from `key` bound to (label, context).
ByteVec derive(std::span<const std::uint8_t> key, std::string_view label,
               std::span<const std::uint8_t> context, std::size_t out_len);

/// Derive a 128-bit key (the common case for Ka and Kt).
Key128 derive_key128(std::span<const std::uint8_t> key, std::string_view label,
                     std::span<const std::uint8_t> context);

}  // namespace tytan::crypto
