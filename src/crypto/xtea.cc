#include "crypto/xtea.h"

namespace tytan::crypto {

namespace {
constexpr std::uint32_t kDelta = 0x9E3779B9u;

std::array<std::uint32_t, 4> key_words(const Key128& key) {
  return {load_le32(key.data()), load_le32(key.data() + 4), load_le32(key.data() + 8),
          load_le32(key.data() + 12)};
}
}  // namespace

void xtea_encrypt_block(const Key128& key, std::uint32_t& v0, std::uint32_t& v1) {
  const auto k = key_words(key);
  std::uint32_t sum = 0;
  for (unsigned i = 0; i < kXteaRounds / 2; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k[(sum >> 11) & 3]);
  }
}

void xtea_decrypt_block(const Key128& key, std::uint32_t& v0, std::uint32_t& v1) {
  const auto k = key_words(key);
  std::uint32_t sum = kDelta * (kXteaRounds / 2);
  for (unsigned i = 0; i < kXteaRounds / 2; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k[sum & 3]);
  }
}

void xtea_ctr_crypt(const Key128& key, std::uint64_t nonce,
                    std::span<const std::uint8_t> in, std::span<std::uint8_t> out) {
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (offset < in.size()) {
    std::uint32_t v0 = static_cast<std::uint32_t>(nonce ^ counter);
    std::uint32_t v1 = static_cast<std::uint32_t>((nonce >> 32) ^ (counter >> 32) ^ counter);
    xtea_encrypt_block(key, v0, v1);
    std::uint8_t ks[kXteaBlockSize];
    store_le32(ks, v0);
    store_le32(ks + 4, v1);
    const std::size_t take = std::min(kXteaBlockSize, in.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out[offset + i] = static_cast<std::uint8_t>(in[offset + i] ^ ks[i]);
    }
    offset += take;
    ++counter;
  }
}

}  // namespace tytan::crypto
