#include "crypto/seal.h"

namespace tytan::crypto {

namespace {
Key128 enc_subkey(const Key128& key) { return derive_key128(key, "seal-enc", {}); }

ByteVec mac_subkey(const Key128& key) { return derive(key, "seal-mac", {}, kKeySize); }

HmacTag compute_tag(const Key128& key, std::uint64_t nonce,
                    std::span<const std::uint8_t> ciphertext) {
  const ByteVec mk = mac_subkey(key);
  HmacSha1 ctx(mk);
  std::uint8_t nonce_le[8];
  store_le64(nonce_le, nonce);
  ctx.update(nonce_le);
  ctx.update(ciphertext);
  return ctx.finish();
}
}  // namespace

ByteVec SealedBlob::serialize() const {
  ByteVec out;
  out.reserve(8 + ciphertext.size() + tag.size());
  append_le64(out, nonce);
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Result<SealedBlob> SealedBlob::deserialize(std::span<const std::uint8_t> raw) {
  if (raw.size() < 8 + kSha1DigestSize) {
    return make_error(Err::kCorrupt, "sealed blob too short");
  }
  SealedBlob blob;
  blob.nonce = load_le64(raw.data());
  const std::size_t ct_len = raw.size() - 8 - kSha1DigestSize;
  blob.ciphertext.assign(raw.begin() + 8, raw.begin() + 8 + static_cast<std::ptrdiff_t>(ct_len));
  std::copy(raw.end() - static_cast<std::ptrdiff_t>(kSha1DigestSize), raw.end(),
            blob.tag.begin());
  return blob;
}

SealedBlob seal(const Key128& key, std::uint64_t nonce, std::span<const std::uint8_t> plaintext) {
  SealedBlob blob;
  blob.nonce = nonce;
  blob.ciphertext.resize(plaintext.size());
  xtea_ctr_crypt(enc_subkey(key), nonce, plaintext, blob.ciphertext);
  blob.tag = compute_tag(key, nonce, blob.ciphertext);
  return blob;
}

Result<ByteVec> unseal(const Key128& key, const SealedBlob& blob) {
  const HmacTag expected = compute_tag(key, blob.nonce, blob.ciphertext);
  if (!ct_equal(expected, blob.tag)) {
    return make_error(Err::kCorrupt, "sealed blob authentication failed");
  }
  ByteVec plaintext(blob.ciphertext.size());
  xtea_ctr_crypt(enc_subkey(key), blob.nonce, blob.ciphertext, plaintext);
  return plaintext;
}

}  // namespace tytan::crypto
