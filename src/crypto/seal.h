// Authenticated sealing for TyTAN secure storage (paper §3, "Secure storage").
//
// A sealed blob binds ciphertext to the sealing task's identity via
// Kt = HMAC(id_t | Kp): encrypt-then-MAC with independent subkeys derived
// from Kt.  A task with a different id_t derives a different Kt and fails
// the MAC check — exactly the paper's access rule.
#pragma once

#include "common/status.h"
#include "crypto/xtea.h"

namespace tytan::crypto {

/// Wire format: nonce (8) | ciphertext (n) | tag (20).
struct SealedBlob {
  std::uint64_t nonce = 0;
  ByteVec ciphertext;
  HmacTag tag{};

  [[nodiscard]] ByteVec serialize() const;
  static Result<SealedBlob> deserialize(std::span<const std::uint8_t> raw);
};

/// Seal `plaintext` under `key`; `nonce` must be unique per (key, message).
SealedBlob seal(const Key128& key, std::uint64_t nonce, std::span<const std::uint8_t> plaintext);

/// Verify and decrypt; Err::kCorrupt if the tag does not match (wrong key or
/// tampered data).
Result<ByteVec> unseal(const Key128& key, const SealedBlob& blob);

}  // namespace tytan::crypto
