#include "crypto/hmac.h"

#include <cstring>

namespace tytan::crypto {

HmacSha1::HmacSha1(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, kSha1BlockSize> k{};
  if (key.size() > kSha1BlockSize) {
    const Sha1Digest kd = Sha1::hash(key);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, kSha1BlockSize> ipad{};
  for (std::size_t i = 0; i < kSha1BlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(ipad);
}

void HmacSha1::update(std::span<const std::uint8_t> data) { inner_.update(data); }

HmacTag HmacSha1::finish() {
  const Sha1Digest inner_digest = inner_.finish();
  Sha1 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

HmacTag HmacSha1::mac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
  HmacSha1 ctx(key);
  ctx.update(data);
  return ctx.finish();
}

bool HmacSha1::verify(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data,
                      std::span<const std::uint8_t> tag) {
  const HmacTag expected = mac(key, data);
  return ct_equal(expected, tag);
}

}  // namespace tytan::crypto
