// HMAC-SHA1 (RFC 2104).  Used for:
//   * remote attestation reports:  MAC(Ka, nonce | id_t)        (paper §3)
//   * task-key derivation:         Kt = HMAC(id_t | Kp)         (paper §3)
//   * sealed-blob authentication in secure storage.
#pragma once

#include <span>

#include "crypto/sha1.h"

namespace tytan::crypto {

using HmacTag = Sha1Digest;  // 20 bytes

/// Streaming HMAC-SHA1.
class HmacSha1 {
 public:
  explicit HmacSha1(std::span<const std::uint8_t> key);

  void update(std::span<const std::uint8_t> data);
  HmacTag finish();

  /// One-shot convenience.
  static HmacTag mac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

  /// Constant-time verification of a tag.
  static bool verify(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data,
                     std::span<const std::uint8_t> tag);

 private:
  std::array<std::uint8_t, kSha1BlockSize> opad_key_{};
  Sha1 inner_;
};

}  // namespace tytan::crypto
