#include "crypto/kdf.h"

#include <cstring>

namespace tytan::crypto {

ByteVec derive(std::span<const std::uint8_t> key, std::string_view label,
               std::span<const std::uint8_t> context, std::size_t out_len) {
  ByteVec out;
  out.reserve(out_len);
  std::uint32_t counter = 1;
  while (out.size() < out_len) {
    HmacSha1 ctx(key);
    ctx.update(std::span(reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
    const std::uint8_t sep = 0;
    ctx.update(std::span(&sep, 1));
    ctx.update(context);
    std::uint8_t ctr_le[4];
    store_le32(ctr_le, counter);
    ctx.update(ctr_le);
    const HmacTag block = ctx.finish();
    const std::size_t take = std::min(block.size(), out_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return out;
}

Key128 derive_key128(std::span<const std::uint8_t> key, std::string_view label,
                     std::span<const std::uint8_t> context) {
  const ByteVec raw = derive(key, label, context, kKeySize);
  Key128 out{};
  std::memcpy(out.data(), raw.data(), kKeySize);
  return out;
}

}  // namespace tytan::crypto
