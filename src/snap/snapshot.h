// Versioned machine snapshots (ROADMAP item 5; enabler for item 2).
//
// A Snapshot is a section-tagged container: a fixed header (magic + schema
// version), a list of sections — four-character tag plus an opaque
// little-endian payload — and a trailing FNV-1a checksum over the whole
// file.  Sections are produced and consumed by the state owners themselves
// (Machine, EaMpu, Scheduler, Kernel, ...); this module only provides the
// container and the primitive Writer/Reader serializers, so it depends on
// nothing but common/.
//
// Guarantees (docs/SNAPSHOT.md):
//   * restore(save(m)) is bit-identical: saving the restored platform yields
//     byte-identical snapshot content;
//   * a restored platform re-executes identically, including under an active
//     fault plan (the engine's RNG cursor travels with the snapshot);
//   * truncated, corrupt, or wrong-version files parse to a typed error with
//     a one-line message — never to a half-restored machine.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace tytan::snap {

/// "TYSN" little-endian.
inline constexpr std::uint32_t kMagic = 0x4e53'5954;
/// Bump on any wire-format change to an existing section; readers reject
/// versions they do not know (no silent best-effort decoding of state).
inline constexpr std::uint32_t kSchemaVersion = 1;

/// Little-endian primitive serializer.  All multi-byte values are LE, like
/// the simulated core itself.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append_le32(buf_, v); }
  void u64(std::uint64_t v) { append_le64(buf_, v); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Length-prefixed byte blob.
  void blob(std::span<const std::uint8_t> bytes) {
    u32(static_cast<std::uint32_t>(bytes.size()));
    raw(bytes);
  }
  /// Raw bytes, no length prefix (fixed-size fields: keys, digests).
  void raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const ByteVec& buffer() const { return buf_; }
  [[nodiscard]] ByteVec take() { return std::move(buf_); }

 private:
  ByteVec buf_;
};

/// Bounds-checked little-endian reader with a sticky failure flag: any
/// under-run poisons the reader and subsequent reads return zero values.
/// Callers deserialize a whole section, then check finish() once.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (!take(1)) {
      return 0;
    }
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    if (!take(4)) {
      return 0;
    }
    const std::uint32_t v = load_le32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) {
      return 0;
    }
    const std::uint64_t v = load_le64(bytes_.data() + pos_);
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t len = u32();
    if (!take(len)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  ByteVec blob() {
    const std::uint32_t len = u32();
    if (!take(len)) {
      return {};
    }
    ByteVec v(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
              bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return v;
  }
  /// Zero-copy variant of blob(): a view into the reader's backing bytes,
  /// valid only while the snapshot is alive.  Restoring a full memory image
  /// is on the fuzzing hot path (one restore per input), so the large
  /// sections must not bounce through an extra allocation.
  std::span<const std::uint8_t> blob_view() {
    const std::uint32_t len = u32();
    if (!take(len)) {
      return {};
    }
    const auto v = bytes_.subspan(pos_, len);
    pos_ += len;
    return v;
  }
  /// Fixed-size field into `out`; zero-fills on under-run.
  void raw(std::span<std::uint8_t> out) {
    if (!take(out.size())) {
      std::fill(out.begin(), out.end(), std::uint8_t{0});
      return;
    }
    std::copy_n(bytes_.data() + pos_, out.size(), out.data());
    pos_ += out.size();
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// A section must consume exactly its payload: under-run and left-over
  /// bytes both mean the writer and reader disagree about the layout.
  [[nodiscard]] Status finish(std::string_view section) const {
    if (failed_) {
      return make_error(Err::kCorrupt,
                        "snapshot section '" + std::string(section) + "' truncated");
    }
    if (remaining() != 0) {
      return make_error(Err::kCorrupt, "snapshot section '" + std::string(section) +
                                           "' has trailing bytes");
    }
    return Status::ok();
  }

 private:
  bool take(std::size_t n) {
    if (failed_ || bytes_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// One tagged state section.  Tags are exactly four ASCII characters
/// ("MACH", "MEMR", ...); the catalogue lives in docs/SNAPSHOT.md.
struct Section {
  std::string tag;
  ByteVec bytes;
};

class Snapshot {
 public:
  void add(std::string_view tag, ByteVec bytes);
  /// Payload of the section with `tag`, or nullptr.
  [[nodiscard]] const ByteVec* find(std::string_view tag) const;
  [[nodiscard]] const std::vector<Section>& sections() const { return sections_; }

  /// FNV-1a over all section tags and payloads, computed once and cached.
  /// Platform::restore uses it to recognise "same snapshot as last time" and
  /// skip rewriting clean guest memory (see PhysicalMemory dirty tracking).
  [[nodiscard]] std::uint64_t digest() const;

  /// Full wire image: header, sections, FNV-1a trailer.
  [[nodiscard]] ByteVec serialize() const;
  /// Parse and validate a wire image.  kCorrupt / kInvalidArgument with a
  /// one-line message on bad magic, unsupported version, truncation, section
  /// overrun, or checksum mismatch.
  static Result<Snapshot> parse(std::span<const std::uint8_t> bytes);

  Status write_file(const std::string& path) const;
  static Result<Snapshot> read_file(const std::string& path);

 private:
  std::vector<Section> sections_;
  mutable std::uint64_t digest_ = 0;
  mutable bool digest_valid_ = false;
};

/// FNV-1a 64-bit (the trailer checksum; also exported for tools that want a
/// cheap deterministic state digest).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// The single enumeration point for platform state.  Platform::visit_state
/// walks every state-owning component exactly once, in a fixed order, and
/// hands the visitor a (tag, save, restore) triple per section; savers,
/// restorers, and schema listings are all different visitors over the same
/// walk, so the section catalogue exists in exactly one place.
class StateVisitor {
 public:
  virtual ~StateVisitor() = default;
  /// `save` serializes the component into the writer; `restore` overwrites
  /// the component's state from the reader.  Return non-OK to abort the walk.
  virtual Status section(std::string_view tag,
                         const std::function<void(Writer&)>& save,
                         const std::function<Status(Reader&)>& restore) = 0;
};

/// Visitor that serializes every section into a Snapshot.
class SaveVisitor final : public StateVisitor {
 public:
  Status section(std::string_view tag, const std::function<void(Writer&)>& save,
                 const std::function<Status(Reader&)>& restore) override;
  [[nodiscard]] Snapshot take() { return std::move(snapshot_); }

 private:
  Snapshot snapshot_;
};

/// Visitor that restores every section from a parsed Snapshot.  A section
/// present in the walk but missing from the snapshot is kCorrupt (a snapshot
/// of the same schema version always carries the full set); extra sections
/// in the snapshot are ignored.
class RestoreVisitor final : public StateVisitor {
 public:
  explicit RestoreVisitor(const Snapshot& snapshot) : snapshot_(snapshot) {}
  Status section(std::string_view tag, const std::function<void(Writer&)>& save,
                 const std::function<Status(Reader&)>& restore) override;

 private:
  const Snapshot& snapshot_;
};

/// Visitor that only collects section tags (schema golden test, docs).
class ListVisitor final : public StateVisitor {
 public:
  Status section(std::string_view tag, const std::function<void(Writer&)>& save,
                 const std::function<Status(Reader&)>& restore) override;
  [[nodiscard]] const std::vector<std::string>& tags() const { return tags_; }

 private:
  std::vector<std::string> tags_;
};

}  // namespace tytan::snap
