#include "snap/snapshot.h"

#include <cstdio>
#include <fstream>

namespace tytan::snap {

namespace {

constexpr std::size_t kTagLen = 4;

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf2'9ce4'8422'2325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x0000'0100'0000'01b3ull;
  }
  return h;
}

void Snapshot::add(std::string_view tag, ByteVec bytes) {
  TYTAN_CHECK(tag.size() == kTagLen, "section tags are exactly 4 characters");
  sections_.push_back({std::string(tag), std::move(bytes)});
  digest_valid_ = false;
}

std::uint64_t Snapshot::digest() const {
  if (!digest_valid_) {
    std::uint64_t h = 0xcbf2'9ce4'8422'2325ull;
    auto mix = [&h](std::span<const std::uint8_t> bytes) {
      for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x0000'0100'0000'01b3ull;
      }
    };
    for (const Section& section : sections_) {
      mix({reinterpret_cast<const std::uint8_t*>(section.tag.data()),
           section.tag.size()});
      mix(section.bytes);
    }
    digest_ = h;
    digest_valid_ = true;
  }
  return digest_;
}

const ByteVec* Snapshot::find(std::string_view tag) const {
  for (const Section& section : sections_) {
    if (section.tag == tag) {
      return &section.bytes;
    }
  }
  return nullptr;
}

ByteVec Snapshot::serialize() const {
  ByteVec out;
  append_le32(out, kMagic);
  append_le32(out, kSchemaVersion);
  append_le32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    out.insert(out.end(), section.tag.begin(), section.tag.end());
    append_le64(out, section.bytes.size());
    out.insert(out.end(), section.bytes.begin(), section.bytes.end());
  }
  append_le64(out, fnv1a64(out));
  return out;
}

Result<Snapshot> Snapshot::parse(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kHeader = 12;
  constexpr std::size_t kTrailer = 8;
  if (bytes.size() < kHeader + kTrailer) {
    return make_error(Err::kCorrupt, "snapshot truncated (no header)");
  }
  if (load_le32(bytes.data()) != kMagic) {
    return make_error(Err::kCorrupt, "bad snapshot magic (not a TYSN file)");
  }
  const std::uint32_t version = load_le32(bytes.data() + 4);
  if (version != kSchemaVersion) {
    return make_error(Err::kInvalidArgument,
                      "unsupported snapshot schema version " + std::to_string(version) +
                          " (this build reads version " +
                          std::to_string(kSchemaVersion) + ")");
  }
  const std::uint64_t stored_sum = load_le64(bytes.data() + bytes.size() - kTrailer);
  const auto body = bytes.subspan(0, bytes.size() - kTrailer);
  if (fnv1a64(body) != stored_sum) {
    return make_error(Err::kCorrupt, "snapshot checksum mismatch (corrupt file)");
  }
  const std::uint32_t count = load_le32(bytes.data() + 8);
  Snapshot snapshot;
  std::size_t pos = kHeader;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (body.size() - pos < kTagLen + 8) {
      return make_error(Err::kCorrupt,
                        "snapshot section " + std::to_string(i) + " truncated");
    }
    std::string tag(reinterpret_cast<const char*>(body.data() + pos), kTagLen);
    const std::uint64_t len = load_le64(body.data() + pos + kTagLen);
    pos += kTagLen + 8;
    if (len > body.size() - pos) {
      return make_error(Err::kCorrupt, "snapshot section '" + tag +
                                           "' overruns the file");
    }
    snapshot.sections_.push_back(
        {std::move(tag), ByteVec(body.begin() + static_cast<std::ptrdiff_t>(pos),
                                 body.begin() + static_cast<std::ptrdiff_t>(pos + len))});
    pos += len;
  }
  if (pos != body.size()) {
    return make_error(Err::kCorrupt, "snapshot has trailing bytes after sections");
  }
  return snapshot;
}

Status Snapshot::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(Err::kUnavailable, "cannot write '" + path + "'");
  }
  const ByteVec bytes = serialize();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return make_error(Err::kUnavailable, "short write to '" + path + "'");
  }
  return Status::ok();
}

Result<Snapshot> Snapshot::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(Err::kNotFound, "cannot open '" + path + "'");
  }
  const ByteVec bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return parse(bytes);
}

Status SaveVisitor::section(std::string_view tag,
                            const std::function<void(Writer&)>& save,
                            const std::function<Status(Reader&)>& restore) {
  (void)restore;
  Writer writer;
  save(writer);
  snapshot_.add(tag, writer.take());
  return Status::ok();
}

Status RestoreVisitor::section(std::string_view tag,
                               const std::function<void(Writer&)>& save,
                               const std::function<Status(Reader&)>& restore) {
  (void)save;
  const ByteVec* payload = snapshot_.find(tag);
  if (payload == nullptr) {
    return make_error(Err::kCorrupt,
                      "snapshot missing section '" + std::string(tag) + "'");
  }
  Reader reader(*payload);
  if (Status s = restore(reader); !s.is_ok()) {
    return s;
  }
  return reader.finish(tag);
}

Status ListVisitor::section(std::string_view tag,
                            const std::function<void(Writer&)>& save,
                            const std::function<Status(Reader&)>& restore) {
  (void)save;
  (void)restore;
  tags_.emplace_back(tag);
  return Status::ok();
}

}  // namespace tytan::snap
