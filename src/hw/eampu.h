// Execution-Aware Memory Protection Unit (EA-MPU).
//
// Modeled after TrustLite's EA-MPU as extended by TyTAN with *dynamic*
// reconfiguration (paper §3/§4).  The EA-MPU provides three hardware
// properties:
//   1. memory access control based on the *code* performing the access:
//      a data region may only be touched by instructions fetched from the
//      rule's code region;
//   2. dedicated entry points: control may enter a protected code region
//      only at its declared entry address;
//   3. interrupt handling that preserves these rules (the Int Mux runs under
//      its own identity and is itself subject to the rule matrix).
//
// This class is the *hardware*: it evaluates accesses and stores slots.
// Slot search and the overlap policy check — what Table 6 measures — are
// performed by the EA-MPU *driver* (src/core/eampu_driver), which charges
// the calibrated cycle costs.
//
// Semantics implemented here:
//   * An address covered by >= 1 rule's data region is "protected": an
//     access is allowed only if some covering rule's code region contains
//     the executing EIP (with the matching permission), or the rule is
//     os_accessible and the executing EIP lies in the OS kernel window.
//   * An address inside an execution region is implicitly accessible (R/W/X)
//     to code of that same region (a task owns its own memory).
//   * Unprotected addresses are freely accessible (normal flat memory).
//   * Control transfers into an execution region are allowed only from
//     within the region itself or to its entry point; regions with
//     kEntryAnywhere opt out (normal tasks).  Transfers to non-executable
//     protected addresses are denied.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/status.h"
#include "sim/memory_map.h"
#include "sim/policy.h"
#include "snap/snapshot.h"

namespace tytan::hw {

/// Data-region permissions.
enum Perm : std::uint8_t {
  kPermRead = 1u << 0,
  kPermWrite = 1u << 1,
  kPermExec = 1u << 2,
};

/// One EA-MPU access-control rule: code region -> data region + perms.
struct Rule {
  std::uint32_t code_start = 0;
  std::uint32_t code_size = 0;
  std::uint32_t data_start = 0;
  std::uint32_t data_size = 0;
  std::uint8_t perms = 0;
  /// TrustLite-style OS-access bit: the OS kernel window may also access the
  /// data region (used for *normal* tasks, which are "accessible to the OS").
  bool os_accessible = false;
  /// Background rule: grants its code region access to the data region but
  /// does NOT mark the data region as protected.  Used for the static
  /// trusted-component rules ("the memory of a secure task can be accessed
  /// only by the task itself and trusted system components", paper §4) —
  /// they span all of RAM without claiming it.
  bool background = false;

  friend bool operator==(const Rule&, const Rule&) = default;
};

/// Execution region descriptor: a code range with a dedicated entry point.
struct ExecRegion {
  std::uint32_t start = 0;
  std::uint32_t size = 0;
  std::uint32_t entry = 0;  ///< absolute entry address, or a sentinel below

  /// No entry enforcement (normal tasks: "accessible to the OS").
  static constexpr std::uint32_t kEntryAnywhere = 0xFFFF'FFFFu;
  /// No entry at all: software may never branch into the region; it is only
  /// reachable through hardware interrupt dispatch (trusted firmware windows).
  static constexpr std::uint32_t kEntryNone = 0xFFFF'FFFEu;
};

class EaMpu final : public sim::AccessPolicy {
 public:
  /// Paper Table 6: "EA-MPU with 18 slots in total".
  static constexpr std::size_t kNumSlots = 18;
  static constexpr std::size_t kNumExecRegions = 16;

  // -- slot array (dumb hardware ports; the driver implements search/policy) --
  [[nodiscard]] bool slot_used(std::size_t idx) const;
  [[nodiscard]] const Rule& slot(std::size_t idx) const;
  Status write_slot(std::size_t idx, const Rule& rule);
  Status clear_slot(std::size_t idx);
  [[nodiscard]] std::size_t slots_in_use() const;

  // -- execution regions -------------------------------------------------------
  Result<std::size_t> add_exec_region(const ExecRegion& region);
  Status remove_exec_region(std::size_t idx);
  [[nodiscard]] const std::optional<ExecRegion>& exec_region(std::size_t idx) const;
  [[nodiscard]] std::size_t exec_regions_in_use() const;

  /// Execution region containing `addr`, if any.
  [[nodiscard]] const ExecRegion* find_exec_region(std::uint32_t addr) const;

  // -- AccessPolicy ------------------------------------------------------------
  [[nodiscard]] bool allows(std::uint32_t exec_ip, std::uint32_t addr,
                            sim::Access access) const override;
  [[nodiscard]] bool allows_transfer(std::uint32_t from_ip,
                                     std::uint32_t to_ip) const override;
  /// Which rule decided the access: the granting slot index, or a negative
  /// sim::kCheck* code.  Mirrors allows() decision-for-decision (same slot
  /// scan order) so classify() == kCheckDenied exactly when allows() is
  /// false — tests/test_heat.cc pins the equivalence property.
  [[nodiscard]] int classify(std::uint32_t exec_ip, std::uint32_t addr,
                             sim::Access access) const override;

  /// Lock the configuration ports (set by secure boot after the static rules
  /// are installed; afterwards only the EA-MPU driver firmware may write —
  /// modeled as a host-side latch the driver toggles around its accesses).
  void set_port_guard(bool locked) { port_locked_ = locked; }
  [[nodiscard]] bool port_locked() const { return port_locked_; }
  /// Serialize / overwrite the full rule table, execution regions, and port
  /// guard for machine snapshots.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

  /// Driver-only bypass around a legitimate reconfiguration.
  class PortUnlock {
   public:
    explicit PortUnlock(EaMpu& mpu) : mpu_(mpu), was_locked_(mpu.port_locked_) {
      mpu_.port_locked_ = false;
    }
    ~PortUnlock() { mpu_.port_locked_ = was_locked_; }
    PortUnlock(const PortUnlock&) = delete;
    PortUnlock& operator=(const PortUnlock&) = delete;

   private:
    EaMpu& mpu_;
    bool was_locked_;
  };

 private:
  [[nodiscard]] static bool in_os_window(std::uint32_t ip) {
    return ip >= sim::kFwOsKernel && ip < sim::kFwOsKernel + sim::kFwWindowSize;
  }

  std::array<std::optional<Rule>, kNumSlots> slots_{};
  std::array<std::optional<ExecRegion>, kNumExecRegions> exec_regions_{};
  bool port_locked_ = false;
};

}  // namespace tytan::hw
