#include "hw/eampu.h"

#include "common/bytes.h"

namespace tytan::hw {

using sim::Access;

// ---------------------------------------------------------------------------
// Slot array
// ---------------------------------------------------------------------------

bool EaMpu::slot_used(std::size_t idx) const {
  TYTAN_CHECK(idx < kNumSlots, "EA-MPU slot index out of range");
  return slots_[idx].has_value();
}

const Rule& EaMpu::slot(std::size_t idx) const {
  TYTAN_CHECK(idx < kNumSlots, "EA-MPU slot index out of range");
  TYTAN_CHECK(slots_[idx].has_value(), "EA-MPU slot not in use");
  return *slots_[idx];
}

Status EaMpu::write_slot(std::size_t idx, const Rule& rule) {
  if (idx >= kNumSlots) {
    return make_error(Err::kOutOfRange, "EA-MPU slot index out of range");
  }
  if (port_locked_) {
    return make_error(Err::kPermissionDenied, "EA-MPU configuration port locked");
  }
  if (rule.data_size == 0) {
    return make_error(Err::kInvalidArgument, "EA-MPU rule with empty data region");
  }
  slots_[idx] = rule;
  bump_config_epoch();
  return Status::ok();
}

Status EaMpu::clear_slot(std::size_t idx) {
  if (idx >= kNumSlots) {
    return make_error(Err::kOutOfRange, "EA-MPU slot index out of range");
  }
  if (port_locked_) {
    return make_error(Err::kPermissionDenied, "EA-MPU configuration port locked");
  }
  slots_[idx].reset();
  bump_config_epoch();
  return Status::ok();
}

std::size_t EaMpu::slots_in_use() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    n += slot.has_value() ? 1 : 0;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Execution regions
// ---------------------------------------------------------------------------

Result<std::size_t> EaMpu::add_exec_region(const ExecRegion& region) {
  if (port_locked_) {
    return make_error(Err::kPermissionDenied, "EA-MPU configuration port locked");
  }
  if (region.size == 0) {
    return make_error(Err::kInvalidArgument, "empty execution region");
  }
  for (const auto& existing : exec_regions_) {
    if (existing &&
        ranges_overlap(existing->start, existing->size, region.start, region.size)) {
      return make_error(Err::kAlreadyExists, "execution regions overlap");
    }
  }
  for (std::size_t i = 0; i < kNumExecRegions; ++i) {
    if (!exec_regions_[i]) {
      exec_regions_[i] = region;
      bump_config_epoch();
      return i;
    }
  }
  return make_error(Err::kOutOfMemory, "no free execution-region descriptor");
}

Status EaMpu::remove_exec_region(std::size_t idx) {
  if (idx >= kNumExecRegions) {
    return make_error(Err::kOutOfRange, "execution-region index out of range");
  }
  if (port_locked_) {
    return make_error(Err::kPermissionDenied, "EA-MPU configuration port locked");
  }
  exec_regions_[idx].reset();
  bump_config_epoch();
  return Status::ok();
}

const std::optional<ExecRegion>& EaMpu::exec_region(std::size_t idx) const {
  TYTAN_CHECK(idx < kNumExecRegions, "execution-region index out of range");
  return exec_regions_[idx];
}

std::size_t EaMpu::exec_regions_in_use() const {
  std::size_t n = 0;
  for (const auto& region : exec_regions_) {
    n += region.has_value() ? 1 : 0;
  }
  return n;
}

const ExecRegion* EaMpu::find_exec_region(std::uint32_t addr) const {
  for (const auto& region : exec_regions_) {
    if (region && addr >= region->start && addr - region->start < region->size) {
      return &*region;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Access evaluation
// ---------------------------------------------------------------------------

bool EaMpu::allows(std::uint32_t exec_ip, std::uint32_t addr, Access access) const {
  const ExecRegion* addr_region = find_exec_region(addr);
  const ExecRegion* ip_region = find_exec_region(exec_ip);

  // Implicit self-access: a region's own code may read/write/execute it.
  if (addr_region != nullptr && ip_region == addr_region) {
    return true;
  }

  if (access == Access::kExecute) {
    // Executable iff inside an execution region (handled above for self;
    // foreign execution identity cannot arise on fetch since exec_ip == addr)
    // or in unprotected memory.
    if (addr_region != nullptr) {
      return ip_region == addr_region;
    }
    // Protected *data* regions are never executable.
    for (const auto& slot : slots_) {
      if (slot && !slot->background && addr >= slot->data_start &&
          addr - slot->data_start < slot->data_size) {
        return false;
      }
    }
    return true;
  }

  const std::uint8_t wanted = (access == Access::kRead) ? kPermRead : kPermWrite;
  bool protected_addr = addr_region != nullptr;  // foreign code regions are protected
  for (const auto& slot : slots_) {
    if (!slot || addr < slot->data_start || addr - slot->data_start >= slot->data_size) {
      continue;
    }
    if (!slot->background) {
      protected_addr = true;
    }
    const bool ip_in_code =
        exec_ip >= slot->code_start && exec_ip - slot->code_start < slot->code_size;
    if (ip_in_code && (slot->perms & wanted) != 0) {
      return true;
    }
    if (slot->os_accessible && in_os_window(exec_ip)) {
      return true;
    }
  }
  return !protected_addr;
}

int EaMpu::classify(std::uint32_t exec_ip, std::uint32_t addr, Access access) const {
  const ExecRegion* addr_region = find_exec_region(addr);
  const ExecRegion* ip_region = find_exec_region(exec_ip);

  if (addr_region != nullptr && ip_region == addr_region) {
    return sim::kCheckImplicitSelf;
  }

  if (access == Access::kExecute) {
    if (addr_region != nullptr) {
      return sim::kCheckDenied;  // foreign execution region (self handled above)
    }
    for (const auto& slot : slots_) {
      if (slot && !slot->background && addr >= slot->data_start &&
          addr - slot->data_start < slot->data_size) {
        return sim::kCheckDenied;  // protected data is never executable
      }
    }
    return sim::kCheckUnprotected;
  }

  const std::uint8_t wanted = (access == Access::kRead) ? kPermRead : kPermWrite;
  bool protected_addr = addr_region != nullptr;
  for (std::size_t i = 0; i < kNumSlots; ++i) {
    const auto& slot = slots_[i];
    if (!slot || addr < slot->data_start || addr - slot->data_start >= slot->data_size) {
      continue;
    }
    if (!slot->background) {
      protected_addr = true;
    }
    const bool ip_in_code =
        exec_ip >= slot->code_start && exec_ip - slot->code_start < slot->code_size;
    if (ip_in_code && (slot->perms & wanted) != 0) {
      return static_cast<int>(i);
    }
    if (slot->os_accessible && in_os_window(exec_ip)) {
      return sim::kCheckOsWindow;
    }
  }
  return protected_addr ? sim::kCheckDenied : sim::kCheckUnprotected;
}

bool EaMpu::allows_transfer(std::uint32_t from_ip, std::uint32_t to_ip) const {
  const ExecRegion* to_region = find_exec_region(to_ip);
  if (to_region != nullptr) {
    const ExecRegion* from_region = find_exec_region(from_ip);
    if (from_region == to_region) {
      return true;  // intra-region control flow is free
    }
    if (to_region->entry == ExecRegion::kEntryAnywhere) {
      return true;  // region opted out of entry enforcement (normal tasks)
    }
    if (to_region->entry == ExecRegion::kEntryNone) {
      return false;  // only hardware dispatch may enter (firmware windows)
    }
    return to_ip == to_region->entry;
  }
  // Transfers into protected non-executable data are denied.
  for (const auto& slot : slots_) {
    if (slot && !slot->background && to_ip >= slot->data_start &&
        to_ip - slot->data_start < slot->data_size) {
      return false;
    }
  }
  return true;
}

void EaMpu::save_state(snap::Writer& w) const {
  for (const auto& slot : slots_) {
    w.boolean(slot.has_value());
    if (slot) {
      w.u32(slot->code_start);
      w.u32(slot->code_size);
      w.u32(slot->data_start);
      w.u32(slot->data_size);
      w.u8(slot->perms);
      w.boolean(slot->os_accessible);
      w.boolean(slot->background);
    }
  }
  for (const auto& region : exec_regions_) {
    w.boolean(region.has_value());
    if (region) {
      w.u32(region->start);
      w.u32(region->size);
      w.u32(region->entry);
    }
  }
  w.boolean(port_locked_);
}

Status EaMpu::restore_state(snap::Reader& r) {
  for (auto& slot : slots_) {
    if (r.boolean()) {
      Rule rule;
      rule.code_start = r.u32();
      rule.code_size = r.u32();
      rule.data_start = r.u32();
      rule.data_size = r.u32();
      rule.perms = r.u8();
      rule.os_accessible = r.boolean();
      rule.background = r.boolean();
      slot = rule;
    } else {
      slot.reset();
    }
  }
  for (auto& region : exec_regions_) {
    if (r.boolean()) {
      ExecRegion er;
      er.start = r.u32();
      er.size = r.u32();
      er.entry = r.u32();
      region = er;
    } else {
      region.reset();
    }
  }
  port_locked_ = r.boolean();
  // The restored table may differ arbitrarily from the previous one; the
  // port guard itself never feeds allows() and needs no bump elsewhere.
  bump_config_epoch();
  return Status::ok();
}

}  // namespace tytan::hw
