// Platform-key register (paper §3, "Platform Key").
//
// "The TyTAN hardware platform comes with a platform key Kp.  Access to this
// key is controlled by the EA-MPU and only trusted software components have
// access to it."
//
// Modeled as an MMIO device exposing the 128-bit Kp as four read-only words.
// Secure boot installs EA-MPU rules so only the Remote Attest and Secure
// Storage windows can read the register's address range; everyone else's
// loads fault.
#pragma once

#include "crypto/kdf.h"
#include "sim/device.h"
#include "sim/memory_map.h"

namespace tytan::hw {

class KeyRegister final : public sim::Device {
 public:
  explicit KeyRegister(const crypto::Key128& kp) : kp_(kp) {}

  [[nodiscard]] std::string_view name() const override { return "key-register"; }
  [[nodiscard]] std::uint32_t base() const override { return sim::kMmioKeyReg; }
  [[nodiscard]] std::uint32_t size() const override { return 0x20; }

  std::uint32_t read32(std::uint32_t offset) override {
    if (offset < crypto::kKeySize) {
      return load_le32(kp_.data() + offset);
    }
    return 0;
  }

  void write32(std::uint32_t /*offset*/, std::uint32_t /*value*/) override {
    // Kp is fused at manufacturing time; writes are ignored.
  }

  /// Host-side (manufacturer) view of the fused key, for verifier-side checks
  /// in tests and benches.  Guest software must go through MMIO.
  [[nodiscard]] const crypto::Key128& raw_key() const { return kp_; }

 private:
  crypto::Key128 kp_;
};

}  // namespace tytan::hw
