#include "hw/key_register.h"

// Header-only today; this TU anchors the library target.
