#include "obs/trace_reader.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace tytan::obs {

namespace {

/// Value of `"key":<number>` in `line`, or `fallback` when absent.
std::int64_t find_int(std::string_view line, std::string_view key, std::int64_t fallback) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return fallback;
  }
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < line.size() &&
         (line[end] == '-' || (line[end] >= '0' && line[end] <= '9'))) {
    ++end;
  }
  std::int64_t value = fallback;
  std::from_chars(line.data() + begin, line.data() + end, value);
  return value;
}

/// Value of `"key":"<string>"` in `line` (no unescaping — the writer only
/// escapes characters that task names cannot contain in practice).
std::string find_str(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return {};
  }
  const std::size_t begin = pos + needle.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string_view::npos ? std::string{}
                                       : std::string(line.substr(begin, end - begin));
}

}  // namespace

Result<Trace> parse_chrome_trace(std::string_view json) {
  if (json.find("\"traceEvents\"") == std::string_view::npos) {
    return make_error(Err::kCorrupt, "not a Chrome trace-event file");
  }
  Trace trace;
  std::istringstream in{std::string(json)};
  std::string line;
  while (std::getline(in, line)) {
    const std::string ph = find_str(line, "ph");
    if (ph == "M") {
      const std::string name = find_str(line, "name");
      if (name == "thread_name") {
        trace.thread_names[static_cast<int>(find_int(line, "tid", 0))] =
            find_str(line, "args\":{\"name");
      } else if (name == "tytan_event_bus") {
        trace.recorded_events = static_cast<std::uint64_t>(find_int(line, "recorded", 0));
        trace.dropped_events = static_cast<std::uint64_t>(find_int(line, "dropped", 0));
      }
    } else if (ph == "X") {
      trace.slices.push_back({static_cast<int>(find_int(line, "tid", 0)),
                              static_cast<std::uint64_t>(find_int(line, "cycle", 0)),
                              static_cast<std::uint64_t>(find_int(line, "dur_cycles", 0))});
    } else if (ph == "i") {
      if (find_str(line, "name") == "prof-sample") {
        trace.samples.push_back({static_cast<std::uint64_t>(find_int(line, "cycle", 0)),
                                 static_cast<std::uint32_t>(find_int(line, "pc", 0)),
                                 static_cast<std::int32_t>(find_int(line, "task", -1)),
                                 find_str(line, "frame")});
      } else {
        trace.events.push_back({find_str(line, "name"),
                                static_cast<std::uint64_t>(find_int(line, "cycle", 0)),
                                static_cast<std::int32_t>(find_int(line, "task", -1)),
                                static_cast<std::uint32_t>(find_int(line, "a", 0)),
                                static_cast<std::uint32_t>(find_int(line, "b", 0))});
      }
    }
  }
  return trace;
}

Result<Trace> read_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(Err::kNotFound, "cannot open trace '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_chrome_trace(buffer.str());
}

}  // namespace tytan::obs
