// Fleet telemetry: periodic per-device health snapshots folded into a
// thread-safe hub, with pluggable anomaly rules and a flight recorder.
//
// Every snapshot is a POD of monotonic counters read off one device at a
// round barrier.  The hub keeps the full snapshot history, evaluates every
// registered AnomalyRule against (current, previous, fleet baseline), and —
// when a rule trips — captures the device's last-N events from its event bus
// as a flight-recorder dump attached to the structured anomaly record.
//
// Serialization is JSONL with a fixed key order and no wall-clock fields, so
// the output for a deterministic fleet run is byte-identical whatever the
// worker-thread count (pinned by tests/test_telemetry.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_bus.h"

namespace tytan::obs {

/// One device's health counters at a point in simulated time.  All counter
/// fields are cumulative since boot; rules work on deltas between snapshots.
struct HealthSnapshot {
  std::uint32_t device = 0;
  std::uint64_t seq = 0;    ///< per-device snapshot sequence number (1-based)
  std::uint64_t cycle = 0;  ///< simulated cycles
  std::uint64_t instructions = 0;
  std::uint64_t faults = 0;
  std::uint64_t fault_kills = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t ctx_switches = 0;
  std::uint64_t ipc_delivered = 0;
  std::uint64_t ipc_rejects = 0;
  std::uint64_t attest_total = 0;
  std::uint64_t attest_verified = 0;
  std::uint64_t attest_failed = 0;
  std::uint64_t events_dropped = 0;    ///< EventBus::dropped()
  std::uint64_t faults_injected = 0;   ///< FaultEngine injections (src/fault)
  std::uint64_t fault_recoveries = 0;  ///< recoveries paired with injections
  std::uint64_t watchdog_restarts = 0; ///< kernel watchdog task revivals
  std::uint64_t spans_recorded = 0;    ///< SpanRecorder spans (0 = spans off)
  std::uint64_t attest_round_p99 = 0;  ///< p99 attest-round cycles so far
  bool halted = false;
};

/// Fleet-wide context a rule may compare a device against: mean per-device
/// deltas over the snapshot round being recorded.
struct FleetBaseline {
  std::size_t devices = 0;
  double mean_fault_delta = 0.0;
  double mean_cycle_delta = 0.0;
};

/// A tripped rule, with the device's last-N events at trip time.
struct Anomaly {
  std::uint32_t device = 0;
  std::string rule;
  std::uint64_t seq = 0;
  std::uint64_t cycle = 0;
  std::string message;
  std::vector<Event> flight;  ///< flight-recorder dump (oldest first)
};

class AnomalyRule {
 public:
  virtual ~AnomalyRule() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Return a message to trip.  `prev` is nullptr on a device's first
  /// snapshot.  Rules may keep per-device state (they are only ever called
  /// under the hub lock, in deterministic device order).
  virtual std::optional<std::string> check(const HealthSnapshot& cur,
                                           const HealthSnapshot* prev,
                                           const FleetBaseline& baseline) = 0;
};

/// Thresholds for the built-in rules (install_default_rules).
struct AnomalyThresholds {
  /// Fault spike: delta >= min AND delta > factor * peer mean fault delta
  /// (the round's fleet average excluding the device under test).
  std::uint64_t fault_spike_min = 1;
  double fault_spike_factor = 4.0;
  /// Stalled device: no cycle progress for this many consecutive snapshots.
  std::uint64_t stall_snapshots = 3;
  /// Event drops: delta in EventBus::dropped() >= threshold.
  std::uint64_t event_drop_min = 1;
};

/// Any newly-failed attestation (attest_failed delta > 0).
class AttestationFailureRule final : public AnomalyRule {
 public:
  [[nodiscard]] std::string_view name() const override { return "attestation-failure"; }
  std::optional<std::string> check(const HealthSnapshot& cur, const HealthSnapshot* prev,
                                   const FleetBaseline& baseline) override;
};

/// Fault-rate spike versus the round's peer baseline (fleet mean excluding
/// this device).  The first snapshot counts faults since boot.
class FaultSpikeRule final : public AnomalyRule {
 public:
  explicit FaultSpikeRule(std::uint64_t min_delta = 1, double factor = 4.0)
      : min_delta_(min_delta), factor_(factor) {}
  [[nodiscard]] std::string_view name() const override { return "fault-spike"; }
  std::optional<std::string> check(const HealthSnapshot& cur, const HealthSnapshot* prev,
                                   const FleetBaseline& baseline) override;

 private:
  std::uint64_t min_delta_;
  double factor_;
};

/// Watchdog: no cycle progress for K consecutive snapshots.  Latched — fires
/// once per stall episode, re-arms when the device makes progress again.
class StalledDeviceRule final : public AnomalyRule {
 public:
  explicit StalledDeviceRule(std::uint64_t snapshots = 3) : threshold_(snapshots) {}
  [[nodiscard]] std::string_view name() const override { return "stalled-device"; }
  std::optional<std::string> check(const HealthSnapshot& cur, const HealthSnapshot* prev,
                                   const FleetBaseline& baseline) override;

 private:
  struct State {
    std::uint64_t stalled = 0;
    bool fired = false;
  };
  std::uint64_t threshold_;
  std::map<std::uint32_t, State> per_device_;
};

/// Event-bus eviction: dropped() advanced by at least `min_delta`.
class EventDropRule final : public AnomalyRule {
 public:
  explicit EventDropRule(std::uint64_t min_delta = 1) : min_delta_(min_delta) {}
  [[nodiscard]] std::string_view name() const override { return "event-drop"; }
  std::optional<std::string> check(const HealthSnapshot& cur, const HealthSnapshot* prev,
                                   const FleetBaseline& baseline) override;

 private:
  std::uint64_t min_delta_;
};

class TelemetryHub {
 public:
  static constexpr std::size_t kDefaultFlightEvents = 32;

  explicit TelemetryHub(std::size_t flight_events = kDefaultFlightEvents)
      : flight_events_(flight_events) {}

  void add_rule(std::unique_ptr<AnomalyRule> rule);
  void install_default_rules(const AnomalyThresholds& thresholds = {});

  /// Record one round of snapshots (one per device, in device order).  The
  /// fleet baseline is computed from this round's deltas; rules run per
  /// device in order; tripped rules capture the device's last-N events from
  /// `bus_of(device_index)` (which may return nullptr).  Thread-safe.
  void record_round(const std::vector<HealthSnapshot>& round,
                    const std::function<const EventBus*(std::size_t)>& bus_of);

  /// Record a single device's snapshot (baseline = that device alone).
  void record(const HealthSnapshot& snapshot, const EventBus* bus);

  [[nodiscard]] std::vector<HealthSnapshot> snapshots() const;
  [[nodiscard]] std::vector<Anomaly> anomalies() const;
  /// Most recent snapshot per device, keyed by device id.
  [[nodiscard]] std::map<std::uint32_t, HealthSnapshot> latest() const;

  /// Serialize history as JSONL: {"type":"snapshot",...} and
  /// {"type":"anomaly",...,"flight":[...]} lines, in record order, with a
  /// stable key order and no host-side fields.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  void record_locked(const HealthSnapshot& snapshot, const FleetBaseline& baseline,
                     const EventBus* bus);

  mutable std::mutex mutex_;
  std::size_t flight_events_;
  std::vector<std::unique_ptr<AnomalyRule>> rules_;
  std::vector<HealthSnapshot> snapshots_;
  std::vector<Anomaly> anomalies_;
  std::map<std::uint32_t, HealthSnapshot> previous_;
  /// Interleaving order of records for to_jsonl(): (is_anomaly, index).
  std::vector<std::pair<bool, std::size_t>> order_;
};

/// Parsed form of a telemetry JSONL stream (tytan-top, tests).  Flight
/// events are summarized as a count — the full dump stays in the file.
struct TelemetryLog {
  struct ParsedAnomaly {
    std::uint32_t device = 0;
    std::string rule;
    std::uint64_t seq = 0;
    std::uint64_t cycle = 0;
    std::string message;
    std::size_t flight_count = 0;
  };
  std::vector<HealthSnapshot> snapshots;
  std::vector<ParsedAnomaly> anomalies;
};

/// Parse a JSONL stream produced by TelemetryHub::to_jsonl().
Result<TelemetryLog> parse_telemetry_jsonl(std::string_view text);

}  // namespace tytan::obs
