#include "obs/hub.h"

#include <string>

namespace tytan::obs {

void Hub::update_metrics(const Event& event) {
  metrics_.counter("events." + std::string(kind_name(event.kind))).inc();
  switch (event.kind) {
    case EventKind::kCtxSave:
      metrics_.histogram(event.b != 0 ? "ctx_save.secure.cycles" : "ctx_save.normal.cycles")
          .observe(event.a);
      break;
    case EventKind::kCtxWipe:
      metrics_.histogram("ctx_save.wipe.cycles").observe(event.a);
      break;
    case EventKind::kCtxRestore:
      metrics_.histogram("ctx_restore.cycles").observe(event.a);
      break;
    case EventKind::kMpuConfig:
      metrics_.histogram("eampu.configure.cycles").observe(event.b);
      break;
    case EventKind::kRtmDone:
      metrics_.histogram("rtm.measure.cycles").observe(event.a);
      break;
    case EventKind::kLoadDone:
      metrics_.histogram("loader.total.cycles").observe(event.a);
      break;
    case EventKind::kSealStore:
    case EventKind::kSealUnseal:
      metrics_.histogram("storage.blob.bytes").observe(event.a);
      break;
    case EventKind::kSchedTick:
      metrics_.gauge("sched.tick").set(static_cast<std::int64_t>(event.a));
      break;
    case EventKind::kAttest:
      metrics_.histogram("attest.roundtrip.cycles").observe(event.a);
      break;
    case EventKind::kIpcSend:
      // `a` is the receiver handle: remember when the message left so the
      // matching deliver can record the send->deliver latency.
      ipc_send_cycle_[static_cast<std::int32_t>(event.a)] = event.cycle;
      break;
    case EventKind::kIpcDeliver: {
      const auto it = ipc_send_cycle_.find(event.task);
      if (it != ipc_send_cycle_.end()) {
        metrics_.histogram("ipc.send_to_deliver.cycles").observe(event.cycle - it->second);
        ipc_send_cycle_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

void Hub::update_span_metrics(const Span& span) {
  metrics_.counter("spans.recorded").inc();
  metrics_.histogram("span." + std::string(span_phase_name(span.phase)) + ".cycles")
      .observe(span.end_cycle - span.begin_cycle);
}

}  // namespace tytan::obs
