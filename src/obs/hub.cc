#include "obs/hub.h"

#include <string>

namespace tytan::obs {

void Hub::update_metrics(const Event& event) {
  metrics_.counter("events." + std::string(kind_name(event.kind))).inc();
  switch (event.kind) {
    case EventKind::kCtxSave:
      metrics_.histogram(event.b != 0 ? "ctx_save.secure.cycles" : "ctx_save.normal.cycles")
          .observe(event.a);
      break;
    case EventKind::kCtxWipe:
      metrics_.histogram("ctx_save.wipe.cycles").observe(event.a);
      break;
    case EventKind::kCtxRestore:
      metrics_.histogram("ctx_restore.cycles").observe(event.a);
      break;
    case EventKind::kMpuConfig:
      metrics_.histogram("eampu.configure.cycles").observe(event.b);
      break;
    case EventKind::kRtmDone:
      metrics_.histogram("rtm.measure.cycles").observe(event.a);
      break;
    case EventKind::kLoadDone:
      metrics_.histogram("loader.total.cycles").observe(event.a);
      break;
    case EventKind::kSealStore:
    case EventKind::kSealUnseal:
      metrics_.histogram("storage.blob.bytes").observe(event.a);
      break;
    case EventKind::kSchedTick:
      metrics_.gauge("sched.tick").set(static_cast<std::int64_t>(event.a));
      break;
    default:
      break;
  }
}

}  // namespace tytan::obs
