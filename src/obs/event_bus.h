// Cycle-stamped event ring buffer.
//
// Zero overhead when off: emit() is a single branch on `enabled_`; nothing is
// allocated, stamped, or copied until tracing is enabled.  The bus reads the
// cycle clock through a pointer wired by the owner (sim::Machine points it at
// its cycle counter) so emitters never pass timestamps explicitly — an event
// is stamped with the exact simulated cycle at which it was emitted.
//
// The ring holds the most recent `capacity` events; older ones are dropped
// (counted in dropped()).  An optional listener observes every event as it is
// emitted, regardless of ring eviction — the Hub uses this to drive metrics
// and per-task accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/events.h"

namespace tytan::obs {

class EventBus {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit EventBus(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Wire the simulated cycle clock (non-owning; may be nullptr => stamp 0).
  void set_clock(const std::uint64_t* clock) { clock_ = clock; }

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Observer invoked for every emitted event (before ring eviction).
  void set_listener(std::function<void(const Event&)> listener) {
    listener_ = std::move(listener);
  }

  void emit(EventKind kind, std::int32_t task = -1, std::uint32_t a = 0,
            std::uint32_t b = 0) {
    if (!enabled_) {
      return;
    }
    const Event event{clock_ != nullptr ? *clock_ : 0, kind, task, a, b};
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[head_] = event;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
    if (listener_) {
      listener_(event);
    }
  }

  /// Events in emission order (oldest first).
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear() {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Side table mapping task handles to display names (exporters only; the
  /// hot emit path never touches strings).
  void set_task_name(std::int32_t task, std::string name) {
    task_names_[task] = std::move(name);
  }
  [[nodiscard]] std::string_view task_name(std::int32_t task) const {
    const auto it = task_names_.find(task);
    return it == task_names_.end() ? std::string_view{} : std::string_view{it->second};
  }
  [[nodiscard]] const std::map<std::int32_t, std::string>& task_names() const {
    return task_names_;
  }

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = false;
  const std::uint64_t* clock_ = nullptr;
  std::function<void(const Event&)> listener_;
  std::map<std::int32_t, std::string> task_names_;
};

}  // namespace tytan::obs
