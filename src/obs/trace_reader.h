// Minimal reader for the Chrome trace-event JSON written by obs/export.h.
//
// Not a general JSON parser: it relies on the writer's one-object-per-line
// layout and fixed key order inside `args`.  Good enough for the tytan-trace
// CLI and for round-trip tests; real analysis UIs (Perfetto) consume the file
// directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace tytan::obs {

struct TraceInstant {
  std::string name;        ///< event kind name ("ctx-save", ...)
  std::uint64_t cycle = 0;
  std::int32_t task = -1;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct TraceSlice {
  int tid = 0;
  std::uint64_t cycle = 0;       ///< start cycle
  std::uint64_t dur_cycles = 0;
};

/// One profiler sample ("prof-sample" instant) with its resolved frame.
struct TraceSample {
  std::uint64_t cycle = 0;
  std::uint32_t pc = 0;
  std::int32_t task = -1;
  std::string frame;  ///< "task;symbol" collapsed-stack frame
};

struct Trace {
  std::vector<TraceInstant> events;       ///< instants in file order
  std::vector<TraceSlice> slices;         ///< derived run slices
  std::vector<TraceSample> samples;       ///< profiler samples in file order
  std::map<int, std::string> thread_names;  ///< tid -> display name
  std::uint64_t recorded_events = 0;      ///< bus ring size at export
  std::uint64_t dropped_events = 0;       ///< bus evictions before export
};

/// Parse a trace previously produced by export_chrome_trace().
Result<Trace> parse_chrome_trace(std::string_view json);

/// Read + parse a trace file.
Result<Trace> read_chrome_trace_file(const std::string& path);

}  // namespace tytan::obs
