// Cycle-budgeted guest-PC sampling profiler.
//
// The owner (sim::Machine) asks `due(cycle)` before each step and calls
// `take(cycle, pc, task)` when a sample is owed; the profiler itself never
// touches the machine, never charges simulated cycles, and costs a single
// null-pointer check when disabled — enabling it leaves every simulated
// cycle count bit-identical, the same invariant the event bus keeps.
//
// PCs are resolved *post hoc* via side tables: per-task code regions with
// their TBF symbol tables (registered by the task loader) and exact-address
// global symbols (firmware entry points registered by the machine).  The
// result exports as collapsed stacks ("task;symbol count" lines) consumable
// by standard flamegraph tooling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tytan::obs {

class SampleProfiler {
 public:
  /// Default sampling interval in simulated cycles.  A prime stride so the
  /// sampler does not alias with loop periods in the sampled workload.
  static constexpr std::uint64_t kDefaultInterval = 997;
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  struct Sample {
    std::uint64_t cycle = 0;
    std::uint32_t pc = 0;
    std::int32_t task = -1;
  };

  /// A resolved sample: the task-level frame and the symbol within it.
  struct Frame {
    std::string task;    ///< task name, "firmware", or "platform"
    std::string symbol;  ///< nearest symbol (label) at or below the PC
  };

  explicit SampleProfiler(std::uint64_t interval_cycles = kDefaultInterval,
                          std::size_t capacity = kDefaultCapacity)
      : interval_(interval_cycles == 0 ? 1 : interval_cycles),
        capacity_(capacity == 0 ? 1 : capacity),
        next_(interval_) {}

  [[nodiscard]] bool due(std::uint64_t cycle) const { return cycle >= next_; }
  void take(std::uint64_t cycle, std::uint32_t pc, std::int32_t task);

  /// Register a loaded task's code region + symbol table (label -> offset
  /// from `base`).  Replaces any prior region for the handle.
  void add_region(std::int32_t task, std::string name, std::uint32_t base,
                  std::uint32_t size,
                  const std::map<std::string, std::uint32_t>& symbols);
  void remove_region(std::int32_t task);

  /// Register an exact-address symbol outside any task region (firmware
  /// entry points).
  void add_global_symbol(std::uint32_t addr, std::string name);

  [[nodiscard]] Frame resolve(const Sample& sample) const;

  /// Samples in capture order (oldest first); the ring keeps the most
  /// recent `capacity` samples and counts older evictions in dropped().
  [[nodiscard]] std::vector<Sample> samples() const;
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t taken() const { return taken_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t interval() const { return interval_; }

  /// Collapsed-stack export: one "task;symbol count" line per distinct
  /// frame, sorted lexicographically (flamegraph.pl / speedscope input).
  [[nodiscard]] std::string folded() const;

  void clear();

 private:
  struct Region {
    std::string name;
    std::uint32_t base = 0;
    std::uint32_t size = 0;
    /// Sorted (offset, label); resolution picks the greatest offset <= pc-base.
    std::vector<std::pair<std::uint32_t, std::string>> symbols;
  };

  std::uint64_t interval_;
  std::size_t capacity_;
  std::uint64_t next_;
  std::vector<Sample> ring_;
  std::size_t head_ = 0;
  std::uint64_t taken_ = 0;
  std::uint64_t dropped_ = 0;
  std::map<std::int32_t, Region> regions_;
  std::map<std::uint32_t, std::string> global_symbols_;
};

}  // namespace tytan::obs
