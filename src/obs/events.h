// Typed, cycle-stamped platform events — the vocabulary of the observability
// layer (tytan_obs).
//
// Every event is a small POD: no strings, no allocation on the emit path.
// Task names are registered once in the EventBus side table; the two payload
// words `a`/`b` carry kind-specific detail (documented per kind below and in
// docs/OBSERVABILITY.md).  The layer never charges simulated cycles: enabling
// or disabling tracing must leave every cycle count in Tables 1-8 bit-identical.
#pragma once

#include <cstdint>
#include <string_view>

namespace tytan::obs {

enum class EventKind : std::uint8_t {
  // Scheduler (src/rtos).
  kSchedDispatch = 0,  ///< a = task kind (0 guest, 1 firmware), b = priority
  kSchedPreempt,       ///< running task forced back to its ready queue
  kSchedYield,         ///< running task voluntarily yielded
  kSchedBlock,         ///< a = BlockReason
  kSchedWake,          ///< task became ready
  kSchedTick,          ///< a = tick count (low 32 bits)
  kTaskCreate,         ///< a = priority, b = kind
  kTaskDestroy,

  // Exception engine (src/sim).
  kIrqEnter,           ///< a = vector, b = origin EIP
  kFault,              ///< a = FaultType, b = faulting EIP

  // Int Mux context switching (src/core/int_mux).
  kCtxSave,            ///< a = total save cycles, b = 1 secure / 0 normal
  kCtxWipe,            ///< a = register-wipe cycles (secure path only)
  kCtxRestore,         ///< a = restore cycles, b = reason (0 restore, 1 start,
                       ///<                                 2 message, 3 normal)

  // Authenticated IPC (src/core/ipc_proxy).
  kIpcSend,            ///< task = sender, a = receiver handle, b = 1 sync / 0 async
  kIpcDeliver,         ///< task = receiver
  kIpcReject,          ///< task = sender (or -1)
  kIpcShmGrant,        ///< task = sender, a = window base, b = window size

  // EA-MPU driver (src/core/eampu_driver).
  kMpuConfig,          ///< a = slot, b = total configure cycles
  kMpuReject,          ///< a = reason (0 no free slot, 1 policy overlap)
  kMpuClear,           ///< a = slot

  // RTM measurement (src/core/rtm).
  kRtmBegin,           ///< a = image bytes
  kRtmHashBlock,       ///< a = blocks hashed so far
  kRtmDone,            ///< a = total measurement cycles

  // Dynamic loader (src/core/task_loader).
  kLoadBegin,          ///< a = image bytes, b = 1 secure / 0 normal
  kLoadPhase,          ///< a = new phase index (TaskLoader::Phase)
  kLoadDone,           ///< a = total load cycles

  // Secure storage (src/core/secure_storage).
  kSealStore,          ///< a = plaintext bytes
  kSealUnseal,         ///< a = sealed bytes

  // OS kernel (src/core/kernel).
  kSyscall,            ///< a = syscall number

  // Remote attestation (src/core/remote_attest).
  kAttest,             ///< task = attested handle, a = round-trip cycles

  // Fault injection (src/fault) and the recovery paths it exercises.
  kFaultInject,        ///< a = fault::FaultClass, b = detail (bit/slot/round)
  kFaultRecover,       ///< a = fault::RecoveryKind, b = detail (attempt/count)

  kNumKinds,           // sentinel — keep last
};

inline constexpr std::size_t kNumEventKinds = static_cast<std::size_t>(EventKind::kNumKinds);

/// kCtxRestore `b` payload: which restore path ran.
inline constexpr std::uint32_t kRestoreResume = 0;   ///< secure resume (Table 3)
inline constexpr std::uint32_t kRestoreStart = 1;    ///< first secure activation
inline constexpr std::uint32_t kRestoreMessage = 2;  ///< IPC message delivery entry
inline constexpr std::uint32_t kRestoreNormal = 3;   ///< FreeRTOS-baseline restore

/// Stable textual name ("sched-dispatch", "ctx-save", ...); used by the
/// exporters and the tytan-trace filter syntax.
std::string_view kind_name(EventKind kind);

/// Inverse of kind_name; returns kNumKinds for unknown names.
EventKind kind_from_name(std::string_view name);

/// One structured event.  `task` is the rtos::TaskHandle the event concerns
/// (-1 when none applies).
struct Event {
  std::uint64_t cycle = 0;
  EventKind kind = EventKind::kNumKinds;
  std::int32_t task = -1;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

}  // namespace tytan::obs
