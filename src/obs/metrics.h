// Metrics registry: monotonic counters, gauges, and fixed-bucket cycle
// histograms.  Names are dotted strings ("ctx_save.secure.cycles"); the
// registry owns the instruments and hands out stable pointers so hot paths
// never look up by name twice.  Purely host-side — recording a sample charges
// no simulated cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/heat.h"

namespace tytan::obs {

class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t by) { value_ += by; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Power-of-two bucketed histogram for cycle quantities: bucket i counts
/// samples with value < 2^i (first bucket that fits), up to 2^(kNumBuckets-1);
/// larger samples land in the overflow bucket.
///
/// Alongside the pow2 buckets the histogram keeps an exact value->count map
/// while the number of *distinct* values stays within kMaxExactValues — latency
/// distributions in the simulator are highly repetitive (the same calibrated
/// costs recur), so in practice percentiles are exact.  Once the map would
/// exceed the cap it is discarded and percentile() falls back to the pow2
/// bucket upper bound (exact_percentiles() reports which regime applies).
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 24;  ///< up to 2^23 = 8.3M cycles
  static constexpr std::size_t kMaxExactValues = 4096;

  void observe(std::uint64_t value);

  /// Fold another histogram's samples into this one (fleet aggregation).
  /// Exactness is sticky-down: the result is exact only if both inputs are
  /// and the merged map still fits the cap.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Count of samples in bucket i (value < 2^i); i == kNumBuckets => overflow.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return i <= kNumBuckets ? buckets_[i] : 0;
  }

  /// Nearest-rank percentile, p in [0,100].  Exact while the distinct-value
  /// map is within its cap; afterwards the upper bound of the pow2 bucket
  /// containing the rank (clamped to the observed max).
  [[nodiscard]] std::uint64_t percentile(double p) const;
  [[nodiscard]] std::uint64_t p50() const { return percentile(50.0); }
  [[nodiscard]] std::uint64_t p95() const { return percentile(95.0); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(99.0); }
  [[nodiscard]] bool exact_percentiles() const { return exact_; }

 private:
  std::uint64_t buckets_[kNumBuckets + 1] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  bool exact_ = true;
  std::map<std::uint64_t, std::uint64_t> values_;  ///< value -> sample count
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Execution-heat profile (obs/heat.h), the fourth instrument kind.  Like
  /// the others the registry owns it and the pointer is stable, so the
  /// machine's HeatRecorder binds to it once.
  HeatProfile& heat_profile(const std::string& name);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;
  [[nodiscard]] const HeatProfile* find_heat_profile(const std::string& name) const;

  /// Sorted "name value" summary table (counters, gauges, then histograms
  /// with count/mean/min/max), for --metrics and the tests.
  [[nodiscard]] std::string format_table() const;

  /// Ordered iteration, for exporters and fleet-level rollups.
  void visit_counters(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void visit_gauges(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void visit_histograms(
      const std::function<void(const std::string&, const Histogram&)>& fn) const;
  void visit_heat_profiles(
      const std::function<void(const std::string&, const HeatProfile&)>& fn) const;

  /// Fold `other` into this registry: counters and gauges add, histograms
  /// merge sample-wise, heat profiles fold block/opcode/edge counters.  Used
  /// to aggregate per-device registries into fleet-level metrics; `other`
  /// must not be mutated concurrently.
  void merge_from(const MetricsRegistry& other);

  void clear();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<HeatProfile>> heat_profiles_;
};

}  // namespace tytan::obs
