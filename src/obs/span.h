// Span-based causal tracing of the attestation protocol.
//
// A span is one typed phase of an attestation round (nonce-gen,
// challenge-deliver, rtm-measure, hmac-compute, report-return, verify,
// retry-backoff) under an attest-round root, stamped with begin/end
// simulated cycles plus host wall-time, and linked by a trace id (one per
// round, shared challenger<->prover) and a parent span id.  Fault-engine
// injections and recoveries annotate the innermost open span, so a faulted
// round is self-explaining from the span file alone.
//
// Zero simulated cost, same contract as the EventBus: the recorder never
// touches Machine::charge, and while disabled begin()/end()/annotate() are a
// single branch — enabling spans never changes a cycle count (pinned by
// bench_telemetry's on/off invariant).
//
// Determinism: one recorder per device, driven by one thread at a time (the
// fleet invariant); span ids are a per-recorder counter and the JSONL
// serialization carries no host-side field, so fleet span files are
// byte-identical whatever the worker-thread count.  Host wall-time is kept
// in memory only.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/events.h"

namespace tytan::obs {

enum class SpanPhase : std::uint8_t {
  kAttestRound = 0,   ///< root: one challenge->verify round incl. retries
  kNonceGen,          ///< challenger draws the single-use nonce
  kChallengeDeliver,  ///< nonce handed to the device (host-side, 0 cycles)
  kRtmMeasure,        ///< RTM measurement of the task image (at load time)
  kHmacCompute,       ///< device MACs (nonce | id_t) under Ka
  kReportReturn,      ///< report travels back to the challenger
  kVerify,            ///< golden-database + nonce-ledger verdict
  kRetryBackoff,      ///< exponential backoff before a re-attempt
};
inline constexpr std::size_t kNumSpanPhases = 8;

[[nodiscard]] std::string_view span_phase_name(SpanPhase phase);
[[nodiscard]] std::optional<SpanPhase> span_phase_from_name(std::string_view name);

enum class SpanOutcome : std::uint8_t {
  kOpen = 0,  ///< still open (only ever serialized on abnormal teardown)
  kOk,
  kFailed,
  kRetried,  ///< verified, but only after at least one retry
};

[[nodiscard]] std::string_view span_outcome_name(SpanOutcome outcome);

/// A fault-engine event attached to the span it happened inside.
struct SpanNote {
  std::uint64_t cycle = 0;
  EventKind kind = EventKind::kFaultInject;  ///< kFaultInject | kFaultRecover
  std::uint32_t a = 0;                       ///< FaultClass / RecoveryKind
  std::uint32_t b = 0;                       ///< clause detail (site, attempt)
};

struct Span {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;    ///< 1-based, per recorder; 0 is "no span"
  std::uint32_t parent_id = 0;  ///< 0 = root
  SpanPhase phase = SpanPhase::kAttestRound;
  std::int32_t task = -1;
  std::uint64_t begin_cycle = 0;
  std::uint64_t end_cycle = 0;
  // Host wall-time (steady-clock ns since the recorder was enabled).  Kept
  // in memory for live inspection; deliberately NOT serialized, so span
  // files stay byte-identical across thread counts.
  std::int64_t begin_host_ns = 0;
  std::int64_t end_host_ns = 0;
  SpanOutcome outcome = SpanOutcome::kOpen;
  std::vector<SpanNote> notes;
};

/// Per-device span recorder.  Disabled by default; while disabled every
/// entry point is one branch and begin() returns the null SpanId 0, which
/// end()/annotate() ignore.
class SpanRecorder {
 public:
  using SpanId = std::uint32_t;

  void set_clock(const std::uint64_t* clock) { clock_ = clock; }
  void set_device(std::uint32_t device) { device_ = device; }
  [[nodiscard]] std::uint32_t device() const { return device_; }

  void enable() {
    enabled_ = true;
    epoch_ = std::chrono::steady_clock::now();
  }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Open a root span for a new trace (one per attestation round).
  SpanId begin_trace(std::uint64_t trace_id, SpanPhase phase, std::int32_t task = -1);
  /// Open a child of the innermost open span, inheriting its trace id
  /// (trace 0 / parent 0 when nothing is open — e.g. rtm-measure at load).
  SpanId begin(SpanPhase phase, std::int32_t task = -1);
  /// Close `id`, stamping end cycle/host time.  No-op for SpanId 0.
  void end(SpanId id, SpanOutcome outcome);
  /// Attach a fault event to the innermost open span (no-op when none).
  void annotate(const Event& event);
  /// Innermost open span, 0 when none.
  [[nodiscard]] SpanId current() const { return open_.empty() ? 0 : open_.back(); }

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t size() const { return spans_.size(); }

  /// Called with every completed span (the Hub folds them into metrics).
  void set_on_end(std::function<void(const Span&)> on_end) {
    on_end_ = std::move(on_end);
  }

  /// Serialize every span as JSONL, in begin order, fixed key order, no
  /// host-side fields (see file comment on determinism).
  [[nodiscard]] std::string to_jsonl() const;

 private:
  [[nodiscard]] std::uint64_t now_cycles() const {
    return clock_ != nullptr ? *clock_ : 0;
  }
  [[nodiscard]] std::int64_t now_host_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  bool enabled_ = false;
  const std::uint64_t* clock_ = nullptr;
  std::uint32_t device_ = 0;
  std::vector<Span> spans_;   ///< span_id == index + 1
  std::vector<SpanId> open_;  ///< open-span stack, innermost at the back
  std::function<void(const Span&)> on_end_;
  std::chrono::steady_clock::time_point epoch_{};
};

/// Append one span as a JSON line (shared by SpanRecorder::to_jsonl and the
/// fleet's per-device concatenation).
void append_span_json(std::string& out, std::uint32_t device, const Span& span);

// ---------------------------------------------------------------------------
// Span-file reading (tytan-trace, tytan-top, tests)
// ---------------------------------------------------------------------------

struct ParsedSpan {
  std::uint32_t device = 0;
  std::uint64_t trace = 0;
  std::uint32_t span = 0;
  std::uint32_t parent = 0;
  std::string phase;
  std::int32_t task = -1;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t cycles = 0;
  std::string outcome;
  std::vector<std::string> note_kinds;  ///< "fault-inject" / "fault-recover"
};

struct SpanLog {
  std::vector<ParsedSpan> spans;
};

/// Parse a span JSONL stream.  Empty input parses to an empty log; a line
/// that is not a complete {"type":"span",...} object is a kCorrupt error
/// (truncated or foreign file).
Result<SpanLog> parse_spans_jsonl(std::string_view text);

/// Read + parse a span file from disk.
Result<SpanLog> read_spans_file(const std::string& path);

}  // namespace tytan::obs
