// Trace and metrics exporters.
//
// Chrome trace-event JSON (the "JSON Array Format" understood by Perfetto and
// chrome://tracing): one metadata/slice/instant object per line so the
// minimal reader in obs/trace_reader.h can re-parse it without a JSON
// library.  Timestamps are microseconds at the paper's 48 MHz clock; the raw
// cycle values ride along in `args` so no precision is lost.
//
// Layout in the trace viewer: pid 1 is the platform; tid 1 is the "platform"
// track (boot, scheduler, idle attribution); each task gets tid = handle + 2
// named after the task.  Run slices ("X") are derived from the
// dispatch/irq-enter/destroy event sequence; every raw event also appears as
// an instant ("i") on its task's track carrying {cycle, task, a, b}.
#pragma once

#include <string>

#include "common/status.h"
#include "obs/accounting.h"
#include "obs/event_bus.h"
#include "obs/hub.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace tytan::obs {

/// Microseconds at the modeled 48 MHz clock (sim::kClockHz).
inline double cycles_to_us(std::uint64_t cycles) {
  return static_cast<double>(cycles) / 48.0;
}

/// Trace-viewer tid for a task handle (tid 1 = platform track).
inline int trace_tid(std::int32_t task) { return task >= 0 ? task + 2 : 1; }

/// Serialize the bus contents as Chrome trace-event JSON.  When a profiler
/// is supplied, every sample appears as a "prof-sample" instant on its
/// task's track with the resolved frame in args; a metadata line carries
/// the bus's dropped-event count so readers can flag eviction.  When a span
/// recorder is supplied, every span appears as an async "b"/"e" pair keyed
/// by its trace id, so rounds render as nested timelines in Perfetto.
[[nodiscard]] std::string export_chrome_trace(const EventBus& bus,
                                              const SampleProfiler* profiler = nullptr,
                                              const SpanRecorder* spans = nullptr);

/// Write export_chrome_trace(bus, profiler, spans) to `path`.
Status write_chrome_trace(const std::string& path, const EventBus& bus,
                          const SampleProfiler* profiler = nullptr,
                          const SpanRecorder* spans = nullptr);

/// Plain-text timeline, one event per line:
///   "cycle 123456  [t0] sched-dispatch a=0 b=3"
[[nodiscard]] std::string export_timeline(const EventBus& bus);

/// Per-task accounting table + metrics summary (for --metrics).
[[nodiscard]] std::string format_accounting(const TaskAccounting& accounting,
                                            const EventBus& bus);
[[nodiscard]] std::string export_metrics_summary(const Hub& hub);

}  // namespace tytan::obs
