#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace tytan::obs {

void Histogram::observe(std::uint64_t value) {
  // Bucket i holds samples with value < 2^i: bucket 0 is {0}, bucket 1 is
  // {1}, bucket 2 is {2,3}, ... — i.e. bit_width(value).
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  buckets_[std::min(width, kNumBuckets)] += 1;
  ++count_;
  sum_ += value;
  min_ = (count_ == 1) ? value : std::min(min_, value);
  max_ = std::max(max_, value);
  if (exact_) {
    values_[value] += 1;
    if (values_.size() > kMaxExactValues) {
      exact_ = false;
      values_.clear();
    }
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (std::size_t i = 0; i <= kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = (count_ == 0) ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  if (exact_ && other.exact_) {
    for (const auto& [value, n] : other.values_) {
      values_[value] += n;
    }
    if (values_.size() > kMaxExactValues) {
      exact_ = false;
      values_.clear();
    }
  } else {
    exact_ = false;
    values_.clear();
  }
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with cumulative count >= ceil(p/100 * N).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  if (exact_) {
    std::uint64_t seen = 0;
    for (const auto& [value, n] : values_) {
      seen += n;
      if (seen >= rank) {
        return value;
      }
    }
    return max_;
  }
  // Approximate from the pow2 buckets: the upper bound of the bucket that
  // contains the rank, clamped to the observed max.
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      if (i == 0) {
        return 0;
      }
      if (i == kNumBuckets) {
        return max_;  // overflow bucket: only the max is known
      }
      return std::min(max_, (std::uint64_t{1} << i) - 1);
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

HeatProfile& MetricsRegistry::heat_profile(const std::string& name) {
  auto& slot = heat_profiles_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HeatProfile>();
  }
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const HeatProfile* MetricsRegistry::find_heat_profile(const std::string& name) const {
  const auto it = heat_profiles_.find(name);
  return it == heat_profiles_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::format_table() const {
  std::ostringstream os;
  std::size_t width = 0;
  for (const auto& [name, _] : counters_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, _] : gauges_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, _] : histograms_) {
    width = std::max(width, name.size());
  }
  auto pad = [&](const std::string& name) {
    os << "  " << name << std::string(width - name.size() + 2, ' ');
  };
  for (const auto& [name, c] : counters_) {
    pad(name);
    os << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    pad(name);
    os << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    pad(name);
    os << "count=" << h->count() << " mean=" << h->mean() << " min=" << h->min()
       << " max=" << h->max() << " p50=" << h->p50() << " p95=" << h->p95()
       << " p99=" << h->p99() << (h->exact_percentiles() ? "" : "~") << '\n';
  }
  return os.str();
}

void MetricsRegistry::visit_counters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  for (const auto& [name, c] : counters_) {
    fn(name, *c);
  }
}

void MetricsRegistry::visit_gauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, g] : gauges_) {
    fn(name, *g);
  }
}

void MetricsRegistry::visit_histograms(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  for (const auto& [name, h] : histograms_) {
    fn(name, *h);
  }
}

void MetricsRegistry::visit_heat_profiles(
    const std::function<void(const std::string&, const HeatProfile&)>& fn) const {
  for (const auto& [name, h] : heat_profiles_) {
    fn(name, *h);
  }
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  other.visit_counters(
      [this](const std::string& name, const Counter& c) { counter(name).inc(c.value()); });
  other.visit_gauges(
      [this](const std::string& name, const Gauge& g) { gauge(name).add(g.value()); });
  other.visit_histograms([this](const std::string& name, const Histogram& h) {
    histogram(name).merge(h);
  });
  other.visit_heat_profiles([this](const std::string& name, const HeatProfile& h) {
    heat_profile(name).merge(h);
  });
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  heat_profiles_.clear();
}

}  // namespace tytan::obs
