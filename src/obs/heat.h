// Execution observatory: guest heat maps, dispatch profiles, and host-cost
// attribution for the interpreter hot path.
//
// Two halves, same discipline as the sampling profiler (obs/profiler.h):
//
//   HeatProfile   — pure aggregatable data: per-basic-block execution
//                   counters keyed by physical PC, a per-opcode dispatch
//                   histogram with batched host-nanosecond attribution,
//                   EA-MPU check counters split by the rule that granted or
//                   denied the access, and dynamic indirect-branch edge
//                   profiles.  Owned by the MetricsRegistry (a fourth
//                   instrument kind) so fleet aggregation folds device
//                   profiles with the same merge_from discipline as
//                   counters/histograms.
//
//   HeatRecorder  — the transient hot-path state sim::Machine drives:
//                   open-block tracking, the dispatch-timing stride counter,
//                   and the static-leader set.  The recorder never touches
//                   the machine and never charges simulated cycles; disabled
//                   it costs the owner a single null-pointer check — cycle
//                   counts stay bit-identical with the observatory on.
//
// Block boundaries come from two sources that agree by construction: the
// static CFG recovered by src/analysis (block start offsets are registered
// as "leaders" at task load, so a fall-through into a static block boundary
// closes the runtime block exactly where the analyzer would), with runtime
// leader detection as the fallback (any non-sequential PC opens a block, so
// unanalyzed code still profiles).  Host-nanosecond fields are in-memory
// only unless explicitly exported — to_jsonl(false, ...) is byte-identical
// across thread counts and hosts, the property the fleet tests pin.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace tytan::obs {

/// Resolve a raw opcode byte to its mnemonic for export.  The obs layer must
/// not depend on src/isa (it links only tytan_common), so callers that want
/// real mnemonics pass a namer over isa::mnemonic; an empty function falls
/// back to "op3f"-style hex names.
using OpcodeNamer = std::function<std::string(std::uint8_t)>;

class HeatProfile {
 public:
  /// Serialized schema version ("heat-schema" in the tool suite version).
  static constexpr int kSchemaVersion = 1;

  /// EA-MPU check attribution buckets.  Non-negative classify() codes are
  /// rule-slot indices (sim/policy.h); the six negative codes get named
  /// buckets after the slots.  18 mirrors hw::EaMpu::kNumSlots — asserted
  /// where both are visible (src/hw can see obs, not vice versa).
  static constexpr std::size_t kMpuAccessKinds = 3;  ///< read / write / execute
  static constexpr std::size_t kMpuSlotBuckets = 18;
  static constexpr std::size_t kMpuOtherBuckets = 6;
  static constexpr std::size_t kMpuBuckets = kMpuSlotBuckets + kMpuOtherBuckets;

  struct Block {
    std::uint32_t end = 0;        ///< exclusive; max PC+4 seen in the block
    std::uint64_t entries = 0;    ///< times execution entered at `start`
    std::uint64_t instructions = 0;  ///< instructions dispatched inside
  };

  struct OpcodeStat {
    std::uint64_t count = 0;       ///< dispatches of this opcode
    std::uint64_t ns_total = 0;    ///< host ns over the sampled dispatches
    std::uint64_t ns_samples = 0;  ///< sampled dispatch count (TSC stride)
  };

  struct Edge {
    std::uint64_t count = 0;
    bool is_call = false;
  };

  struct Region {
    std::int32_t task = -1;
    std::string name;
    std::uint32_t base = 0;
    std::uint32_t size = 0;
  };

  /// Basic blocks keyed by physical start PC.
  std::map<std::uint32_t, Block> blocks;
  /// Indexed by the raw opcode byte of the dispatched instruction.
  std::array<OpcodeStat, 256> opcodes{};
  /// [access kind][bucket] — see bucket_for() / bucket_name().
  std::array<std::array<std::uint64_t, kMpuBuckets>, kMpuAccessKinds> mpu{};
  /// (site PC << 32 | target PC) -> dynamic edge profile.
  std::map<std::uint64_t, Edge> edges;
  /// Task code regions registered at load (PC -> task/name attribution).
  std::vector<Region> regions;

  [[nodiscard]] static constexpr std::uint64_t edge_key(std::uint32_t site,
                                                        std::uint32_t target) {
    return (static_cast<std::uint64_t>(site) << 32) | target;
  }
  /// classify() code -> mpu bucket index (out-of-range codes fold into the
  /// "unclassified" bucket so a foreign policy can never index out of bounds).
  [[nodiscard]] static std::size_t bucket_for(int code);
  [[nodiscard]] static std::string bucket_name(std::size_t bucket);
  [[nodiscard]] static std::string_view access_kind_name(std::size_t kind);

  /// Total guest instructions observed (sum of the opcode histogram; equals
  /// the sum of block instruction counters once the recorder is flushed).
  [[nodiscard]] std::uint64_t total_instructions() const;
  [[nodiscard]] std::uint64_t total_checks() const;

  /// Fold another device's profile into this one (fleet aggregation):
  /// blocks/opcodes/mpu/edges add, regions concatenate.
  void merge(const HeatProfile& other);

  /// JSONL export, fixed key order, records sorted by their map keys.  With
  /// `include_host_ns` false every field is a deterministic function of the
  /// simulated execution — byte-identical across hosts and thread counts.
  [[nodiscard]] std::string to_jsonl(bool include_host_ns,
                                     const OpcodeNamer& namer = {}) const;

  /// Collapsed-stack export ("region;block_0xADDR count" lines, sorted) for
  /// flamegraph.pl / speedscope, same shape as SampleProfiler::folded().
  [[nodiscard]] std::string folded() const;

  /// Name of the region containing `pc` ("?" when unattributed).
  [[nodiscard]] std::string_view region_name(std::uint32_t pc) const;

  void clear();
};

/// Parsed heat-profile file (tytan-objdump --heat, tytan-top --heat).  The
/// mnemonics written by the producer's namer ride along so consumers render
/// opcode names without an isa dependency.
struct HeatLog {
  int schema = 0;
  HeatProfile profile;
  std::array<std::string, 256> mnemonics{};

  [[nodiscard]] std::string opcode_name(std::uint8_t op) const;
};

Result<HeatLog> parse_heat_jsonl(std::string_view text);
Result<HeatLog> read_heat_file(const std::string& path);

class HeatRecorder {
 public:
  /// Dispatch-timing stride: one in kSampleStride dispatches is host-timed
  /// (power of two — the hot-path test is a mask).  Batched sampling keeps
  /// the enabled-mode overhead to one counter increment per instruction plus
  /// two steady_clock reads every 64th dispatch.
  static constexpr std::uint64_t kSampleStride = 64;

  /// Binds the recorder to a profile owned elsewhere (the machine's
  /// MetricsRegistry).  `time_dispatch` false skips host-timing entirely —
  /// the mode fleet devices use so aggregated profiles stay deterministic.
  explicit HeatRecorder(HeatProfile* profile, bool time_dispatch = true)
      : profile_(profile), time_dispatch_(time_dispatch) {}

  /// Hot path: one call per interpreted guest instruction, after decode and
  /// before dispatch.  Maintains the open block and the opcode histogram;
  /// returns true when this dispatch should be host-timed (attribute() with
  /// the measured nanoseconds afterwards).
  bool on_instruction(std::uint32_t pc, std::uint8_t op) {
    ++profile_->opcodes[op].count;
    if (!block_open_ || pc != last_pc_ + 4 || leaders_.contains(pc)) {
      if (block_open_) {
        close_block();
      }
      block_start_ = pc;
      block_open_ = true;
      block_insns_ = 0;
    }
    last_pc_ = pc;
    ++block_insns_;
    return time_dispatch_ && (++dispatches_ & (kSampleStride - 1)) == 0;
  }

  /// Record the host cost of one sampled dispatch of `op`.
  void attribute(std::uint8_t op, std::uint64_t ns) {
    profile_->opcodes[op].ns_total += ns;
    ++profile_->opcodes[op].ns_samples;
  }

  /// One indirect transfer (jmpr/callr) — fired at the same site as the
  /// machine's indirect-branch hook, before the transfer is attempted.
  void record_edge(std::uint32_t site, std::uint32_t target, bool is_call) {
    HeatProfile::Edge& edge = profile_->edges[HeatProfile::edge_key(site, target)];
    ++edge.count;
    edge.is_call = is_call;
  }

  /// One EA-MPU choke-point evaluation.  `access` is the sim::Access value,
  /// `code` the policy's classify() result (sim/policy.h constants).
  void count_check(int access, int code) {
    const auto kind = static_cast<std::size_t>(access);
    if (kind < HeatProfile::kMpuAccessKinds) {
      ++profile_->mpu[kind][HeatProfile::bucket_for(code)];
    }
  }

  /// Register a loaded task's code region for PC attribution.
  void add_region(std::int32_t task, std::string name, std::uint32_t base,
                  std::uint32_t size) {
    profile_->regions.push_back({task, std::move(name), base, size});
  }

  /// Register static basic-block leaders (CFG block start offsets relative
  /// to `base`): a sequential fall into a leader closes the runtime block,
  /// aligning runtime boundaries with the analyzer's.
  void add_leaders(std::uint32_t base, const std::vector<std::uint32_t>& offsets) {
    for (const std::uint32_t offset : offsets) {
      leaders_.insert(base + offset);
    }
  }

  /// Close the open block (idempotent).  Call before reading the profile.
  void flush() {
    if (block_open_) {
      close_block();
      block_open_ = false;
    }
  }

  [[nodiscard]] const HeatProfile& profile() const { return *profile_; }
  [[nodiscard]] HeatProfile& profile() { return *profile_; }
  [[nodiscard]] bool times_dispatch() const { return time_dispatch_; }

 private:
  void close_block() {
    HeatProfile::Block& block = profile_->blocks[block_start_];
    const std::uint32_t end = last_pc_ + 4;
    block.end = block.end < end ? end : block.end;
    ++block.entries;
    block.instructions += block_insns_;
  }

  HeatProfile* profile_;
  bool time_dispatch_;
  std::uint64_t dispatches_ = 0;
  bool block_open_ = false;
  std::uint32_t block_start_ = 0;
  std::uint32_t last_pc_ = 0;
  std::uint64_t block_insns_ = 0;
  std::unordered_set<std::uint32_t> leaders_;
};

}  // namespace tytan::obs
