#include "obs/accounting.h"

namespace tytan::obs {

void TaskAccounting::close_span(std::uint64_t cycle) {
  const std::uint64_t span = cycle >= span_start_ ? cycle - span_start_ : 0;
  span_start_ = cycle;
  accounted_ += span;
  if (task_ < 0 || bucket_ == Bucket::kPlatform) {
    platform_ += span;
    return;
  }
  TaskCycles& t = tasks_[task_];
  (bucket_ == Bucket::kRun ? t.run : t.irq) += span;
}

void TaskAccounting::on_event(const Event& event) {
  if (!enabled_) {
    return;
  }
  switch (event.kind) {
    case EventKind::kIrqEnter:
      // The interrupted task pays for its interruption (save + kernel path).
      switch_to(event.cycle, task_, task_ >= 0 ? Bucket::kIrq : Bucket::kPlatform);
      break;
    case EventKind::kSchedDispatch:
      // a = task kind: firmware tasks (a == 1) run immediately; guest tasks
      // are in switch-overhead until their context is restored.
      switch_to(event.cycle, event.task, event.a == 1 ? Bucket::kRun : Bucket::kIrq);
      break;
    case EventKind::kCtxRestore:
      switch_to(event.cycle, event.task, Bucket::kRun);
      break;
    case EventKind::kTaskDestroy:
      if (event.task == task_) {
        switch_to(event.cycle, -1, Bucket::kPlatform);
      }
      break;
    case EventKind::kFault:
      if (task_ >= 0) {
        ++tasks_[task_].faults;
      }
      break;
    default:
      break;
  }
}

}  // namespace tytan::obs
