// The observability hub: one EventBus + MetricsRegistry + TaskAccounting,
// wired together.  sim::Machine owns a Hub and points its clock at the cycle
// counter; every instrumented component emits through machine.obs().
//
// Disabled by default.  While disabled, emit() is a single branch and the
// metrics/accounting stay untouched — enabling observability never changes a
// simulated cycle count (the layer has no access to Machine::charge at all).
#pragma once

#include <cstdint>

#include "obs/accounting.h"
#include "obs/event_bus.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace tytan::obs {

class Hub {
 public:
  explicit Hub(std::size_t capacity = EventBus::kDefaultCapacity) : bus_(capacity) {
    wire_listener();
  }
  // The listener and span callback capture `this`, so moves must re-wire.
  Hub(Hub&& other) noexcept
      : bus_(std::move(other.bus_)),
        metrics_(std::move(other.metrics_)),
        accounting_(std::move(other.accounting_)),
        spans_(std::move(other.spans_)),
        clock_(other.clock_),
        ipc_send_cycle_(std::move(other.ipc_send_cycle_)) {
    wire_listener();
  }
  Hub& operator=(Hub&& other) noexcept {
    bus_ = std::move(other.bus_);
    metrics_ = std::move(other.metrics_);
    accounting_ = std::move(other.accounting_);
    spans_ = std::move(other.spans_);
    clock_ = other.clock_;
    ipc_send_cycle_ = std::move(other.ipc_send_cycle_);
    wire_listener();
    return *this;
  }

  void set_clock(const std::uint64_t* clock) {
    clock_ = clock;
    bus_.set_clock(clock);
    spans_.set_clock(clock);
  }

  /// Start recording events, metrics, and per-task accounting.
  void enable() {
    bus_.enable();
    accounting_.enable(now());
  }
  void disable() {
    accounting_.disable(now());
    bus_.disable();
  }
  [[nodiscard]] bool enabled() const { return bus_.enabled(); }

  void emit(EventKind kind, std::int32_t task = -1, std::uint32_t a = 0,
            std::uint32_t b = 0) {
    bus_.emit(kind, task, a, b);  // the bus listener fans out to metrics/accounting
  }

  /// Close the open accounting span (call before reading totals/exporting).
  void flush() { accounting_.flush(now()); }

  [[nodiscard]] EventBus& bus() { return bus_; }
  [[nodiscard]] const EventBus& bus() const { return bus_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TaskAccounting& accounting() { return accounting_; }
  [[nodiscard]] const TaskAccounting& accounting() const { return accounting_; }
  /// Attestation-span recorder (obs/span.h).  Separately enabled from the
  /// bus so spans stay free when dormant; completed spans fold into
  /// span.<phase>.cycles histograms, and fault-engine events annotate the
  /// innermost open span via the bus listener.
  [[nodiscard]] SpanRecorder& spans() { return spans_; }
  [[nodiscard]] const SpanRecorder& spans() const { return spans_; }

  /// Task currently charged by the accounting tracker (-1 = platform).
  [[nodiscard]] std::int32_t current_task() const { return accounting_.current_task(); }

 private:
  [[nodiscard]] std::uint64_t now() const { return clock_ != nullptr ? *clock_ : 0; }
  void update_metrics(const Event& event);
  void update_span_metrics(const Span& span);

  // The hub listens on its own bus so every emitter — whether it goes through
  // Hub::emit or holds the EventBus directly (rtos::Scheduler) — drives
  // metrics and accounting exactly once.  Fault events additionally annotate
  // the current attestation span, covering every injection site centrally.
  void wire_listener() {
    bus_.set_listener([this](const Event& event) {
      accounting_.on_event(event);
      update_metrics(event);
      if (event.kind == EventKind::kFaultInject ||
          event.kind == EventKind::kFaultRecover) {
        spans_.annotate(event);
      }
    });
    spans_.set_on_end([this](const Span& span) { update_span_metrics(span); });
  }

  EventBus bus_;
  MetricsRegistry metrics_;
  TaskAccounting accounting_;
  SpanRecorder spans_;
  const std::uint64_t* clock_ = nullptr;
  /// Receiver handle -> cycle of the in-flight kIpcSend, for the
  /// ipc.send_to_deliver.cycles latency histogram.
  std::map<std::int32_t, std::uint64_t> ipc_send_cycle_;
};

}  // namespace tytan::obs
