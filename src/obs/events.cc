#include "obs/events.h"

#include <array>

namespace tytan::obs {

namespace {
constexpr std::array<std::string_view, kNumEventKinds> kNames = {
    "sched-dispatch", "sched-preempt", "sched-yield",  "sched-block",
    "sched-wake",     "sched-tick",    "task-create",  "task-destroy",
    "irq-enter",      "fault",         "ctx-save",     "ctx-wipe",
    "ctx-restore",    "ipc-send",      "ipc-deliver",  "ipc-reject",
    "ipc-shm-grant",  "mpu-config",    "mpu-reject",   "mpu-clear",
    "rtm-begin",      "rtm-hash-block", "rtm-done",    "load-begin",
    "load-phase",     "load-done",     "seal-store",   "seal-unseal",
    "syscall",        "attest",       "fault-inject",  "fault-recover",
};
}  // namespace

std::string_view kind_name(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kNames.size() ? kNames[i] : std::string_view{"?"};
}

EventKind kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) {
      return static_cast<EventKind>(i);
    }
  }
  return EventKind::kNumKinds;
}

}  // namespace tytan::obs
