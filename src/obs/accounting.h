// Per-task cycle accounting driven by the event stream.
//
// Every simulated cycle between two *attribution switch points* belongs to
// exactly one target, so the books always balance:
//
//     platform + sum over tasks (run + irq)  ==  cycles since enable
//
// Switch points and their targets:
//   * irq-enter                -> (running task, irq)   — interrupt + context
//                                 save + kernel work charged to the task that
//                                 was interrupted (its "interrupt overhead")
//   * sched-dispatch firmware  -> (task, run)           — firmware tasks
//                                 (loader, RTM driver, idle) run host-side
//   * sched-dispatch guest     -> (task, irq)           — dispatch/restore
//                                 cost is context-switch overhead, not run time
//   * ctx-restore              -> (task, run)           — from here the task's
//                                 own instructions execute
//   * task-destroy of current  -> platform
//
// Before the first dispatch (secure boot, synchronous loads) everything is
// `platform`.  The tracker charges no simulated cycles and is exact by
// construction: tests assert the invariant above to the cycle.
#pragma once

#include <cstdint>
#include <map>

#include "obs/events.h"

namespace tytan::obs {

struct TaskCycles {
  std::uint64_t run = 0;   ///< cycles spent executing the task (guest code or
                           ///< firmware quanta)
  std::uint64_t irq = 0;   ///< interrupt, context-switch, and kernel overhead
                           ///< attributed to the task
  std::uint64_t faults = 0;  ///< fault events while the task was current
};

class TaskAccounting {
 public:
  /// Start (or restart) accounting at `cycle`; prior totals are kept.
  void enable(std::uint64_t cycle) {
    enabled_ = true;
    span_start_ = cycle;
    enabled_at_ = cycle;
    accounted_ = 0;
  }
  void disable(std::uint64_t cycle) {
    if (enabled_) {
      close_span(cycle);
      enabled_ = false;
    }
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Feed one event (the Hub wires this as the bus listener).
  void on_event(const Event& event);

  /// Close the open span up to `cycle` (call before reading totals).
  void flush(std::uint64_t cycle) {
    if (enabled_) {
      close_span(cycle);
    }
  }

  [[nodiscard]] const std::map<std::int32_t, TaskCycles>& tasks() const { return tasks_; }
  [[nodiscard]] std::uint64_t platform_cycles() const { return platform_; }
  /// Total cycles attributed so far == flush point - enable point.
  [[nodiscard]] std::uint64_t accounted_cycles() const { return accounted_; }
  /// Task the tracker currently attributes cycles to (-1 = platform).
  [[nodiscard]] std::int32_t current_task() const { return task_; }

 private:
  enum class Bucket : std::uint8_t { kPlatform, kRun, kIrq };

  void close_span(std::uint64_t cycle);
  void switch_to(std::uint64_t cycle, std::int32_t task, Bucket bucket) {
    close_span(cycle);
    task_ = task;
    bucket_ = bucket;
  }

  bool enabled_ = false;
  std::uint64_t span_start_ = 0;
  std::uint64_t enabled_at_ = 0;
  std::uint64_t accounted_ = 0;
  std::int32_t task_ = -1;
  Bucket bucket_ = Bucket::kPlatform;
  std::uint64_t platform_ = 0;
  std::map<std::int32_t, TaskCycles> tasks_;
};

}  // namespace tytan::obs
