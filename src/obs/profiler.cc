#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tytan::obs {

void SampleProfiler::take(std::uint64_t cycle, std::uint32_t pc, std::int32_t task) {
  // Schedule the next sample one whole interval past *this* one, so a long
  // firmware quantum that skips several due points still yields one sample.
  next_ = cycle + interval_;
  ++taken_;
  const Sample sample{cycle, pc, task};
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
  } else {
    ring_[head_] = sample;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

void SampleProfiler::add_region(std::int32_t task, std::string name,
                                std::uint32_t base, std::uint32_t size,
                                const std::map<std::string, std::uint32_t>& symbols) {
  Region region;
  region.name = std::move(name);
  region.base = base;
  region.size = size;
  region.symbols.reserve(symbols.size());
  for (const auto& [label, offset] : symbols) {
    region.symbols.emplace_back(offset, label);
  }
  std::sort(region.symbols.begin(), region.symbols.end());
  regions_[task] = std::move(region);
}

void SampleProfiler::remove_region(std::int32_t task) { regions_.erase(task); }

void SampleProfiler::add_global_symbol(std::uint32_t addr, std::string name) {
  global_symbols_[addr] = std::move(name);
}

SampleProfiler::Frame SampleProfiler::resolve(const Sample& sample) const {
  // Firmware entry points are exact-address matches: a resumable handler
  // parks EIP at its own address, so every sample inside it hits exactly.
  if (const auto fw = global_symbols_.find(sample.pc); fw != global_symbols_.end()) {
    return {"firmware", fw->second};
  }
  const auto region = regions_.find(sample.task);
  if (region != regions_.end() && sample.pc >= region->second.base &&
      sample.pc < region->second.base + region->second.size) {
    const Region& r = region->second;
    const std::uint32_t offset = sample.pc - r.base;
    // Greatest symbol offset <= pc offset.
    auto it = std::upper_bound(
        r.symbols.begin(), r.symbols.end(), offset,
        [](std::uint32_t o, const std::pair<std::uint32_t, std::string>& s) {
          return o < s.first;
        });
    if (it != r.symbols.begin()) {
      return {r.name, std::prev(it)->second};
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "+0x%x", offset);
    return {r.name, buf};
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", sample.pc);
  if (sample.task >= 0) {
    return {"task " + std::to_string(sample.task), buf};
  }
  return {"platform", buf};
}

std::vector<SampleProfiler::Sample> SampleProfiler::samples() const {
  std::vector<Sample> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string SampleProfiler::folded() const {
  std::map<std::string, std::uint64_t> counts;
  for (const Sample& sample : samples()) {
    const Frame frame = resolve(sample);
    counts[frame.task + ";" + frame.symbol] += 1;
  }
  std::ostringstream os;
  for (const auto& [stack, n] : counts) {
    os << stack << ' ' << n << '\n';
  }
  return os.str();
}

void SampleProfiler::clear() {
  ring_.clear();
  head_ = 0;
  taken_ = 0;
  dropped_ = 0;
}

}  // namespace tytan::obs
