#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tytan::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string us(std::uint64_t cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", cycles_to_us(cycles));
  return buf;
}

std::string task_label(const EventBus& bus, std::int32_t task) {
  if (task < 0) {
    return "platform";
  }
  const std::string_view name = bus.task_name(task);
  return name.empty() ? "task " + std::to_string(task) : std::string(name);
}

}  // namespace

std::string export_chrome_trace(const EventBus& bus, const SampleProfiler* profiler,
                                const SpanRecorder* spans) {
  const std::vector<Event> events = bus.snapshot();
  std::vector<std::string> lines;
  lines.reserve(events.size() * 2 + 8);

  lines.push_back(R"({"ph":"M","pid":1,"name":"process_name","args":{"name":"tytan"}})");
  {
    // Eviction metadata: readers surface a warning when dropped > 0.
    std::ostringstream os;
    os << R"({"ph":"M","pid":1,"name":"tytan_event_bus","args":{"recorded":)"
       << bus.size() << R"(,"dropped":)" << bus.dropped() << "}}";
    lines.push_back(os.str());
  }
  lines.push_back(R"({"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"platform"}})");
  for (const auto& [task, name] : bus.task_names()) {
    std::ostringstream os;
    os << R"({"ph":"M","pid":1,"tid":)" << trace_tid(task)
       << R"(,"name":"thread_name","args":{"name":")" << json_escape(name) << R"("}})";
    lines.push_back(os.str());
  }

  // Run slices: a dispatch opens a slice on the task's track; the next
  // dispatch, irq entry, or destruction of that task closes it.
  std::int32_t open_task = -1;
  std::uint64_t open_cycle = 0;
  auto close_slice = [&](std::uint64_t end_cycle) {
    if (open_task < 0 || end_cycle <= open_cycle) {
      open_task = -1;
      return;
    }
    std::ostringstream os;
    os << R"({"ph":"X","pid":1,"tid":)" << trace_tid(open_task) << R"(,"name":")"
       << json_escape(task_label(bus, open_task)) << R"(","cat":"run","ts":)"
       << us(open_cycle) << R"(,"dur":)" << us(end_cycle - open_cycle)
       << R"(,"args":{"cycle":)" << open_cycle << R"(,"dur_cycles":)"
       << (end_cycle - open_cycle) << "}}";
    lines.push_back(os.str());
    open_task = -1;
  };
  for (const Event& event : events) {
    switch (event.kind) {
      case EventKind::kSchedDispatch:
        close_slice(event.cycle);
        open_task = event.task;
        open_cycle = event.cycle;
        break;
      case EventKind::kIrqEnter:
        close_slice(event.cycle);
        break;
      case EventKind::kTaskDestroy:
        if (event.task == open_task) {
          close_slice(event.cycle);
        }
        break;
      default:
        break;
    }
  }
  if (!events.empty()) {
    close_slice(events.back().cycle);
  }

  for (const Event& event : events) {
    std::ostringstream os;
    os << R"({"ph":"i","pid":1,"tid":)" << trace_tid(event.task) << R"(,"name":")"
       << kind_name(event.kind) << R"(","cat":"event","s":"t","ts":)" << us(event.cycle)
       << R"(,"args":{"cycle":)" << event.cycle << R"(,"task":)" << event.task
       << R"(,"a":)" << event.a << R"(,"b":)" << event.b << "}}";
    lines.push_back(os.str());
  }

  if (profiler != nullptr) {
    for (const SampleProfiler::Sample& sample : profiler->samples()) {
      const SampleProfiler::Frame frame = profiler->resolve(sample);
      std::ostringstream os;
      os << R"({"ph":"i","pid":1,"tid":)" << trace_tid(sample.task)
         << R"(,"name":"prof-sample","cat":"prof","s":"t","ts":)" << us(sample.cycle)
         << R"(,"args":{"cycle":)" << sample.cycle << R"(,"pc":)" << sample.pc
         << R"(,"task":)" << sample.task << R"(,"frame":")"
         << json_escape(frame.task + ";" + frame.symbol) << R"("}})";
      lines.push_back(os.str());
    }
  }

  if (spans != nullptr) {
    // Async begin/end pairs: id = trace id, so every phase of a round nests
    // under the same async track; cat+name must match between "b" and "e".
    for (const Span& span : spans->spans()) {
      std::ostringstream begin;
      begin << R"({"ph":"b","cat":"span","id":)" << span.trace_id << R"(,"pid":1,"tid":)"
            << trace_tid(span.task) << R"(,"name":")" << span_phase_name(span.phase)
            << R"(","ts":)" << us(span.begin_cycle) << R"(,"args":{"cycle":)"
            << span.begin_cycle << R"(,"span":)" << span.span_id << R"(,"parent":)"
            << span.parent_id << "}}";
      lines.push_back(begin.str());
      std::ostringstream end;
      end << R"({"ph":"e","cat":"span","id":)" << span.trace_id << R"(,"pid":1,"tid":)"
          << trace_tid(span.task) << R"(,"name":")" << span_phase_name(span.phase)
          << R"(","ts":)" << us(span.end_cycle) << R"(,"args":{"cycle":)"
          << span.end_cycle << R"(,"outcome":")" << span_outcome_name(span.outcome)
          << R"("}})";
      lines.push_back(end.str());
    }
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    os << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  os << "]}\n";
  return os.str();
}

Status write_chrome_trace(const std::string& path, const EventBus& bus,
                          const SampleProfiler* profiler, const SpanRecorder* spans) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(Err::kUnavailable, "cannot open trace output '" + path + "'");
  }
  out << export_chrome_trace(bus, profiler, spans);
  if (!out.good()) {
    return make_error(Err::kInternal, "short write to '" + path + "'");
  }
  return Status::ok();
}

std::string export_timeline(const EventBus& bus) {
  std::ostringstream os;
  for (const Event& event : bus.snapshot()) {
    os << "cycle " << event.cycle << "  [" << task_label(bus, event.task) << "] "
       << kind_name(event.kind) << " a=" << event.a << " b=" << event.b << '\n';
  }
  return os.str();
}

std::string format_accounting(const TaskAccounting& accounting, const EventBus& bus) {
  std::ostringstream os;
  os << "  task                    run cycles     irq cycles   faults\n";
  std::uint64_t total = accounting.platform_cycles();
  for (const auto& [task, cycles] : accounting.tasks()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %-20s %13llu  %13llu  %7llu\n",
                  task_label(bus, task).c_str(),
                  static_cast<unsigned long long>(cycles.run),
                  static_cast<unsigned long long>(cycles.irq),
                  static_cast<unsigned long long>(cycles.faults));
    os << buf;
    total += cycles.run + cycles.irq;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  %-20s %13llu\n  %-20s %13llu\n", "platform",
                static_cast<unsigned long long>(accounting.platform_cycles()), "total",
                static_cast<unsigned long long>(total));
  os << buf;
  return os.str();
}

std::string export_metrics_summary(const Hub& hub) {
  std::ostringstream os;
  os << "--- per-task cycle accounting ---\n"
     << format_accounting(hub.accounting(), hub.bus()) << "--- event bus ---\n"
     << "  events recorded       " << hub.bus().size() << "\n"
     << "  events dropped        " << hub.bus().dropped()
     << (hub.bus().dropped() != 0 ? "   (ring full — oldest events evicted)" : "")
     << "\n--- metrics ---\n"
     << hub.metrics().format_table();
  return os.str();
}

}  // namespace tytan::obs
