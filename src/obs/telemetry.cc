#include "obs/telemetry.h"

#include <charconv>
#include <sstream>

namespace tytan::obs {

// ---------------------------------------------------------------------------
// Built-in rules
// ---------------------------------------------------------------------------

std::optional<std::string> AttestationFailureRule::check(const HealthSnapshot& cur,
                                                         const HealthSnapshot* prev,
                                                         const FleetBaseline&) {
  const std::uint64_t before = prev != nullptr ? prev->attest_failed : 0;
  if (cur.attest_failed <= before) {
    return std::nullopt;
  }
  std::ostringstream os;
  os << (cur.attest_failed - before) << " attestation failure(s), "
     << cur.attest_failed << " total";
  return os.str();
}

std::optional<std::string> FaultSpikeRule::check(const HealthSnapshot& cur,
                                                 const HealthSnapshot* prev,
                                                 const FleetBaseline& baseline) {
  const std::uint64_t before = prev != nullptr ? prev->faults : 0;
  const std::uint64_t delta = cur.faults - before;
  if (delta < min_delta_) {
    return std::nullopt;
  }
  // Fleet-wide behavior is not anomalous — but compare against what the
  // *other* devices averaged this round, not a mean this device is part of:
  // one bad device must not be able to hide inside a baseline it dominates.
  double peers = baseline.mean_fault_delta;
  if (baseline.devices > 1) {
    const double total =
        baseline.mean_fault_delta * static_cast<double>(baseline.devices);
    peers = (total - static_cast<double>(delta)) /
            static_cast<double>(baseline.devices - 1);
    if (peers < 0.0) {
      peers = 0.0;
    }
  }
  if (static_cast<double>(delta) <= factor_ * peers) {
    return std::nullopt;
  }
  std::ostringstream os;
  os << delta << " fault(s) this round vs peer mean " << peers;
  return os.str();
}

std::optional<std::string> StalledDeviceRule::check(const HealthSnapshot& cur,
                                                    const HealthSnapshot* prev,
                                                    const FleetBaseline&) {
  State& state = per_device_[cur.device];
  if (prev == nullptr || cur.cycle > prev->cycle) {
    state = {};
    return std::nullopt;
  }
  ++state.stalled;
  if (state.stalled < threshold_ || state.fired) {
    return std::nullopt;
  }
  state.fired = true;
  std::ostringstream os;
  os << "no cycle progress for " << state.stalled << " consecutive snapshots"
     << (cur.halted ? " (machine halted)" : "");
  return os.str();
}

std::optional<std::string> EventDropRule::check(const HealthSnapshot& cur,
                                                const HealthSnapshot* prev,
                                                const FleetBaseline&) {
  const std::uint64_t before = prev != nullptr ? prev->events_dropped : 0;
  const std::uint64_t delta = cur.events_dropped - before;
  if (delta < min_delta_) {
    return std::nullopt;
  }
  std::ostringstream os;
  os << delta << " event(s) evicted from the trace ring this round, "
     << cur.events_dropped << " total";
  return os.str();
}

// ---------------------------------------------------------------------------
// TelemetryHub
// ---------------------------------------------------------------------------

void TelemetryHub::add_rule(std::unique_ptr<AnomalyRule> rule) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(std::move(rule));
}

void TelemetryHub::install_default_rules(const AnomalyThresholds& thresholds) {
  add_rule(std::make_unique<AttestationFailureRule>());
  add_rule(std::make_unique<FaultSpikeRule>(thresholds.fault_spike_min,
                                            thresholds.fault_spike_factor));
  add_rule(std::make_unique<StalledDeviceRule>(thresholds.stall_snapshots));
  add_rule(std::make_unique<EventDropRule>(thresholds.event_drop_min));
}

void TelemetryHub::record_round(
    const std::vector<HealthSnapshot>& round,
    const std::function<const EventBus*(std::size_t)>& bus_of) {
  const std::lock_guard<std::mutex> lock(mutex_);
  FleetBaseline baseline;
  baseline.devices = round.size();
  if (!round.empty()) {
    std::uint64_t fault_delta = 0;
    std::uint64_t cycle_delta = 0;
    for (const HealthSnapshot& snapshot : round) {
      const auto it = previous_.find(snapshot.device);
      if (it != previous_.end()) {
        fault_delta += snapshot.faults - it->second.faults;
        cycle_delta += snapshot.cycle - it->second.cycle;
      } else {
        fault_delta += snapshot.faults;
        cycle_delta += snapshot.cycle;
      }
    }
    baseline.mean_fault_delta =
        static_cast<double>(fault_delta) / static_cast<double>(round.size());
    baseline.mean_cycle_delta =
        static_cast<double>(cycle_delta) / static_cast<double>(round.size());
  }
  for (std::size_t i = 0; i < round.size(); ++i) {
    record_locked(round[i], baseline, bus_of ? bus_of(i) : nullptr);
  }
}

void TelemetryHub::record(const HealthSnapshot& snapshot, const EventBus* bus) {
  const std::lock_guard<std::mutex> lock(mutex_);
  FleetBaseline baseline;
  baseline.devices = 1;
  const auto it = previous_.find(snapshot.device);
  const HealthSnapshot* prev = it != previous_.end() ? &it->second : nullptr;
  baseline.mean_fault_delta =
      static_cast<double>(snapshot.faults - (prev != nullptr ? prev->faults : 0));
  baseline.mean_cycle_delta =
      static_cast<double>(snapshot.cycle - (prev != nullptr ? prev->cycle : 0));
  record_locked(snapshot, baseline, bus);
}

void TelemetryHub::record_locked(const HealthSnapshot& snapshot,
                                 const FleetBaseline& baseline, const EventBus* bus) {
  const auto it = previous_.find(snapshot.device);
  const HealthSnapshot* prev = it != previous_.end() ? &it->second : nullptr;
  order_.emplace_back(false, snapshots_.size());
  snapshots_.push_back(snapshot);
  for (const std::unique_ptr<AnomalyRule>& rule : rules_) {
    if (auto message = rule->check(snapshot, prev, baseline)) {
      Anomaly anomaly;
      anomaly.device = snapshot.device;
      anomaly.rule = std::string(rule->name());
      anomaly.seq = snapshot.seq;
      anomaly.cycle = snapshot.cycle;
      anomaly.message = std::move(*message);
      if (bus != nullptr) {
        std::vector<Event> events = bus->snapshot();
        const std::size_t keep = std::min(flight_events_, events.size());
        anomaly.flight.assign(events.end() - static_cast<std::ptrdiff_t>(keep),
                              events.end());
      }
      order_.emplace_back(true, anomalies_.size());
      anomalies_.push_back(std::move(anomaly));
    }
  }
  previous_[snapshot.device] = snapshot;
}

std::vector<HealthSnapshot> TelemetryHub::snapshots() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_;
}

std::vector<Anomaly> TelemetryHub::anomalies() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return anomalies_;
}

std::map<std::uint32_t, HealthSnapshot> TelemetryHub::latest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return previous_;
}

namespace {

void append_snapshot_json(std::ostringstream& os, const HealthSnapshot& s) {
  os << R"({"type":"snapshot","device":)" << s.device << R"(,"seq":)" << s.seq
     << R"(,"cycle":)" << s.cycle << R"(,"instructions":)" << s.instructions
     << R"(,"faults":)" << s.faults << R"(,"fault_kills":)" << s.fault_kills
     << R"(,"interrupts":)" << s.interrupts << R"(,"syscalls":)" << s.syscalls
     << R"(,"ctx_switches":)" << s.ctx_switches << R"(,"ipc_delivered":)"
     << s.ipc_delivered << R"(,"ipc_rejects":)" << s.ipc_rejects
     << R"(,"attest_total":)" << s.attest_total << R"(,"attest_verified":)"
     << s.attest_verified << R"(,"attest_failed":)" << s.attest_failed
     << R"(,"events_dropped":)" << s.events_dropped << R"(,"faults_injected":)"
     << s.faults_injected << R"(,"recoveries":)" << s.fault_recoveries
     << R"(,"watchdog_restarts":)" << s.watchdog_restarts << R"(,"spans":)"
     << s.spans_recorded << R"(,"round_p99":)" << s.attest_round_p99
     << R"(,"halted":)" << (s.halted ? 1 : 0) << "}\n";
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

void append_anomaly_json(std::ostringstream& os, const Anomaly& a) {
  os << R"({"type":"anomaly","device":)" << a.device << R"(,"rule":")" << a.rule
     << R"(","seq":)" << a.seq << R"(,"cycle":)" << a.cycle << R"(,"message":")"
     << json_escape(a.message) << R"(","flight":[)";
  for (std::size_t i = 0; i < a.flight.size(); ++i) {
    const Event& e = a.flight[i];
    os << (i == 0 ? "" : ",") << R"({"cycle":)" << e.cycle << R"(,"kind":")"
       << kind_name(e.kind) << R"(","task":)" << e.task << R"(,"a":)" << e.a
       << R"(,"b":)" << e.b << "}";
  }
  os << "]}\n";
}

}  // namespace

std::string TelemetryHub::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [is_anomaly, index] : order_) {
    if (is_anomaly) {
      append_anomaly_json(os, anomalies_[index]);
    } else {
      append_snapshot_json(os, snapshots_[index]);
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// JSONL parsing (tytan-top, tests)
// ---------------------------------------------------------------------------

namespace {

std::int64_t find_int(std::string_view line, std::string_view key, std::int64_t fallback) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return fallback;
  }
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < line.size() &&
         (line[end] == '-' || (line[end] >= '0' && line[end] <= '9'))) {
    ++end;
  }
  std::int64_t value = fallback;
  std::from_chars(line.data() + begin, line.data() + end, value);
  return value;
}

std::string find_str(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return {};
  }
  const std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < line.size() && !(line[end] == '"' && line[end - 1] != '\\')) {
    ++end;
  }
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    if (line[i] == '\\' && i + 1 < end) {
      ++i;
    }
    out += line[i];
  }
  return out;
}

std::uint64_t u64(std::string_view line, std::string_view key) {
  return static_cast<std::uint64_t>(find_int(line, key, 0));
}

}  // namespace

Result<TelemetryLog> parse_telemetry_jsonl(std::string_view text) {
  TelemetryLog log;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const std::string type = find_str(line, "type");
    if (type == "snapshot") {
      HealthSnapshot s;
      s.device = static_cast<std::uint32_t>(u64(line, "device"));
      s.seq = u64(line, "seq");
      s.cycle = u64(line, "cycle");
      s.instructions = u64(line, "instructions");
      s.faults = u64(line, "faults");
      s.fault_kills = u64(line, "fault_kills");
      s.interrupts = u64(line, "interrupts");
      s.syscalls = u64(line, "syscalls");
      s.ctx_switches = u64(line, "ctx_switches");
      s.ipc_delivered = u64(line, "ipc_delivered");
      s.ipc_rejects = u64(line, "ipc_rejects");
      s.attest_total = u64(line, "attest_total");
      s.attest_verified = u64(line, "attest_verified");
      s.attest_failed = u64(line, "attest_failed");
      s.events_dropped = u64(line, "events_dropped");
      s.faults_injected = u64(line, "faults_injected");
      s.fault_recoveries = u64(line, "recoveries");
      s.watchdog_restarts = u64(line, "watchdog_restarts");
      s.spans_recorded = u64(line, "spans");
      s.attest_round_p99 = u64(line, "round_p99");
      s.halted = u64(line, "halted") != 0;
      log.snapshots.push_back(s);
    } else if (type == "anomaly") {
      TelemetryLog::ParsedAnomaly a;
      a.device = static_cast<std::uint32_t>(u64(line, "device"));
      a.rule = find_str(line, "rule");
      a.seq = u64(line, "seq");
      a.cycle = u64(line, "cycle");
      a.message = find_str(line, "message");
      // Count flight entries by their per-event "kind" keys.
      const std::size_t flight_pos = line.find("\"flight\":[");
      if (flight_pos != std::string::npos) {
        std::string_view rest = std::string_view(line).substr(flight_pos);
        std::size_t at = 0;
        while ((at = rest.find("\"kind\":", at)) != std::string_view::npos) {
          ++a.flight_count;
          at += 7;
        }
      }
      log.anomalies.push_back(a);
    } else {
      return make_error(Err::kCorrupt, "telemetry line has no recognized type: " + line);
    }
  }
  return log;
}

}  // namespace tytan::obs
