#include "obs/heat.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tytan::obs {

namespace {

// Negative classify() codes (sim/policy.h) in bucket order after the slots.
// Kept in sync by value, not by include — obs cannot depend on sim.
constexpr std::string_view kOtherBucketNames[HeatProfile::kMpuOtherBuckets] = {
    "denied", "unprotected", "implicit-self", "os-window", "unclassified",
    "no-policy"};

constexpr std::string_view kAccessKindNames[HeatProfile::kMpuAccessKinds] = {
    "read", "write", "execute"};

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string fallback_opcode_name(std::uint8_t op) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "op%02x", op);
  return buf;
}

}  // namespace

std::size_t HeatProfile::bucket_for(int code) {
  if (code >= 0 && static_cast<std::size_t>(code) < kMpuSlotBuckets) {
    return static_cast<std::size_t>(code);
  }
  // Negative codes are -1..-6 (denied..no-policy); anything else — a foreign
  // policy with its own convention — folds into "unclassified".
  const int index = -code - 1;
  if (index >= 0 && static_cast<std::size_t>(index) < kMpuOtherBuckets) {
    return kMpuSlotBuckets + static_cast<std::size_t>(index);
  }
  return kMpuSlotBuckets + 4;  // "unclassified"
}

std::string HeatProfile::bucket_name(std::size_t bucket) {
  if (bucket < kMpuSlotBuckets) {
    return "slot" + std::to_string(bucket);
  }
  if (bucket < kMpuBuckets) {
    return std::string(kOtherBucketNames[bucket - kMpuSlotBuckets]);
  }
  return "?";
}

std::string_view HeatProfile::access_kind_name(std::size_t kind) {
  return kind < kMpuAccessKinds ? kAccessKindNames[kind] : "?";
}

std::uint64_t HeatProfile::total_instructions() const {
  std::uint64_t total = 0;
  for (const OpcodeStat& stat : opcodes) {
    total += stat.count;
  }
  return total;
}

std::uint64_t HeatProfile::total_checks() const {
  std::uint64_t total = 0;
  for (const auto& row : mpu) {
    for (const std::uint64_t count : row) {
      total += count;
    }
  }
  return total;
}

void HeatProfile::merge(const HeatProfile& other) {
  for (const auto& [start, block] : other.blocks) {
    Block& mine = blocks[start];
    mine.end = std::max(mine.end, block.end);
    mine.entries += block.entries;
    mine.instructions += block.instructions;
  }
  for (std::size_t op = 0; op < opcodes.size(); ++op) {
    opcodes[op].count += other.opcodes[op].count;
    opcodes[op].ns_total += other.opcodes[op].ns_total;
    opcodes[op].ns_samples += other.opcodes[op].ns_samples;
  }
  for (std::size_t kind = 0; kind < kMpuAccessKinds; ++kind) {
    for (std::size_t bucket = 0; bucket < kMpuBuckets; ++bucket) {
      mpu[kind][bucket] += other.mpu[kind][bucket];
    }
  }
  for (const auto& [key, edge] : other.edges) {
    Edge& mine = edges[key];
    mine.count += edge.count;
    mine.is_call = edge.is_call;
  }
  regions.insert(regions.end(), other.regions.begin(), other.regions.end());
}

std::string_view HeatProfile::region_name(std::uint32_t pc) const {
  for (const Region& region : regions) {
    if (pc >= region.base && pc - region.base < region.size) {
      return region.name;
    }
  }
  return "?";
}

std::string HeatProfile::to_jsonl(bool include_host_ns,
                                  const OpcodeNamer& namer) const {
  std::ostringstream os;
  std::size_t used_opcodes = 0;
  for (const OpcodeStat& stat : opcodes) {
    used_opcodes += stat.count != 0 ? 1 : 0;
  }
  os << R"({"type":"heat-header","schema":)" << kSchemaVersion
     << R"(,"instructions":)" << total_instructions() << R"(,"blocks":)"
     << blocks.size() << R"(,"opcodes":)" << used_opcodes << R"(,"edges":)"
     << edges.size() << R"(,"regions":)" << regions.size() << "}\n";
  for (const Region& region : regions) {
    os << R"({"type":"region","task":)" << region.task << R"(,"name":")"
       << json_escape(region.name) << R"(","base":)" << region.base
       << R"(,"size":)" << region.size << "}\n";
  }
  for (const auto& [start, block] : blocks) {
    os << R"({"type":"block","start":)" << start << R"(,"end":)" << block.end
       << R"(,"entries":)" << block.entries << R"(,"instructions":)"
       << block.instructions << "}\n";
  }
  for (std::size_t op = 0; op < opcodes.size(); ++op) {
    const OpcodeStat& stat = opcodes[op];
    if (stat.count == 0) {
      continue;
    }
    const auto byte = static_cast<std::uint8_t>(op);
    os << R"({"type":"opcode","op":)" << op << R"(,"mnemonic":")"
       << json_escape(namer ? namer(byte) : fallback_opcode_name(byte))
       << R"(","count":)" << stat.count;
    if (include_host_ns) {
      os << R"(,"ns_total":)" << stat.ns_total << R"(,"ns_samples":)"
         << stat.ns_samples;
    }
    os << "}\n";
  }
  for (std::size_t kind = 0; kind < kMpuAccessKinds; ++kind) {
    for (std::size_t bucket = 0; bucket < kMpuBuckets; ++bucket) {
      if (mpu[kind][bucket] == 0) {
        continue;
      }
      os << R"({"type":"mpu","access":")" << access_kind_name(kind)
         << R"(","rule":")" << bucket_name(bucket) << R"(","count":)"
         << mpu[kind][bucket] << "}\n";
    }
  }
  for (const auto& [key, edge] : edges) {
    os << R"({"type":"edge","site":)" << (key >> 32) << R"(,"target":)"
       << (key & 0xFFFF'FFFFu) << R"(,"call":)" << (edge.is_call ? 1 : 0)
       << R"(,"count":)" << edge.count << "}\n";
  }
  return os.str();
}

std::string HeatProfile::folded() const {
  std::vector<std::string> lines;
  lines.reserve(blocks.size());
  for (const auto& [start, block] : blocks) {
    std::ostringstream line;
    line << region_name(start) << ";block_0x" << std::hex << start << std::dec
         << " " << block.instructions;
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void HeatProfile::clear() {
  blocks.clear();
  opcodes.fill(OpcodeStat{});
  for (auto& row : mpu) {
    row.fill(0);
  }
  edges.clear();
  regions.clear();
}

// ---------------------------------------------------------------------------
// JSONL parsing (tytan-objdump --heat, tytan-top --heat, tests)
// ---------------------------------------------------------------------------

namespace {

std::int64_t find_int(std::string_view line, std::string_view key,
                      std::int64_t fallback) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return fallback;
  }
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < line.size() &&
         (line[end] == '-' || (line[end] >= '0' && line[end] <= '9'))) {
    ++end;
  }
  std::int64_t value = fallback;
  std::from_chars(line.data() + begin, line.data() + end, value);
  return value;
}

std::string find_str(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return {};
  }
  const std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < line.size() && !(line[end] == '"' && line[end - 1] != '\\')) {
    ++end;
  }
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    if (line[i] == '\\' && i + 1 < end) {
      ++i;
    }
    out += line[i];
  }
  return out;
}

std::uint64_t u64(std::string_view line, std::string_view key) {
  return static_cast<std::uint64_t>(find_int(line, key, 0));
}

}  // namespace

std::string HeatLog::opcode_name(std::uint8_t op) const {
  return mnemonics[op].empty() ? fallback_opcode_name(op) : mnemonics[op];
}

Result<HeatLog> parse_heat_jsonl(std::string_view text) {
  HeatLog log;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const std::string type = find_str(line, "type");
    if (type == "heat-header") {
      log.schema = static_cast<int>(u64(line, "schema"));
      if (log.schema != HeatProfile::kSchemaVersion) {
        return make_error(Err::kInvalidArgument,
                          "heat profile schema " + std::to_string(log.schema) +
                              " (this build reads schema " +
                              std::to_string(HeatProfile::kSchemaVersion) + ")");
      }
    } else if (type == "region") {
      HeatProfile::Region region;
      region.task = static_cast<std::int32_t>(find_int(line, "task", -1));
      region.name = find_str(line, "name");
      region.base = static_cast<std::uint32_t>(u64(line, "base"));
      region.size = static_cast<std::uint32_t>(u64(line, "size"));
      log.profile.regions.push_back(std::move(region));
    } else if (type == "block") {
      const auto start = static_cast<std::uint32_t>(u64(line, "start"));
      HeatProfile::Block& block = log.profile.blocks[start];
      block.end = static_cast<std::uint32_t>(u64(line, "end"));
      block.entries = u64(line, "entries");
      block.instructions = u64(line, "instructions");
    } else if (type == "opcode") {
      const std::uint64_t op = u64(line, "op");
      if (op >= log.profile.opcodes.size()) {
        return make_error(Err::kCorrupt, "heat opcode out of range: " + line);
      }
      HeatProfile::OpcodeStat& stat = log.profile.opcodes[op];
      stat.count = u64(line, "count");
      stat.ns_total = u64(line, "ns_total");
      stat.ns_samples = u64(line, "ns_samples");
      log.mnemonics[op] = find_str(line, "mnemonic");
    } else if (type == "mpu") {
      const std::string access = find_str(line, "access");
      const std::string rule = find_str(line, "rule");
      std::size_t kind = HeatProfile::kMpuAccessKinds;
      for (std::size_t k = 0; k < HeatProfile::kMpuAccessKinds; ++k) {
        if (access == HeatProfile::access_kind_name(k)) {
          kind = k;
        }
      }
      std::size_t bucket = HeatProfile::kMpuBuckets;
      for (std::size_t b = 0; b < HeatProfile::kMpuBuckets; ++b) {
        if (rule == HeatProfile::bucket_name(b)) {
          bucket = b;
        }
      }
      if (kind == HeatProfile::kMpuAccessKinds ||
          bucket == HeatProfile::kMpuBuckets) {
        return make_error(Err::kCorrupt, "heat mpu line unrecognized: " + line);
      }
      log.profile.mpu[kind][bucket] = u64(line, "count");
    } else if (type == "edge") {
      const auto site = static_cast<std::uint32_t>(u64(line, "site"));
      const auto target = static_cast<std::uint32_t>(u64(line, "target"));
      HeatProfile::Edge& edge =
          log.profile.edges[HeatProfile::edge_key(site, target)];
      edge.count = u64(line, "count");
      edge.is_call = u64(line, "call") != 0;
    } else {
      return make_error(Err::kCorrupt, "heat line has no recognized type: " + line);
    }
  }
  return log;
}

Result<HeatLog> read_heat_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(Err::kNotFound, "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_heat_jsonl(buffer.str());
}

}  // namespace tytan::obs
