#include "obs/span.h"

#include <array>
#include <charconv>
#include <fstream>
#include <sstream>

namespace tytan::obs {

namespace {

constexpr std::array<std::string_view, kNumSpanPhases> kPhaseNames = {
    "attest-round", "nonce-gen",     "challenge-deliver", "rtm-measure",
    "hmac-compute", "report-return", "verify",            "retry-backoff",
};

constexpr std::array<std::string_view, 4> kOutcomeNames = {
    "open",
    "ok",
    "failed",
    "retried",
};

}  // namespace

std::string_view span_phase_name(SpanPhase phase) {
  const auto index = static_cast<std::size_t>(phase);
  return index < kPhaseNames.size() ? kPhaseNames[index] : "?";
}

std::optional<SpanPhase> span_phase_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kPhaseNames.size(); ++i) {
    if (kPhaseNames[i] == name) {
      return static_cast<SpanPhase>(i);
    }
  }
  return std::nullopt;
}

std::string_view span_outcome_name(SpanOutcome outcome) {
  const auto index = static_cast<std::size_t>(outcome);
  return index < kOutcomeNames.size() ? kOutcomeNames[index] : "?";
}

// ---------------------------------------------------------------------------
// SpanRecorder
// ---------------------------------------------------------------------------

SpanRecorder::SpanId SpanRecorder::begin_trace(std::uint64_t trace_id, SpanPhase phase,
                                               std::int32_t task) {
  if (!enabled_) {
    return 0;
  }
  Span span;
  span.trace_id = trace_id;
  span.span_id = static_cast<SpanId>(spans_.size() + 1);
  span.parent_id = current();
  span.phase = phase;
  span.task = task;
  span.begin_cycle = now_cycles();
  span.begin_host_ns = now_host_ns();
  spans_.push_back(std::move(span));
  open_.push_back(spans_.back().span_id);
  return spans_.back().span_id;
}

SpanRecorder::SpanId SpanRecorder::begin(SpanPhase phase, std::int32_t task) {
  if (!enabled_) {
    return 0;
  }
  const SpanId parent = current();
  const std::uint64_t trace = parent != 0 ? spans_[parent - 1].trace_id : 0;
  return begin_trace(trace, phase, task);
}

void SpanRecorder::end(SpanId id, SpanOutcome outcome) {
  if (!enabled_ || id == 0 || id > spans_.size()) {
    return;
  }
  Span& span = spans_[id - 1];
  if (span.outcome != SpanOutcome::kOpen) {
    return;  // already closed
  }
  span.end_cycle = now_cycles();
  span.end_host_ns = now_host_ns();
  span.outcome = outcome;
  // Usually the innermost open span; search from the back so an out-of-order
  // close (a task restart mid-measurement) still unwinds correctly.
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i] == id) {
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (on_end_) {
    on_end_(span);
  }
}

void SpanRecorder::annotate(const Event& event) {
  if (!enabled_ || open_.empty()) {
    return;
  }
  Span& span = spans_[open_.back() - 1];
  span.notes.push_back(SpanNote{event.cycle, event.kind, event.a, event.b});
}

void append_span_json(std::string& out, std::uint32_t device, const Span& span) {
  std::ostringstream os;
  os << R"({"type":"span","device":)" << device << R"(,"trace":)" << span.trace_id
     << R"(,"span":)" << span.span_id << R"(,"parent":)" << span.parent_id
     << R"(,"phase":")" << span_phase_name(span.phase) << R"(","task":)" << span.task
     << R"(,"begin":)" << span.begin_cycle << R"(,"end":)" << span.end_cycle
     << R"(,"cycles":)" << (span.end_cycle - span.begin_cycle) << R"(,"outcome":")"
     << span_outcome_name(span.outcome) << R"(","notes":[)";
  for (std::size_t i = 0; i < span.notes.size(); ++i) {
    const SpanNote& note = span.notes[i];
    os << (i == 0 ? "" : ",") << R"({"cycle":)" << note.cycle << R"(,"kind":")"
       << kind_name(note.kind) << R"(","a":)" << note.a << R"(,"b":)" << note.b << "}";
  }
  os << "]}\n";
  out += os.str();
}

std::string SpanRecorder::to_jsonl() const {
  std::string out;
  for (const Span& span : spans_) {
    append_span_json(out, device_, span);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Span-file reading
// ---------------------------------------------------------------------------

namespace {

std::int64_t find_int(std::string_view line, std::string_view key, std::int64_t fallback) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return fallback;
  }
  const std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < line.size() &&
         (line[end] == '-' || (line[end] >= '0' && line[end] <= '9'))) {
    ++end;
  }
  std::int64_t value = fallback;
  std::from_chars(line.data() + begin, line.data() + end, value);
  return value;
}

std::uint64_t find_u64(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return 0;
  }
  const std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') {
    ++end;
  }
  std::uint64_t value = 0;
  std::from_chars(line.data() + begin, line.data() + end, value);
  return value;
}

std::string find_str(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) {
    return {};
  }
  const std::size_t begin = pos + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string_view::npos) {
    return {};
  }
  return std::string(line.substr(begin, end - begin));
}

}  // namespace

Result<SpanLog> parse_spans_jsonl(std::string_view text) {
  SpanLog log;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line.front() != '{' || line.back() != '}') {
      return make_error(Err::kCorrupt, "span line " + std::to_string(line_no) +
                                           " is truncated or not JSONL");
    }
    if (find_str(line, "type") != "span") {
      return make_error(Err::kCorrupt, "span line " + std::to_string(line_no) +
                                           " has no span record type");
    }
    ParsedSpan s;
    s.device = static_cast<std::uint32_t>(find_u64(line, "device"));
    s.trace = find_u64(line, "trace");
    s.span = static_cast<std::uint32_t>(find_u64(line, "span"));
    s.parent = static_cast<std::uint32_t>(find_u64(line, "parent"));
    s.phase = find_str(line, "phase");
    s.task = static_cast<std::int32_t>(find_int(line, "task", -1));
    s.begin = find_u64(line, "begin");
    s.end = find_u64(line, "end");
    s.cycles = find_u64(line, "cycles");
    s.outcome = find_str(line, "outcome");
    if (s.phase.empty() || s.outcome.empty() || s.span == 0) {
      return make_error(Err::kCorrupt, "span line " + std::to_string(line_no) +
                                           " is missing required span fields");
    }
    // Note kinds, scanned inside the "notes" array only.
    const std::size_t notes_pos = line.find("\"notes\":[");
    if (notes_pos != std::string::npos) {
      std::string_view rest = std::string_view(line).substr(notes_pos);
      std::size_t at = 0;
      while ((at = rest.find("\"kind\":\"", at)) != std::string_view::npos) {
        at += 8;
        const std::size_t stop = rest.find('"', at);
        if (stop == std::string_view::npos) {
          break;
        }
        s.note_kinds.emplace_back(rest.substr(at, stop - at));
        at = stop;
      }
    }
    log.spans.push_back(std::move(s));
  }
  return log;
}

Result<SpanLog> read_spans_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(Err::kUnavailable, "cannot open span file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spans_jsonl(buffer.str());
}

}  // namespace tytan::obs
