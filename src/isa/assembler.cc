#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/isa.h"

namespace tytan::isa {

namespace {

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// Strip a trailing comment, respecting a double-quoted string (for .ascii).
std::string_view strip_comment(std::string_view line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string && (c == ';' || c == '#')) {
      return line.substr(0, i);
    }
  }
  return line;
}

std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  bool in_string = false;
  std::string current;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (c == ',' && !in_string) {
      out.emplace_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const std::string_view last = trim(current);
  if (!last.empty() || !out.empty()) {
    out.emplace_back(last);
  }
  if (!out.empty() && out.back().empty()) {
    out.pop_back();
  }
  return out;
}

std::optional<unsigned> parse_register(std::string_view tok) {
  const std::string t = lower(trim(tok));
  if (t == "sp") {
    return kSpIndex;
  }
  if (t.size() >= 2 && t[0] == 'r') {
    unsigned idx = 0;
    const auto [ptr, ec] = std::from_chars(t.data() + 1, t.data() + t.size(), idx);
    if (ec == std::errc{} && ptr == t.data() + t.size() && idx < kNumGprs) {
      return idx;
    }
  }
  return std::nullopt;
}

std::optional<std::int64_t> parse_number(std::string_view tok) {
  std::string t(trim(tok));
  if (t.empty()) {
    return std::nullopt;
  }
  bool negative = false;
  std::size_t pos = 0;
  if (t[0] == '-') {
    negative = true;
    pos = 1;
  } else if (t[0] == '+') {
    pos = 1;
  }
  int base = 10;
  if (t.size() > pos + 1 && t[pos] == '0' && (t[pos + 1] == 'x' || t[pos + 1] == 'X')) {
    base = 16;
    pos += 2;
  }
  if (pos >= t.size()) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(t.data() + pos, t.data() + t.size(), value, base);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    return std::nullopt;
  }
  return negative ? -static_cast<std::int64_t>(value) : static_cast<std::int64_t>(value);
}

bool valid_symbol(std::string_view tok) {
  if (tok.empty()) {
    return false;
  }
  if (!std::isalpha(static_cast<unsigned char>(tok[0])) && tok[0] != '_' && tok[0] != '.') {
    return false;
  }
  return std::all_of(tok.begin() + 1, tok.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
  });
}

/// Memory operand "[reg]", "[reg+imm]", "[reg-imm]".
struct MemOperand {
  unsigned reg = 0;
  std::int32_t disp = 0;
};

std::optional<MemOperand> parse_mem(std::string_view tok) {
  std::string_view t = trim(tok);
  if (t.size() < 3 || t.front() != '[' || t.back() != ']') {
    return std::nullopt;
  }
  t = trim(t.substr(1, t.size() - 2));
  std::size_t split = t.find_first_of("+-");
  MemOperand mem;
  if (split == std::string_view::npos) {
    const auto reg = parse_register(t);
    if (!reg) {
      return std::nullopt;
    }
    mem.reg = *reg;
    return mem;
  }
  const auto reg = parse_register(t.substr(0, split));
  if (!reg) {
    return std::nullopt;
  }
  mem.reg = *reg;
  const char sign = t[split];
  const auto disp = parse_number(t.substr(split + 1));
  if (!disp) {
    return std::nullopt;
  }
  mem.disp = static_cast<std::int32_t>(sign == '-' ? -*disp : *disp);
  return mem;
}

std::optional<std::string> parse_string_literal(std::string_view tok) {
  const std::string_view t = trim(tok);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
    return std::nullopt;
  }
  std::string out;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    char c = t[i];
    if (c == '\\' && i + 2 < t.size()) {
      ++i;
      switch (t[i]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default: return std::nullopt;
      }
    }
    out.push_back(c);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Statement model
// ---------------------------------------------------------------------------

enum class OperandSig {
  kNone,        // ret, iret, nop, hlt, cli, sti
  kRdRa,        // mov/add/...: rd, ra
  kRdImm,       // movi/addi/...: rd, imm
  kRd,          // push/pop/rdcyc
  kRa,          // jmpr/callr
  kMemLoad,     // ldw/ldb: rd, [ra+imm]
  kMemStore,    // stw/stb: rd, [ra+imm]
  kBranch,      // jmp/jz/...: label or numeric displacement
  kImm,         // int
};

struct MnemonicInfo {
  Opcode opcode;
  OperandSig sig;
};

const std::map<std::string, MnemonicInfo>& mnemonic_table() {
  static const std::map<std::string, MnemonicInfo> table = {
      {"nop", {Opcode::kNop, OperandSig::kNone}},
      {"mov", {Opcode::kMov, OperandSig::kRdRa}},
      {"movi", {Opcode::kMovi, OperandSig::kRdImm}},
      {"moviu", {Opcode::kMoviu, OperandSig::kRdImm}},
      {"movhi", {Opcode::kMovhi, OperandSig::kRdImm}},
      {"add", {Opcode::kAdd, OperandSig::kRdRa}},
      {"addi", {Opcode::kAddi, OperandSig::kRdImm}},
      {"sub", {Opcode::kSub, OperandSig::kRdRa}},
      {"subi", {Opcode::kSubi, OperandSig::kRdImm}},
      {"and", {Opcode::kAnd, OperandSig::kRdRa}},
      {"andi", {Opcode::kAndi, OperandSig::kRdImm}},
      {"or", {Opcode::kOr, OperandSig::kRdRa}},
      {"ori", {Opcode::kOri, OperandSig::kRdImm}},
      {"xor", {Opcode::kXor, OperandSig::kRdRa}},
      {"shl", {Opcode::kShl, OperandSig::kRdRa}},
      {"shli", {Opcode::kShli, OperandSig::kRdImm}},
      {"shr", {Opcode::kShr, OperandSig::kRdRa}},
      {"shri", {Opcode::kShri, OperandSig::kRdImm}},
      {"mul", {Opcode::kMul, OperandSig::kRdRa}},
      {"cmp", {Opcode::kCmp, OperandSig::kRdRa}},
      {"cmpi", {Opcode::kCmpi, OperandSig::kRdImm}},
      {"ldw", {Opcode::kLdw, OperandSig::kMemLoad}},
      {"stw", {Opcode::kStw, OperandSig::kMemStore}},
      {"ldb", {Opcode::kLdb, OperandSig::kMemLoad}},
      {"stb", {Opcode::kStb, OperandSig::kMemStore}},
      {"jmp", {Opcode::kJmp, OperandSig::kBranch}},
      {"jz", {Opcode::kJz, OperandSig::kBranch}},
      {"jnz", {Opcode::kJnz, OperandSig::kBranch}},
      {"jlt", {Opcode::kJlt, OperandSig::kBranch}},
      {"jge", {Opcode::kJge, OperandSig::kBranch}},
      {"jc", {Opcode::kJc, OperandSig::kBranch}},
      {"jnc", {Opcode::kJnc, OperandSig::kBranch}},
      {"jmpr", {Opcode::kJmpr, OperandSig::kRa}},
      {"call", {Opcode::kCall, OperandSig::kBranch}},
      {"callr", {Opcode::kCallr, OperandSig::kRa}},
      {"ret", {Opcode::kRet, OperandSig::kNone}},
      {"push", {Opcode::kPush, OperandSig::kRd}},
      {"pop", {Opcode::kPop, OperandSig::kRd}},
      {"int", {Opcode::kInt, OperandSig::kImm}},
      {"iret", {Opcode::kIret, OperandSig::kNone}},
      {"hlt", {Opcode::kHlt, OperandSig::kNone}},
      {"cli", {Opcode::kCli, OperandSig::kNone}},
      {"sti", {Opcode::kSti, OperandSig::kNone}},
      {"rdcyc", {Opcode::kRdcyc, OperandSig::kRd}},
  };
  return table;
}

struct Statement {
  int line = 0;
  std::string mnemonic;              // lowercase; empty for pure-label lines
  std::vector<std::string> operands;
  std::vector<std::string> labels;   // labels defined at this statement
};

// ---------------------------------------------------------------------------
// Assembler core
// ---------------------------------------------------------------------------

class Assembler {
 public:
  Result<ObjectFile> run(std::string_view source) {
    if (Status s = parse(source); !s.is_ok()) {
      return s;
    }
    if (Status s = layout(); !s.is_ok()) {
      return s;
    }
    if (Status s = emit(); !s.is_ok()) {
      return s;
    }
    // Pad trailing data to a whole instruction word so the image is always
    // word-granular (the TBF reader and the static verifier require it).
    while (object_.image.size() % kInstrSize != 0) {
      object_.image.push_back(0);
    }
    std::sort(object_.relocs.begin(), object_.relocs.end(),
              [](const Relocation& a, const Relocation& b) { return a.offset < b.offset; });
    object_.symbols = symbols_;
    return std::move(object_);
  }

 private:
  Status error(int line, std::string_view what) {
    std::ostringstream os;
    os << "line " << line << ": " << what;
    return make_error(Err::kInvalidArgument, os.str());
  }

  Status parse(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    std::vector<std::string> pending_labels;
    while (pos <= source.size()) {
      const std::size_t nl = source.find('\n', pos);
      std::string_view raw =
          source.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
      pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;
      ++line_no;

      std::string_view body = trim(strip_comment(raw));
      // Peel off leading labels ("foo: bar: movi r0, 1").
      while (true) {
        const std::size_t colon = body.find(':');
        if (colon == std::string_view::npos) {
          break;
        }
        const std::string_view candidate = trim(body.substr(0, colon));
        if (!valid_symbol(candidate)) {
          break;
        }
        pending_labels.emplace_back(candidate);
        body = trim(body.substr(colon + 1));
      }
      if (body.empty()) {
        continue;
      }
      Statement st;
      st.line = line_no;
      st.labels = std::move(pending_labels);
      pending_labels.clear();
      const std::size_t sp = body.find_first_of(" \t");
      st.mnemonic = lower(body.substr(0, sp));
      if (sp != std::string_view::npos) {
        st.operands = split_operands(body.substr(sp + 1));
      }
      statements_.push_back(std::move(st));
    }
    if (!pending_labels.empty()) {
      Statement st;
      st.line = line_no;
      st.labels = std::move(pending_labels);
      statements_.push_back(std::move(st));
    }
    return Status::ok();
  }

  /// Size in bytes of a statement (pass 1).
  Result<std::uint32_t> statement_size(const Statement& st) {
    const std::string& m = st.mnemonic;
    if (m.empty()) {
      return std::uint32_t{0};
    }
    if (m == "li") {
      return std::uint32_t{2 * kInstrSize};
    }
    if (m == "not") {
      return std::uint32_t{2 * kInstrSize};  // pseudo: expands to two instructions
    }
    if (mnemonic_table().contains(m)) {
      return std::uint32_t{kInstrSize};
    }
    if (m == ".word") {
      return static_cast<std::uint32_t>(4 * std::max<std::size_t>(1, st.operands.size()));
    }
    if (m == ".byte") {
      return static_cast<std::uint32_t>(std::max<std::size_t>(1, st.operands.size()));
    }
    if (m == ".space") {
      if (st.operands.size() != 1) {
        return error(st.line, ".space takes one operand");
      }
      const auto n = resolve_const(st.operands[0]);
      if (!n || *n < 0) {
        return error(st.line, ".space operand must be a non-negative constant");
      }
      return static_cast<std::uint32_t>(*n);
    }
    if (m == ".ascii") {
      if (st.operands.size() != 1) {
        return error(st.line, ".ascii takes one string operand");
      }
      const auto text = parse_string_literal(st.operands[0]);
      if (!text) {
        return error(st.line, "malformed string literal");
      }
      return static_cast<std::uint32_t>(text->size());
    }
    if (m == ".align") {
      if (st.operands.size() != 1) {
        return error(st.line, ".align takes one operand");
      }
      const auto n = resolve_const(st.operands[0]);
      if (!n || *n <= 0) {
        return error(st.line, ".align operand must be a positive constant");
      }
      const auto align = static_cast<std::uint32_t>(*n);
      const std::uint32_t rem = cursor_ % align;
      return rem == 0 ? 0 : align - rem;
    }
    // Non-size directives.
    if (m == ".equ" || m == ".entry" || m == ".msg" || m == ".stack" || m == ".bss" ||
        m == ".secure") {
      return std::uint32_t{0};
    }
    return error(st.line, "unknown mnemonic or directive '" + m + "'");
  }

  std::optional<std::int64_t> resolve_const(std::string_view tok) {
    if (const auto n = parse_number(tok)) {
      return n;
    }
    const auto it = equ_.find(std::string(trim(tok)));
    if (it != equ_.end()) {
      return it->second;
    }
    return std::nullopt;
  }

  /// Instructions always sit on a word boundary; data directives may leave
  /// the cursor unaligned, so code following them is padded (with zero words,
  /// which decode as nop).  layout() and emit() must agree on this.
  static bool is_instruction(const std::string& mnemonic) {
    return mnemonic == "li" || mnemonic == "not" ||
           mnemonic_table().contains(mnemonic);
  }

  Status layout() {
    cursor_ = 0;
    for (const Statement& st : statements_) {
      if (is_instruction(st.mnemonic)) {
        cursor_ = (cursor_ + kInstrSize - 1) & ~(kInstrSize - 1);
      }
      for (const std::string& label : st.labels) {
        if (symbols_.contains(label) || equ_.contains(label)) {
          return error(st.line, "duplicate symbol '" + label + "'");
        }
        symbols_[label] = cursor_;
      }
      if (st.mnemonic == ".equ") {
        if (st.operands.size() != 2) {
          return error(st.line, ".equ takes NAME, value");
        }
        const std::string name(trim(st.operands[0]));
        if (!valid_symbol(name) || symbols_.contains(name) || equ_.contains(name)) {
          return error(st.line, "bad or duplicate .equ name '" + name + "'");
        }
        const auto value = resolve_const(st.operands[1]);
        if (!value) {
          return error(st.line, ".equ value must be a constant");
        }
        equ_[name] = *value;
        continue;
      }
      auto size = statement_size(st);
      if (!size.is_ok()) {
        return size.status();
      }
      cursor_ += size.value();
    }
    return Status::ok();
  }

  /// Resolve a symbol-or-number operand; for symbols returns the offset and
  /// marks `is_symbol`.  Supports `symbol+const` / `symbol-const` expressions
  /// (e.g. `li r2, buffer+4`).
  Result<std::int64_t> value_operand(const Statement& st, std::string_view tok,
                                     bool* is_symbol) {
    *is_symbol = false;
    if (const auto n = resolve_const(tok)) {
      return *n;
    }
    std::string name(trim(tok));
    std::int64_t offset = 0;
    // Split a trailing +const / -const (the sign must not be the first char,
    // which would be a plain signed number already handled above).
    const std::size_t sign = name.find_first_of("+-", 1);
    if (sign != std::string::npos) {
      const auto rhs = resolve_const(std::string_view(name).substr(sign + 1));
      if (rhs.has_value()) {
        offset = name[sign] == '-' ? -*rhs : *rhs;
        name = std::string(trim(std::string_view(name).substr(0, sign)));
      }
    }
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) {
      return error(st.line, "undefined symbol '" + name + "'");
    }
    *is_symbol = true;
    return static_cast<std::int64_t>(it->second) + offset;
  }

  void emit_word(std::uint32_t w) { append_le32(object_.image, w); }

  Status emit_instruction(const Statement& st, const MnemonicInfo& info) {
    Instruction instr;
    instr.opcode = info.opcode;
    const auto& ops = st.operands;
    auto need = [&](std::size_t n) -> Status {
      if (ops.size() != n) {
        return error(st.line, "expected " + std::to_string(n) + " operand(s)");
      }
      return Status::ok();
    };

    switch (info.sig) {
      case OperandSig::kNone: {
        if (Status s = need(0); !s.is_ok()) return s;
        break;
      }
      case OperandSig::kRdRa: {
        if (Status s = need(2); !s.is_ok()) return s;
        const auto rd = parse_register(ops[0]);
        const auto ra = parse_register(ops[1]);
        if (!rd || !ra) return error(st.line, "expected two registers");
        instr.rd = static_cast<std::uint8_t>(*rd);
        instr.ra = static_cast<std::uint8_t>(*ra);
        break;
      }
      case OperandSig::kRdImm: {
        if (Status s = need(2); !s.is_ok()) return s;
        const auto rd = parse_register(ops[0]);
        const auto imm = resolve_const(ops[1]);
        if (!rd) return error(st.line, "expected register as first operand");
        if (!imm || *imm < -32768 || *imm > 65535) {
          return error(st.line, "immediate out of 16-bit range");
        }
        instr.rd = static_cast<std::uint8_t>(*rd);
        instr.imm = static_cast<std::uint16_t>(*imm & 0xFFFF);
        break;
      }
      case OperandSig::kRd: {
        if (Status s = need(1); !s.is_ok()) return s;
        const auto rd = parse_register(ops[0]);
        if (!rd) return error(st.line, "expected register");
        instr.rd = static_cast<std::uint8_t>(*rd);
        break;
      }
      case OperandSig::kRa: {
        if (Status s = need(1); !s.is_ok()) return s;
        const auto ra = parse_register(ops[0]);
        if (!ra) return error(st.line, "expected register");
        instr.ra = static_cast<std::uint8_t>(*ra);
        break;
      }
      case OperandSig::kMemLoad:
      case OperandSig::kMemStore: {
        if (Status s = need(2); !s.is_ok()) return s;
        const auto rd = parse_register(ops[0]);
        const auto mem = parse_mem(ops[1]);
        if (!rd || !mem) return error(st.line, "expected register, [reg+imm]");
        if (mem->disp < -32768 || mem->disp > 32767) {
          return error(st.line, "displacement out of range");
        }
        instr.rd = static_cast<std::uint8_t>(*rd);
        instr.ra = static_cast<std::uint8_t>(mem->reg);
        instr.imm = static_cast<std::uint16_t>(mem->disp & 0xFFFF);
        break;
      }
      case OperandSig::kBranch: {
        if (Status s = need(1); !s.is_ok()) return s;
        bool is_symbol = false;
        auto value = value_operand(st, ops[0], &is_symbol);
        if (!value.is_ok()) return value.status();
        std::int64_t disp = *value;
        if (is_symbol) {
          disp = *value - (static_cast<std::int64_t>(cursor_) + kInstrSize);
        }
        if (disp < -32768 || disp > 32767) {
          return error(st.line, "branch target out of range");
        }
        instr.imm = static_cast<std::uint16_t>(disp & 0xFFFF);
        break;
      }
      case OperandSig::kImm: {
        if (Status s = need(1); !s.is_ok()) return s;
        const auto imm = resolve_const(ops[0]);
        if (!imm || *imm < 0 || *imm > 0xFFFF) {
          return error(st.line, "immediate out of range");
        }
        instr.imm = static_cast<std::uint16_t>(*imm);
        break;
      }
    }
    emit_word(encode(instr));
    cursor_ += kInstrSize;
    return Status::ok();
  }

  Status emit_li(const Statement& st) {
    if (st.operands.size() != 2) {
      return error(st.line, "li takes register, symbol-or-constant");
    }
    const auto rd = parse_register(st.operands[0]);
    if (!rd) {
      return error(st.line, "li: expected register");
    }
    bool is_symbol = false;
    auto value = value_operand(st, st.operands[1], &is_symbol);
    if (!value.is_ok()) {
      return value.status();
    }
    const auto v = static_cast<std::uint32_t>(*value);
    if (is_symbol) {
      object_.relocs.push_back({cursor_, RelocKind::kLo16, v});
      object_.relocs.push_back({cursor_ + kInstrSize, RelocKind::kHi16, v});
    }
    Instruction lo{Opcode::kMoviu, static_cast<std::uint8_t>(*rd), 0,
                   static_cast<std::uint16_t>(v & 0xFFFF)};
    Instruction hi{Opcode::kMovhi, static_cast<std::uint8_t>(*rd), 0,
                   static_cast<std::uint16_t>(v >> 16)};
    emit_word(encode(lo));
    emit_word(encode(hi));
    cursor_ += 2 * kInstrSize;
    return Status::ok();
  }

  /// Pseudo `not rd`: bitwise complement, expanding to
  ///   movi r0, -1 ; xor rd, r0
  /// r0 is the ABI's pseudo-scratch (it already carries syscall numbers and
  /// is caller-saved everywhere), so `not r0` is rejected.
  Status emit_not(const Statement& st) {
    if (st.operands.size() != 1) {
      return error(st.line, "not takes one register");
    }
    const auto rd = parse_register(st.operands[0]);
    if (!rd) {
      return error(st.line, "expected register");
    }
    if (*rd == 0) {
      return error(st.line, "not cannot target r0 (pseudo scratch register)");
    }
    emit_word(encode({Opcode::kMovi, 0, 0, 0xFFFF}));
    emit_word(encode({Opcode::kXor, static_cast<std::uint8_t>(*rd), 0, 0}));
    cursor_ += 2 * kInstrSize;
    return Status::ok();
  }

  Status emit_directive(const Statement& st) {
    const std::string& m = st.mnemonic;
    if (m == ".word") {
      for (const std::string& op : st.operands) {
        bool is_symbol = false;
        auto value = value_operand(st, op, &is_symbol);
        if (!value.is_ok()) return value.status();
        if (is_symbol) {
          object_.relocs.push_back(
              {cursor_, RelocKind::kAbs32, static_cast<std::uint32_t>(*value)});
        }
        emit_word(static_cast<std::uint32_t>(*value));
        cursor_ += 4;
      }
      return Status::ok();
    }
    if (m == ".byte") {
      for (const std::string& op : st.operands) {
        const auto value = resolve_const(op);
        if (!value || *value < -128 || *value > 255) {
          return error(st.line, ".byte value out of range");
        }
        object_.image.push_back(static_cast<std::uint8_t>(*value & 0xFF));
        ++cursor_;
      }
      return Status::ok();
    }
    if (m == ".space") {
      const auto n = resolve_const(st.operands[0]);
      object_.image.insert(object_.image.end(), static_cast<std::size_t>(*n), 0);
      cursor_ += static_cast<std::uint32_t>(*n);
      return Status::ok();
    }
    if (m == ".ascii") {
      const auto text = parse_string_literal(st.operands[0]);
      object_.image.insert(object_.image.end(), text->begin(), text->end());
      cursor_ += static_cast<std::uint32_t>(text->size());
      return Status::ok();
    }
    if (m == ".align") {
      const auto align = static_cast<std::uint32_t>(*resolve_const(st.operands[0]));
      while (cursor_ % align != 0) {
        object_.image.push_back(0);
        ++cursor_;
      }
      return Status::ok();
    }
    if (m == ".equ") {
      return Status::ok();  // handled in layout()
    }
    if (m == ".entry" || m == ".msg") {
      if (st.operands.size() != 1) {
        return error(st.line, m + " takes one label");
      }
      const auto it = symbols_.find(std::string(trim(st.operands[0])));
      if (it == symbols_.end()) {
        return error(st.line, m + ": undefined label");
      }
      (m == ".entry" ? object_.entry : object_.msg_handler) = it->second;
      return Status::ok();
    }
    if (m == ".stack" || m == ".bss") {
      if (st.operands.size() != 1) {
        return error(st.line, m + " takes one constant");
      }
      const auto n = resolve_const(st.operands[0]);
      if (!n || *n < 0) {
        return error(st.line, m + " operand must be a non-negative constant");
      }
      (m == ".stack" ? object_.stack_size : object_.bss_size) =
          static_cast<std::uint32_t>(*n);
      return Status::ok();
    }
    if (m == ".secure") {
      object_.flags |= kObjSecure;
      return Status::ok();
    }
    return error(st.line, "unknown directive '" + m + "'");
  }

  Status emit() {
    cursor_ = 0;
    for (const Statement& st : statements_) {
      if (st.mnemonic.empty()) {
        continue;
      }
      if (is_instruction(st.mnemonic)) {
        while (cursor_ % kInstrSize != 0) {
          object_.image.push_back(0);
          ++cursor_;
        }
      }
      if (st.mnemonic == "li") {
        if (Status s = emit_li(st); !s.is_ok()) return s;
        continue;
      }
      if (st.mnemonic == "not") {
        if (Status s = emit_not(st); !s.is_ok()) return s;
        continue;
      }
      const auto it = mnemonic_table().find(st.mnemonic);
      if (it != mnemonic_table().end()) {
        if (Status s = emit_instruction(st, it->second); !s.is_ok()) return s;
        continue;
      }
      if (Status s = emit_directive(st); !s.is_ok()) return s;
    }
    return Status::ok();
  }

  std::vector<Statement> statements_;
  std::map<std::string, std::uint32_t> symbols_;
  std::map<std::string, std::int64_t> equ_;
  std::uint32_t cursor_ = 0;
  ObjectFile object_;
};

/// The secure-task entry routine (paper §4: checked via a reason code in r1,
/// "automatically included by the TyTAN tool chain").  `%MSG%` and `%START%`
/// are replaced with the user's handler labels before assembly.
constexpr std::string_view kSecurePrologue = R"(__tytan_entry:
    cmpi r1, 1
    jz __tytan_restore
    cmpi r1, 2
    jz __tytan_message
    jmp %START%
__tytan_restore:
    pop r6
    pop r5
    pop r4
    pop r3
    pop r2
    pop r1
    pop r0
    iret
__tytan_message:
    jmp %MSG%
__tytan_mailbox:
    .space 24
)";

std::string replace_all(std::string text, std::string_view what, std::string_view with) {
  std::size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    text.replace(pos, what.size(), with);
    pos += with.size();
  }
  return text;
}

/// Pre-scan for `.secure` / `.entry` / `.msg` so the prologue can be spliced
/// in front of the user program.
struct PreScan {
  bool secure = false;
  std::string entry_label;
  std::string msg_label;
};

PreScan prescan(std::string_view source) {
  PreScan out;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    std::string_view raw =
        source.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;
    const std::string line(trim(strip_comment(raw)));
    const std::string low = lower(line);
    if (low == ".secure") {
      out.secure = true;
    } else if (low.starts_with(".entry")) {
      out.entry_label = std::string(trim(std::string_view(line).substr(6)));
    } else if (low.starts_with(".msg")) {
      out.msg_label = std::string(trim(std::string_view(line).substr(4)));
    }
  }
  return out;
}

}  // namespace

Result<ObjectFile> assemble(std::string_view source) {
  const PreScan scan = prescan(source);
  if (!scan.secure) {
    Assembler as;
    auto object = as.run(source);
    if (!object.is_ok()) {
      return object;
    }
    // `.entry` was already applied by the directive handler.
    return object;
  }

  // Secure task: splice the entry routine in front of the user program.  The
  // user's `.entry`/`.msg` labels become branch targets of the prologue; the
  // object's real entry is the prologue itself.
  const std::string start = scan.entry_label.empty() ? "__tytan_user_start" : scan.entry_label;
  const std::string msg = scan.msg_label.empty() ? start : scan.msg_label;
  std::string prologue = replace_all(std::string(kSecurePrologue), "%START%", start);
  prologue = replace_all(prologue, "%MSG%", msg);
  std::string combined = prologue;
  if (scan.entry_label.empty()) {
    combined += "__tytan_user_start:\n";
  }
  combined += source;

  Assembler as;
  auto object = as.run(combined);
  if (!object.is_ok()) {
    return object;
  }
  ObjectFile obj = object.take();
  obj.entry = obj.symbols.at("__tytan_entry");
  obj.msg_handler = obj.symbols.at("__tytan_message");
  obj.mailbox = obj.symbols.at("__tytan_mailbox");
  return obj;
}

}  // namespace tytan::isa
