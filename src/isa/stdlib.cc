#include "isa/stdlib.h"

namespace tytan::isa {

namespace {
constexpr std::string_view kStdlib = R"(
; ---------------------------------------------------------------- stdlib --
lib_print_str:               ; r2 = NUL-terminated string
    push r0
    push r1
    push r2
__lib_ps_loop:
    ldb  r1, [r2]
    cmpi r1, 0
    jz   __lib_ps_done
    movi r0, 4               ; kSysPutchar
    int  0x21
    addi r2, 1
    jmp  __lib_ps_loop
__lib_ps_done:
    pop  r2
    pop  r1
    pop  r0
    ret

lib_print_hex:               ; r2 = value -> 8 hex digits
    push r0
    push r1
    push r3
    movi r3, 28              ; current shift
__lib_ph_loop:
    mov  r1, r2
    shr  r1, r3
    andi r1, 0xF
    cmpi r1, 10
    jlt  __lib_ph_digit
    addi r1, 87              ; 'a' - 10
    jmp  __lib_ph_put
__lib_ph_digit:
    addi r1, 48              ; '0'
__lib_ph_put:
    movi r0, 4
    int  0x21
    cmpi r3, 0
    jz   __lib_ph_done
    subi r3, 4
    jmp  __lib_ph_loop
__lib_ph_done:
    pop  r3
    pop  r1
    pop  r0
    ret

lib_memcpy:                  ; r2 = dst, r3 = src, r4 = len
    push r1
    push r2
    push r3
    push r4
__lib_mc_loop:
    cmpi r4, 0
    jz   __lib_mc_done
    ldb  r1, [r3]
    stb  r1, [r2]
    addi r2, 1
    addi r3, 1
    subi r4, 1
    jmp  __lib_mc_loop
__lib_mc_done:
    pop  r4
    pop  r3
    pop  r2
    pop  r1
    ret

lib_memset:                  ; r2 = dst, r3 = byte, r4 = len
    push r2
    push r4
__lib_ms_loop:
    cmpi r4, 0
    jz   __lib_ms_done
    stb  r3, [r2]
    addi r2, 1
    subi r4, 1
    jmp  __lib_ms_loop
__lib_ms_done:
    pop  r4
    pop  r2
    ret

lib_delay:                   ; r2 = ticks
    push r0
    push r1
    movi r0, 2               ; kSysDelay
    mov  r1, r2
    int  0x21
    pop  r1
    pop  r0
    ret
)";
}  // namespace

std::string_view stdlib_source() { return kStdlib; }

std::string with_stdlib(std::string_view user) {
  std::string out(user);
  out += '\n';
  out += kStdlib;
  return out;
}

}  // namespace tytan::isa
