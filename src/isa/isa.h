// Instruction set of the simulated 32-bit embedded core ("Peak-32").
//
// The paper implements TyTAN on Intel Siskiyou Peak, a 32-bit core with a
// flat physical address space and MMIO.  We model a small RISC ISA with the
// registers the paper names (EIP, EFLAGS) plus eight GPRs.  Encoding is one
// little-endian 32-bit word per instruction:
//
//   [31:24] opcode   [23:20] rd   [19:16] ra   [15:0] imm16
//
// Branch displacements are relative to the *next* instruction, in bytes, so
// position-independent code needs no relocations; only `li` (address
// materialization) and `.word` data emit relocation records.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace tytan::isa {

inline constexpr std::size_t kNumGprs = 8;
inline constexpr unsigned kSpIndex = 7;  ///< r7 is the stack pointer by convention
inline constexpr std::uint32_t kInstrSize = 4;

/// EFLAGS bits.
enum Flag : std::uint32_t {
  kFlagZ = 1u << 0,   ///< zero
  kFlagC = 1u << 1,   ///< carry / unsigned borrow
  kFlagN = 1u << 2,   ///< negative (sign)
  kFlagV = 1u << 3,   ///< signed overflow
  kFlagIF = 1u << 9,  ///< interrupts enabled
};

enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kMov = 0x01,    ///< rd = ra
  kMovi = 0x02,   ///< rd = sext(imm16)
  kMoviu = 0x03,  ///< rd = zext(imm16)           (li low half; LO16 reloc target)
  kMovhi = 0x04,  ///< rd = (rd & 0xFFFF) | imm16 << 16   (li high half; HI16)
  kAdd = 0x05,
  kAddi = 0x06,
  kSub = 0x07,
  kSubi = 0x08,
  kAnd = 0x09,
  kAndi = 0x0A,
  kOr = 0x0B,
  kOri = 0x0C,
  kXor = 0x0D,
  kShl = 0x0E,
  kShli = 0x0F,
  kShr = 0x10,
  kShri = 0x11,
  kMul = 0x12,
  kCmp = 0x13,  ///< flags from rd - ra
  kCmpi = 0x14,
  kLdw = 0x20,  ///< rd = mem32[ra + sext(imm16)]
  kStw = 0x21,  ///< mem32[ra + sext(imm16)] = rd
  kLdb = 0x22,  ///< rd = zext(mem8[ra + sext(imm16)])
  kStb = 0x23,
  kJmp = 0x30,  ///< eip += sext(imm16)  (relative to next instruction)
  kJz = 0x31,
  kJnz = 0x32,
  kJlt = 0x33,  ///< signed less (N xor V)
  kJge = 0x34,
  kJc = 0x35,  ///< unsigned below
  kJnc = 0x36,
  kJmpr = 0x37,  ///< eip = ra
  kCall = 0x38,  ///< push return address; relative jump
  kCallr = 0x39,
  kRet = 0x3A,
  kPush = 0x3B,
  kPop = 0x3C,
  kInt = 0x40,   ///< software interrupt, vector = imm16 & 0xFF
  kIret = 0x41,  ///< pop EIP, pop EFLAGS
  kHlt = 0x42,
  kCli = 0x43,
  kSti = 0x44,
  kRdcyc = 0x45,  ///< rd = low 32 bits of the platform cycle counter
};

/// Decoded instruction.
struct Instruction {
  Opcode opcode = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint16_t imm = 0;  ///< raw 16-bit immediate; sign-extension is per-opcode

  [[nodiscard]] std::int32_t simm() const { return static_cast<std::int16_t>(imm); }

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Pack an instruction into its 32-bit encoding.
std::uint32_t encode(const Instruction& instr);

/// Decode a 32-bit word; nullopt if the opcode is not defined.
std::optional<Instruction> decode(std::uint32_t word);

/// Mnemonic for an opcode ("ldw", "iret", ...).
std::string_view mnemonic(Opcode op);

/// True if the opcode is defined in the ISA.
bool opcode_valid(std::uint8_t raw);

/// Base cycle cost of an instruction (memory-system costs are added by the
/// machine).  These model a simple non-pipelined embedded core.
unsigned base_cycles(Opcode op);

}  // namespace tytan::isa
