#include "isa/disasm.h"

#include <sstream>

namespace tytan::isa {

namespace {
std::string reg(unsigned r) { return (r == kSpIndex) ? "sp" : "r" + std::to_string(r); }

std::string hex32(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}
}  // namespace

std::string disassemble(const Instruction& instr, std::uint32_t pc) {
  std::ostringstream os;
  os << mnemonic(instr.opcode);
  switch (instr.opcode) {
    case Opcode::kNop:
    case Opcode::kRet:
    case Opcode::kIret:
    case Opcode::kHlt:
    case Opcode::kCli:
    case Opcode::kSti:
      break;
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMul:
    case Opcode::kCmp:
      os << ' ' << reg(instr.rd) << ", " << reg(instr.ra);
      break;
    case Opcode::kMovi:
    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kCmpi:
      os << ' ' << reg(instr.rd) << ", " << instr.simm();
      break;
    case Opcode::kMoviu:
    case Opcode::kMovhi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kShli:
    case Opcode::kShri:
      os << ' ' << reg(instr.rd) << ", " << hex32(instr.imm);
      break;
    case Opcode::kLdw:
    case Opcode::kLdb:
    case Opcode::kStw:
    case Opcode::kStb:
      os << ' ' << reg(instr.rd) << ", [" << reg(instr.ra);
      if (instr.simm() != 0) {
        os << (instr.simm() >= 0 ? "+" : "") << instr.simm();
      }
      os << ']';
      break;
    case Opcode::kJmp:
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
    case Opcode::kJc:
    case Opcode::kJnc:
    case Opcode::kCall:
      os << ' ' << hex32(static_cast<std::uint32_t>(
                     static_cast<std::int64_t>(pc) + kInstrSize + instr.simm()));
      break;
    case Opcode::kJmpr:
    case Opcode::kCallr:
      os << ' ' << reg(instr.ra);
      break;
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kRdcyc:
      os << ' ' << reg(instr.rd);
      break;
    case Opcode::kInt:
      os << ' ' << hex32(instr.imm);
      break;
  }
  return os.str();
}

std::string disassemble_word(std::uint32_t word, std::uint32_t pc) {
  const auto instr = decode(word);
  if (!instr) {
    return "<invalid " + hex32(word) + ">";
  }
  return disassemble(*instr, pc);
}

}  // namespace tytan::isa
