// Disassembler for the Peak-32 ISA; used by tests, the fault reporter, and
// debugging output in the examples.
#pragma once

#include <string>

#include "isa/isa.h"

namespace tytan::isa {

/// "ldw r1, [r2+4]" etc.  `pc` (address of the instruction) is used to print
/// absolute branch targets.
std::string disassemble(const Instruction& instr, std::uint32_t pc);

/// Decode and disassemble a raw word; "<invalid 0x...>" if undecodable.
std::string disassemble_word(std::uint32_t word, std::uint32_t pc);

}  // namespace tytan::isa
