// Two-pass assembler for the Peak-32 ISA, the "TyTAN tool chain" of this
// reproduction.
//
// Syntax (one statement per line, `;` or `#` comments):
//
//   label:                       define a symbol at the current offset
//   movi r0, 42                  immediates: decimal, 0x-hex, negative, 'c'
//   li   r2, buffer              pseudo: moviu+movhi, emits LO16+HI16 relocs
//   ldw  r1, [r2+4]              memory operands: [reg], [reg+imm], [reg-imm]
//   stw  r1, [sp]                `sp` aliases r7
//   jmp  loop                    branches take labels (relative, no reloc)
//   int  0x21
//
// Directives:
//   .word  <num|label>, ...      32-bit data words (labels emit ABS32 relocs)
//   .byte  <num>, ...
//   .space <n>                   n zero bytes
//   .ascii "text"                raw bytes, supports \n \0 \\ \" escapes
//   .align <n>                   pad with zeros to an n-byte boundary
//   .equ   NAME, <num>           assemble-time constant
//   .entry <label>               program entry point (default: offset 0)
//   .msg   <label>               IPC message handler (secure tasks)
//   .stack <n>                   requested stack size (default 256)
//   .bss   <n>                   zero-initialized space appended after image
//   .secure                      mark as secure task; the assembler prepends
//                                the TyTAN secure-task entry routine and an
//                                IPC mailbox (paper §4: "automatically
//                                included by the TyTAN tool chain")
#pragma once

#include <string_view>

#include "common/status.h"
#include "isa/object.h"

namespace tytan::isa {

/// Offsets within a secure task's auto-generated prologue.
struct SecureLayout {
  static constexpr std::uint32_t kEntryOffset = 0;  ///< entry routine start
  static constexpr std::uint32_t kMailboxWords = 6;  ///< sender id (2) + 4 data words
  static constexpr std::uint32_t kMailboxSize = kMailboxWords * 4;
};

/// Reason codes the platform passes in r1 when entering a secure task
/// (paper §4: "TyTAN provides this information in a CPU register, which is
/// checked by the entry routine").
enum class EntryReason : std::uint32_t {
  kStart = 0,    ///< first activation: fall through to main
  kRestore = 1,  ///< resume: pop saved context and iret
  kMessage = 2,  ///< IPC delivery: run the message handler
};

/// Assemble `source` into a relocatable object.  On error the status message
/// contains the line number and a description.
Result<ObjectFile> assemble(std::string_view source);

}  // namespace tytan::isa
