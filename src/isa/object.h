// Relocatable object produced by the assembler and consumed by the TBF
// serializer and the TyTAN task loader.
//
// The paper loads relocatable ELF binaries; the essential content — an image,
// an entry point, a requested stack size, and a list of relocation records
// that (a) the loader applies at the chosen base address and (b) the RTM task
// *reverts* to compute a position-independent measurement — is captured here.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace tytan::isa {

/// Kinds of relocation.  All carry the original (base-0) addend so the RTM
/// can revert the patch without arithmetic on the patched value.
enum class RelocKind : std::uint8_t {
  kAbs32 = 0,  ///< 32-bit word at `offset` := addend + base
  kLo16 = 1,   ///< imm16 field of a moviu at `offset` := (addend + base) & 0xFFFF
  kHi16 = 2,   ///< imm16 field of a movhi at `offset` := (addend + base) >> 16
};

struct Relocation {
  std::uint32_t offset = 0;  ///< byte offset of the patched word within the image
  RelocKind kind = RelocKind::kAbs32;
  std::uint32_t addend = 0;  ///< link-time value (symbol offset within the image)

  friend bool operator==(const Relocation&, const Relocation&) = default;
};

/// Task/binary capability flags.
enum ObjectFlags : std::uint32_t {
  kObjSecure = 1u << 0,    ///< load as a secure task (isolated from the OS)
  kObjDataOnly = 1u << 1,  ///< image carries no code (blob container)
};

struct ObjectFile {
  ByteVec image;                    ///< code + data, base address 0
  std::uint32_t bss_size = 0;       ///< zero-initialized space after the image
  std::uint32_t stack_size = 256;   ///< requested stack allocation
  std::uint32_t entry = 0;          ///< entry offset within the image
  std::uint32_t msg_handler = 0;    ///< message-handler offset (0 = none)
  std::uint32_t mailbox = 0;        ///< IPC mailbox offset (secure tasks)
  std::uint32_t flags = 0;          ///< ObjectFlags
  std::vector<Relocation> relocs;   ///< sorted by offset
  std::map<std::string, std::uint32_t> symbols;  ///< label -> image offset

  [[nodiscard]] bool secure() const { return (flags & kObjSecure) != 0; }
  [[nodiscard]] bool data_only() const { return (flags & kObjDataOnly) != 0; }

  /// Total memory footprint when loaded (image + bss + stack).
  [[nodiscard]] std::uint32_t memory_size() const {
    return static_cast<std::uint32_t>(image.size()) + bss_size + stack_size;
  }
};

}  // namespace tytan::isa
