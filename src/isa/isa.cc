#include "isa/isa.h"

namespace tytan::isa {

std::uint32_t encode(const Instruction& instr) {
  return (static_cast<std::uint32_t>(instr.opcode) << 24) |
         (static_cast<std::uint32_t>(instr.rd & 0xF) << 20) |
         (static_cast<std::uint32_t>(instr.ra & 0xF) << 16) | instr.imm;
}

bool opcode_valid(std::uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kNop:
    case Opcode::kMov:
    case Opcode::kMovi:
    case Opcode::kMoviu:
    case Opcode::kMovhi:
    case Opcode::kAdd:
    case Opcode::kAddi:
    case Opcode::kSub:
    case Opcode::kSubi:
    case Opcode::kAnd:
    case Opcode::kAndi:
    case Opcode::kOr:
    case Opcode::kOri:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShli:
    case Opcode::kShr:
    case Opcode::kShri:
    case Opcode::kMul:
    case Opcode::kCmp:
    case Opcode::kCmpi:
    case Opcode::kLdw:
    case Opcode::kStw:
    case Opcode::kLdb:
    case Opcode::kStb:
    case Opcode::kJmp:
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
    case Opcode::kJc:
    case Opcode::kJnc:
    case Opcode::kJmpr:
    case Opcode::kCall:
    case Opcode::kCallr:
    case Opcode::kRet:
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kInt:
    case Opcode::kIret:
    case Opcode::kHlt:
    case Opcode::kCli:
    case Opcode::kSti:
    case Opcode::kRdcyc:
      return true;
  }
  return false;
}

std::optional<Instruction> decode(std::uint32_t word) {
  const auto raw = static_cast<std::uint8_t>(word >> 24);
  if (!opcode_valid(raw)) {
    return std::nullopt;
  }
  Instruction instr;
  instr.opcode = static_cast<Opcode>(raw);
  instr.rd = static_cast<std::uint8_t>((word >> 20) & 0xF);
  instr.ra = static_cast<std::uint8_t>((word >> 16) & 0xF);
  instr.imm = static_cast<std::uint16_t>(word & 0xFFFF);
  // The register fields are 4 bits wide but the file has kNumGprs registers;
  // encodings naming a nonexistent register are invalid (the machine would
  // otherwise index past the register file).
  if (instr.rd >= kNumGprs || instr.ra >= kNumGprs) {
    return std::nullopt;
  }
  return instr;
}

std::string_view mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kMov: return "mov";
    case Opcode::kMovi: return "movi";
    case Opcode::kMoviu: return "moviu";
    case Opcode::kMovhi: return "movhi";
    case Opcode::kAdd: return "add";
    case Opcode::kAddi: return "addi";
    case Opcode::kSub: return "sub";
    case Opcode::kSubi: return "subi";
    case Opcode::kAnd: return "and";
    case Opcode::kAndi: return "andi";
    case Opcode::kOr: return "or";
    case Opcode::kOri: return "ori";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShli: return "shli";
    case Opcode::kShr: return "shr";
    case Opcode::kShri: return "shri";
    case Opcode::kMul: return "mul";
    case Opcode::kCmp: return "cmp";
    case Opcode::kCmpi: return "cmpi";
    case Opcode::kLdw: return "ldw";
    case Opcode::kStw: return "stw";
    case Opcode::kLdb: return "ldb";
    case Opcode::kStb: return "stb";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJz: return "jz";
    case Opcode::kJnz: return "jnz";
    case Opcode::kJlt: return "jlt";
    case Opcode::kJge: return "jge";
    case Opcode::kJc: return "jc";
    case Opcode::kJnc: return "jnc";
    case Opcode::kJmpr: return "jmpr";
    case Opcode::kCall: return "call";
    case Opcode::kCallr: return "callr";
    case Opcode::kRet: return "ret";
    case Opcode::kPush: return "push";
    case Opcode::kPop: return "pop";
    case Opcode::kInt: return "int";
    case Opcode::kIret: return "iret";
    case Opcode::kHlt: return "hlt";
    case Opcode::kCli: return "cli";
    case Opcode::kSti: return "sti";
    case Opcode::kRdcyc: return "rdcyc";
  }
  return "?";
}

unsigned base_cycles(Opcode op) {
  switch (op) {
    case Opcode::kMul:
      return 3;
    case Opcode::kLdw:
    case Opcode::kStw:
    case Opcode::kLdb:
    case Opcode::kStb:
    case Opcode::kPush:
    case Opcode::kPop:
      return 2;
    case Opcode::kJmp:
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
    case Opcode::kJc:
    case Opcode::kJnc:
    case Opcode::kJmpr:
      return 1;  // +2 when taken, charged by the machine
    case Opcode::kCall:
    case Opcode::kCallr:
    case Opcode::kRet:
      return 4;
    case Opcode::kInt:
    case Opcode::kIret:
      return 12;
    default:
      return 1;
  }
}

}  // namespace tytan::isa
