// Peak-32 guest standard library — reusable assembly routines the TyTAN
// tool chain appends to task sources on request.
//
// Calling convention: arguments in r2..r4, `call lib_*`, all registers
// preserved (each routine push/pops what it clobbers).  Routines use only
// relative branches, so they add no relocations to the binary.
//
//   lib_print_str   r2 = address of NUL-terminated string -> serial
//   lib_print_hex   r2 = 32-bit value -> 8 lowercase hex digits on serial
//   lib_memcpy      r2 = dst, r3 = src, r4 = length (bytes)
//   lib_memset      r2 = dst, r3 = byte value, r4 = length (bytes)
//   lib_delay       r2 = ticks to sleep
#pragma once

#include <string>
#include <string_view>

namespace tytan::isa {

/// The library source (labels prefixed lib_ / __lib_).
std::string_view stdlib_source();

/// User program with the library appended (call lib_* anywhere in `user`).
std::string with_stdlib(std::string_view user);

}  // namespace tytan::isa
