#include "tbf/tbf.h"

#include <cstring>

#include "isa/assembler.h"
#include "isa/isa.h"

namespace tytan::tbf {

namespace {

/// CRC-32 (IEEE 802.3, reflected) over the header for corruption detection.
std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFF'FFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ (0xEDB8'8320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> raw) : raw_(raw) {}

  bool u8(std::uint8_t* out) {
    if (pos_ + 1 > raw_.size()) return false;
    *out = raw_[pos_++];
    return true;
  }
  bool u16(std::uint16_t* out) {
    if (pos_ + 2 > raw_.size()) return false;
    *out = load_le16(raw_.data() + pos_);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t* out) {
    if (pos_ + 4 > raw_.size()) return false;
    *out = load_le32(raw_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool bytes(std::size_t n, std::span<const std::uint8_t>* out) {
    if (pos_ + n > raw_.size()) return false;
    *out = raw_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const { return raw_.size() - pos_; }

 private:
  std::span<const std::uint8_t> raw_;
  std::size_t pos_ = 0;
};

}  // namespace

ByteVec write(const isa::ObjectFile& object) {
  ByteVec out;
  out.reserve(kHeaderSize + object.image.size() + 9 * object.relocs.size());
  append_le32(out, kMagic);
  append_le16(out, kVersion);
  append_le16(out, static_cast<std::uint16_t>(object.flags));
  append_le32(out, static_cast<std::uint32_t>(object.image.size()));
  append_le32(out, object.bss_size);
  append_le32(out, object.stack_size);
  append_le32(out, object.entry);
  append_le32(out, object.msg_handler);
  append_le32(out, object.mailbox);
  append_le32(out, static_cast<std::uint32_t>(object.relocs.size()));
  append_le32(out, static_cast<std::uint32_t>(object.symbols.size()));
  append_le32(out, crc32(out));  // checksum over bytes 0..39

  out.insert(out.end(), object.image.begin(), object.image.end());
  for (const isa::Relocation& reloc : object.relocs) {
    append_le32(out, reloc.offset);
    out.push_back(static_cast<std::uint8_t>(reloc.kind));
    append_le32(out, reloc.addend);
  }
  for (const auto& [name, value] : object.symbols) {
    append_le16(out, static_cast<std::uint16_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    append_le32(out, value);
  }
  return out;
}

Result<isa::ObjectFile> read(std::span<const std::uint8_t> raw) {
  if (raw.size() < kHeaderSize) {
    return make_error(Err::kCorrupt, "TBF: truncated header");
  }
  Reader reader(raw);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  std::uint32_t image_size = 0;
  std::uint32_t reloc_count = 0;
  std::uint32_t symbol_count = 0;
  std::uint32_t checksum = 0;
  isa::ObjectFile object;

  reader.u32(&magic);
  reader.u16(&version);
  reader.u16(&flags);
  reader.u32(&image_size);
  reader.u32(&object.bss_size);
  reader.u32(&object.stack_size);
  reader.u32(&object.entry);
  reader.u32(&object.msg_handler);
  reader.u32(&object.mailbox);
  reader.u32(&reloc_count);
  reader.u32(&symbol_count);
  reader.u32(&checksum);

  if (magic != kMagic) {
    return make_error(Err::kCorrupt, "TBF: bad magic");
  }
  if (version != kVersion) {
    return make_error(Err::kCorrupt, "TBF: unsupported version");
  }
  // The checksum covers the header bytes that precede it.
  if (crc32(raw.subspan(0, kHeaderSize - 4)) != checksum) {
    return make_error(Err::kCorrupt, "TBF: header checksum mismatch");
  }
  object.flags = flags;

  std::span<const std::uint8_t> image;
  if (!reader.bytes(image_size, &image)) {
    return make_error(Err::kCorrupt, "TBF: truncated image");
  }
  object.image.assign(image.begin(), image.end());

  if (image_size > 0 && object.entry >= image_size) {
    return make_error(Err::kCorrupt, "TBF: entry outside image");
  }
  if (object.msg_handler != 0 && object.msg_handler >= image_size) {
    return make_error(Err::kCorrupt, "TBF: msg handler outside image");
  }
  if (!object.data_only()) {
    // Executable images are whole instruction words; anything else cannot
    // have been produced by the assembler and would decode garbage tails.
    if (image_size % isa::kInstrSize != 0) {
      return make_error(Err::kCorrupt, "TBF: image size not instruction-aligned");
    }
    if (object.entry % isa::kInstrSize != 0) {
      return make_error(Err::kCorrupt, "TBF: entry not instruction-aligned");
    }
    if (object.msg_handler % isa::kInstrSize != 0) {
      return make_error(Err::kCorrupt, "TBF: msg handler not instruction-aligned");
    }
  }
  if (object.mailbox != 0 &&
      (object.mailbox % 4 != 0 ||
       object.mailbox + isa::SecureLayout::kMailboxSize > image_size)) {
    return make_error(Err::kCorrupt, "TBF: mailbox outside image");
  }

  object.relocs.reserve(reloc_count);
  for (std::uint32_t i = 0; i < reloc_count; ++i) {
    isa::Relocation reloc;
    std::uint8_t kind = 0;
    if (!reader.u32(&reloc.offset) || !reader.u8(&kind) || !reader.u32(&reloc.addend)) {
      return make_error(Err::kCorrupt, "TBF: truncated relocation table");
    }
    if (kind > static_cast<std::uint8_t>(isa::RelocKind::kHi16)) {
      return make_error(Err::kCorrupt, "TBF: unknown relocation kind");
    }
    reloc.kind = static_cast<isa::RelocKind>(kind);
    if (reloc.offset + 4 > image_size) {
      return make_error(Err::kCorrupt, "TBF: relocation outside image");
    }
    object.relocs.push_back(reloc);
  }

  for (std::uint32_t i = 0; i < symbol_count; ++i) {
    std::uint16_t name_len = 0;
    if (!reader.u16(&name_len)) {
      return make_error(Err::kCorrupt, "TBF: truncated symbol table");
    }
    std::span<const std::uint8_t> name_bytes;
    std::uint32_t value = 0;
    if (!reader.bytes(name_len, &name_bytes) || !reader.u32(&value)) {
      return make_error(Err::kCorrupt, "TBF: truncated symbol table");
    }
    object.symbols.emplace(
        std::string(reinterpret_cast<const char*>(name_bytes.data()), name_bytes.size()),
        value);
  }
  return object;
}

void apply_relocation(const isa::Relocation& reloc, std::span<std::uint8_t> image,
                      std::uint32_t base) {
  TYTAN_CHECK(reloc.offset + 4 <= image.size(), "relocation outside image");
  std::uint8_t* site = image.data() + reloc.offset;
  const std::uint32_t value = reloc.addend + base;
  switch (reloc.kind) {
    case isa::RelocKind::kAbs32:
      store_le32(site, value);
      break;
    case isa::RelocKind::kLo16: {
      const std::uint32_t word = load_le32(site);
      store_le32(site, (word & 0xFFFF'0000u) | (value & 0xFFFFu));
      break;
    }
    case isa::RelocKind::kHi16: {
      const std::uint32_t word = load_le32(site);
      store_le32(site, (word & 0xFFFF'0000u) | (value >> 16));
      break;
    }
  }
}

void revert_relocation(const isa::Relocation& reloc, std::span<std::uint8_t> image) {
  apply_relocation(reloc, image, /*base=*/0);
}

Status apply_relocations(const isa::ObjectFile& object, std::span<std::uint8_t> image,
                         std::uint32_t base) {
  if (image.size() != object.image.size()) {
    return make_error(Err::kInvalidArgument, "image size mismatch");
  }
  for (const isa::Relocation& reloc : object.relocs) {
    if (reloc.offset + 4 > image.size()) {
      return make_error(Err::kCorrupt, "relocation outside image");
    }
    apply_relocation(reloc, image, base);
  }
  return Status::ok();
}

}  // namespace tytan::tbf
