// TBF — the TyTAN Binary Format.
//
// The paper extends FreeRTOS with an ELF loader because "ELF supports
// relocatable binaries and encodes all information required for relocation
// in ELF file headers" (§4).  TBF is the equivalent for this reproduction: a
// compact container for a relocatable image, its entry point, stack/bss
// requests, and relocation records carrying original addends — exactly what
// the loader needs to relocate and what the RTM needs to *revert* the
// relocation for position-independent measurement.
//
// Wire layout (little endian):
//   0   u32  magic "TBF1"
//   4   u16  version (1)
//   6   u16  flags (ObjectFlags)
//   8   u32  image size
//   12  u32  bss size
//   16  u32  stack size
//   20  u32  entry offset
//   24  u32  msg-handler offset
//   28  u32  mailbox offset
//   32  u32  relocation count
//   36  u32  symbol count
//   40  u32  header checksum (crc of bytes 0..39 with this field zeroed)
//   44  image bytes
//   ..  relocations: {u32 offset, u8 kind, u32 addend} x count
//   ..  symbols: {u16 name_len, name bytes, u32 value} x count
#pragma once

#include "common/status.h"
#include "isa/object.h"

namespace tytan::tbf {

inline constexpr std::uint32_t kMagic = 0x3146'4254;  // "TBF1" little-endian
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 44;

/// Serialize an object file into TBF bytes.
ByteVec write(const isa::ObjectFile& object);

/// Parse and validate TBF bytes.  Rejects bad magic/version/checksum,
/// truncated sections, out-of-image entry points and relocation offsets.
Result<isa::ObjectFile> read(std::span<const std::uint8_t> raw);

/// Apply the relocations of `object` to `image` (a copy of object.image)
/// for a load at `base`.  Used by the loader.
Status apply_relocations(const isa::ObjectFile& object, std::span<std::uint8_t> image,
                         std::uint32_t base);

/// Revert one relocation in place: restore the original (base-0) addend.
/// Used by the RTM task for position-independent measurement.
void revert_relocation(const isa::Relocation& reloc, std::span<std::uint8_t> image);

/// Re-apply one relocation after measurement.
void apply_relocation(const isa::Relocation& reloc, std::span<std::uint8_t> image,
                      std::uint32_t base);

}  // namespace tytan::tbf
