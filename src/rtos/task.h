// Task control blocks for the FreeRTOS-like kernel.
//
// The paper ports FreeRTOS to Siskiyou Peak and extends it with dynamic
// handling of secure tasks (§4).  This module is the *scheduler* half: pure
// data structures and policy, no machine access — the platform wiring
// (context switching through the Int Mux, syscalls, loading) lives in
// src/core.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace tytan::rtos {

using TaskHandle = int;
inline constexpr TaskHandle kNoTask = -1;

/// Priorities: 0 = lowest (idle); larger = more urgent.
inline constexpr unsigned kNumPriorities = 8;
inline constexpr unsigned kIdlePriority = 0;

enum class TaskState : std::uint8_t {
  kReady,      ///< runnable, waiting for the CPU
  kRunning,    ///< currently executing
  kBlocked,    ///< waiting for a tick deadline, queue, or message
  kSuspended,  ///< explicitly suspended ("loaded but should not execute")
  kDead,       ///< unloaded; TCB pending reuse
};

const char* task_state_name(TaskState s);

/// What backs the task's execution.
enum class TaskKind : std::uint8_t {
  kGuest,     ///< guest code on the simulated CPU
  kFirmware,  ///< host-implemented trusted task (RTM, services, idle)
};

/// Why a task is blocked (for diagnostics and wake filtering).
enum class BlockReason : std::uint8_t {
  kNone,
  kDelay,        ///< vTaskDelay-style timed block
  kQueueSend,    ///< waiting for queue space
  kQueueRecv,    ///< waiting for queue data
  kMessage,      ///< waiting for secure IPC delivery
  kIrq,          ///< waiting for a bound device interrupt
  kStalled,      ///< wedged (fault injection); only the watchdog wakes it
};

/// 64-bit task identity: the first 64 bits of the SHA-1 over the
/// de-relocated binary (paper footnote 9).
using TaskIdentity = std::array<std::uint8_t, 8>;

struct Tcb {
  TaskHandle handle = kNoTask;
  std::string name;
  unsigned priority = 1;
  TaskState state = TaskState::kReady;
  TaskKind kind = TaskKind::kGuest;
  bool secure = false;

  // -- memory layout (absolute addresses; guest tasks) -----------------------
  std::uint32_t region_base = 0;
  std::uint32_t region_size = 0;
  std::uint32_t entry = 0;        ///< absolute entry address
  std::uint32_t msg_handler = 0;  ///< absolute message-handler address (secure)
  std::uint32_t mailbox = 0;      ///< absolute mailbox address (secure)
  std::uint32_t stack_top = 0;    ///< initial SP (top of stack region)
  std::uint32_t image_size = 0;   ///< bytes of loaded image (for measurement)

  // -- saved context (normal tasks; secure tasks use the Int Mux shadow) -----
  std::uint32_t saved_sp = 0;
  bool context_saved = false;  ///< has a full frame on its stack
  bool started = false;        ///< has run at least once

  // -- blocking ----------------------------------------------------------------
  BlockReason block_reason = BlockReason::kNone;
  std::uint64_t wake_tick = 0;  ///< for kDelay
  int wait_object = -1;         ///< queue handle for queue blocks

  // -- secure IPC ---------------------------------------------------------------
  bool message_pending = false;  ///< async message sitting in the mailbox

  // -- identity -----------------------------------------------------------------
  TaskIdentity identity{};   ///< set by the RTM after measurement
  bool measured = false;

  // -- platform bookkeeping -------------------------------------------------------
  int exec_region_idx = -1;  ///< EA-MPU execution-region descriptor
  int mpu_slot = -1;         ///< EA-MPU rule slot for the task region

  // -- firmware-backed tasks --------------------------------------------------------
  /// Invoked once per scheduling step while running; returns false when the
  /// task has no more work and wants to yield the CPU.
  std::function<bool()> quantum;

  // -- accounting --------------------------------------------------------------------
  std::uint64_t activations = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t cpu_cycles = 0;      ///< total cycles of CPU time consumed
  std::uint64_t dispatch_cycle = 0;  ///< clock value at the last dispatch

  // -- execution-time bounding (paper §5: tasks are "bound in their use of
  // system resources (e.g., execution time or memory)") ------------------------
  std::uint64_t budget_per_tick = 0;  ///< max CPU cycles per tick (0 = unlimited)
  std::uint64_t budget_used = 0;      ///< consumed within the current tick window
  std::uint64_t throttle_events = 0;  ///< times the kernel deferred this task

  // -- watchdog ----------------------------------------------------------------
  bool stalled = false;                 ///< wedged; see BlockReason::kStalled
  std::uint64_t stall_since_tick = 0;   ///< tick the stall began
  std::uint64_t watchdog_restarts = 0;  ///< times the watchdog revived this task
};

}  // namespace tytan::rtos
