// FreeRTOS-style fixed-capacity message queues ("real-time queuing",
// requirement (6) of [24] as cited in paper §4).
//
// Queues carry fixed-size items (4 words, matching the register-passed IPC
// message size).  Send/receive never block inside this module — blocking is
// a scheduler decision; the kernel (src/core) blocks the calling task when
// a queue op returns kWouldBlock and retries on wake.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "rtos/task.h"
#include "snap/snapshot.h"

namespace tytan::rtos {

using QueueHandle = int;
inline constexpr QueueHandle kNoQueue = -1;

/// One queue item: four 32-bit words (a register-sized IPC message).
using QueueItem = std::array<std::uint32_t, 4>;

class QueueSet {
 public:
  /// Create a queue with space for `capacity` items.
  Result<QueueHandle> create(std::size_t capacity);
  Status destroy(QueueHandle handle);

  /// Non-blocking send; Err::kUnavailable when full.
  Status send(QueueHandle handle, const QueueItem& item);
  /// Non-blocking receive; Err::kUnavailable when empty.
  Result<QueueItem> receive(QueueHandle handle);

  [[nodiscard]] Result<std::size_t> depth(QueueHandle handle) const;
  [[nodiscard]] Result<std::size_t> capacity(QueueHandle handle) const;

  /// Serialize / overwrite every queue (items and waiter lists) for machine
  /// snapshots.
  void save_state(snap::Writer& w) const;
  Status restore_state(snap::Reader& r);

  // -- waiter bookkeeping (kernel attaches blocked tasks here) -----------------
  void add_waiter_send(QueueHandle handle, TaskHandle task);
  void add_waiter_recv(QueueHandle handle, TaskHandle task);
  /// Pop one waiting task (FIFO) to wake after a state change; kNoTask if none.
  TaskHandle pop_waiter_send(QueueHandle handle);
  TaskHandle pop_waiter_recv(QueueHandle handle);

 private:
  struct Queue {
    bool used = false;
    std::size_t cap = 0;
    std::deque<QueueItem> items;
    std::deque<TaskHandle> waiters_send;
    std::deque<TaskHandle> waiters_recv;
  };

  [[nodiscard]] bool valid(QueueHandle handle) const {
    return handle >= 0 && handle < static_cast<QueueHandle>(queues_.size()) &&
           queues_[handle].used;
  }

  std::vector<Queue> queues_;
};

}  // namespace tytan::rtos
