// Priority-based preemptive scheduler with FreeRTOS semantics:
//   * fixed priorities, highest-priority ready task runs;
//   * round-robin time slicing among equal priorities on each tick;
//   * timed delays (vTaskDelay / vTaskDelayUntil);
//   * suspend/resume ("a list of tasks that are loaded but should not be
//     executed at the moment", paper §4);
//   * O(#priorities + #due-tasks) tick processing — bounded execution time,
//     as the real-time requirements demand.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "obs/event_bus.h"
#include "rtos/task.h"
#include "snap/snapshot.h"

namespace tytan::rtos {

struct TaskParams {
  std::string name;
  unsigned priority = 1;
  bool secure = false;
  TaskKind kind = TaskKind::kGuest;
};

/// `a` payload of a kSchedBlock event raised by suspend() rather than
/// block(); distinguishes it from every BlockReason value.
inline constexpr std::uint32_t kSuspendReasonCode = 0xFFu;

class Scheduler {
 public:
  // -- task lifecycle ----------------------------------------------------------
  Result<TaskHandle> create(const TaskParams& params);
  Status destroy(TaskHandle handle);

  [[nodiscard]] Tcb* get(TaskHandle handle);
  [[nodiscard]] const Tcb* get(TaskHandle handle) const;
  [[nodiscard]] Tcb* current();
  [[nodiscard]] TaskHandle current_handle() const { return current_; }

  // -- state transitions --------------------------------------------------------
  /// Make a task runnable (from blocked/suspended/fresh).
  Status make_ready(TaskHandle handle);
  /// Block the task with a reason; it leaves the ready structures.
  Status block(TaskHandle handle, BlockReason reason);
  /// Timed block until `wake_tick`.
  Status delay_until(TaskHandle handle, std::uint64_t wake_tick);
  Status suspend(TaskHandle handle);
  Status resume(TaskHandle handle);

  /// The running task was preempted; it goes to the back of its priority's
  /// ready queue (round-robin).
  void preempt_current();
  /// The running task voluntarily yielded; same queueing as preemption.
  void yield_current();

  // -- scheduling ----------------------------------------------------------------
  /// Highest-priority ready task (round-robin within a priority), or kNoTask.
  [[nodiscard]] TaskHandle pick_next();
  /// Mark `handle` as the running task (dequeues it from the ready lists).
  Status dispatch(TaskHandle handle);

  /// Advance the tick counter and wake tasks whose delay expired.
  /// Returns true if a task with priority above the current task's woke up
  /// (i.e., a reschedule is needed).
  bool tick();
  [[nodiscard]] std::uint64_t tick_count() const { return tick_count_; }

  /// True if a ready task has strictly higher priority than the current one.
  [[nodiscard]] bool higher_priority_ready() const;

  // -- introspection ----------------------------------------------------------------
  [[nodiscard]] std::size_t task_count() const;
  [[nodiscard]] std::vector<TaskHandle> handles() const;

  // -- snapshots ----------------------------------------------------------------
  /// Rebuilds the non-serializable `quantum` closure of a firmware-backed
  /// task on restore.  Called only when the live scheduler has no matching
  /// task (same slot, same name) to adopt the closure from; returns non-OK
  /// for firmware tasks the platform does not know how to rebuild.
  using QuantumRebuild = std::function<Status(Tcb&)>;

  /// Serialize every TCB (minus the quantum closure), the ready queues, the
  /// running task, and the tick counter.
  void save_state(snap::Writer& w) const;
  /// Overwrite the full task table from the reader.  Firmware quanta are
  /// adopted from the live table when slot + name match (restore-in-place),
  /// otherwise `rebuild` is asked to reconstruct them.
  Status restore_state(snap::Reader& r, const QuantumRebuild& rebuild);

  // -- observability ------------------------------------------------------------------
  /// Wire the platform event bus (non-owning; nullptr = no events).  Every
  /// state transition emits a typed event; nothing is charged to the
  /// simulated clock.
  void set_event_bus(obs::EventBus* bus) { events_ = bus; }

 private:
  void emit(obs::EventKind kind, TaskHandle handle, std::uint32_t a = 0,
            std::uint32_t b = 0) {
    if (events_ != nullptr) {
      events_->emit(kind, handle, a, b);
    }
  }
  void remove_from_ready(TaskHandle handle);
  [[nodiscard]] bool is_live(TaskHandle handle) const {
    return handle >= 0 && handle < static_cast<TaskHandle>(tasks_.size()) &&
           tasks_[handle] != nullptr && tasks_[handle]->state != TaskState::kDead;
  }

  std::vector<std::unique_ptr<Tcb>> tasks_;
  std::array<std::deque<TaskHandle>, kNumPriorities> ready_;
  TaskHandle current_ = kNoTask;
  std::uint64_t tick_count_ = 0;
  obs::EventBus* events_ = nullptr;
};

}  // namespace tytan::rtos
