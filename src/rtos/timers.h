// Software timers: "special alarms and time-outs", requirement (5) of the
// real-time OS feature list the paper cites ([24], §4).
//
// Timers fire on scheduler ticks; callbacks run host-side in the kernel's
// context (bounded work only, by convention).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace tytan::rtos {

using TimerHandle = int;
inline constexpr TimerHandle kNoTimer = -1;

using TimerCallback = std::function<void(TimerHandle)>;

class TimerService {
 public:
  /// One-shot timer firing at `deadline_tick`.
  Result<TimerHandle> create_oneshot(std::uint64_t deadline_tick, TimerCallback cb);
  /// Periodic timer firing every `period` ticks starting at `first_tick`.
  Result<TimerHandle> create_periodic(std::uint64_t first_tick, std::uint64_t period,
                                      TimerCallback cb);
  Status cancel(TimerHandle handle);

  /// Fire all timers due at `now`; returns the number fired.
  std::size_t advance(std::uint64_t now);

  [[nodiscard]] std::size_t active_count() const;

  /// Drop every timer.  Machine snapshots refuse to save while timers are
  /// active (callbacks are closures and cannot travel), so a restore resets
  /// the service to empty.
  void clear() { timers_.clear(); }

 private:
  struct Timer {
    bool used = false;
    std::uint64_t deadline = 0;
    std::uint64_t period = 0;  ///< 0 = one-shot
    TimerCallback callback;
  };

  std::vector<Timer> timers_;
};

}  // namespace tytan::rtos
