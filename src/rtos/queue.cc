#include "rtos/queue.h"

namespace tytan::rtos {

Result<QueueHandle> QueueSet::create(std::size_t capacity) {
  if (capacity == 0) {
    return make_error(Err::kInvalidArgument, "queue capacity must be positive");
  }
  for (QueueHandle h = 0; h < static_cast<QueueHandle>(queues_.size()); ++h) {
    if (!queues_[h].used) {
      queues_[h] = Queue{.used = true, .cap = capacity};
      return h;
    }
  }
  queues_.push_back(Queue{.used = true, .cap = capacity});
  return static_cast<QueueHandle>(queues_.size() - 1);
}

Status QueueSet::destroy(QueueHandle handle) {
  if (!valid(handle)) {
    return make_error(Err::kNotFound, "no such queue");
  }
  queues_[handle] = Queue{};
  return Status::ok();
}

Status QueueSet::send(QueueHandle handle, const QueueItem& item) {
  if (!valid(handle)) {
    return make_error(Err::kNotFound, "no such queue");
  }
  Queue& queue = queues_[handle];
  if (queue.items.size() >= queue.cap) {
    return make_error(Err::kUnavailable, "queue full");
  }
  queue.items.push_back(item);
  return Status::ok();
}

Result<QueueItem> QueueSet::receive(QueueHandle handle) {
  if (!valid(handle)) {
    return make_error(Err::kNotFound, "no such queue");
  }
  Queue& queue = queues_[handle];
  if (queue.items.empty()) {
    return make_error(Err::kUnavailable, "queue empty");
  }
  QueueItem item = queue.items.front();
  queue.items.pop_front();
  return item;
}

Result<std::size_t> QueueSet::depth(QueueHandle handle) const {
  if (!valid(handle)) {
    return make_error(Err::kNotFound, "no such queue");
  }
  return queues_[handle].items.size();
}

Result<std::size_t> QueueSet::capacity(QueueHandle handle) const {
  if (!valid(handle)) {
    return make_error(Err::kNotFound, "no such queue");
  }
  return queues_[handle].cap;
}

void QueueSet::add_waiter_send(QueueHandle handle, TaskHandle task) {
  if (valid(handle)) {
    queues_[handle].waiters_send.push_back(task);
  }
}

void QueueSet::add_waiter_recv(QueueHandle handle, TaskHandle task) {
  if (valid(handle)) {
    queues_[handle].waiters_recv.push_back(task);
  }
}

TaskHandle QueueSet::pop_waiter_send(QueueHandle handle) {
  if (!valid(handle) || queues_[handle].waiters_send.empty()) {
    return kNoTask;
  }
  const TaskHandle task = queues_[handle].waiters_send.front();
  queues_[handle].waiters_send.pop_front();
  return task;
}

TaskHandle QueueSet::pop_waiter_recv(QueueHandle handle) {
  if (!valid(handle) || queues_[handle].waiters_recv.empty()) {
    return kNoTask;
  }
  const TaskHandle task = queues_[handle].waiters_recv.front();
  queues_[handle].waiters_recv.pop_front();
  return task;
}

namespace {

void write_waiters(snap::Writer& w, const std::deque<TaskHandle>& waiters) {
  w.u32(static_cast<std::uint32_t>(waiters.size()));
  for (const TaskHandle task : waiters) {
    w.i32(task);
  }
}

void read_waiters(snap::Reader& r, std::deque<TaskHandle>& waiters) {
  const std::uint32_t count = r.u32();
  waiters.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    waiters.push_back(r.i32());
  }
}

}  // namespace

void QueueSet::save_state(snap::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(queues_.size()));
  for (const Queue& queue : queues_) {
    w.boolean(queue.used);
    w.u64(queue.cap);
    w.u32(static_cast<std::uint32_t>(queue.items.size()));
    for (const QueueItem& item : queue.items) {
      for (const std::uint32_t word : item) {
        w.u32(word);
      }
    }
    write_waiters(w, queue.waiters_send);
    write_waiters(w, queue.waiters_recv);
  }
}

Status QueueSet::restore_state(snap::Reader& r) {
  const std::uint32_t count = r.u32();
  queues_.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    Queue queue;
    queue.used = r.boolean();
    queue.cap = static_cast<std::size_t>(r.u64());
    const std::uint32_t items = r.u32();
    for (std::uint32_t j = 0; j < items && r.ok(); ++j) {
      QueueItem item{};
      for (std::uint32_t& word : item) {
        word = r.u32();
      }
      queue.items.push_back(item);
    }
    read_waiters(r, queue.waiters_send);
    read_waiters(r, queue.waiters_recv);
    queues_.push_back(std::move(queue));
  }
  return Status::ok();
}

}  // namespace tytan::rtos
