#include "rtos/timers.h"

namespace tytan::rtos {

Result<TimerHandle> TimerService::create_oneshot(std::uint64_t deadline_tick,
                                                 TimerCallback cb) {
  return create_periodic(deadline_tick, 0, std::move(cb));
}

Result<TimerHandle> TimerService::create_periodic(std::uint64_t first_tick,
                                                  std::uint64_t period, TimerCallback cb) {
  if (!cb) {
    return make_error(Err::kInvalidArgument, "timer needs a callback");
  }
  Timer timer{.used = true, .deadline = first_tick, .period = period, .callback = std::move(cb)};
  for (TimerHandle h = 0; h < static_cast<TimerHandle>(timers_.size()); ++h) {
    if (!timers_[h].used) {
      timers_[h] = std::move(timer);
      return h;
    }
  }
  timers_.push_back(std::move(timer));
  return static_cast<TimerHandle>(timers_.size() - 1);
}

Status TimerService::cancel(TimerHandle handle) {
  if (handle < 0 || handle >= static_cast<TimerHandle>(timers_.size()) ||
      !timers_[handle].used) {
    return make_error(Err::kNotFound, "no such timer");
  }
  timers_[handle] = Timer{};
  return Status::ok();
}

std::size_t TimerService::advance(std::uint64_t now) {
  std::size_t fired = 0;
  for (TimerHandle h = 0; h < static_cast<TimerHandle>(timers_.size()); ++h) {
    Timer& timer = timers_[h];
    while (timer.used && now >= timer.deadline) {
      ++fired;
      // Reschedule before the callback so a callback may cancel the timer.
      if (timer.period != 0) {
        timer.deadline += timer.period;
      } else {
        timer.used = false;
      }
      timer.callback(h);
      if (timer.period == 0) {
        break;
      }
    }
  }
  return fired;
}

std::size_t TimerService::active_count() const {
  std::size_t n = 0;
  for (const Timer& timer : timers_) {
    n += timer.used ? 1 : 0;
  }
  return n;
}

}  // namespace tytan::rtos
