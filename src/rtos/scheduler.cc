#include "rtos/scheduler.h"

#include <algorithm>

namespace tytan::rtos {

const char* task_state_name(TaskState s) {
  switch (s) {
    case TaskState::kReady: return "ready";
    case TaskState::kRunning: return "running";
    case TaskState::kBlocked: return "blocked";
    case TaskState::kSuspended: return "suspended";
    case TaskState::kDead: return "dead";
  }
  return "?";
}

Result<TaskHandle> Scheduler::create(const TaskParams& params) {
  if (params.priority >= kNumPriorities) {
    return make_error(Err::kInvalidArgument, "priority out of range");
  }
  if (params.name.empty()) {
    return make_error(Err::kInvalidArgument, "task needs a name");
  }
  // Reuse a dead slot if available, else append.
  TaskHandle handle = kNoTask;
  for (TaskHandle h = 0; h < static_cast<TaskHandle>(tasks_.size()); ++h) {
    if (tasks_[h] != nullptr && tasks_[h]->state == TaskState::kDead) {
      handle = h;
      break;
    }
  }
  if (handle == kNoTask) {
    handle = static_cast<TaskHandle>(tasks_.size());
    tasks_.push_back(nullptr);
  }
  auto tcb = std::make_unique<Tcb>();
  tcb->handle = handle;
  tcb->name = params.name;
  tcb->priority = params.priority;
  tcb->secure = params.secure;
  tcb->kind = params.kind;
  tcb->state = TaskState::kSuspended;  // not runnable until made ready
  tasks_[handle] = std::move(tcb);
  if (events_ != nullptr) {
    events_->set_task_name(handle, params.name);
  }
  emit(obs::EventKind::kTaskCreate, handle, params.priority,
       static_cast<std::uint32_t>(params.kind));
  return handle;
}

Status Scheduler::destroy(TaskHandle handle) {
  if (!is_live(handle)) {
    return make_error(Err::kNotFound, "destroy: no such task");
  }
  remove_from_ready(handle);
  if (current_ == handle) {
    current_ = kNoTask;
  }
  tasks_[handle]->state = TaskState::kDead;
  emit(obs::EventKind::kTaskDestroy, handle);
  return Status::ok();
}

Tcb* Scheduler::get(TaskHandle handle) {
  return is_live(handle) ? tasks_[handle].get() : nullptr;
}

const Tcb* Scheduler::get(TaskHandle handle) const {
  return const_cast<Scheduler*>(this)->get(handle);
}

Tcb* Scheduler::current() { return get(current_); }

Status Scheduler::make_ready(TaskHandle handle) {
  Tcb* tcb = get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "make_ready: no such task");
  }
  if (tcb->state == TaskState::kReady || tcb->state == TaskState::kRunning) {
    return Status::ok();
  }
  tcb->state = TaskState::kReady;
  tcb->block_reason = BlockReason::kNone;
  ready_[tcb->priority].push_back(handle);
  emit(obs::EventKind::kSchedWake, handle, tcb->priority);
  return Status::ok();
}

Status Scheduler::block(TaskHandle handle, BlockReason reason) {
  Tcb* tcb = get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "block: no such task");
  }
  remove_from_ready(handle);
  if (current_ == handle) {
    current_ = kNoTask;
  }
  tcb->state = TaskState::kBlocked;
  tcb->block_reason = reason;
  emit(obs::EventKind::kSchedBlock, handle, static_cast<std::uint32_t>(reason));
  return Status::ok();
}

Status Scheduler::delay_until(TaskHandle handle, std::uint64_t wake_tick) {
  Tcb* tcb = get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "delay_until: no such task");
  }
  if (Status s = block(handle, BlockReason::kDelay); !s.is_ok()) {
    return s;
  }
  tcb->wake_tick = wake_tick;
  return Status::ok();
}

Status Scheduler::suspend(TaskHandle handle) {
  Tcb* tcb = get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "suspend: no such task");
  }
  remove_from_ready(handle);
  if (current_ == handle) {
    current_ = kNoTask;
  }
  tcb->state = TaskState::kSuspended;
  emit(obs::EventKind::kSchedBlock, handle, kSuspendReasonCode);
  return Status::ok();
}

Status Scheduler::resume(TaskHandle handle) {
  Tcb* tcb = get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "resume: no such task");
  }
  if (tcb->state != TaskState::kSuspended) {
    return make_error(Err::kInvalidArgument, "resume: task not suspended");
  }
  return make_ready(handle);
}

void Scheduler::preempt_current() {
  Tcb* tcb = current();
  if (tcb == nullptr) {
    return;
  }
  ++tcb->preemptions;
  tcb->state = TaskState::kReady;
  ready_[tcb->priority].push_back(tcb->handle);
  emit(obs::EventKind::kSchedPreempt, tcb->handle, tcb->priority);
  current_ = kNoTask;
}

void Scheduler::yield_current() {
  Tcb* tcb = current();
  if (tcb == nullptr) {
    return;
  }
  tcb->state = TaskState::kReady;
  ready_[tcb->priority].push_back(tcb->handle);
  emit(obs::EventKind::kSchedYield, tcb->handle, tcb->priority);
  current_ = kNoTask;
}

TaskHandle Scheduler::pick_next() {
  for (unsigned p = kNumPriorities; p-- > 0;) {
    if (!ready_[p].empty()) {
      return ready_[p].front();
    }
  }
  return kNoTask;
}

Status Scheduler::dispatch(TaskHandle handle) {
  Tcb* tcb = get(handle);
  if (tcb == nullptr) {
    return make_error(Err::kNotFound, "dispatch: no such task");
  }
  if (tcb->state != TaskState::kReady) {
    return make_error(Err::kInvalidArgument, "dispatch: task not ready");
  }
  if (current_ != kNoTask && current_ != handle) {
    return make_error(Err::kInternal, "dispatch: another task still running");
  }
  remove_from_ready(handle);
  tcb->state = TaskState::kRunning;
  ++tcb->activations;
  current_ = handle;
  emit(obs::EventKind::kSchedDispatch, handle,
       tcb->kind == TaskKind::kFirmware ? 1u : 0u, tcb->priority);
  return Status::ok();
}

bool Scheduler::tick() {
  ++tick_count_;
  emit(obs::EventKind::kSchedTick, current_, static_cast<std::uint32_t>(tick_count_));
  bool needs_reschedule = false;
  const Tcb* running = current();
  const unsigned current_priority = running != nullptr ? running->priority : 0;
  for (auto& tcb : tasks_) {
    if (tcb == nullptr || tcb->state != TaskState::kBlocked ||
        tcb->block_reason != BlockReason::kDelay) {
      continue;
    }
    if (tick_count_ >= tcb->wake_tick) {
      make_ready(tcb->handle);
      if (running == nullptr || tcb->priority > current_priority) {
        needs_reschedule = true;
      }
    }
  }
  // Round-robin: equal-priority peers also force a reschedule on the tick.
  if (running != nullptr && !ready_[current_priority].empty()) {
    needs_reschedule = true;
  }
  return needs_reschedule;
}

bool Scheduler::higher_priority_ready() const {
  const Tcb* running = const_cast<Scheduler*>(this)->current();
  const unsigned current_priority = running != nullptr ? running->priority : 0;
  for (unsigned p = kNumPriorities; p-- > 0;) {
    if (p <= current_priority && running != nullptr) {
      break;
    }
    if (!ready_[p].empty()) {
      return true;
    }
  }
  return false;
}

std::size_t Scheduler::task_count() const {
  std::size_t n = 0;
  for (const auto& tcb : tasks_) {
    if (tcb != nullptr && tcb->state != TaskState::kDead) {
      ++n;
    }
  }
  return n;
}

std::vector<TaskHandle> Scheduler::handles() const {
  std::vector<TaskHandle> out;
  for (const auto& tcb : tasks_) {
    if (tcb != nullptr && tcb->state != TaskState::kDead) {
      out.push_back(tcb->handle);
    }
  }
  return out;
}

void Scheduler::remove_from_ready(TaskHandle handle) {
  const Tcb* tcb = tasks_[handle].get();
  auto& queue = ready_[tcb->priority];
  queue.erase(std::remove(queue.begin(), queue.end(), handle), queue.end());
}

namespace {

void write_tcb(snap::Writer& w, const Tcb& t) {
  w.i32(t.handle);
  w.str(t.name);
  w.u32(t.priority);
  w.u8(static_cast<std::uint8_t>(t.state));
  w.u8(static_cast<std::uint8_t>(t.kind));
  w.boolean(t.secure);
  w.u32(t.region_base);
  w.u32(t.region_size);
  w.u32(t.entry);
  w.u32(t.msg_handler);
  w.u32(t.mailbox);
  w.u32(t.stack_top);
  w.u32(t.image_size);
  w.u32(t.saved_sp);
  w.boolean(t.context_saved);
  w.boolean(t.started);
  w.u8(static_cast<std::uint8_t>(t.block_reason));
  w.u64(t.wake_tick);
  w.i32(t.wait_object);
  w.boolean(t.message_pending);
  w.raw(t.identity);
  w.boolean(t.measured);
  w.i32(t.exec_region_idx);
  w.i32(t.mpu_slot);
  w.u64(t.activations);
  w.u64(t.preemptions);
  w.u64(t.cpu_cycles);
  w.u64(t.dispatch_cycle);
  w.u64(t.budget_per_tick);
  w.u64(t.budget_used);
  w.u64(t.throttle_events);
  w.boolean(t.stalled);
  w.u64(t.stall_since_tick);
  w.u64(t.watchdog_restarts);
}

void read_tcb(snap::Reader& r, Tcb& t) {
  t.handle = r.i32();
  t.name = r.str();
  t.priority = r.u32();
  t.state = static_cast<TaskState>(r.u8());
  t.kind = static_cast<TaskKind>(r.u8());
  t.secure = r.boolean();
  t.region_base = r.u32();
  t.region_size = r.u32();
  t.entry = r.u32();
  t.msg_handler = r.u32();
  t.mailbox = r.u32();
  t.stack_top = r.u32();
  t.image_size = r.u32();
  t.saved_sp = r.u32();
  t.context_saved = r.boolean();
  t.started = r.boolean();
  t.block_reason = static_cast<BlockReason>(r.u8());
  t.wake_tick = r.u64();
  t.wait_object = r.i32();
  t.message_pending = r.boolean();
  r.raw(t.identity);
  t.measured = r.boolean();
  t.exec_region_idx = r.i32();
  t.mpu_slot = r.i32();
  t.activations = r.u64();
  t.preemptions = r.u64();
  t.cpu_cycles = r.u64();
  t.dispatch_cycle = r.u64();
  t.budget_per_tick = r.u64();
  t.budget_used = r.u64();
  t.throttle_events = r.u64();
  t.stalled = r.boolean();
  t.stall_since_tick = r.u64();
  t.watchdog_restarts = r.u64();
}

}  // namespace

void Scheduler::save_state(snap::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(tasks_.size()));
  for (const auto& tcb : tasks_) {
    w.boolean(tcb != nullptr);
    if (tcb != nullptr) {
      write_tcb(w, *tcb);
    }
  }
  for (const auto& queue : ready_) {
    w.u32(static_cast<std::uint32_t>(queue.size()));
    for (const TaskHandle handle : queue) {
      w.i32(handle);
    }
  }
  w.i32(current_);
  w.u64(tick_count_);
}

Status Scheduler::restore_state(snap::Reader& r, const QuantumRebuild& rebuild) {
  const std::uint32_t count = r.u32();
  std::vector<std::unique_ptr<Tcb>> restored;
  restored.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    if (!r.boolean()) {
      restored.push_back(nullptr);
      continue;
    }
    auto tcb = std::make_unique<Tcb>();
    read_tcb(r, *tcb);
    if (!r.ok()) {
      break;  // finish() reports the truncation
    }
    if (tcb->kind == TaskKind::kFirmware && tcb->state != TaskState::kDead) {
      // The quantum closure cannot travel through a snapshot.  Restoring
      // in-place: the live table has the same firmware task in the same slot
      // — adopt its closure.  Restoring into a fresh platform: ask the
      // platform to rebuild it.
      if (i < tasks_.size() && tasks_[i] != nullptr &&
          tasks_[i]->name == tcb->name && tasks_[i]->quantum) {
        tcb->quantum = tasks_[i]->quantum;
      } else if (Status s = rebuild(*tcb); !s.is_ok()) {
        return s;
      }
    }
    restored.push_back(std::move(tcb));
  }
  tasks_ = std::move(restored);
  for (auto& queue : ready_) {
    const std::uint32_t depth = r.u32();
    queue.clear();
    for (std::uint32_t i = 0; i < depth && r.ok(); ++i) {
      queue.push_back(r.i32());
    }
  }
  current_ = r.i32();
  tick_count_ = r.u64();
  if (events_ != nullptr) {
    for (const auto& tcb : tasks_) {
      if (tcb != nullptr && tcb->state != TaskState::kDead) {
        events_->set_task_name(tcb->handle, tcb->name);
      }
    }
  }
  return Status::ok();
}

}  // namespace tytan::rtos
