// Fleet runner tests — the cross-thread determinism contract above all:
// a device's simulation is byte-identical whatever the worker-thread count,
// because Platforms share no mutable state and one thread drives a platform
// at a time.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "core/platform_builder.h"
#include "fleet/thread_pool.h"
#include "fleet/verifier_workload.h"

namespace tytan::fleet {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ZeroThreadsCoercedToOne) {
  ThreadPool pool(0);
  std::atomic<int> total{0};
  pool.parallel_for(5, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5);
}

// -------------------------------------------------------------------- Fleet

WorkloadConfig small_workload(std::size_t devices, std::size_t threads) {
  WorkloadConfig config;
  config.fleet.device_count = devices;
  config.fleet.threads = threads;
  config.cycles = 200'000;
  return config;
}

/// Canonical text form of a metrics registry, for byte-comparison.
std::string metrics_snapshot(const obs::MetricsRegistry& metrics) {
  std::ostringstream out;
  metrics.visit_counters([&](const std::string& name, const obs::Counter& c) {
    out << "c " << name << " " << c.value() << "\n";
  });
  metrics.visit_gauges([&](const std::string& name, const obs::Gauge& g) {
    out << "g " << name << " " << g.value() << "\n";
  });
  metrics.visit_histograms([&](const std::string& name, const obs::Histogram& h) {
    out << "h " << name << " " << h.count() << " " << h.sum() << "\n";
  });
  return out.str();
}

TEST(Fleet, VerifierWorkloadEndToEnd) {
  Fleet fleet(small_workload(4, 2).fleet);
  const WorkloadResult result = run_verifier_workload(fleet, small_workload(4, 2));
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.devices, 4u);
  EXPECT_EQ(result.attested, 4u);
  EXPECT_EQ(result.verified, 4u);
  EXPECT_TRUE(result.all_verified());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const FleetDevice& device = fleet.device(i);
    EXPECT_TRUE(device.attested());
    EXPECT_EQ(device.outcome().code, verifier::VerifyOutcome::Code::kVerified);
    EXPECT_TRUE(device.platform().booted());
    EXPECT_GE(device.platform().machine().cycles(), 200'000u);
  }
}

TEST(Fleet, DevicesHaveDistinctKeysNoncesAndReports) {
  Fleet fleet(small_workload(3, 2).fleet);
  const WorkloadResult result = run_verifier_workload(fleet, small_workload(3, 2));
  ASSERT_TRUE(result.all_verified());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (std::size_t j = i + 1; j < fleet.size(); ++j) {
      EXPECT_NE(fleet.device(i).nonce(), fleet.device(j).nonce());
      EXPECT_NE(fleet.device(i).report().serialize(),
                fleet.device(j).report().serialize());
      EXPECT_NE(fleet.device(i).platform().config().kp,
                fleet.device(j).platform().config().kp);
    }
  }
}

// The tentpole invariant: same fleet config, different thread counts =>
// byte-identical attestation reports, cycle counts, and metric snapshots.
TEST(Fleet, DeterministicAcrossThreadCounts) {
  constexpr std::size_t kDevices = 6;
  Fleet serial(small_workload(kDevices, 1).fleet);
  Fleet threaded(small_workload(kDevices, 4).fleet);
  const WorkloadResult r1 =
      run_verifier_workload(serial, small_workload(kDevices, 1));
  const WorkloadResult r4 =
      run_verifier_workload(threaded, small_workload(kDevices, 4));
  ASSERT_TRUE(r1.all_verified());
  ASSERT_TRUE(r4.all_verified());

  for (std::size_t i = 0; i < kDevices; ++i) {
    const FleetDevice& a = serial.device(i);
    const FleetDevice& b = threaded.device(i);
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.nonce(), b.nonce());
    EXPECT_EQ(a.report().serialize(), b.report().serialize());
    EXPECT_EQ(a.platform().machine().cycles(), b.platform().machine().cycles());
    EXPECT_EQ(a.platform().machine().instructions_executed(),
              b.platform().machine().instructions_executed());
    EXPECT_EQ(metrics_snapshot(a.platform().machine().obs().metrics()),
              metrics_snapshot(b.platform().machine().obs().metrics()));
  }
  EXPECT_EQ(metrics_snapshot(serial.metrics()), metrics_snapshot(threaded.metrics()));
  EXPECT_EQ(r1.totals.cycles, r4.totals.cycles);
  EXPECT_EQ(r1.totals.instructions, r4.totals.instructions);
}

TEST(Fleet, SecondAttestSweepUsesFreshNonces) {
  Fleet fleet(small_workload(3, 2).fleet);
  const WorkloadConfig config = small_workload(3, 2);
  ASSERT_TRUE(run_verifier_workload(fleet, config).all_verified());
  std::vector<std::uint64_t> first_nonces;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    first_nonces.push_back(fleet.device(i).nonce());
  }
  EXPECT_EQ(fleet.attest_all(config.release_name), fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_NE(fleet.device(i).nonce(), first_nonces[i]);
    EXPECT_EQ(fleet.device(i).outcome().code,
              verifier::VerifyOutcome::Code::kVerified);
  }
}

TEST(Fleet, AggregatedMetricsMatchPerDeviceTotals) {
  Fleet fleet(small_workload(4, 2).fleet);
  ASSERT_TRUE(run_verifier_workload(fleet, small_workload(4, 2)).all_verified());
  std::uint64_t cycle_sum = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    cycle_sum += fleet.device(i).platform().machine().cycles();
  }
  EXPECT_EQ(fleet.metrics().counter("fleet.devices").value(), 4u);
  EXPECT_EQ(fleet.metrics().counter("fleet.cycles").value(), cycle_sum);
  EXPECT_EQ(fleet.metrics().counter("fleet.attestations").value(), 4u);
  EXPECT_EQ(fleet.metrics().counter("fleet.attestations_verified").value(), 4u);
  EXPECT_EQ(fleet.totals().cycles, cycle_sum);
}

// Per-device LogContexts keep fleet logging off the process-default context.
TEST(Fleet, LogIsolation) {
  std::vector<std::string> process_lines;
  LogSink previous = set_log_sink(
      [&](LogLevel, std::string_view, std::string_view msg) {
        process_lines.emplace_back(msg);
      });
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kTrace);

  Fleet fleet(small_workload(2, 2).fleet);
  std::vector<std::string> device_lines[2];
  for (std::size_t i = 0; i < 2; ++i) {
    fleet.device(i).log_context().set_level(LogLevel::kTrace);
    fleet.device(i).log_context().set_sink(
        [&, i](LogLevel, std::string_view, std::string_view msg) {
          device_lines[i].emplace_back(msg);
        });
  }
  ASSERT_TRUE(run_verifier_workload(fleet, small_workload(2, 2)).all_verified());

  set_log_level(previous_level);
  set_log_sink(std::move(previous));
  // Everything the platforms logged landed in their own contexts.
  EXPECT_TRUE(process_lines.empty());
  // Identical devices log identical streams — and they logged something.
  EXPECT_FALSE(device_lines[0].empty());
  EXPECT_EQ(device_lines[0], device_lines[1]);
}

// Satellite: RngDevice seeds flow through Platform::Config / the builder.
TEST(Fleet, RngSeedConfigurablePerPlatform) {
  auto a = core::PlatformBuilder().rng_seed(0x1111).build();
  auto b = core::PlatformBuilder().rng_seed(0x1111).build();
  auto c = core::PlatformBuilder().rng_seed(0x2222).build();
  EXPECT_EQ(a->rng().next64(), b->rng().next64());
  EXPECT_NE(a->rng().next64(), c->rng().next64());
  // Seed zero falls back to the device default rather than a dead RNG.
  auto d = core::PlatformBuilder().rng_seed(0).build();
  EXPECT_NE(d->rng().next64(), 0u);
}

// Satellite: two explicitly-threaded platforms behave exactly like the same
// two platforms run sequentially.
TEST(Fleet, TwoPlatformsOnTwoExplicitThreads) {
  auto make = [](std::uint8_t tag) {
    crypto::Key128 kp{};
    kp.fill(tag);
    return core::PlatformBuilder().kp(kp).rng_seed(0x9000 + tag).build();
  };
  auto run_one = [](core::Platform& platform, rtos::TaskHandle* handle) {
    ASSERT_TRUE(platform.boot().is_ok());
    auto task = platform.load_task_source(default_task_source(), {.name = "hb"});
    ASSERT_TRUE(task.is_ok());
    *handle = *task;
    platform.run_for(300'000);
  };

  auto s1 = make(1), s2 = make(2);   // sequential reference
  auto t1 = make(1), t2 = make(2);   // concurrent run
  rtos::TaskHandle hs1{}, hs2{}, ht1{}, ht2{};
  run_one(*s1, &hs1);
  run_one(*s2, &hs2);
  std::thread worker_a([&] { run_one(*t1, &ht1); });
  std::thread worker_b([&] { run_one(*t2, &ht2); });
  worker_a.join();
  worker_b.join();

  EXPECT_EQ(s1->machine().cycles(), t1->machine().cycles());
  EXPECT_EQ(s2->machine().cycles(), t2->machine().cycles());
  EXPECT_EQ(s1->machine().instructions_executed(),
            t1->machine().instructions_executed());
  EXPECT_EQ(s2->machine().instructions_executed(),
            t2->machine().instructions_executed());
  // Same task, same nonce, same per-device key => identical reports.
  auto report_of = [](core::Platform& p, rtos::TaskHandle handle) {
    auto report = p.remote_attest().attest_task(handle, 0xfeed);
    return report.is_ok() ? report->serialize() : ByteVec{};
  };
  EXPECT_EQ(report_of(*s1, hs1), report_of(*t1, ht1));
  EXPECT_EQ(report_of(*s2, hs2), report_of(*t2, ht2));
  EXPECT_NE(report_of(*s1, hs1), report_of(*s2, hs2));
}

TEST(Fleet, BringUpFailurePropagates) {
  FleetConfig config;
  config.device_count = 2;
  config.threads = 2;
  config.base.lint_mode = core::LintMode::kStrict;
  Fleet fleet(config);
  ASSERT_TRUE(fleet.bring_up().is_ok());
  // Deploying garbage fails on every device and surfaces the first error.
  EXPECT_FALSE(fleet.deploy("not peak-32 at all", "bad", 1).is_ok());
}

}  // namespace
}  // namespace tytan::fleet
