// Dynamic task loading/unloading and the RTM measurement (paper §4).
#include <gtest/gtest.h>

#include "core/platform.h"
#include "tbf/tbf.h"

namespace tytan {
namespace {

using core::LoadParams;
using core::Platform;

constexpr std::string_view kSecureTask = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r2, counter
    ldw  r3, [r2]
    addi r3, 1
    stw  r3, [r2]
    movi r0, 1          ; kSysYield
    int  0x21
    jmp  main
counter:
    .word 0
)";

TEST(Loader, LoadsSecureTaskAndMeasuresIt) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSecureTask, {.name = "counter"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();

  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  ASSERT_NE(tcb, nullptr);
  EXPECT_TRUE(tcb->secure);
  EXPECT_TRUE(tcb->measured);
  EXPECT_NE(tcb->identity, rtos::TaskIdentity{});
  EXPECT_NE(platform.rtm().find_by_handle(*task), nullptr);

  // The task actually runs: its counter increments.
  const std::uint32_t counter_addr =
      tcb->region_base + 0 /* placeholder, resolved below */;
  (void)counter_addr;
  platform.run_for(2'000'000);
  // Read the counter through a trusted identity (the RTM may read task memory).
  auto object = isa::assemble(kSecureTask);
  const std::uint32_t off = object->symbols.at("counter");
  auto value = platform.machine().fw_read32(core::Rtm::kIdent, tcb->region_base + off);
  ASSERT_TRUE(value.is_ok());
  EXPECT_GT(*value, 0u);
}

TEST(Loader, MeasurementIsPositionIndependent) {
  // Load the same binary twice; the two instances land at different bases
  // but must measure to the same identity (paper §4, RTM de-relocation).
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto a = platform.load_task_source(kSecureTask, {.name = "a", .auto_start = false});
  auto b = platform.load_task_source(kSecureTask, {.name = "b", .auto_start = false});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  const rtos::Tcb* ta = platform.scheduler().get(*a);
  const rtos::Tcb* tb = platform.scheduler().get(*b);
  ASSERT_NE(ta->region_base, tb->region_base);
  EXPECT_EQ(ta->identity, tb->identity);
  // And the relocated images in memory differ (bases differ)...
  const core::RegistryEntry* ea = platform.rtm().find_by_handle(*a);
  const core::RegistryEntry* eb = platform.rtm().find_by_handle(*b);
  ASSERT_NE(ea, nullptr);
  ASSERT_NE(eb, nullptr);
  EXPECT_EQ(ea->digest, eb->digest);
}

TEST(Loader, DifferentBinariesMeasureDifferently) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto a = platform.load_task_source(kSecureTask, {.name = "a", .auto_start = false});
  std::string modified(kSecureTask);
  modified.replace(modified.find("addi r3, 1"), 10, "addi r3, 2");
  auto b = platform.load_task_source(modified, {.name = "b", .auto_start = false});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(platform.scheduler().get(*a)->identity, platform.scheduler().get(*b)->identity);
}

TEST(Loader, UnloadReclaimsEverything) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  const std::uint32_t free_before = platform.loader().arena().free_bytes();
  const std::size_t slots_before = platform.mpu().slots_in_use();
  auto task = platform.load_task_source(kSecureTask, {.name = "t"});
  ASSERT_TRUE(task.is_ok());
  EXPECT_LT(platform.loader().arena().free_bytes(), free_before);
  EXPECT_GT(platform.mpu().slots_in_use(), slots_before);

  ASSERT_TRUE(platform.unload_task(*task).is_ok());
  EXPECT_EQ(platform.loader().arena().free_bytes(), free_before);
  EXPECT_EQ(platform.mpu().slots_in_use(), slots_before);
  EXPECT_EQ(platform.scheduler().get(*task), nullptr);
  EXPECT_EQ(platform.rtm().find_by_handle(*task), nullptr);
}

TEST(Loader, UnloadWipesMemory) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSecureTask, {.name = "t", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  const std::uint32_t base = tcb->region_base;
  const std::uint32_t size = tcb->region_size;
  ASSERT_TRUE(platform.unload_task(*task).is_ok());
  for (std::uint32_t i = 0; i < size; i += 256) {
    EXPECT_EQ(platform.machine().memory().read8(base + i), 0) << "offset " << i;
  }
}

TEST(Loader, SuspendedLoadDoesNotRun) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSecureTask, {.name = "t", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  platform.run_for(500'000);
  EXPECT_EQ(platform.scheduler().get(*task)->activations, 0u);
  ASSERT_TRUE(platform.resume_task(*task).is_ok());
  platform.run_for(500'000);
  EXPECT_GT(platform.scheduler().get(*task)->activations, 0u);
}

TEST(Loader, RejectsGarbage) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  isa::ObjectFile empty;
  EXPECT_FALSE(platform.load_task(empty, {.name = "x"}).is_ok());

  isa::ObjectFile bad_entry;
  bad_entry.image.resize(8, 0);
  bad_entry.entry = 100;
  EXPECT_FALSE(platform.load_task(bad_entry, {.name = "y"}).is_ok());
}

TEST(Loader, TbfRoundTripLoads) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(kSecureTask);
  ASSERT_TRUE(object.is_ok());
  const ByteVec raw = tbf::write(*object);
  auto parsed = tbf::read(raw);
  ASSERT_TRUE(parsed.is_ok());
  auto task = platform.load_task(parsed.take(), {.name = "from-tbf"});
  EXPECT_TRUE(task.is_ok()) << task.status().to_string();
}

TEST(Loader, AsyncLoadCompletesWhileMachineRuns) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(kSecureTask);
  ASSERT_TRUE(object.is_ok());
  auto task = platform.load_task_async(object.take(), {.name = "async"});
  ASSERT_TRUE(task.is_ok());
  EXPECT_TRUE(platform.load_in_progress());
  ASSERT_TRUE(platform.run_until([&] { return !platform.load_in_progress(); }, 20'000'000));
  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  ASSERT_NE(tcb, nullptr);
  EXPECT_TRUE(tcb->measured);
}


TEST(Loader, AsyncLoadFromSourceString) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source_async(kSecureTask, {.name = "src-async"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  ASSERT_TRUE(platform.run_until([&] { return !platform.load_in_progress(); }, 20'000'000));
  EXPECT_TRUE(platform.scheduler().get(*task)->measured);
  // Malformed source fails up front, before any job is queued.
  EXPECT_FALSE(platform.load_task_source_async("bogus instr\n", {.name = "bad"}).is_ok());
  EXPECT_FALSE(platform.load_in_progress());
}

TEST(Loader, RegistryWireFormatStaysConsistentAcrossUnloads) {
  // The authoritative registry bytes in trusted memory must always mirror
  // the RTM's host-side index, including after mid-list unloads compact it.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  std::vector<rtos::TaskHandle> tasks;
  for (int i = 0; i < 4; ++i) {
    std::string source(kSecureTask);
    source += "    .word " + std::to_string(i) + "\n";
    auto task = platform.load_task_source(source, {.name = "t" + std::to_string(i),
                                                   .auto_start = false});
    ASSERT_TRUE(task.is_ok());
    tasks.push_back(*task);
  }
  // Unload the second entry; the tail compacts.
  ASSERT_TRUE(platform.unload_task(tasks[1]).is_ok());

  auto& machine = platform.machine();
  const auto& entries = platform.rtm().entries();
  ASSERT_EQ(entries.size(), 3u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const core::RegistryEntry& entry = entries[i];
    EXPECT_EQ(entry.entry_addr,
              core::kRtmRegistryBase +
                  static_cast<std::uint32_t>(i) * core::kRegistryEntrySize);
    // Identity bytes in trusted memory match the host view.
    for (unsigned b = 0; b < 8; ++b) {
      auto byte = machine.fw_read8(core::Rtm::kIdent, entry.entry_addr + b);
      ASSERT_TRUE(byte.is_ok());
      EXPECT_EQ(*byte, entry.identity[b]) << "entry " << i << " byte " << b;
    }
    auto base = machine.fw_read32(core::Rtm::kIdent, entry.entry_addr + 28);
    auto flags = machine.fw_read32(core::Rtm::kIdent, entry.entry_addr + 44);
    ASSERT_TRUE(base.is_ok());
    EXPECT_EQ(*base, entry.base);
    EXPECT_EQ(*flags & core::kRegistryFlagValid, core::kRegistryFlagValid);
  }
  // The vacated tail slot is invalidated.
  auto stale_flags = machine.fw_read32(
      core::Rtm::kIdent,
      core::kRtmRegistryBase + 3 * core::kRegistryEntrySize + 44);
  ASSERT_TRUE(stale_flags.is_ok());
  EXPECT_EQ(*stale_flags & core::kRegistryFlagValid, 0u);
}

TEST(Arena, AllocFreeCoalesce) {
  core::RamArena arena(0x1000, 0x1000);
  auto a = arena.alloc(0x100);
  auto b = arena.alloc(0x100);
  auto c = arena.alloc(0x100);
  ASSERT_TRUE(a.is_ok() && b.is_ok() && c.is_ok());
  EXPECT_TRUE(arena.free(*b).is_ok());
  EXPECT_TRUE(arena.free(*a).is_ok());
  EXPECT_TRUE(arena.free(*c).is_ok());
  EXPECT_EQ(arena.free_bytes(), 0x1000u);
  EXPECT_EQ(arena.block_count(), 1u);  // fully coalesced
  // Whole arena allocatable again.
  EXPECT_TRUE(arena.alloc(0x1000).is_ok());
}

TEST(Arena, ExhaustionAndErrors) {
  core::RamArena arena(0x1000, 0x200);
  EXPECT_FALSE(arena.alloc(0x400).is_ok());
  EXPECT_FALSE(arena.alloc(0).is_ok());
  EXPECT_FALSE(arena.free(0x1234).is_ok());
}

}  // namespace
}  // namespace tytan
